//! Property tests for the write-ahead delta log: replaying a
//! [`DeltaWal`] is idempotent and order-insensitive (last-writer-wins by
//! sequence number within each shard), and the truncation a write-back
//! performs never drops a delta that was staged after the flush snapshot
//! was taken.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, ChunkService, DeltaWal, SyncChunkService, WalRecord};
use servo_types::{BlockPos, ChunkPos, SimTime};
use servo_world::{shard_index, Block, ShardedWorld};

const SHARDS: usize = 4;
const GRID: u64 = 5;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded append stream over a small chunk grid; payload bytes encode
/// the append index so later writes are distinguishable from earlier ones.
fn append_stream(seed: u64, len: usize) -> Vec<(ChunkPos, Vec<u8>)> {
    let mut state = seed ^ 0x57ab1e;
    (0..len)
        .map(|i| {
            let r = splitmix(&mut state);
            let pos = ChunkPos::new((r % GRID) as i32, ((r >> 8) % GRID) as i32);
            (
                pos,
                vec![(i & 0xff) as u8, (i >> 8) as u8, (r & 0xff) as u8],
            )
        })
        .collect()
}

/// Applies records with the log's replay rule: a record lands only if its
/// sequence is not older than what the state already holds for that chunk.
fn apply_lww(state: &mut BTreeMap<ChunkPos, (u64, Vec<u8>)>, records: &[WalRecord]) {
    for record in records {
        match state.get(&record.pos) {
            Some((seq, _)) if *seq > record.seq => {}
            _ => {
                state.insert(record.pos, (record.seq, record.bytes.clone()));
            }
        }
    }
}

/// A deterministic permutation of `records` driven by `seed`.
fn shuffled(records: &[WalRecord], seed: u64) -> Vec<WalRecord> {
    let mut out = records.to_vec();
    let mut state = seed ^ 0x0bad_5eed;
    for i in (1..out.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying a shard yields, for every chunk, exactly the bytes of the
    /// *last* append to that chunk — last-writer-wins within the shard.
    #[test]
    fn replay_is_last_writer_wins(seed in 0u64..1_000_000) {
        let mut wal = DeltaWal::new(SHARDS);
        let mut last: BTreeMap<ChunkPos, Vec<u8>> = BTreeMap::new();
        for (pos, bytes) in append_stream(seed, 80) {
            wal.append(pos, bytes.clone());
            last.insert(pos, bytes);
        }
        let mut replayed: BTreeMap<ChunkPos, Vec<u8>> = BTreeMap::new();
        for shard in 0..SHARDS {
            for record in wal.replay_shard(shard) {
                prop_assert_eq!(shard_index(record.pos, SHARDS), shard);
                prop_assert!(replayed.insert(record.pos, record.bytes).is_none(),
                    "replay emitted a chunk twice");
            }
        }
        prop_assert_eq!(replayed, last);
    }

    /// Applying the replay of a shard to a state that already absorbed it
    /// changes nothing: recovery may be retried after a second crash
    /// without corrupting the adopted world.
    #[test]
    fn replay_is_idempotent(seed in 0u64..1_000_000) {
        let mut wal = DeltaWal::new(SHARDS);
        for (pos, bytes) in append_stream(seed, 80) {
            wal.append(pos, bytes);
        }
        for shard in 0..SHARDS {
            let records = wal.replay_shard(shard);
            let mut once = BTreeMap::new();
            apply_lww(&mut once, &records);
            let mut twice = once.clone();
            apply_lww(&mut twice, &records);
            prop_assert_eq!(&once, &twice, "second replay changed the state");
        }
    }

    /// Records applied in *any* order under the sequence rule converge to
    /// the same state the ordered replay produces — adopters may consume
    /// restore and replay traffic in whatever order it arrives.
    #[test]
    fn replay_is_order_insensitive(seed in 0u64..1_000_000, shuffle_seed in 0u64..1_000) {
        let mut wal = DeltaWal::new(SHARDS);
        for (pos, bytes) in append_stream(seed, 80) {
            wal.append(pos, bytes);
        }
        for shard in 0..SHARDS {
            // The full per-shard log, not just the condensed replay: even
            // superseded records must be harmless out of order.
            let log = wal.records(shard).to_vec();
            let mut ordered = BTreeMap::new();
            apply_lww(&mut ordered, &log);
            let mut scrambled = BTreeMap::new();
            apply_lww(&mut scrambled, &shuffled(&log, shuffle_seed));
            prop_assert_eq!(&ordered, &scrambled, "shard {} diverged under reordering", shard);
        }
    }

    /// Re-ingesting a wal's own replay into a fresh log and replaying
    /// again is a fixed point: condensation is stable.
    #[test]
    fn replay_of_replay_is_a_fixed_point(seed in 0u64..1_000_000) {
        let mut wal = DeltaWal::new(SHARDS);
        for (pos, bytes) in append_stream(seed, 80) {
            wal.append(pos, bytes);
        }
        let mut condensed = DeltaWal::new(SHARDS);
        for shard in 0..SHARDS {
            for record in wal.replay_shard(shard) {
                condensed.ingest(record);
            }
        }
        for shard in 0..SHARDS {
            prop_assert_eq!(wal.replay_shard(shard), condensed.replay_shard(shard));
        }
    }
}

/// The write-back path snapshots each chunk's latest sequence *before*
/// flushing and truncates only through that mark — so a delta staged after
/// the flush (here: after a first write-back completes) is never dropped
/// by the truncation and is still recoverable.
#[test]
fn truncation_after_write_back_never_drops_an_unflushed_delta() {
    let world = Arc::new(ShardedWorld::flat(4));
    world.ensure_chunk_at(ChunkPos::new(1, 1));
    let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(11));
    let wal = servo_storage::SharedWal::new(world.shard_count());
    let mut service = SyncChunkService::new(remote, SimRng::seed(12))
        .with_world(Arc::clone(&world))
        .with_wal(wal.clone());

    let target = ChunkPos::new(1, 1);
    let shard = world.shard_of(target);
    let base = target.min_block();

    // First edit: stage it (logging to the WAL) and flush it.
    world
        .set_block(base + BlockPos::new(1, 30, 1), Block::Stone)
        .unwrap();
    let deltas = service.drain_dirty();
    service.stage_dirty(deltas);
    let first_seq = wal.latest_seq(target).expect("staging logged the delta");
    service.submit(servo_storage::ChunkRequest::write_back());
    service.poll(SimTime::from_secs(100));

    // Second edit, staged after the flush: the earlier truncation must not
    // have consumed its record, and recovery must surface exactly it.
    world
        .set_block(base + BlockPos::new(2, 30, 2), Block::Lamp)
        .unwrap();
    let deltas = service.drain_dirty();
    service.stage_dirty(deltas);
    let second_seq = wal
        .latest_seq(target)
        .expect("unflushed delta still logged");
    assert!(
        second_seq > first_seq,
        "staging must stamp a newer sequence"
    );

    let recovered = service.recover(shard);
    assert_eq!(recovered.len(), 1, "exactly the unflushed shard delta");
    assert_eq!(recovered[0].chunks, vec![target]);
    let replayed = wal.replay_shard(shard);
    assert_eq!(replayed.len(), 1);
    assert_eq!(replayed[0].seq, second_seq);
    let expected = world.read_chunk(target, |c| c.to_bytes()).unwrap();
    assert_eq!(
        replayed[0].bytes, expected,
        "replay carries the second edit's bytes"
    );

    // A second write-back flushes it and empties the log for that chunk.
    service.submit(servo_storage::ChunkRequest::write_back());
    service.poll(SimTime::from_secs(200));
    assert!(
        wal.latest_seq(target).is_none(),
        "flushed delta is truncated"
    );
    assert!(service.recover(shard).is_empty());
}

/// The race the marks protect against, reproduced at the log level: an
/// append that lands between the flush snapshot and the truncation
/// survives, because truncation only covers sequences through the mark.
#[test]
fn truncation_through_a_stale_mark_keeps_the_racing_append() {
    let mut wal = DeltaWal::new(SHARDS);
    let pos = ChunkPos::new(2, 3);
    wal.append(pos, vec![1]);
    let mark = wal.latest_seq(pos).unwrap();
    // Racing append after the snapshot, before the truncation.
    let racing = wal.append(pos, vec![2]);
    wal.truncate(pos, mark);
    assert_eq!(wal.latest_seq(pos), Some(racing));
    let shard = shard_index(pos, SHARDS);
    let replayed = wal.replay_shard(shard);
    assert_eq!(replayed.len(), 1);
    assert_eq!(replayed[0].bytes, vec![2]);
}

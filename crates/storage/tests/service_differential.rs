//! Differential property tests: [`SyncChunkService`] (inline execution)
//! and [`PipelinedChunkService`] (worker-pool execution) must produce the
//! same *final* state for the same seeded request stream — identical world
//! contents, identical write-back sets and bytes in remote storage, and
//! the same set of chunks delivered to read tickets. Only scheduling and
//! tick-visible cost may differ.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use servo_simkit::SimRng;
use servo_storage::{
    BlobStore, BlobTier, ChunkOutcome, ChunkRequest, ChunkService, ObjectStore,
    PipelinedChunkService, SyncChunkService,
};
use servo_types::{BlockPos, ChunkPos, SimDuration, SimTime};
use servo_world::{Block, ShardedWorld};

/// Side length of the chunk grid every stream operates on.
const GRID: i32 = 5;
/// Operations per generated stream.
const OPS: usize = 120;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn grid_pos(r: u64) -> ChunkPos {
    ChunkPos::new((r % GRID as u64) as i32, ((r >> 8) % GRID as u64) as i32)
}

/// One operation of the seeded request stream, identical for both services.
#[derive(Debug, Clone)]
enum Op {
    Read(ChunkPos),
    Prefetch(Vec<ChunkPos>),
    Edit(BlockPos, Block),
    Evict(Vec<ChunkPos>),
    WriteBack,
}

fn stream(seed: u64) -> Vec<Op> {
    let mut state = seed ^ 0x5eed_cafe;
    (0..OPS)
        .map(|_| {
            let r = splitmix(&mut state);
            match r % 100 {
                0..=39 => Op::Read(grid_pos(r >> 16)),
                40..=59 => {
                    let n = (r >> 16) % 4 + 1;
                    Op::Prefetch(
                        (0..n)
                            .map(|i| grid_pos(splitmix(&mut state) >> (8 * (i % 3))))
                            .collect(),
                    )
                }
                60..=84 => {
                    let pos = grid_pos(r >> 16).min_block();
                    let block = if r.is_multiple_of(2) {
                        Block::Stone
                    } else {
                        Block::Lamp
                    };
                    let dx = ((r >> 32) % 16) as i32;
                    let dz = ((r >> 40) % 16) as i32;
                    let y = ((r >> 48) % 60) as i32 + 8;
                    Op::Edit(BlockPos::new(pos.x + dx, y, pos.z + dz), block)
                }
                85..=89 => {
                    let keep: Vec<ChunkPos> = (0..GRID)
                        .flat_map(|x| (0..GRID).map(move |z| ChunkPos::new(x, z)))
                        .filter(|p| (p.x + p.z) % 2 == (r % 2) as i32)
                        .collect();
                    Op::Evict(keep)
                }
                _ => Op::WriteBack,
            }
        })
        .collect()
}

/// Builds the pre-populated world every stream edits: the full grid of flat
/// chunks, loaded up front so edits apply identically no matter when read
/// completions arrive.
fn seeded_world() -> Arc<ShardedWorld> {
    let world = ShardedWorld::flat(4);
    for x in 0..GRID {
        for z in 0..GRID {
            world.ensure_chunk_at(ChunkPos::new(x, z));
        }
    }
    Arc::new(world)
}

/// Seeds the remote store with the same flat chunks the world holds.
fn seeded_remote(world: &ShardedWorld) -> BlobStore {
    let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
    for x in 0..GRID {
        for z in 0..GRID {
            let pos = ChunkPos::new(x, z);
            let bytes = world
                .read_chunk(pos, |c| c.to_bytes())
                .expect("grid chunk is loaded");
            remote
                .write(
                    &format!("terrain/{}/{}", pos.x, pos.z),
                    bytes,
                    SimTime::ZERO,
                )
                .unwrap();
        }
    }
    remote
}

/// What a run leaves behind, compared across the two services.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Serialized final world contents, per chunk.
    world: BTreeMap<ChunkPos, Vec<u8>>,
    /// Final remote-storage contents over the grid universe (the
    /// write-back set plus the seed data it overwrote).
    remote: BTreeMap<ChunkPos, Vec<u8>>,
    /// Chunk positions delivered to read tickets.
    read_loaded: BTreeSet<ChunkPos>,
}

fn apply_stream(
    service: &mut impl ChunkService,
    world: &ShardedWorld,
    ops: &[Op],
    read_loaded: &mut BTreeSet<ChunkPos>,
    read_tickets: &mut BTreeSet<servo_storage::Ticket>,
) -> SimTime {
    let mut now = SimTime::ZERO;
    let collect = |completions: Vec<servo_storage::ChunkCompletion>,
                   read_loaded: &mut BTreeSet<ChunkPos>,
                   read_tickets: &BTreeSet<servo_storage::Ticket>| {
        for completion in completions {
            if let ChunkOutcome::Loaded { pos, .. } = completion.outcome {
                if read_tickets.contains(&completion.ticket) {
                    read_loaded.insert(pos);
                }
            }
        }
    };
    for op in ops {
        now += SimDuration::from_millis(20);
        let completions = service.poll(now);
        collect(completions, read_loaded, read_tickets);
        match op {
            Op::Read(pos) => {
                let ticket = service.submit(ChunkRequest::read(*pos));
                read_tickets.insert(ticket);
            }
            Op::Prefetch(positions) => {
                service.submit(ChunkRequest::prefetch(positions.iter().copied()));
            }
            Op::Edit(pos, block) => {
                world
                    .set_block(*pos, *block)
                    .expect("the whole grid is loaded");
            }
            Op::Evict(keep) => {
                service.submit(ChunkRequest::evict(keep.iter().copied()));
            }
            Op::WriteBack => {
                service.submit(ChunkRequest::write_back());
            }
        }
        let completions = service.poll(now);
        collect(completions, read_loaded, read_tickets);
    }
    now
}

fn world_fingerprint(world: &ShardedWorld) -> BTreeMap<ChunkPos, Vec<u8>> {
    let mut map = BTreeMap::new();
    for pos in world.loaded_positions() {
        map.insert(pos, world.read_chunk(pos, |c| c.to_bytes()).unwrap());
    }
    map
}

fn remote_fingerprint(remote: &mut BlobStore, now: SimTime) -> BTreeMap<ChunkPos, Vec<u8>> {
    let mut map = BTreeMap::new();
    for x in 0..GRID {
        for z in 0..GRID {
            let pos = ChunkPos::new(x, z);
            let key = format!("terrain/{}/{}", pos.x, pos.z);
            if remote.contains(&key) {
                map.insert(pos, remote.read(&key, now).unwrap().data);
            }
        }
    }
    map
}

fn run_sync(seed: u64) -> Outcome {
    let world = seeded_world();
    let remote = seeded_remote(&world);
    let mut service = SyncChunkService::new(remote, SimRng::seed(2)).with_world(Arc::clone(&world));
    let ops = stream(seed);
    let mut read_loaded = BTreeSet::new();
    let mut read_tickets = BTreeSet::new();
    let now = apply_stream(
        &mut service,
        &world,
        &ops,
        &mut read_loaded,
        &mut read_tickets,
    );

    // Settle: harvest every outstanding arrival, then flush all dirt.
    let end = now + SimDuration::from_secs(1_000);
    for completion in service.poll(end) {
        if let ChunkOutcome::Loaded { pos, .. } = completion.outcome {
            if read_tickets.contains(&completion.ticket) {
                read_loaded.insert(pos);
            }
        }
    }
    service.submit(ChunkRequest::write_back());
    service.poll(end);

    Outcome {
        world: world_fingerprint(&world),
        remote: remote_fingerprint(service.remote_mut(), end),
        read_loaded,
    }
}

fn run_pipelined(seed: u64, workers: usize) -> Outcome {
    let world = seeded_world();
    let remote = seeded_remote(&world);
    let mut service =
        PipelinedChunkService::new(remote, SimRng::seed(2), workers).with_world(Arc::clone(&world));
    let ops = stream(seed);
    let mut read_loaded = BTreeSet::new();
    let mut read_tickets = BTreeSet::new();
    let now = apply_stream(
        &mut service,
        &world,
        &ops,
        &mut read_loaded,
        &mut read_tickets,
    );

    // Settle at a far-future instant: every transfer is due, every ticket
    // resolves, then one final write-back flushes all remaining dirt.
    let end = now + SimDuration::from_secs(1_000);
    let settle = |service: &mut PipelinedChunkService<BlobStore>,
                  read_loaded: &mut BTreeSet<ChunkPos>| {
        let mut idle = 0;
        for _ in 0..200_000 {
            let completions = service.poll(end);
            let empty = completions.is_empty();
            for completion in completions {
                if let ChunkOutcome::Loaded { pos, .. } = completion.outcome {
                    if read_tickets.contains(&completion.ticket) {
                        read_loaded.insert(pos);
                    }
                }
            }
            if empty && service.pending() == 0 && service.transfers_due(end) == 0 {
                idle += 1;
                if idle >= 3 {
                    return;
                }
            } else {
                idle = 0;
            }
            std::thread::yield_now();
        }
        panic!("pipelined service failed to settle");
    };
    settle(&mut service, &mut read_loaded);
    service.submit(ChunkRequest::write_back());
    settle(&mut service, &mut read_loaded);

    Outcome {
        world: world_fingerprint(&world),
        remote: service.with_remote(|remote| remote_fingerprint(remote, end)),
        read_loaded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole equivalence: for an arbitrary seeded request stream the
    /// pipelined service converges to exactly the state the synchronous
    /// baseline produces.
    #[test]
    fn sync_and_pipelined_converge_to_identical_state(seed in 0u64..1_000_000) {
        let sync = run_sync(seed);
        let pipelined = run_pipelined(seed, 3);
        prop_assert_eq!(&sync.world, &pipelined.world, "world diverged");
        prop_assert_eq!(&sync.remote, &pipelined.remote, "write-back sets diverged");
        prop_assert_eq!(&sync.read_loaded, &pipelined.read_loaded, "read deliveries diverged");
    }
}

/// The single-worker pipeline is the degenerate case closest to the sync
/// adapter; pin one seed as a fast deterministic regression test.
#[test]
fn single_worker_pipeline_matches_sync() {
    let sync = run_sync(42);
    let pipelined = run_pipelined(42, 1);
    assert_eq!(sync.world, pipelined.world);
    assert_eq!(sync.remote, pipelined.remote);
    assert_eq!(sync.read_loaded, pipelined.read_loaded);
}

/// Editing chunks of a single shard must surface as exactly one
/// [`servo_storage::ShardDelta`] from the service, and a write-back driven
/// by it must skip every clean shard (issue acceptance criterion).
#[test]
fn one_shard_edit_yields_one_delta() {
    let world = seeded_world();
    let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(3));
    let mut service = SyncChunkService::new(remote, SimRng::seed(4)).with_world(Arc::clone(&world));

    let target = ChunkPos::new(2, 2);
    let base = target.min_block();
    world
        .set_block(BlockPos::new(base.x + 1, 30, base.z + 1), Block::Wood)
        .unwrap();
    world
        .set_block(BlockPos::new(base.x + 2, 30, base.z + 2), Block::Wood)
        .unwrap();

    let deltas = service.drain_dirty();
    assert_eq!(deltas.len(), 1, "exactly one shard delta: {deltas:?}");
    assert_eq!(deltas[0].shard, world.shard_of(target));
    assert_eq!(deltas[0].chunks, vec![target]);

    service.submit(ChunkRequest::write_back());
    let completions = service.poll(SimTime::ZERO);
    assert!(completions
        .iter()
        .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 1 })));
    // Only the edited chunk reached remote storage.
    assert_eq!(service.remote_mut().len(), 1);
    assert!(service.remote_mut().contains("terrain/2/2"));
}

//! Transient storage faults and the bounded retry-and-backoff that
//! absorbs them: an armed [`FaultProfile`] makes individual remote reads
//! and writes fail at a seeded rate, a [`RetryPolicy`] retries them with
//! per-attempt backoff, and [`CacheStats`] counts both the retries and
//! the operations that exhausted their budget.

use std::sync::Arc;

use servo_simkit::SimRng;
use servo_storage::{
    BlobStore, BlobTier, CachedChunkStore, ChunkRequest, ChunkService, FaultProfile, ObjectStore,
    PipelinedChunkService, RetryPolicy,
};
use servo_types::{ChunkPos, SimDuration, SimTime};
use servo_world::{Chunk, ChunkSnapshot, ShardedWorld};

const GRID: i32 = 5;

/// A simple non-empty chunk: a stone layer at the flat ground height.
fn flat_chunk(pos: ChunkPos) -> Chunk {
    let mut chunk = Chunk::empty(pos);
    chunk.fill_layer(4, servo_world::Block::Stone).unwrap();
    chunk
}

/// A remote store holding a flat chunk for every grid position, with the
/// given transient-failure rates armed on a dedicated substream.
fn faulty_remote(read_rate: f64, write_rate: f64, seed: u64) -> BlobStore {
    let rng = SimRng::seed(seed);
    let faults = rng.substream("faults");
    let mut remote = BlobStore::new(BlobTier::Standard, rng);
    for x in 0..GRID {
        for z in 0..GRID {
            let bytes = flat_chunk(ChunkPos::new(x, z)).to_bytes();
            remote
                .write(&format!("terrain/{x}/{z}"), bytes, SimTime::ZERO)
                .unwrap();
        }
    }
    // Arm the faults only after seeding, so the seed writes always land.
    remote.with_faults(
        FaultProfile {
            read_fail_rate: read_rate,
            write_fail_rate: write_rate,
        },
        faults,
    )
}

#[test]
fn retries_absorb_transient_read_failures() {
    let mut cache = CachedChunkStore::new(faulty_remote(0.35, 0.0, 21), SimRng::seed(22));
    cache.set_retry(RetryPolicy {
        attempts: 8,
        backoff: SimDuration::from_millis(4),
    });
    let mut now = SimTime::ZERO;
    for x in 0..GRID {
        for z in 0..GRID {
            now += SimDuration::from_millis(50);
            let read = cache.read(ChunkPos::new(x, z), now);
            assert!(read.is_ok(), "read failed despite retry budget: {read:?}");
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.remote_misses, (GRID * GRID) as u64);
    assert!(
        stats.retries > 0,
        "a 35% fail rate over {} reads must trigger retries",
        GRID * GRID
    );
    assert_eq!(stats.retries_exhausted, 0, "the budget covered every read");
}

#[test]
fn exhausted_retries_surface_as_failures() {
    let attempts = 2u32;
    let mut cache = CachedChunkStore::new(faulty_remote(1.0, 0.0, 31), SimRng::seed(32));
    cache.set_retry(RetryPolicy {
        attempts,
        backoff: SimDuration::from_millis(4),
    });
    let reads = 6u64;
    let mut now = SimTime::ZERO;
    for i in 0..reads {
        now += SimDuration::from_millis(50);
        let read = cache.read(ChunkPos::new(i as i32 % GRID, i as i32 / GRID), now);
        assert!(read.is_err(), "a 100% fail rate can never satisfy a read");
    }
    let stats = cache.stats();
    assert_eq!(stats.retries, attempts as u64 * reads);
    assert_eq!(stats.retries_exhausted, reads);
}

#[test]
fn failed_write_backs_keep_the_chunk_dirty_until_a_retry_lands() {
    // Every write fails: the chunk must stay dirty (and recoverable)
    // across write-back passes rather than being silently dropped.
    let mut cache = CachedChunkStore::new(faulty_remote(0.0, 1.0, 41), SimRng::seed(42));
    cache.set_retry(RetryPolicy {
        attempts: 1,
        backoff: SimDuration::from_millis(4),
    });
    let pos = ChunkPos::new(1, 1);
    let snapshot = ChunkSnapshot {
        pos,
        bytes: flat_chunk(pos).to_bytes(),
    };
    cache
        .put(snapshot.clone(), SimTime::from_millis(10))
        .unwrap();
    let written = cache.write_back(&[pos], SimTime::from_millis(20));
    assert!(written.is_empty(), "no write can land at a 100% fail rate");
    let stats = cache.stats();
    assert_eq!(stats.write_backs, 0);
    assert_eq!(stats.retries_exhausted, 1);
    // The dirt survived the failed pass: the next delta still carries it.
    let deltas = cache.take_dirty_deltas();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].chunks, vec![pos]);

    // A flaky-but-not-dead store: the bounded retries eventually land it.
    let mut cache = CachedChunkStore::new(faulty_remote(0.0, 0.5, 43), SimRng::seed(44));
    cache.set_retry(RetryPolicy {
        attempts: 10,
        backoff: SimDuration::from_millis(4),
    });
    cache.put(snapshot, SimTime::from_millis(10)).unwrap();
    let written = cache.write_back(&[pos], SimTime::from_millis(20));
    assert_eq!(written, vec![pos]);
    assert_eq!(cache.stats().write_backs, 1);
    assert!(
        cache.take_dirty_deltas().is_empty(),
        "flushed chunk is clean"
    );
}

#[test]
fn pipelined_service_retries_through_a_flaky_store() {
    // End-to-end through the worker pool: every grid read completes
    // despite a 30% transient read-failure rate, with the retries visible
    // in the aggregated stats and no request stranded.
    let world = Arc::new(ShardedWorld::flat(4));
    let mut service = PipelinedChunkService::new(faulty_remote(0.3, 0.0, 51), SimRng::seed(52), 3)
        .with_world(Arc::clone(&world))
        .with_retry(RetryPolicy {
            attempts: 8,
            backoff: SimDuration::from_millis(4),
        });
    let mut tickets = std::collections::BTreeSet::new();
    for x in 0..GRID {
        for z in 0..GRID {
            tickets.insert(service.submit(ChunkRequest::read(ChunkPos::new(x, z))));
        }
    }
    // Advance virtual time while draining worker completions: each poll
    // flushes lanes, the transfers (and retry backoffs) land as `now`
    // passes their arrival, and the yield gives the pool wall-clock time.
    let mut now = SimTime::ZERO;
    let mut loaded = 0usize;
    for _ in 0..200_000 {
        now += SimDuration::from_millis(50);
        for completion in service.poll(now) {
            if let servo_storage::ChunkOutcome::Loaded { .. } = completion.outcome {
                if tickets.remove(&completion.ticket) {
                    loaded += 1;
                }
            }
        }
        if loaded == (GRID * GRID) as usize {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(loaded, (GRID * GRID) as usize, "a read was stranded");
    let stats = service.stats();
    assert!(
        stats.retries > 0,
        "the flaky store must have forced retries"
    );
}

//! Storage substrates: local disk, serverless blob storage, the
//! cache + pre-fetch layer Servo puts in front of remote storage, and the
//! asynchronous [`ChunkService`] request/completion pipeline the game loop
//! talks to.
//!
//! The paper measures that reading terrain from managed cloud storage has a
//! latency body comparable to local disk but a far heavier tail (99.9th
//! percentile of 226 ms vs 16 ms, outliers to 500 ms — Figures 3 and 13),
//! which breaks the 50 ms tick budget. Servo's answer is a server-local
//! cache with a distance-based pre-fetch policy (Section III-E), which this
//! crate implements, together with latency models for the storage services
//! themselves.
//!
//! # Example
//!
//! ```
//! use servo_storage::{BlobStore, BlobTier, ObjectStore};
//! use servo_simkit::SimRng;
//! use servo_types::SimTime;
//!
//! let mut store = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
//! let w = store.write("chunk/0/0", vec![1, 2, 3], SimTime::ZERO).unwrap();
//! let r = store.read("chunk/0/0", w.completed_at).unwrap();
//! assert_eq!(r.data, vec![1, 2, 3]);
//! assert!(r.latency.as_micros() > 0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod playerdata;
pub mod service;
pub mod wal;

pub use backend::{
    BlobStore, BlobTier, FaultProfile, LocalDiskStore, ObjectStore, ReadResult, WriteResult,
};
pub use cache::{
    chunk_key, CacheStats, CachedChunkStore, CachedRead, ChunkLocation, RetryPolicy, TryRead,
};
pub use playerdata::{PlayerDataStore, PlayerLoad, PlayerRecord};
pub use service::{
    ChunkCompletion, ChunkOutcome, ChunkRequest, ChunkService, PipelinedChunkService, Priority,
    SyncChunkService, Ticket,
};
pub use wal::{DeltaWal, SharedWal, WalRecord};
// Re-exported so service consumers can name the dirty-delta type without a
// direct `servo-world` dependency.
pub use servo_world::ShardDelta;

//! The unified asynchronous chunk-service API.
//!
//! Every storage interaction of the game loop goes through one
//! request/completion pipeline: callers [`submit`](ChunkService::submit)
//! [`ChunkRequest`]s (read / prefetch / write-back / evict, each carrying a
//! [`Priority`]) and receive a [`Ticket`]; finished work comes back as
//! [`ChunkCompletion`]s from [`poll`](ChunkService::poll); and per-shard
//! dirty state flows out of [`drain_dirty`](ChunkService::drain_dirty) as
//! [`ShardDelta`]s, so write-back touches only the shards that were
//! actually modified.
//!
//! Two implementations cover the design space:
//!
//! * [`SyncChunkService`] — the baseline adapter over
//!   [`CachedChunkStore`]: requests execute inline on the calling thread,
//!   and a read that misses every cache layer pays the full remote latency
//!   on the tick path, exactly like the pre-redesign blocking API.
//! * [`PipelinedChunkService`] — remote transfers run on a pool of worker
//!   threads (sized by `ServerConfig::with_parallelism` at the deployment
//!   layer) and submissions are batched per owning world shard, so issue
//!   cost leaves the tick path entirely: a read that misses becomes an
//!   asynchronous transfer whose data is integrated by a later poll.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use servo_faas::{Autoscaler, AutoscalerConfig, AutoscalerStats};
use servo_types::{ChunkPos, ServoError, SimDuration, SimTime};
use servo_world::{shard_index, Chunk, ChunkSnapshot, ShardDelta, WorldSink};

use crate::backend::ObjectStore;
use crate::cache::{CacheStats, CachedChunkStore, ChunkLocation, RetryPolicy, TryRead};
use crate::wal::SharedWal;

/// How urgently a [`ChunkRequest`] should be served relative to others
/// flushed in the same batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Maintenance work (write-back, eviction).
    Background,
    /// Speculative work the game loop does not wait for (prefetching).
    Normal,
    /// Work needed soon (prefetching just ahead of the view frontier).
    High,
    /// Work the game loop is actively waiting for (demand reads).
    Urgent,
}

/// An opaque handle identifying a submitted [`ChunkRequest`]; completions
/// carry the ticket of the request that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket#{}", self.0)
    }
}

/// One unit of work submitted to a [`ChunkService`].
///
/// # Example
///
/// ```
/// use servo_storage::{ChunkRequest, Priority};
/// use servo_types::ChunkPos;
///
/// // Demand reads default to the highest priority...
/// let read = ChunkRequest::read(ChunkPos::new(3, -1));
/// assert_eq!(read.priority(), Priority::Urgent);
/// // ...maintenance runs in the background.
/// assert_eq!(ChunkRequest::write_back().priority(), Priority::Background);
/// let prefetch = ChunkRequest::prefetch([ChunkPos::new(4, 0), ChunkPos::new(5, 0)]);
/// assert_eq!(prefetch.priority(), Priority::Normal);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkRequest {
    /// Load one chunk for the game loop. Completes with
    /// [`ChunkOutcome::Loaded`] (or [`ChunkOutcome::Missing`] when the
    /// chunk exists nowhere and must be generated). Re-submitted reads
    /// for a position already being served coalesce; the single
    /// completion carries the earliest request's ticket.
    Read {
        /// The chunk to load.
        pos: ChunkPos,
        /// Scheduling priority.
        priority: Priority,
    },
    /// Start background transfers for chunks expected to be needed soon.
    /// Each arrival completes as its own [`ChunkOutcome::Loaded`] carrying
    /// this request's ticket.
    Prefetch {
        /// The chunks to stage.
        positions: Vec<ChunkPos>,
        /// Scheduling priority.
        priority: Priority,
    },
    /// Flush dirty chunks to remote storage, visiting only dirty shards.
    /// Completes with [`ChunkOutcome::WroteBack`].
    WriteBack {
        /// Scheduling priority.
        priority: Priority,
    },
    /// Evict resident chunks not in `keep` (least recently used first,
    /// per shard), writing dirty ones back first. Completes with
    /// [`ChunkOutcome::Evicted`].
    Evict {
        /// The chunks that must stay resident.
        keep: Vec<ChunkPos>,
        /// Scheduling priority.
        priority: Priority,
    },
}

impl ChunkRequest {
    /// A demand read at [`Priority::Urgent`].
    pub fn read(pos: ChunkPos) -> Self {
        ChunkRequest::Read {
            pos,
            priority: Priority::Urgent,
        }
    }

    /// A prefetch at [`Priority::Normal`].
    pub fn prefetch<I: IntoIterator<Item = ChunkPos>>(positions: I) -> Self {
        ChunkRequest::Prefetch {
            positions: positions.into_iter().collect(),
            priority: Priority::Normal,
        }
    }

    /// A write-back pass at [`Priority::Background`].
    pub fn write_back() -> Self {
        ChunkRequest::WriteBack {
            priority: Priority::Background,
        }
    }

    /// An eviction pass at [`Priority::Background`].
    pub fn evict<I: IntoIterator<Item = ChunkPos>>(keep: I) -> Self {
        ChunkRequest::Evict {
            keep: keep.into_iter().collect(),
            priority: Priority::Background,
        }
    }

    /// The scheduling priority this request carries.
    pub fn priority(&self) -> Priority {
        match self {
            ChunkRequest::Read { priority, .. }
            | ChunkRequest::Prefetch { priority, .. }
            | ChunkRequest::WriteBack { priority }
            | ChunkRequest::Evict { priority, .. } => *priority,
        }
    }
}

/// What a completed request produced.
#[derive(Debug)]
pub enum ChunkOutcome {
    /// Chunk data became available (from a read, a prefetch arrival, or a
    /// generation backend).
    Loaded {
        /// The chunk's position.
        pos: ChunkPos,
        /// The materialised chunk.
        chunk: Box<Chunk>,
        /// The layer that served it.
        location: ChunkLocation,
        /// The latency the game loop observed for this data.
        latency: SimDuration,
    },
    /// The chunk exists nowhere; it must be generated.
    Missing {
        /// The chunk's position.
        pos: ChunkPos,
    },
    /// The request failed.
    Failed {
        /// The chunk involved, when the failure is chunk-specific.
        pos: Option<ChunkPos>,
        /// The underlying error.
        error: ServoError,
    },
    /// A write-back pass finished.
    WroteBack {
        /// Number of chunks written to remote storage.
        chunks: usize,
    },
    /// An eviction pass finished.
    Evicted {
        /// Number of chunks evicted from memory.
        chunks: usize,
    },
}

/// A finished unit of work, returned by [`ChunkService::poll`].
#[derive(Debug)]
pub struct ChunkCompletion {
    /// The ticket of the request that produced this completion.
    pub ticket: Ticket,
    /// What the request produced.
    pub outcome: ChunkOutcome,
}

/// The unified asynchronous chunk-storage interface (the paper's
/// Section III-E shape: request-scoped, completion-driven interaction with
/// stateless storage backends).
///
/// Submissions return immediately with a [`Ticket`]; results surface from
/// [`poll`](ChunkService::poll) as [`ChunkCompletion`]s once they are
/// ready. Implementations are free to execute inline
/// ([`SyncChunkService`]), on worker threads
/// ([`PipelinedChunkService`]), or in the cloud (the generation backends
/// of `servo-server` and `servo-core` implement this trait too).
///
/// # Example
///
/// ```
/// use servo_storage::{
///     BlobStore, BlobTier, ChunkOutcome, ChunkRequest, ChunkService, ObjectStore,
///     SyncChunkService,
/// };
/// use servo_simkit::SimRng;
/// use servo_types::{ChunkPos, SimTime};
/// use servo_world::Chunk;
///
/// let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
/// let pos = ChunkPos::new(0, 0);
/// remote.write("terrain/0/0", Chunk::empty(pos).to_bytes(), SimTime::ZERO).unwrap();
///
/// let mut service = SyncChunkService::new(remote, SimRng::seed(2));
/// let ticket = service.submit(ChunkRequest::read(pos));
/// let completions = service.poll(SimTime::ZERO);
/// assert!(completions.iter().any(|c| {
///     c.ticket == ticket && matches!(c.outcome, ChunkOutcome::Loaded { .. })
/// }));
/// ```
pub trait ChunkService {
    /// Submits a request, returning its ticket. Never blocks on storage.
    fn submit(&mut self, request: ChunkRequest) -> Ticket;

    /// Advances the service to virtual time `now` and returns every
    /// completion that became ready.
    fn poll(&mut self, now: SimTime) -> Vec<ChunkCompletion>;

    /// Takes the per-shard dirty deltas accumulated since the last call
    /// (from the bound world and/or ingested chunks). The drained chunks
    /// stay staged inside the service, so a following
    /// [`ChunkRequest::WriteBack`] still flushes them; draining is for
    /// observation and routing, not a way to lose work.
    fn drain_dirty(&mut self) -> Vec<ShardDelta>;

    /// Stages externally drained dirty deltas into the service's write-back
    /// working set, so the next [`ChunkRequest::WriteBack`] flushes them.
    /// This is the inverse of [`ChunkService::drain_dirty`]: a consumer that
    /// drains a world view itself (e.g. a zoned cluster running its border
    /// protocol on `GameServer::drain_owned_dirty`) routes the deltas back
    /// into its persistence service here. Services without a persistence
    /// side (generation backends) ignore staged deltas.
    fn stage_dirty(&mut self, deltas: Vec<ShardDelta>) {
        let _ = deltas;
    }

    /// Returns the recoverable write-back deltas for `shard`: positions
    /// that were staged (and write-ahead logged) but whose flush has not
    /// durably completed. A crashed zone's adopter drives its rebuild from
    /// this plus the remote store. Services without a durability log — the
    /// generation backends, or a pipeline built without
    /// `PipelinedChunkService::with_wal` — recover nothing.
    fn recover(&mut self, shard: usize) -> Vec<ShardDelta> {
        let _ = shard;
        Vec::new()
    }

    /// Number of submitted requests whose final completion has not yet been
    /// returned by [`poll`](ChunkService::poll).
    fn pending(&self) -> usize;

    /// Number of requests currently executing on the game server itself
    /// (generation backends use this to model interference with the game
    /// loop; storage and serverless services return zero).
    fn busy_local_workers(&self, now: SimTime) -> usize {
        let _ = now;
        0
    }

    /// A short name for experiment output.
    fn name(&self) -> &'static str;
}

/// A cloneable [`ObjectStore`] handle sharing one backing store between
/// the per-shard segments of a [`PipelinedChunkService`]: the store (and
/// its latency RNG) stays a single cluster-wide resource, while each
/// segment keeps its own cache and in-flight state. The lock is held only
/// for the duration of one simulated storage operation.
#[derive(Debug)]
pub struct SharedRemote<R>(Arc<Mutex<R>>);

impl<R> Clone for SharedRemote<R> {
    fn clone(&self) -> Self {
        SharedRemote(Arc::clone(&self.0))
    }
}

impl<R> SharedRemote<R> {
    fn new(inner: Arc<Mutex<R>>) -> Self {
        SharedRemote(inner)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, R> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<R: ObjectStore> ObjectStore for SharedRemote<R> {
    fn read(&mut self, key: &str, now: SimTime) -> Result<crate::backend::ReadResult, ServoError> {
        self.lock().read(key, now)
    }

    fn write(
        &mut self,
        key: &str,
        data: Vec<u8>,
        now: SimTime,
    ) -> Result<crate::backend::WriteResult, ServoError> {
        self.lock().write(key, data, now)
    }

    fn contains(&self, key: &str) -> bool {
        self.lock().contains(key)
    }

    fn len(&self) -> usize {
        self.lock().len()
    }

    fn name(&self) -> &'static str {
        "shared-remote"
    }
}

/// The state shared by the storage-backed service implementations: the
/// cache, the optionally bound world (the dirty-delta source), the staged
/// write-back working set, and the tickets waiting on in-flight transfers.
/// [`SyncChunkService`] owns one core; [`PipelinedChunkService`] owns one
/// *per world shard* so its storage workers overlap with each other.
#[derive(Debug)]
struct ServiceCore<R: ObjectStore> {
    cache: CachedChunkStore<R>,
    world: Option<Arc<dyn WorldSink>>,
    /// When set, dirty state is pulled from the bound world only for these
    /// shards: each segment of a sharded pipeline pulls its own shard, and
    /// a zone-restricted persistence service pulls only owned shards so one
    /// zone never flushes another zone's chunks.
    world_shards: Option<Vec<usize>>,
    /// Per-shard write-back working set: dirty chunks drained from the
    /// world/cache but not yet flushed to remote storage.
    staged: Vec<BTreeSet<ChunkPos>>,
    /// Tickets waiting for an in-flight transfer of a position.
    waiting: HashMap<ChunkPos, Vec<Waiter>>,
    shard_count: usize,
    /// The zone's write-ahead delta log, when durability is enabled: every
    /// staged position is appended here (with the chunk bytes captured from
    /// the bound world at staging time) before the stage is acknowledged,
    /// and truncated only once its write-back has durably landed. A leaf
    /// lock under the segment lock, like the shared remote.
    wal: Option<SharedWal>,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    ticket: Ticket,
    issued: SimTime,
    /// Prefetch waiters do not count as read joins in the cache stats.
    is_read: bool,
}

impl<R: ObjectStore> ServiceCore<R> {
    fn new(remote: R, rng: servo_simkit::SimRng) -> Self {
        let cache = CachedChunkStore::new(remote, rng);
        let shard_count = servo_world::DEFAULT_SHARDS;
        ServiceCore {
            cache,
            world: None,
            world_shards: None,
            staged: (0..shard_count).map(|_| BTreeSet::new()).collect(),
            waiting: HashMap::new(),
            shard_count,
            wal: None,
        }
    }

    /// Stages one externally drained position for the next write-back,
    /// write-ahead-logging it first when a WAL is attached.
    fn stage(&mut self, pos: ChunkPos) {
        self.log_staged(pos);
        self.staged[shard_index(pos, self.shard_count)].insert(pos);
    }

    /// Appends `pos`'s current world bytes to the WAL. Every path that adds
    /// a position to the staged set must come through here (or through
    /// [`ServiceCore::stage`]) so nothing enters the write-back working set
    /// without first being recoverable. Positions the bound world no longer
    /// holds are skipped — there are no bytes left to make durable.
    fn log_staged(&mut self, pos: ChunkPos) {
        if let (Some(wal), Some(world)) = (&self.wal, &self.world) {
            if let Some(bytes) = world.chunk_bytes(pos) {
                wal.append(pos, bytes);
            }
        }
    }

    /// Takes the staged write-back set of one shard (the migration-handoff
    /// primitive; see `PipelinedChunkService::take_staged_shard`).
    fn take_staged_shard(&mut self, shard: usize) -> Vec<ChunkPos> {
        match self.staged.get_mut(shard) {
            Some(set) => std::mem::take(set).into_iter().collect(),
            None => Vec::new(),
        }
    }

    fn set_shard_count(&mut self, shard_count: usize) {
        let shard_count = shard_count.clamp(1, 1 << 10).next_power_of_two();
        self.shard_count = shard_count;
        let old: Vec<BTreeSet<ChunkPos>> = std::mem::take(&mut self.staged);
        self.staged = (0..shard_count).map(|_| BTreeSet::new()).collect();
        for set in old {
            for pos in set {
                self.staged[shard_index(pos, shard_count)].insert(pos);
            }
        }
        self.cache.set_shard_batching(shard_count);
    }

    /// Pulls dirty chunks from the bound world and the cache into the
    /// staged write-back set, returning one merged delta per shard that
    /// contributed anything new.
    fn absorb_dirty(&mut self) -> Vec<ShardDelta> {
        let mut merged: HashMap<usize, (u64, BTreeSet<ChunkPos>)> = HashMap::new();
        if let Some(world) = &self.world {
            let world_deltas = match &self.world_shards {
                Some(shards) => world.drain_dirty_shards(shards),
                None => world.drain_dirty(),
            };
            for delta in world_deltas {
                // World shards and service shards use the same hash, but may
                // differ in count; re-bucket defensively.
                for pos in delta.chunks {
                    let shard = shard_index(pos, self.shard_count);
                    let entry = merged.entry(shard).or_insert_with(|| (0, BTreeSet::new()));
                    entry.0 = entry.0.max(delta.epoch);
                    entry.1.insert(pos);
                }
            }
        }
        for delta in self.cache.take_dirty_deltas() {
            for pos in delta.chunks {
                let shard = shard_index(pos, self.shard_count);
                let entry = merged.entry(shard).or_insert_with(|| (0, BTreeSet::new()));
                entry.0 = entry.0.max(delta.epoch);
                entry.1.insert(pos);
            }
        }
        let mut deltas: Vec<ShardDelta> = merged
            .into_iter()
            .map(|(shard, (epoch, set))| {
                for &pos in &set {
                    self.log_staged(pos);
                    self.staged[shard].insert(pos);
                }
                ShardDelta {
                    shard,
                    epoch,
                    chunks: set.into_iter().collect(),
                }
            })
            .collect();
        deltas.sort_by_key(|d| d.shard);
        deltas
    }

    /// Executes a read with blocking semantics: a miss pays the full remote
    /// latency inline (the [`SyncChunkService`] baseline).
    fn exec_read_sync(&mut self, ticket: Ticket, pos: ChunkPos, now: SimTime) -> ChunkCompletion {
        let outcome = match self.cache.read(pos, now) {
            Ok(read) => match read.snapshot.restore() {
                Ok(chunk) => ChunkOutcome::Loaded {
                    pos,
                    chunk: Box::new(chunk),
                    location: read.location,
                    latency: read.latency,
                },
                Err(error) => ChunkOutcome::Failed {
                    pos: Some(pos),
                    error,
                },
            },
            Err(ServoError::NotFound { .. }) => ChunkOutcome::Missing { pos },
            Err(error) => ChunkOutcome::Failed {
                pos: Some(pos),
                error,
            },
        };
        ChunkCompletion { ticket, outcome }
    }

    /// Executes a read with asynchronous semantics: a miss issues a
    /// background transfer and the completion is deferred to the poll that
    /// observes the arrival (the [`PipelinedChunkService`] path).
    fn exec_read_async(
        &mut self,
        ticket: Ticket,
        pos: ChunkPos,
        now: SimTime,
    ) -> Option<ChunkCompletion> {
        match self.cache.try_read(pos, now) {
            Ok(TryRead::Ready(read)) => Some(match read.snapshot.restore() {
                Ok(chunk) => ChunkCompletion {
                    ticket,
                    outcome: ChunkOutcome::Loaded {
                        pos,
                        chunk: Box::new(chunk),
                        location: read.location,
                        latency: read.latency,
                    },
                },
                Err(error) => ChunkCompletion {
                    ticket,
                    outcome: ChunkOutcome::Failed {
                        pos: Some(pos),
                        error,
                    },
                },
            }),
            Ok(TryRead::InFlight { .. }) => {
                // Duplicate reads for a position already being read
                // coalesce: consumers like the game loop re-submit every
                // missing chunk every tick, and the arrival completes with
                // the earliest read's ticket. Without this, every re-ask
                // would add a waiter, multiplying arrival completions,
                // chunk decodes, and join stats for one logical read.
                let waiters = self.waiting.entry(pos).or_default();
                if !waiters.iter().any(|w| w.is_read) {
                    waiters.push(Waiter {
                        ticket,
                        issued: now,
                        is_read: true,
                    });
                }
                None
            }
            Err(ServoError::NotFound { .. }) => Some(ChunkCompletion {
                ticket,
                outcome: ChunkOutcome::Missing { pos },
            }),
            Err(error) => Some(ChunkCompletion {
                ticket,
                outcome: ChunkOutcome::Failed {
                    pos: Some(pos),
                    error,
                },
            }),
        }
    }

    fn exec_prefetch(&mut self, ticket: Ticket, positions: &[ChunkPos], now: SimTime) {
        self.cache.prefetch(positions.iter().copied(), now);
        for &pos in positions {
            if self.cache.is_in_flight(pos) {
                let waiters = self.waiting.entry(pos).or_default();
                if !waiters.iter().any(|w| !w.is_read) {
                    waiters.push(Waiter {
                        ticket,
                        issued: now,
                        is_read: false,
                    });
                }
            }
        }
    }

    fn exec_write_back(&mut self, now: SimTime) -> usize {
        self.absorb_dirty();
        let mut written = 0;
        for shard in 0..self.shard_count {
            if self.staged[shard].is_empty() {
                continue;
            }
            let positions: Vec<ChunkPos> = std::mem::take(&mut self.staged[shard])
                .into_iter()
                .collect();
            // A chunk edited in the bound world may have a stale (or no)
            // snapshot in the cache: refresh from the world first.
            if let Some(world) = self.world.clone() {
                for &pos in &positions {
                    if let Some(snapshot) = world.chunk_snapshot(pos) {
                        let _ = self.cache.put(snapshot, now);
                    }
                }
                // The refresh re-marked these chunks dirty in the cache;
                // absorb that dirt immediately so it is not double-reported.
                for delta in self.cache.take_dirty_deltas() {
                    for pos in delta.chunks {
                        if !positions.contains(&pos) {
                            self.log_staged(pos);
                            self.staged[shard_index(pos, self.shard_count)].insert(pos);
                        }
                    }
                }
            }
            // Record, per position, the newest WAL sequence covered by the
            // snapshot this pass is about to flush. Appends racing in after
            // this point carry higher sequences and survive truncation.
            let marks: Vec<(ChunkPos, Option<u64>)> = match &self.wal {
                Some(wal) => positions.iter().map(|&p| (p, wal.latest_seq(p))).collect(),
                None => Vec::new(),
            };
            let flushed = self.cache.write_back(&positions, now);
            if let Some(wal) = &self.wal {
                for &(pos, mark) in &marks {
                    if let Some(seq) = mark {
                        if flushed.contains(&pos) {
                            wal.truncate(pos, seq);
                        }
                    }
                }
            }
            written += flushed.len();
        }
        written
    }

    fn exec_evict(&mut self, keep: &[ChunkPos], now: SimTime) -> usize {
        let keep: std::collections::HashSet<ChunkPos> = keep.iter().copied().collect();
        self.cache.evict_except(&keep, now)
    }

    /// Completes transfers that arrived by `now` and resolves every ticket
    /// waiting on them.
    fn harvest(&mut self, now: SimTime, out: &mut Vec<ChunkCompletion>) -> usize {
        let arrived = self.cache.poll_arrived(now);
        let mut reads_resolved = 0;
        for pos in arrived {
            let Some(waiters) = self.waiting.remove(&pos) else {
                continue;
            };
            for waiter in waiters {
                let snapshot = self.cache.snapshot(pos);
                let wait = now.saturating_since(waiter.issued);
                if waiter.is_read {
                    self.cache.record_async_join(wait);
                    reads_resolved += 1;
                }
                let outcome = match snapshot.as_ref().map(ChunkSnapshot::restore) {
                    Some(Ok(chunk)) => ChunkOutcome::Loaded {
                        pos,
                        chunk: Box::new(chunk),
                        location: ChunkLocation::PrefetchInFlight,
                        latency: wait,
                    },
                    Some(Err(error)) => ChunkOutcome::Failed {
                        pos: Some(pos),
                        error,
                    },
                    None => ChunkOutcome::Failed {
                        pos: Some(pos),
                        error: ServoError::storage_failed("arrived chunk vanished"),
                    },
                };
                out.push(ChunkCompletion {
                    ticket: waiter.ticket,
                    outcome,
                });
            }
        }
        reads_resolved
    }

    fn waiting_reads(&self) -> usize {
        self.waiting
            .values()
            .flatten()
            .filter(|w| w.is_read)
            .count()
    }
}

/// The baseline [`ChunkService`]: a thin adapter over [`CachedChunkStore`]
/// that executes every request inline on the calling thread. A read that
/// misses all cache layers resolves the remote fetch synchronously —
/// tick-visible latency includes the full transfer, exactly like the
/// pre-redesign blocking API. Use it where determinism and simplicity beat
/// concurrency (tests, single-threaded experiments, the latency-model
/// benches).
#[derive(Debug)]
pub struct SyncChunkService<R: ObjectStore> {
    core: ServiceCore<R>,
    tickets: u64,
    now: SimTime,
    ready: VecDeque<ChunkCompletion>,
}

impl<R: ObjectStore> SyncChunkService<R> {
    /// Creates a service in front of `remote`; the local-disk layer gets
    /// its own latency stream from `rng`.
    pub fn new(remote: R, rng: servo_simkit::SimRng) -> Self {
        SyncChunkService {
            core: ServiceCore::new(remote, rng),
            tickets: 0,
            now: SimTime::ZERO,
            ready: VecDeque::new(),
        }
    }

    /// Binds the world whose per-shard dirty deltas feed
    /// [`ChunkService::drain_dirty`] and write-back, aligning the service's
    /// shard grouping with the world's shard count.
    pub fn with_world<W: WorldSink + 'static>(mut self, world: Arc<W>) -> Self {
        self.core.set_shard_count(world.shard_count());
        self.core.world = Some(world);
        self
    }

    /// Sets the shard count used for batching, returning the service.
    pub fn with_shard_batching(mut self, shard_count: usize) -> Self {
        self.core.set_shard_count(shard_count);
        self
    }

    /// Attaches a write-ahead delta log: staged positions are logged (with
    /// their world bytes) before the stage is acknowledged and truncated on
    /// durable write-back. Attach after binding the world — the log reads
    /// chunk bytes from it.
    pub fn with_wal(mut self, wal: SharedWal) -> Self {
        self.core.wal = Some(wal);
        self
    }

    /// Sets the bounded retry-and-backoff policy for transient remote
    /// failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.core.cache.set_retry(retry);
        self
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// Number of chunks resident in the in-memory cache layer.
    pub fn resident_chunks(&self) -> usize {
        self.core.cache.resident_chunks()
    }

    /// Access to the remote backend (e.g. to seed it with terrain).
    pub fn remote_mut(&mut self) -> &mut R {
        self.core.cache.remote_mut()
    }

    /// Ingests a freshly generated or modified chunk snapshot, marking it
    /// dirty for the next [`ChunkRequest::WriteBack`]. This is the only
    /// mutation that does not flow through [`ChunkService::submit`]: it is
    /// the boundary where new data *enters* the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] if the local cache copy cannot
    /// be written.
    pub fn put(&mut self, snapshot: ChunkSnapshot, now: SimTime) -> Result<(), ServoError> {
        self.core.cache.put(snapshot, now)
    }

    fn next_ticket(&mut self) -> Ticket {
        self.tickets += 1;
        Ticket(self.tickets)
    }
}

impl<R: ObjectStore> ChunkService for SyncChunkService<R> {
    fn submit(&mut self, request: ChunkRequest) -> Ticket {
        let ticket = self.next_ticket();
        let now = self.now;
        match request {
            ChunkRequest::Read { pos, .. } => {
                let completion = self.core.exec_read_sync(ticket, pos, now);
                self.ready.push_back(completion);
            }
            ChunkRequest::Prefetch { positions, .. } => {
                self.core.exec_prefetch(ticket, &positions, now);
            }
            ChunkRequest::WriteBack { .. } => {
                let chunks = self.core.exec_write_back(now);
                self.ready.push_back(ChunkCompletion {
                    ticket,
                    outcome: ChunkOutcome::WroteBack { chunks },
                });
            }
            ChunkRequest::Evict { keep, .. } => {
                let chunks = self.core.exec_evict(&keep, now);
                self.ready.push_back(ChunkCompletion {
                    ticket,
                    outcome: ChunkOutcome::Evicted { chunks },
                });
            }
        }
        ticket
    }

    fn poll(&mut self, now: SimTime) -> Vec<ChunkCompletion> {
        self.now = now;
        let mut out: Vec<ChunkCompletion> = self.ready.drain(..).collect();
        self.core.harvest(now, &mut out);
        out
    }

    fn drain_dirty(&mut self) -> Vec<ShardDelta> {
        self.core.absorb_dirty()
    }

    fn stage_dirty(&mut self, deltas: Vec<ShardDelta>) {
        for delta in deltas {
            for pos in delta.chunks {
                self.core.stage(pos);
            }
        }
    }

    fn recover(&mut self, shard: usize) -> Vec<ShardDelta> {
        match &self.core.wal {
            Some(wal) => wal.delta(shard).into_iter().collect(),
            None => Vec::new(),
        }
    }

    fn pending(&self) -> usize {
        self.ready.len() + self.core.waiting.values().map(Vec::len).sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "chunks-sync"
    }
}

/// A job handed to the pipelined service's worker pool.
enum Job {
    /// One shard segment's batch of read/prefetch requests, executed in
    /// priority order under that segment's lock only.
    Batch {
        segment: usize,
        now: SimTime,
        requests: Vec<(Ticket, ChunkRequest)>,
    },
    /// Cross-shard maintenance (write-back, eviction), executed by visiting
    /// the segments one at a time in ascending index order.
    Control {
        now: SimTime,
        requests: Vec<(Ticket, ChunkRequest)>,
    },
    /// Complete transfers that arrived by `now` and resolve their waiters,
    /// one segment at a time.
    Harvest { now: SimTime },
}

struct PipeShared<R: ObjectStore> {
    /// One service core per world shard. Workers on different shards run
    /// concurrently; the only cross-segment resource is the shared remote
    /// store (its own short-lived lock). Lock order: at most ONE segment
    /// lock is held at a time (cross-shard jobs visit segments in ascending
    /// order, releasing each before the next), and the remote/`done_tx`
    /// locks are leaves taken under a segment lock — so the hierarchy is
    /// segment → {remote | done_tx} and deadlock-free.
    segments: Vec<Mutex<ServiceCore<SharedRemote<R>>>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Submitted requests not yet executed by a worker (deferred reads move
    /// to the segments' waiting maps and are tracked there instead).
    unexecuted: AtomicUsize,
    /// Whether a harvest job is already queued (polls coalesce them).
    harvest_queued: AtomicBool,
    /// Thread quota of the worker pool. Fixed pools pin it to the pool
    /// size; elastic pools move it with the backlog, and idle workers
    /// above the quota retire themselves.
    worker_quota: AtomicUsize,
    /// Threads currently in the pool (spawned and not retired).
    live_workers: AtomicUsize,
    /// The newest virtual time any poll has announced (micros); queued
    /// harvest jobs catch up to it instead of using their enqueue-time
    /// timestamp.
    latest_now: AtomicU64,
    done_tx: Mutex<Sender<ChunkCompletion>>,
}

impl<R: ObjectStore> PipeShared<R> {
    fn publish(&self, out: Vec<ChunkCompletion>) {
        if out.is_empty() {
            return;
        }
        let tx = self.done_tx.lock().unwrap_or_else(|e| e.into_inner());
        for completion in out {
            // The receiver only disappears during teardown.
            let _ = tx.send(completion);
        }
    }

    fn segment(&self, index: usize) -> std::sync::MutexGuard<'_, ServiceCore<SharedRemote<R>>> {
        self.segments[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Retires this worker if the pool is above its quota. Only called
    /// with the queue drained (under the queue lock), so a retiring worker
    /// never strands a queued job.
    fn try_retire(&self) -> bool {
        let quota = self.worker_quota.load(Ordering::Acquire);
        let mut live = self.live_workers.load(Ordering::Acquire);
        while live > quota {
            match self.live_workers.compare_exchange(
                live,
                live - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => live = actual,
            }
        }
        false
    }

    fn run_worker(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    // The queue is drained: a pool above its quota retires
                    // the surplus worker instead of sleeping.
                    if self.try_retire() {
                        return;
                    }
                    queue = self
                        .available
                        .wait(queue)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            match job {
                Job::Batch {
                    segment,
                    now,
                    mut requests,
                } => {
                    let mut out = Vec::new();
                    let mut executed = 0usize;
                    {
                        let mut core = self.segment(segment);
                        // Stable by descending priority: urgent reads
                        // first, prefetches after.
                        requests.sort_by_key(|(_, r)| std::cmp::Reverse(r.priority()));
                        for (ticket, request) in requests {
                            executed += 1;
                            match request {
                                ChunkRequest::Read { pos, .. } => {
                                    if let Some(completion) = core.exec_read_async(ticket, pos, now)
                                    {
                                        out.push(completion);
                                    }
                                }
                                ChunkRequest::Prefetch { positions, .. } => {
                                    core.exec_prefetch(ticket, &positions, now);
                                }
                                // Maintenance never lands on a shard lane.
                                ChunkRequest::WriteBack { .. } | ChunkRequest::Evict { .. } => {}
                            }
                        }
                        // Publish results while still holding the segment
                        // lock: once a caller observes this segment
                        // quiescent (`pending()` and `transfers_due()` take
                        // the segment locks), every completion it produced
                        // must already be in the channel.
                        self.publish(out);
                    }
                    self.unexecuted.fetch_sub(executed, Ordering::AcqRel);
                }
                Job::Control { now, mut requests } => {
                    requests.sort_by_key(|(_, r)| std::cmp::Reverse(r.priority()));
                    let executed = requests.len();
                    let mut out = Vec::new();
                    for (ticket, request) in requests {
                        match request {
                            ChunkRequest::WriteBack { .. } => {
                                let mut chunks = 0;
                                for segment in 0..self.segments.len() {
                                    chunks += self.segment(segment).exec_write_back(now);
                                }
                                out.push(ChunkCompletion {
                                    ticket,
                                    outcome: ChunkOutcome::WroteBack { chunks },
                                });
                            }
                            ChunkRequest::Evict { keep, .. } => {
                                let mut chunks = 0;
                                for segment in 0..self.segments.len() {
                                    chunks += self.segment(segment).exec_evict(&keep, now);
                                }
                                out.push(ChunkCompletion {
                                    ticket,
                                    outcome: ChunkOutcome::Evicted { chunks },
                                });
                            }
                            ChunkRequest::Read { .. } | ChunkRequest::Prefetch { .. } => {}
                        }
                    }
                    // Publish before the pending count drops so a drain
                    // loop that sees `pending() == 0` finds the completions
                    // already in the channel.
                    self.publish(out);
                    self.unexecuted.fetch_sub(executed, Ordering::AcqRel);
                }
                Job::Harvest { now } => {
                    self.harvest_queued.store(false, Ordering::Release);
                    // Harvest at the freshest time any poll has announced:
                    // the job may have waited in the queue while virtual
                    // time moved on.
                    let newest = SimTime::from_micros(
                        self.latest_now.load(Ordering::Acquire).max(now.as_micros()),
                    );
                    for segment in 0..self.segments.len() {
                        let mut core = self.segment(segment);
                        let mut out = Vec::new();
                        core.harvest(newest, &mut out);
                        // Under the segment lock, as for batches.
                        self.publish(out);
                    }
                }
            }
        }
    }
}

/// The asynchronous [`ChunkService`]: remote transfers and storage
/// maintenance run on a pool of worker threads, and submissions are
/// batched per owning world shard before they are handed to the pool, so
/// the tick path pays neither transfer cost nor per-request dispatch cost.
///
/// The workers drain jobs from one queue and mutate *per-shard core
/// segments*, each behind its own mutex (the submission lanes were already
/// per-shard): workers on different shards overlap with each other, not
/// just with the tick thread. The only cross-segment resources are the
/// shared remote store (one short-lived leaf lock around each simulated
/// storage operation, so the store and its latency stream stay one
/// cluster-wide resource) and the completion channel. Cross-shard
/// maintenance (write-back, eviction) visits the segments one at a time in
/// ascending index order, never holding two segment locks at once.
///
/// Reads that miss the in-memory layer become background transfers: the
/// completion arrives from a later [`poll`](ChunkService::poll) once the
/// simulated transfer time has elapsed, exactly like a prefetch join. The
/// final cache/world/remote state is identical to what
/// [`SyncChunkService`] produces for the same request stream (asserted by
/// the `service_differential` test suite); only *where* the work executes
/// — and therefore the tick-visible cost — differs.
pub struct PipelinedChunkService<R: ObjectStore + Send + 'static> {
    shared: Arc<PipeShared<R>>,
    done_rx: Receiver<ChunkCompletion>,
    /// Per-shard lanes of not-yet-flushed read/prefetch submissions.
    lanes: Vec<Vec<(Ticket, ChunkRequest)>>,
    /// Write-back / evict lane (not tied to one shard).
    control: Vec<(Ticket, ChunkRequest)>,
    tickets: u64,
    now: SimTime,
    shard_count: usize,
    /// The shared remote store handle (also held by every segment core).
    remote: Arc<Mutex<R>>,
    /// Base RNG the per-segment local-disk latency streams derive from.
    disk_rng: servo_simkit::SimRng,
    /// Worker threads, spawned lazily on first use so the world can still
    /// be bound (rebuilding the segments) right after construction.
    workers: Vec<std::thread::JoinHandle<()>>,
    workers_target: usize,
    /// The machine's available parallelism — the hard cap on live threads.
    thread_cap: usize,
    /// Backlog-driven autoscaler of the thread quota (`None` = fixed pool).
    elastic: Option<Autoscaler>,
    /// The zone's write-ahead delta log, re-applied to the segments on
    /// every rebind. `None` disables durability logging.
    wal: Option<SharedWal>,
    /// Retry policy re-applied to the segment caches on every rebind.
    retry: RetryPolicy,
}

impl<R: ObjectStore + Send + 'static> std::fmt::Debug for PipelinedChunkService<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedChunkService")
            .field("workers", &self.workers_target)
            .field("segments", &self.shard_count)
            .field("pending", &self.pending())
            .finish()
    }
}

impl<R: ObjectStore + Send + 'static> PipelinedChunkService<R> {
    /// Creates a service in front of `remote` with `workers` transfer
    /// threads (clamped to at least one). Size the pool with
    /// `ServerConfig::with_parallelism` at the deployment layer.
    pub fn new(remote: R, rng: servo_simkit::SimRng, workers: usize) -> Self {
        let (done_tx, done_rx) = channel();
        let remote = Arc::new(Mutex::new(remote));
        let shard_count = servo_world::DEFAULT_SHARDS;
        // Clamp the pool to the machine's parallelism: with the core
        // sharded, every worker is genuinely runnable at once, and on
        // a box with fewer cores than requested workers the surplus
        // threads only preempt the tick thread (measured as multi-ms
        // p99 spikes in `storage_async` on 1-core containers) without
        // adding any overlap.
        let thread_cap = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let workers_target = workers.max(1).min(thread_cap);
        let shared = Arc::new(PipeShared {
            segments: Self::build_segments(&remote, &rng, shard_count, None, None),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            unexecuted: AtomicUsize::new(0),
            harvest_queued: AtomicBool::new(false),
            worker_quota: AtomicUsize::new(workers_target),
            live_workers: AtomicUsize::new(0),
            latest_now: AtomicU64::new(0),
            done_tx: Mutex::new(done_tx),
        });
        PipelinedChunkService {
            shared,
            done_rx,
            lanes: (0..shard_count).map(|_| Vec::new()).collect(),
            control: Vec::new(),
            tickets: 0,
            now: SimTime::ZERO,
            shard_count,
            remote,
            disk_rng: rng,
            workers: Vec::new(),
            workers_target,
            thread_cap,
            elastic: None,
            wal: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Makes the worker pool elastic: each poll drives `config`'s
    /// autoscaler from the backlog of not-yet-executed requests, raising
    /// the thread quota under load and letting idle surplus workers retire
    /// once the queue drains. The applied quota is clamped to the
    /// machine's available parallelism (the autoscaler's *decisions* — its
    /// stats — are not, so they stay machine-independent). Simulated
    /// outcomes are unaffected: the pool size only moves where wall-clock
    /// work runs.
    ///
    /// Call before the first submit/poll (the fixed pool is the default).
    pub fn with_elastic_workers(mut self, config: AutoscalerConfig) -> Self {
        assert!(
            self.workers.is_empty(),
            "configure elasticity before submitting work to the service"
        );
        self.workers_target = config.min_workers.max(1).min(self.thread_cap);
        self.shared
            .worker_quota
            .store(self.workers_target, Ordering::Release);
        self.elastic = Some(Autoscaler::new(config));
        self
    }

    /// Attaches a write-ahead delta log shared by every shard segment:
    /// staged positions are logged (with the chunk bytes read from the
    /// bound world) before the stage is acknowledged, and truncated once
    /// their write-back durably lands. The caller keeps a clone of the
    /// handle — the log models a durable device that outlives this
    /// pipeline, which is what crash recovery replays. Attach *after*
    /// `with_world`/`with_world_shards` (rebinding rebuilds the segments).
    pub fn with_wal(mut self, wal: SharedWal) -> Self {
        for segment in 0..self.shared.segments.len() {
            self.shared.segment(segment).wal = Some(wal.clone());
        }
        self.wal = Some(wal);
        self
    }

    /// The attached write-ahead log handle, if durability is enabled.
    pub fn wal(&self) -> Option<SharedWal> {
        self.wal.clone()
    }

    /// Attaches or detaches the write-ahead log in place (the non-builder
    /// form of [`PipelinedChunkService::with_wal`]; `None` disables
    /// durability — the configuration the failure ablation's no-WAL arms
    /// measure the data-loss window of).
    pub fn set_wal(&mut self, wal: Option<SharedWal>) {
        for segment in 0..self.shared.segments.len() {
            self.shared.segment(segment).wal = wal.clone();
        }
        self.wal = wal;
    }

    /// Sets the bounded retry-and-backoff policy the workers apply to
    /// transient remote failures (see `RetryPolicy`).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.set_retry(retry);
        self
    }

    /// In-place form of [`PipelinedChunkService::with_retry`], for callers
    /// that only hold the built pipeline (e.g. a cluster re-configuring an
    /// attached persistence service).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        for segment in 0..self.shared.segments.len() {
            self.shared.segment(segment).cache.set_retry(retry);
        }
        self.retry = retry;
    }

    /// The *staged* (drained-but-not-yet-flushed) write-back positions of
    /// world shard `shard`, sorted by `(x, z)`, without removing them — the
    /// inspection half of [`PipelinedChunkService::take_staged_shard`].
    /// Crash accounting reads this to size the data-loss window: every
    /// staged position not covered by the WAL is lost with the zone's
    /// memory.
    pub fn staged_positions(&self, shard: usize) -> Vec<ChunkPos> {
        if shard >= self.shared.segments.len() {
            return Vec::new();
        }
        let mut positions: Vec<ChunkPos> = self
            .shared
            .segment(shard)
            .staged
            .get(shard)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        positions.sort_by_key(|p| (p.x, p.z));
        positions
    }

    /// Builds one service core per shard segment, each with its own derived
    /// local-disk latency stream and (when bound) a pull view onto exactly
    /// its own world shard — intersected with `owned` when the service
    /// persists only a zone's slice of the world.
    fn build_segments(
        remote: &Arc<Mutex<R>>,
        rng: &servo_simkit::SimRng,
        shard_count: usize,
        world: Option<&Arc<dyn WorldSink>>,
        owned: Option<&[usize]>,
    ) -> Vec<Mutex<ServiceCore<SharedRemote<R>>>> {
        (0..shard_count)
            .map(|shard| {
                let mut core = ServiceCore::new(
                    SharedRemote::new(Arc::clone(remote)),
                    rng.substream_indexed("segment", shard as u64),
                );
                core.set_shard_count(shard_count);
                if let Some(world) = world {
                    core.world = Some(Arc::clone(world));
                    let pulls = match owned {
                        Some(owned) if !owned.contains(&shard) => Vec::new(),
                        _ => vec![shard],
                    };
                    core.world_shards = Some(pulls);
                }
                Mutex::new(core)
            })
            .collect()
    }

    /// Rebuilds the segments for a newly bound world. Only legal before the
    /// workers have spawned (i.e. before the first submit/poll), which is
    /// when the builder-style `with_world*` calls run.
    fn rebind(&mut self, world: Arc<dyn WorldSink>, owned: Option<Vec<usize>>) {
        assert!(
            self.workers.is_empty(),
            "bind the world before submitting work to the service"
        );
        let shard_count = world.shard_count();
        let segments = Self::build_segments(
            &self.remote,
            &self.disk_rng,
            shard_count,
            Some(&world),
            owned.as_deref(),
        );
        let shared = Arc::get_mut(&mut self.shared)
            .expect("no worker holds the shared state before the first spawn");
        shared.segments = segments;
        self.shard_count = shard_count;
        self.lanes = (0..shard_count).map(|_| Vec::new()).collect();
        // Re-apply the durability log and retry policy to the fresh
        // segments, so builder-call order cannot silently drop them.
        for segment in 0..self.shared.segments.len() {
            let mut core = self.shared.segment(segment);
            core.wal = self.wal.clone();
            core.cache.set_retry(self.retry);
        }
    }

    /// Binds the world whose per-shard dirty deltas feed
    /// [`ChunkService::drain_dirty`] and write-back, aligning the service's
    /// shard segmentation with the world's shard count.
    pub fn with_world<W: WorldSink + 'static>(mut self, world: Arc<W>) -> Self {
        self.rebind(world, None);
        self
    }

    /// Like [`PipelinedChunkService::with_world`], but pulls dirty state
    /// only for the given world shards — the persistence view of one zone
    /// of a sharded cluster, which must never flush chunks another zone
    /// owns.
    pub fn with_world_shards<W: WorldSink + 'static>(
        mut self,
        world: Arc<W>,
        owned: &[usize],
    ) -> Self {
        self.rebind(world, Some(owned.to_vec()));
        self
    }

    fn ensure_workers(&mut self) {
        if self.workers.is_empty() {
            self.spawn_up_to(self.workers_target);
        }
    }

    /// Spawns workers until `target` threads are live (retired threads'
    /// join handles stay in `workers` for teardown; only `live_workers`
    /// counts the pool).
    fn spawn_up_to(&mut self, target: usize) {
        while self.shared.live_workers.load(Ordering::Acquire) < target {
            let index = self.workers.len();
            self.shared.live_workers.fetch_add(1, Ordering::AcqRel);
            let shared = Arc::clone(&self.shared);
            self.workers.push(
                std::thread::Builder::new()
                    .name(format!("chunk-worker-{index}"))
                    .spawn(move || shared.run_worker())
                    .expect("spawning a chunk worker must succeed"),
            );
        }
    }

    /// Cache effectiveness counters, summed over the shard segments
    /// (briefly locks each segment in turn).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for segment in 0..self.shared.segments.len() {
            total.merge(&self.shared.segment(segment).cache.stats());
        }
        total
    }

    /// Number of chunks resident in the in-memory cache layer, summed over
    /// the shard segments.
    pub fn resident_chunks(&self) -> usize {
        (0..self.shared.segments.len())
            .map(|segment| self.shared.segment(segment).cache.resident_chunks())
            .sum()
    }

    /// Number of simulated transfers currently in flight, summed over the
    /// shard segments.
    pub fn transfers_in_flight(&self) -> usize {
        (0..self.shared.segments.len())
            .map(|segment| self.shared.segment(segment).cache.transfers_in_flight())
            .sum()
    }

    /// Number of in-flight transfers due by `now` whose arrival has not
    /// been harvested yet, summed over the shard segments. Tests and
    /// benches use this to detect quiescence at a given virtual time.
    pub fn transfers_due(&self, now: SimTime) -> usize {
        (0..self.shared.segments.len())
            .map(|segment| self.shared.segment(segment).cache.transfers_due(now))
            .sum()
    }

    /// Number of worker threads the pool starts with: the requested size
    /// clamped to the machine's available parallelism (elastic pools grow
    /// and shrink from here).
    pub fn worker_count(&self) -> usize {
        self.workers_target
    }

    /// The current thread quota of the pool (moves with the backlog when
    /// the pool is elastic, pinned to the pool size otherwise).
    pub fn worker_quota(&self) -> usize {
        self.shared.worker_quota.load(Ordering::Acquire)
    }

    /// Threads currently live in the pool.
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::Acquire)
    }

    /// Lifetime counters of the worker autoscaler, or `None` for a fixed
    /// pool. The counters record the scaler's *decisions*, unclamped by
    /// the machine's core count, so assertions on them are portable to
    /// single-core CI runners.
    pub fn autoscaler_stats(&self) -> Option<AutoscalerStats> {
        self.elastic.as_ref().map(|scaler| scaler.stats())
    }

    /// Runs `f` with the remote backend (briefly locks the shared store;
    /// e.g. to seed terrain before an experiment).
    pub fn with_remote<T>(&self, f: impl FnOnce(&mut R) -> T) -> T {
        let mut remote = self.remote.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut remote)
    }

    /// Removes and returns every *staged* (drained-but-not-yet-flushed)
    /// write-back position belonging to world shard `shard`, across all
    /// segments, sorted by `(x, z)`.
    ///
    /// This is the quiesce half of a shard-migration handoff: when a zoned
    /// cluster moves a shard to another zone, the source zone's pipeline
    /// must stop owing those chunks a flush — the cluster takes them here
    /// and `stage_dirty`s them into the destination zone's pipeline, which
    /// owns the write-back obligation from then on. Positions already
    /// snapshotted by an in-flight write-back pass are flushed by the
    /// source as usual (a harmless duplicate write); only the not-yet
    /// started remainder is handed over.
    pub fn take_staged_shard(&mut self, shard: usize) -> Vec<ChunkPos> {
        // Every staging path routes a position to segment
        // `shard_index(pos, shard_count)` and buckets it at the same index
        // inside the segment (segments and buckets share one shard count),
        // so shard `s`'s staged positions live only in segment `s` — one
        // segment lock suffices.
        if shard >= self.shared.segments.len() {
            return Vec::new();
        }
        let mut positions = self.shared.segment(shard).take_staged_shard(shard);
        positions.sort_by_key(|p| (p.x, p.z));
        // The write-back obligation (and with it the durability obligation)
        // moves to whoever receives the handoff: drop this pipeline's WAL
        // records for the taken positions, or a later crash here would
        // replay chunks the zone no longer owns.
        if let Some(wal) = &self.wal {
            for &pos in &positions {
                if let Some(seq) = wal.latest_seq(pos) {
                    wal.truncate(pos, seq);
                }
            }
        }
        positions
    }

    fn next_ticket(&mut self) -> Ticket {
        self.tickets += 1;
        Ticket(self.tickets)
    }

    fn enqueue(&self, job: Job) {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(job);
        drop(queue);
        // One job, one worker: waking the whole pool for every enqueue
        // stampedes the queue lock (and, on small machines, the
        // scheduler). Sleeping workers each consume one job, so one
        // wake-up per job keeps the pool exactly as busy as the backlog.
        self.shared.available.notify_one();
    }
}

impl<R: ObjectStore + Send + 'static> ChunkService for PipelinedChunkService<R> {
    fn submit(&mut self, request: ChunkRequest) -> Ticket {
        let ticket = self.next_ticket();
        match request {
            ChunkRequest::Read { pos, priority } => {
                self.lanes[shard_index(pos, self.shard_count)]
                    .push((ticket, ChunkRequest::Read { pos, priority }));
                self.shared.unexecuted.fetch_add(1, Ordering::AcqRel);
            }
            ChunkRequest::Prefetch {
                positions,
                priority,
            } => {
                // Split per owning shard so each sub-batch lands on the
                // shard lane that will receive the data.
                let mut by_shard: Vec<Vec<ChunkPos>> =
                    (0..self.shard_count).map(|_| Vec::new()).collect();
                for pos in positions {
                    by_shard[shard_index(pos, self.shard_count)].push(pos);
                }
                for (shard, positions) in by_shard.into_iter().enumerate() {
                    if positions.is_empty() {
                        continue;
                    }
                    self.lanes[shard].push((
                        ticket,
                        ChunkRequest::Prefetch {
                            positions,
                            priority,
                        },
                    ));
                    self.shared.unexecuted.fetch_add(1, Ordering::AcqRel);
                }
            }
            request @ (ChunkRequest::WriteBack { .. } | ChunkRequest::Evict { .. }) => {
                self.control.push((ticket, request));
                self.shared.unexecuted.fetch_add(1, Ordering::AcqRel);
            }
        }
        ticket
    }

    fn poll(&mut self, now: SimTime) -> Vec<ChunkCompletion> {
        self.now = now;
        self.ensure_workers();
        if self.elastic.is_some() {
            let backlog = self.shared.unexecuted.load(Ordering::Acquire);
            let desired = self
                .elastic
                .as_mut()
                .expect("checked above")
                .observe(now, backlog);
            // Decisions are machine-independent; the applied thread quota
            // is clamped to what the machine can actually run.
            let quota = desired.min(self.thread_cap).max(1);
            self.shared.worker_quota.store(quota, Ordering::Release);
            self.spawn_up_to(quota);
            if quota < self.shared.live_workers.load(Ordering::Acquire) {
                // Wake sleepers so surplus workers observe the lowered
                // quota and retire.
                self.shared.available.notify_all();
            }
        }
        self.shared
            .latest_now
            .fetch_max(now.as_micros(), Ordering::AcqRel);
        // Flush the per-shard lanes (each to its own segment) and the
        // control lane to the pool.
        let mut batches = Vec::new();
        for (segment, lane) in self.lanes.iter_mut().enumerate() {
            if !lane.is_empty() {
                batches.push((segment, std::mem::take(lane)));
            }
        }
        for (segment, requests) in batches {
            self.enqueue(Job::Batch {
                segment,
                now,
                requests,
            });
        }
        if !self.control.is_empty() {
            let requests = std::mem::take(&mut self.control);
            self.enqueue(Job::Control { now, requests });
        }
        // One coalesced harvest per poll keeps sim-time arrivals flowing
        // even when no new requests were submitted.
        if !self.shared.harvest_queued.swap(true, Ordering::AcqRel) {
            self.enqueue(Job::Harvest { now });
        }
        self.done_rx.try_iter().collect()
    }

    fn drain_dirty(&mut self) -> Vec<ShardDelta> {
        let mut deltas = Vec::new();
        for segment in 0..self.shared.segments.len() {
            deltas.extend(self.shared.segment(segment).absorb_dirty());
        }
        deltas.sort_by_key(|d| d.shard);
        deltas
    }

    fn stage_dirty(&mut self, deltas: Vec<ShardDelta>) {
        // Group per segment so each segment lock is taken once.
        let mut by_segment: Vec<Vec<ChunkPos>> =
            (0..self.shard_count).map(|_| Vec::new()).collect();
        for delta in deltas {
            for pos in delta.chunks {
                by_segment[shard_index(pos, self.shard_count)].push(pos);
            }
        }
        for (segment, positions) in by_segment.into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut core = self.shared.segment(segment);
            for pos in positions {
                core.stage(pos);
            }
        }
    }

    fn recover(&mut self, shard: usize) -> Vec<ShardDelta> {
        match &self.wal {
            Some(wal) => wal.delta(shard).into_iter().collect(),
            None => Vec::new(),
        }
    }

    fn pending(&self) -> usize {
        let waiting: usize = (0..self.shared.segments.len())
            .map(|segment| self.shared.segment(segment).waiting_reads())
            .sum();
        let unflushed: usize = self.lanes.iter().map(Vec::len).sum::<usize>() + self.control.len();
        self.shared.unexecuted.load(Ordering::Acquire) + waiting + unflushed
    }

    fn name(&self) -> &'static str {
        "chunks-pipelined"
    }
}

impl<R: ObjectStore + Send + 'static> Drop for PipelinedChunkService<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlobStore, BlobTier};
    use servo_simkit::SimRng;
    use servo_types::BlockPos;
    use servo_world::{Block, ShardedWorld};

    fn seeded_remote(n: i32) -> BlobStore {
        let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
        for x in 0..n {
            for z in 0..n {
                let pos = ChunkPos::new(x, z);
                remote
                    .write(
                        &format!("terrain/{x}/{z}"),
                        Chunk::empty(pos).to_bytes(),
                        SimTime::ZERO,
                    )
                    .unwrap();
            }
        }
        remote
    }

    /// Polls a pipelined service until it is quiescent *at* `now`: no
    /// unexecuted submissions, no reads waiting on transfers due by `now`,
    /// and three consecutive empty polls (covering channel latency).
    fn drain<R: ObjectStore + Send + 'static>(
        service: &mut PipelinedChunkService<R>,
        now: SimTime,
    ) -> Vec<ChunkCompletion> {
        let mut all = Vec::new();
        let mut idle = 0;
        for _ in 0..100_000 {
            let got = service.poll(now);
            let empty = got.is_empty();
            all.extend(got);
            if empty && service.pending() == 0 && service.transfers_due(now) == 0 {
                idle += 1;
                if idle >= 3 {
                    return all;
                }
            } else {
                idle = 0;
            }
            std::thread::yield_now();
        }
        panic!("pipelined service failed to quiesce");
    }

    #[test]
    fn sync_read_completes_inline() {
        let mut service = SyncChunkService::new(seeded_remote(2), SimRng::seed(2));
        let ticket = service.submit(ChunkRequest::read(ChunkPos::new(1, 1)));
        let completions = service.poll(SimTime::ZERO);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].ticket, ticket);
        match &completions[0].outcome {
            ChunkOutcome::Loaded { pos, location, .. } => {
                assert_eq!(*pos, ChunkPos::new(1, 1));
                assert_eq!(*location, ChunkLocation::Remote);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(service.pending(), 0);
        assert_eq!(service.stats().remote_misses, 1);
    }

    #[test]
    fn sync_missing_chunk_reports_missing() {
        let mut service = SyncChunkService::new(seeded_remote(1), SimRng::seed(2));
        service.submit(ChunkRequest::read(ChunkPos::new(9, 9)));
        let completions = service.poll(SimTime::ZERO);
        assert!(matches!(
            completions[0].outcome,
            ChunkOutcome::Missing { pos } if pos == ChunkPos::new(9, 9)
        ));
    }

    #[test]
    fn pipelined_read_defers_to_arrival() {
        let mut service = PipelinedChunkService::new(seeded_remote(2), SimRng::seed(2), 2);
        let ticket = service.submit(ChunkRequest::read(ChunkPos::new(0, 1)));
        // Immediately after submission nothing has arrived in sim time: the
        // read became an in-flight transfer instead of blocking.
        let mut early = Vec::new();
        for _ in 0..50 {
            early.extend(service.poll(SimTime::ZERO));
            std::thread::yield_now();
        }
        assert!(
            !early
                .iter()
                .any(|c| matches!(c.outcome, ChunkOutcome::Loaded { .. })),
            "read completed without any sim time passing"
        );
        // Far in the future the transfer has arrived.
        let completions = drain(&mut service, SimTime::from_secs(10));
        let loaded: Vec<_> = completions
            .iter()
            .filter(|c| matches!(c.outcome, ChunkOutcome::Loaded { .. }))
            .collect();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].ticket, ticket);
        // The read never blocked: no synchronous remote miss was recorded.
        assert_eq!(service.stats().remote_misses, 0);
        assert_eq!(service.stats().prefetch_joins, 1);
    }

    #[test]
    fn prefetch_arrivals_carry_the_prefetch_ticket() {
        let mut service = PipelinedChunkService::new(seeded_remote(3), SimRng::seed(2), 2);
        let positions: Vec<ChunkPos> = (0..3)
            .flat_map(|x| (0..3).map(move |z| ChunkPos::new(x, z)))
            .collect();
        let ticket = service.submit(ChunkRequest::prefetch(positions.clone()));
        // First drain issues the transfers at t=10 s; the second observes
        // their arrivals (all due well before t=30 s).
        let mut completions = drain(&mut service, SimTime::from_secs(10));
        completions.extend(drain(&mut service, SimTime::from_secs(30)));
        let loaded: Vec<ChunkPos> = completions
            .iter()
            .filter(|c| c.ticket == ticket)
            .filter_map(|c| match &c.outcome {
                ChunkOutcome::Loaded { pos, .. } => Some(*pos),
                _ => None,
            })
            .collect();
        assert_eq!(loaded.len(), positions.len());
    }

    #[test]
    fn elastic_worker_pool_scales_with_backlog_and_releases() {
        // Deterministic-decision assertions only: on a 1-core runner the
        // *applied* thread quota is clamped to 1, but the autoscaler's
        // decision counters are machine-independent.
        let config = AutoscalerConfig::elastic(1, 6).with_backlog_per_worker(2);
        let mut service = PipelinedChunkService::new(seeded_remote(6), SimRng::seed(2), 1)
            .with_elastic_workers(config);
        assert_eq!(service.autoscaler_stats().unwrap().scale_up_events, 0);
        let positions: Vec<ChunkPos> = (0..6)
            .flat_map(|x| (0..6).map(move |z| ChunkPos::new(x, z)))
            .collect();
        let ticket = service.submit(ChunkRequest::prefetch(positions.clone()));
        // The submission burst lands on every shard lane: the first poll
        // observes the backlog and scales the quota out.
        let mut completions = drain(&mut service, SimTime::from_secs(10));
        let stats = service.autoscaler_stats().unwrap();
        assert!(stats.scale_up_events > 0, "no scale-up: {stats:?}");
        assert!(stats.peak_workers > 1, "pool never grew: {stats:?}");
        // Once the backlog drains the quota releases back to min, and live
        // threads follow it down.
        completions.extend(drain(&mut service, SimTime::from_secs(30)));
        let loaded = completions
            .iter()
            .filter(|c| c.ticket == ticket && matches!(c.outcome, ChunkOutcome::Loaded { .. }))
            .count();
        assert_eq!(loaded, positions.len(), "elastic pool lost requests");
        let stats = service.autoscaler_stats().unwrap();
        assert!(stats.workers_retired > 0, "pool never shrank: {stats:?}");
        assert_eq!(service.worker_quota(), 1);
        assert!(service.live_workers() <= service.worker_quota().max(1));
    }

    #[test]
    fn world_edits_surface_as_one_shard_delta_and_write_back_skips_clean_shards() {
        let world = Arc::new(ShardedWorld::flat(4));
        for x in 0..6 {
            for z in 0..6 {
                world.ensure_chunk_at(ChunkPos::new(x, z));
            }
        }
        let mut service =
            SyncChunkService::new(seeded_remote(0), SimRng::seed(2)).with_world(Arc::clone(&world));

        // Edit blocks of exactly one chunk.
        world
            .set_block(BlockPos::new(1, 9, 1), Block::Stone)
            .unwrap();
        world
            .set_block(BlockPos::new(2, 9, 2), Block::Lamp)
            .unwrap();
        let deltas = service.drain_dirty();
        assert_eq!(deltas.len(), 1, "one edited shard, one delta: {deltas:?}");
        assert_eq!(deltas[0].chunks, vec![ChunkPos::new(0, 0)]);

        // The drained delta stays staged: write-back flushes exactly that
        // chunk to remote storage and nothing else.
        service.submit(ChunkRequest::write_back());
        let completions = service.poll(SimTime::ZERO);
        let written: Vec<usize> = completions
            .iter()
            .filter_map(|c| match c.outcome {
                ChunkOutcome::WroteBack { chunks } => Some(chunks),
                _ => None,
            })
            .collect();
        assert_eq!(written, vec![1]);
        assert_eq!(service.remote_mut().len(), 1);
        assert!(service.remote_mut().contains("terrain/0/0"));

        // A clean world produces no deltas and write-back does nothing.
        assert!(service.drain_dirty().is_empty());
        service.submit(ChunkRequest::write_back());
        let completions = service.poll(SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 0 })));
    }

    #[test]
    fn lockfree_backend_world_binds_and_writes_back_identically() {
        use servo_world::LockFreeStore;
        // The service only sees the dyn WorldSink face, so a lock-free
        // backend world binds and persists exactly like the default one.
        let world = Arc::new(ShardedWorld::<LockFreeStore>::flat_in(4));
        for x in 0..4 {
            for z in 0..4 {
                world.ensure_chunk_at(ChunkPos::new(x, z));
            }
        }
        let mut service =
            SyncChunkService::new(seeded_remote(0), SimRng::seed(2)).with_world(Arc::clone(&world));
        world
            .set_block(BlockPos::new(1, 9, 1), Block::Stone)
            .unwrap();
        let deltas = service.drain_dirty();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].chunks, vec![ChunkPos::new(0, 0)]);
        service.submit(ChunkRequest::write_back());
        let completions = service.poll(SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 1 })));
        assert!(service.remote_mut().contains("terrain/0/0"));
    }

    #[test]
    fn evict_request_drops_unkept_chunks() {
        let mut service = SyncChunkService::new(seeded_remote(3), SimRng::seed(2));
        for x in 0..3 {
            for z in 0..3 {
                service.submit(ChunkRequest::read(ChunkPos::new(x, z)));
            }
        }
        service.poll(SimTime::ZERO);
        assert_eq!(service.resident_chunks(), 9);
        let keep = vec![ChunkPos::new(0, 0), ChunkPos::new(1, 1)];
        service.submit(ChunkRequest::evict(keep));
        let completions = service.poll(SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::Evicted { chunks: 7 })));
        assert_eq!(service.resident_chunks(), 2);
    }

    #[test]
    fn staged_external_deltas_feed_write_back() {
        let world = Arc::new(ShardedWorld::flat(4));
        world.ensure_chunk_at(ChunkPos::new(1, 1));
        let mut service = PipelinedChunkService::new(seeded_remote(0), SimRng::seed(2), 2)
            .with_world(Arc::clone(&world));
        world
            .set_block(
                ChunkPos::new(1, 1).min_block() + BlockPos::new(2, 9, 2),
                Block::Stone,
            )
            .unwrap();
        // An external consumer (the cluster's border protocol) drains the
        // world itself...
        let deltas = world.drain_dirty();
        assert_eq!(deltas.len(), 1);
        // ...and routes the deltas back in: the next write-back still
        // flushes the chunk even though the world's dirty sets are clean.
        service.stage_dirty(deltas);
        service.submit(ChunkRequest::write_back());
        let completions = drain(&mut service, SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 1 })));
        assert!(service.with_remote(|remote| remote.contains("terrain/1/1")));
    }

    #[test]
    fn take_staged_shard_hands_off_the_write_back_obligation() {
        let world = Arc::new(ShardedWorld::flat(4));
        // Two chunks in different world shards, both dirtied and staged.
        let a = ChunkPos::new(0, 0);
        let mut b = ChunkPos::new(1, 0);
        'search: for x in 0..16 {
            for z in 0..16 {
                let candidate = ChunkPos::new(x, z);
                if world.shard_of(candidate) != world.shard_of(a) {
                    b = candidate;
                    break 'search;
                }
            }
        }
        assert_ne!(world.shard_of(a), world.shard_of(b));
        world.ensure_chunk_at(a);
        world.ensure_chunk_at(b);
        let mut source = PipelinedChunkService::new(seeded_remote(0), SimRng::seed(7), 2)
            .with_world_shards(Arc::clone(&world), &[]);
        for &pos in &[a, b] {
            world
                .set_block(pos.min_block() + BlockPos::new(2, 9, 2), Block::Stone)
                .unwrap();
        }
        source.stage_dirty(world.drain_dirty());

        // Quiesce: shard `a` leaves the source's staging (the migration
        // handoff); a repeated take is empty.
        let taken = source.take_staged_shard(world.shard_of(a));
        assert_eq!(taken, vec![a]);
        assert!(source.take_staged_shard(world.shard_of(a)).is_empty());

        // The source now owes a flush only for `b`.
        source.submit(ChunkRequest::write_back());
        let completions = drain(&mut source, SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 1 })));
        assert!(!source.with_remote(|remote| remote.contains("terrain/0/0")));

        // The destination, staged with the taken set, owes `a`'s flush.
        let mut destination = PipelinedChunkService::new(seeded_remote(0), SimRng::seed(8), 2)
            .with_world_shards(Arc::clone(&world), &[]);
        destination.stage_dirty(vec![ShardDelta {
            shard: world.shard_of(a),
            epoch: 1,
            chunks: taken,
        }]);
        destination.submit(ChunkRequest::write_back());
        let completions = drain(&mut destination, SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 1 })));
        assert!(destination.with_remote(|remote| remote.contains("terrain/0/0")));
    }

    #[test]
    fn zone_restricted_service_never_flushes_foreign_shards() {
        let world = Arc::new(ShardedWorld::flat(4));
        // Find two chunks living in different world shards.
        let a = ChunkPos::new(0, 0);
        let mut b = ChunkPos::new(1, 0);
        'search: for x in 0..16 {
            for z in 0..16 {
                let candidate = ChunkPos::new(x, z);
                if world.shard_of(candidate) != world.shard_of(a) {
                    b = candidate;
                    break 'search;
                }
            }
        }
        assert_ne!(world.shard_of(a), world.shard_of(b));
        world.ensure_chunk_at(a);
        world.ensure_chunk_at(b);
        let owned = vec![world.shard_of(a)];
        let mut service = PipelinedChunkService::new(seeded_remote(0), SimRng::seed(2), 2)
            .with_world_shards(Arc::clone(&world), &owned);
        // Edit both chunks; only the owned shard's chunk may be flushed.
        world
            .set_block(a.min_block() + BlockPos::new(1, 9, 1), Block::Stone)
            .unwrap();
        world
            .set_block(b.min_block() + BlockPos::new(1, 9, 1), Block::Lamp)
            .unwrap();
        let deltas = service.drain_dirty();
        assert_eq!(
            deltas.len(),
            1,
            "only the owned shard is pulled: {deltas:?}"
        );
        assert_eq!(deltas[0].chunks, vec![a]);
        service.submit(ChunkRequest::write_back());
        let completions = drain(&mut service, SimTime::ZERO);
        assert!(completions
            .iter()
            .any(|c| matches!(c.outcome, ChunkOutcome::WroteBack { chunks: 1 })));
        service.with_remote(|remote| {
            assert_eq!(remote.len(), 1);
            assert!(remote.contains(&format!("terrain/{}/{}", a.x, a.z)));
        });
    }

    #[test]
    fn priorities_order_within_a_batch() {
        // Submit a background prefetch and an urgent read touching disjoint
        // chunks; the worker executes the read first (observable through
        // the cache stats' issue order is racy, so assert on the request
        // ordering contract instead).
        let mut requests = [
            (Ticket(1), ChunkRequest::prefetch([ChunkPos::new(5, 5)])),
            (Ticket(2), ChunkRequest::read(ChunkPos::new(1, 1))),
            (Ticket(3), ChunkRequest::write_back()),
        ];
        requests.sort_by_key(|(_, r)| std::cmp::Reverse(r.priority()));
        assert!(matches!(requests[0].1, ChunkRequest::Read { .. }));
        assert!(matches!(requests[2].1, ChunkRequest::WriteBack { .. }));
        assert!(Priority::Urgent > Priority::High);
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Background);
    }
}

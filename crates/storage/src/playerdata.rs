//! Player- and metadata storage.
//!
//! Besides terrain, Servo keeps player data (position, inventory, health)
//! and instance metadata in managed storage (Section III-E of the paper).
//! Player data is read every time a player connects — the "Player" curve of
//! Figure 3 — and written back periodically and on disconnect. The records
//! are small, so the latency is dominated by the per-request overhead of the
//! storage service rather than by transfer time.

use servo_types::{PlayerId, ServoError, SimDuration, SimTime};

use crate::backend::ObjectStore;

/// A persistent player record.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerRecord {
    /// The player this record belongs to.
    pub player: PlayerId,
    /// Last known east-west position.
    pub x: f64,
    /// Last known north-south position.
    pub z: f64,
    /// Health points (0–20 in Minecraft-like games).
    pub health: u8,
    /// Selected inventory slots, as item identifiers.
    pub inventory: Vec<u16>,
}

impl PlayerRecord {
    /// Creates a fresh record for a newly seen player at spawn.
    pub fn new_at_spawn(player: PlayerId, x: f64, z: f64) -> Self {
        PlayerRecord {
            player,
            x,
            z,
            health: 20,
            inventory: Vec::new(),
        }
    }

    /// Serializes the record into a compact byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.inventory.len() * 2);
        out.extend_from_slice(&self.player.raw().to_le_bytes());
        out.extend_from_slice(&self.x.to_le_bytes());
        out.extend_from_slice(&self.z.to_le_bytes());
        out.push(self.health);
        out.extend_from_slice(&(self.inventory.len() as u32).to_le_bytes());
        for item in &self.inventory {
            out.extend_from_slice(&item.to_le_bytes());
        }
        out
    }

    /// Deserializes a record produced by [`PlayerRecord::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::CorruptData`] if the buffer is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<PlayerRecord, ServoError> {
        fn corrupt(reason: &str) -> ServoError {
            ServoError::CorruptData {
                reason: reason.to_string(),
            }
        }
        if bytes.len() < 29 {
            return Err(corrupt("player record shorter than header"));
        }
        let player = PlayerId::new(u64::from_le_bytes(bytes[0..8].try_into().unwrap()));
        let x = f64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let z = f64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let health = bytes[24];
        let count = u32::from_le_bytes(bytes[25..29].try_into().unwrap()) as usize;
        if bytes.len() != 29 + count * 2 {
            return Err(corrupt("inventory length mismatch"));
        }
        let inventory = (0..count)
            .map(|i| u16::from_le_bytes(bytes[29 + i * 2..31 + i * 2].try_into().unwrap()))
            .collect();
        Ok(PlayerRecord {
            player,
            x,
            z,
            health,
            inventory,
        })
    }
}

/// The outcome of loading a player record.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerLoad {
    /// The loaded (or freshly created) record.
    pub record: PlayerRecord,
    /// Latency of the load as observed by the game server.
    pub latency: SimDuration,
    /// Whether the record existed in storage (returning player) or was
    /// created fresh (new player).
    pub existed: bool,
}

/// Player-data persistence on top of any [`ObjectStore`].
#[derive(Debug)]
pub struct PlayerDataStore<S: ObjectStore> {
    store: S,
    loads: u64,
    saves: u64,
}

impl<S: ObjectStore> PlayerDataStore<S> {
    /// Creates a player-data store backed by `store`.
    pub fn new(store: S) -> Self {
        PlayerDataStore {
            store,
            loads: 0,
            saves: 0,
        }
    }

    fn key(player: PlayerId) -> String {
        format!("players/{}", player.raw())
    }

    /// Number of load operations performed.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of save operations performed.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// Access to the backing store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Loads the record for `player`, creating a fresh one at the given
    /// spawn position if the player has never connected before.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] if the backend fails, or
    /// [`ServoError::CorruptData`] if the stored record cannot be decoded.
    pub fn load_or_create(
        &mut self,
        player: PlayerId,
        spawn: (f64, f64),
        now: SimTime,
    ) -> Result<PlayerLoad, ServoError> {
        self.loads += 1;
        match self.store.read(&Self::key(player), now) {
            Ok(read) => Ok(PlayerLoad {
                record: PlayerRecord::from_bytes(&read.data)?,
                latency: read.latency,
                existed: true,
            }),
            Err(ServoError::NotFound { .. }) => Ok(PlayerLoad {
                record: PlayerRecord::new_at_spawn(player, spawn.0, spawn.1),
                latency: SimDuration::ZERO,
                existed: false,
            }),
            Err(other) => Err(other),
        }
    }

    /// Persists a player record (periodically and on disconnect).
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] if the backend fails.
    pub fn save(&mut self, record: &PlayerRecord, now: SimTime) -> Result<SimDuration, ServoError> {
        self.saves += 1;
        let result = self
            .store
            .write(&Self::key(record.player), record.to_bytes(), now)?;
        Ok(result.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlobStore, BlobTier, LocalDiskStore};
    use servo_simkit::SimRng;

    fn record() -> PlayerRecord {
        PlayerRecord {
            player: PlayerId::new(7),
            x: 120.5,
            z: -33.25,
            health: 17,
            inventory: vec![1, 5, 5, 64, 300],
        }
    }

    #[test]
    fn record_serialization_round_trips() {
        let r = record();
        assert_eq!(PlayerRecord::from_bytes(&r.to_bytes()).unwrap(), r);
        let empty = PlayerRecord::new_at_spawn(PlayerId::new(0), 8.0, 8.0);
        assert_eq!(PlayerRecord::from_bytes(&empty.to_bytes()).unwrap(), empty);
        assert_eq!(empty.health, 20);
    }

    #[test]
    fn corrupt_records_are_rejected() {
        assert!(PlayerRecord::from_bytes(&[]).is_err());
        assert!(PlayerRecord::from_bytes(&[0u8; 10]).is_err());
        let mut bytes = record().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(PlayerRecord::from_bytes(&bytes).is_err());
    }

    #[test]
    fn new_players_get_fresh_records() {
        let mut store = PlayerDataStore::new(LocalDiskStore::new(SimRng::seed(1)));
        let load = store
            .load_or_create(PlayerId::new(3), (8.0, 8.0), SimTime::ZERO)
            .unwrap();
        assert!(!load.existed);
        assert_eq!(load.record.player, PlayerId::new(3));
        assert_eq!(load.latency, SimDuration::ZERO);
    }

    #[test]
    fn returning_players_get_their_saved_state() {
        let mut store = PlayerDataStore::new(BlobStore::new(BlobTier::Standard, SimRng::seed(2)));
        let mut r = record();
        store.save(&r, SimTime::ZERO).unwrap();
        r.health = 3;
        store.save(&r, SimTime::ZERO).unwrap();

        let load = store
            .load_or_create(r.player, (0.0, 0.0), SimTime::from_secs(1))
            .unwrap();
        assert!(load.existed);
        assert_eq!(load.record.health, 3);
        assert_eq!(load.record.inventory, r.inventory);
        assert!(load.latency > SimDuration::ZERO);
        assert_eq!(store.loads(), 1);
        assert_eq!(store.saves(), 2);
    }

    #[test]
    fn backend_failures_propagate() {
        let mut backend = LocalDiskStore::new(SimRng::seed(3));
        backend.inject_failure("disk full");
        let mut store = PlayerDataStore::new(backend);
        assert!(store.save(&record(), SimTime::ZERO).is_err());
        // The next operation succeeds (transient failure).
        assert!(store.save(&record(), SimTime::ZERO).is_ok());
    }
}

//! The server-local terrain cache with pre-fetching.
//!
//! Servo keeps terrain in serverless storage but hides its latency
//! variability behind a server-local cache (Section III-E): chunks near a
//! player are pre-fetched before they are needed, reads served from memory
//! or the local file system stay well under one simulation step, and writes
//! to remote storage happen periodically in the background.

use std::collections::{HashMap, HashSet};

use servo_types::{ChunkPos, ServoError, SimDuration, SimTime};
use servo_world::ChunkSnapshot;

use crate::backend::{LocalDiskStore, ObjectStore};

/// Where a chunk read was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkLocation {
    /// Already resident in the in-memory cache.
    Memory,
    /// Found in the local file-system cache.
    LocalDisk,
    /// A pre-fetch for this chunk was already in flight; the read waited for
    /// the remaining transfer time.
    PrefetchInFlight,
    /// Fetched synchronously from remote storage.
    Remote,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from memory.
    pub memory_hits: u64,
    /// Reads served from the local disk cache.
    pub disk_hits: u64,
    /// Reads that joined an in-flight pre-fetch.
    pub prefetch_joins: u64,
    /// Reads that had to go to remote storage synchronously.
    pub remote_misses: u64,
    /// Pre-fetch requests issued.
    pub prefetches_issued: u64,
    /// Chunks written back to remote storage.
    pub write_backs: u64,
}

impl CacheStats {
    /// Total number of chunk reads served.
    pub fn total_reads(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.prefetch_joins + self.remote_misses
    }

    /// Fraction of reads that did not require a synchronous remote fetch.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.remote_misses as f64 / total as f64
    }
}

/// An outcome of a cached chunk read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRead {
    /// The chunk snapshot.
    pub snapshot: ChunkSnapshot,
    /// End-to-end latency as observed by the game loop.
    pub latency: SimDuration,
    /// Where the chunk was served from.
    pub location: ChunkLocation,
}

/// A chunk store that fronts a remote [`ObjectStore`] with an in-memory map,
/// a local-disk cache, and asynchronous pre-fetching.
///
/// # Example
///
/// ```
/// use servo_storage::{BlobStore, BlobTier, CachedChunkStore, ChunkLocation};
/// use servo_simkit::SimRng;
/// use servo_types::{ChunkPos, SimTime};
/// use servo_world::Chunk;
///
/// let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
/// let mut store = CachedChunkStore::new(remote, SimRng::seed(2));
/// let pos = ChunkPos::new(0, 0);
/// store.put(Chunk::empty(pos).snapshot(), SimTime::ZERO).unwrap();
///
/// let read = store.read(pos, SimTime::ZERO).unwrap();
/// assert_eq!(read.location, ChunkLocation::Memory);
/// ```
#[derive(Debug)]
pub struct CachedChunkStore<R: ObjectStore> {
    remote: R,
    local: LocalDiskStore,
    memory: HashMap<ChunkPos, ChunkSnapshot>,
    /// Chunks modified since the last write-back.
    dirty: HashSet<ChunkPos>,
    /// Pre-fetches in flight: chunk -> instant the data arrives locally.
    in_flight: HashMap<ChunkPos, SimTime>,
    stats: CacheStats,
    /// Latency of serving a read straight from the in-memory map.
    memory_latency: SimDuration,
}

impl<R: ObjectStore> CachedChunkStore<R> {
    /// Creates a cache in front of `remote`. The local-disk cache layer gets
    /// its own latency stream from `rng`.
    pub fn new(remote: R, rng: servo_simkit::SimRng) -> Self {
        CachedChunkStore {
            remote,
            local: LocalDiskStore::new(rng),
            memory: HashMap::new(),
            dirty: HashSet::new(),
            in_flight: HashMap::new(),
            stats: CacheStats::default(),
            memory_latency: SimDuration::from_micros(50),
        }
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access to the remote backend (e.g. to seed it with generated terrain).
    pub fn remote_mut(&mut self) -> &mut R {
        &mut self.remote
    }

    /// Number of chunks resident in memory.
    pub fn resident_chunks(&self) -> usize {
        self.memory.len()
    }

    /// Whether a chunk is resident in memory.
    pub fn is_resident(&self, pos: ChunkPos) -> bool {
        self.memory.contains_key(&pos)
    }

    fn key(pos: ChunkPos) -> String {
        format!("terrain/{}/{}", pos.x, pos.z)
    }

    /// Inserts a freshly generated or modified chunk into the cache and
    /// marks it dirty for the next write-back.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] if the local cache copy cannot
    /// be written.
    pub fn put(&mut self, snapshot: ChunkSnapshot, now: SimTime) -> Result<(), ServoError> {
        self.local
            .write(&Self::key(snapshot.pos), snapshot.bytes.clone(), now)?;
        self.dirty.insert(snapshot.pos);
        self.memory.insert(snapshot.pos, snapshot);
        Ok(())
    }

    /// Completes any pre-fetches that have arrived by `now`, moving them
    /// into memory. Returns how many arrived.
    pub fn poll(&mut self, now: SimTime) -> usize {
        let arrived: Vec<ChunkPos> = self
            .in_flight
            .iter()
            .filter(|(_, &t)| t <= now)
            .map(|(&p, _)| p)
            .collect();
        for pos in &arrived {
            self.in_flight.remove(pos);
            // The data was transferred in the background; materialise it.
            if let Ok(read) = self.remote.read(&Self::key(*pos), now) {
                let snapshot = ChunkSnapshot {
                    pos: *pos,
                    bytes: read.data,
                };
                let _ = self.local.write(&Self::key(*pos), snapshot.bytes.clone(), now);
                self.memory.insert(*pos, snapshot);
            }
        }
        arrived.len()
    }

    /// Starts asynchronous pre-fetches for every chunk in `positions` that
    /// is not already resident, cached locally on disk, or in flight.
    pub fn prefetch<I: IntoIterator<Item = ChunkPos>>(&mut self, positions: I, now: SimTime) {
        for pos in positions {
            if self.memory.contains_key(&pos)
                || self.in_flight.contains_key(&pos)
                || self.local.contains(&Self::key(pos))
            {
                continue;
            }
            if !self.remote.contains(&Self::key(pos)) {
                continue;
            }
            // Sample the transfer time by performing the remote read now and
            // recording only its completion time; the bytes are re-read (at
            // no extra simulated cost) when the transfer completes in
            // `poll`.
            if let Ok(read) = self.remote.read(&Self::key(pos), now) {
                self.in_flight.insert(pos, read.completed_at);
                self.stats.prefetches_issued += 1;
            }
        }
    }

    /// Reads a chunk through the cache hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::NotFound`] if the chunk exists nowhere
    /// (it must be generated instead), or [`ServoError::StorageFailed`] if
    /// the backing store fails.
    pub fn read(&mut self, pos: ChunkPos, now: SimTime) -> Result<CachedRead, ServoError> {
        self.poll(now);
        let key = Self::key(pos);

        if let Some(snapshot) = self.memory.get(&pos) {
            self.stats.memory_hits += 1;
            return Ok(CachedRead {
                snapshot: snapshot.clone(),
                latency: self.memory_latency,
                location: ChunkLocation::Memory,
            });
        }

        if let Some(&arrives_at) = self.in_flight.get(&pos) {
            // Wait for the in-flight transfer to finish.
            self.stats.prefetch_joins += 1;
            let wait = arrives_at.saturating_since(now).max(self.memory_latency);
            self.poll(arrives_at);
            let snapshot = self
                .memory
                .get(&pos)
                .cloned()
                .ok_or_else(|| ServoError::storage_failed("prefetched chunk vanished"))?;
            return Ok(CachedRead {
                snapshot,
                latency: wait,
                location: ChunkLocation::PrefetchInFlight,
            });
        }

        if self.local.contains(&key) {
            let read = self.local.read(&key, now)?;
            self.stats.disk_hits += 1;
            let snapshot = ChunkSnapshot {
                pos,
                bytes: read.data,
            };
            self.memory.insert(pos, snapshot.clone());
            return Ok(CachedRead {
                snapshot,
                latency: read.latency,
                location: ChunkLocation::LocalDisk,
            });
        }

        let read = self.remote.read(&key, now)?;
        self.stats.remote_misses += 1;
        let snapshot = ChunkSnapshot {
            pos,
            bytes: read.data,
        };
        let _ = self.local.write(&key, snapshot.bytes.clone(), now);
        self.memory.insert(pos, snapshot.clone());
        Ok(CachedRead {
            snapshot,
            latency: read.latency,
            location: ChunkLocation::Remote,
        })
    }

    /// Evicts from memory every chunk not contained in `keep`. Evicted
    /// chunks remain in the local-disk cache; dirty evicted chunks are
    /// written back to remote storage first.
    ///
    /// Returns the number of chunks evicted.
    pub fn evict_except(&mut self, keep: &HashSet<ChunkPos>, now: SimTime) -> usize {
        let to_evict: Vec<ChunkPos> = self
            .memory
            .keys()
            .filter(|p| !keep.contains(p))
            .copied()
            .collect();
        for pos in &to_evict {
            if self.dirty.remove(pos) {
                if let Some(snapshot) = self.memory.get(pos) {
                    let _ = self.remote.write(&Self::key(*pos), snapshot.bytes.clone(), now);
                    self.stats.write_backs += 1;
                }
            }
            self.memory.remove(pos);
        }
        to_evict.len()
    }

    /// Writes every dirty chunk back to remote storage (the paper's periodic
    /// write policy). Returns the number of chunks written.
    pub fn write_back_dirty(&mut self, now: SimTime) -> usize {
        let dirty: Vec<ChunkPos> = self.dirty.drain().collect();
        let mut written = 0;
        for pos in dirty {
            if let Some(snapshot) = self.memory.get(&pos) {
                if self
                    .remote
                    .write(&Self::key(pos), snapshot.bytes.clone(), now)
                    .is_ok()
                {
                    written += 1;
                    self.stats.write_backs += 1;
                } else {
                    // Keep it dirty so the next write-back retries.
                    self.dirty.insert(pos);
                }
            }
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlobStore, BlobTier};
    use servo_simkit::SimRng;
    use servo_world::Chunk;

    fn store_with_remote_chunks(n: i32) -> CachedChunkStore<BlobStore> {
        let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
        for x in 0..n {
            for z in 0..n {
                let pos = ChunkPos::new(x, z);
                let chunk = Chunk::empty(pos);
                remote
                    .write(&format!("terrain/{}/{}", x, z), chunk.to_bytes(), SimTime::ZERO)
                    .unwrap();
            }
        }
        CachedChunkStore::new(remote, SimRng::seed(2))
    }

    #[test]
    fn read_miss_then_memory_hit() {
        let mut store = store_with_remote_chunks(2);
        let pos = ChunkPos::new(0, 0);
        let first = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(first.location, ChunkLocation::Remote);
        let second = store.read(pos, SimTime::ZERO + first.latency).unwrap();
        assert_eq!(second.location, ChunkLocation::Memory);
        assert!(second.latency < SimDuration::from_millis(1));
        assert_eq!(store.stats().remote_misses, 1);
        assert_eq!(store.stats().memory_hits, 1);
        assert_eq!(first.snapshot.restore().unwrap().pos(), pos);
    }

    #[test]
    fn unknown_chunk_is_not_found() {
        let mut store = store_with_remote_chunks(1);
        let err = store.read(ChunkPos::new(9, 9), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, ServoError::NotFound { .. }));
    }

    #[test]
    fn prefetch_arrivals_become_memory_hits() {
        let mut store = store_with_remote_chunks(3);
        let targets: Vec<ChunkPos> = (0..3).flat_map(|x| (0..3).map(move |z| ChunkPos::new(x, z))).collect();
        store.prefetch(targets.clone(), SimTime::ZERO);
        assert_eq!(store.stats().prefetches_issued, 9);
        // Long after the transfers finish, every read is a memory hit.
        let later = SimTime::from_secs(10);
        for pos in targets {
            let read = store.read(pos, later).unwrap();
            assert_eq!(read.location, ChunkLocation::Memory, "chunk {pos}");
        }
        assert_eq!(store.stats().hit_rate(), 1.0);
    }

    #[test]
    fn read_during_prefetch_waits_for_remaining_time() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(0, 0);
        store.prefetch([pos], SimTime::ZERO);
        // Read immediately: must join the in-flight transfer, not start a new
        // remote read.
        let read = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(read.location, ChunkLocation::PrefetchInFlight);
        assert_eq!(store.stats().remote_misses, 0);
        assert!(read.latency >= SimDuration::from_micros(50));
    }

    #[test]
    fn prefetch_skips_resident_and_missing_chunks() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(0, 0);
        store.read(pos, SimTime::ZERO).unwrap();
        store.prefetch([pos, ChunkPos::new(5, 5)], SimTime::ZERO);
        // Resident chunk and non-existent chunk are both skipped.
        assert_eq!(store.stats().prefetches_issued, 0);
    }

    #[test]
    fn eviction_keeps_local_copy_and_writes_back_dirty() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(4, 4);
        let chunk = Chunk::empty(pos);
        store.put(chunk.snapshot(), SimTime::ZERO).unwrap();
        assert!(store.is_resident(pos));
        let evicted = store.evict_except(&HashSet::new(), SimTime::ZERO);
        assert_eq!(evicted, 1);
        assert!(!store.is_resident(pos));
        assert_eq!(store.stats().write_backs, 1);
        // The chunk is still available quickly from the local disk cache.
        let read = store.read(pos, SimTime::from_secs(1)).unwrap();
        assert_eq!(read.location, ChunkLocation::LocalDisk);
    }

    #[test]
    fn write_back_flushes_dirty_chunks() {
        let mut store = store_with_remote_chunks(0);
        for x in 0..4 {
            let pos = ChunkPos::new(x, 0);
            store.put(Chunk::empty(pos).snapshot(), SimTime::ZERO).unwrap();
        }
        assert_eq!(store.write_back_dirty(SimTime::ZERO), 4);
        // A second write-back has nothing to do.
        assert_eq!(store.write_back_dirty(SimTime::ZERO), 0);
        // The remote store now contains the chunks.
        assert_eq!(store.remote_mut().len(), 4);
    }

    #[test]
    fn hit_rate_reflects_misses() {
        let mut store = store_with_remote_chunks(2);
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 1), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 1), SimTime::ZERO).unwrap();
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(store.stats().total_reads(), 4);
    }
}

//! The server-local terrain cache with pre-fetching.
//!
//! Servo keeps terrain in serverless storage but hides its latency
//! variability behind a server-local cache (Section III-E): chunks near a
//! player are pre-fetched before they are needed, reads served from memory
//! or the local file system stay well under one simulation step, and writes
//! to remote storage happen periodically in the background.

use std::collections::{HashMap, HashSet};

use servo_types::{ChunkPos, ServoError, SimDuration, SimTime};
use servo_world::{shard_index, ChunkSnapshot, ShardedWorld, DEFAULT_SHARDS};

use crate::backend::{LocalDiskStore, ObjectStore};

/// Where a chunk read was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkLocation {
    /// Already resident in the in-memory cache.
    Memory,
    /// Found in the local file-system cache.
    LocalDisk,
    /// A pre-fetch for this chunk was already in flight; the read waited for
    /// the remaining transfer time.
    PrefetchInFlight,
    /// Fetched synchronously from remote storage.
    Remote,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from memory.
    pub memory_hits: u64,
    /// Reads served from the local disk cache.
    pub disk_hits: u64,
    /// Reads that joined an in-flight pre-fetch.
    pub prefetch_joins: u64,
    /// Reads that had to go to remote storage synchronously.
    pub remote_misses: u64,
    /// Pre-fetch requests issued.
    pub prefetches_issued: u64,
    /// Chunks written back to remote storage.
    pub write_backs: u64,
}

impl CacheStats {
    /// Total number of chunk reads served.
    pub fn total_reads(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.prefetch_joins + self.remote_misses
    }

    /// Fraction of reads that did not require a synchronous remote fetch.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.remote_misses as f64 / total as f64
    }
}

/// An outcome of a cached chunk read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRead {
    /// The chunk snapshot.
    pub snapshot: ChunkSnapshot,
    /// End-to-end latency as observed by the game loop.
    pub latency: SimDuration,
    /// Where the chunk was served from.
    pub location: ChunkLocation,
}

/// A chunk store that fronts a remote [`ObjectStore`] with an in-memory map,
/// a local-disk cache, and asynchronous pre-fetching.
///
/// # Example
///
/// ```
/// use servo_storage::{BlobStore, BlobTier, CachedChunkStore, ChunkLocation};
/// use servo_simkit::SimRng;
/// use servo_types::{ChunkPos, SimTime};
/// use servo_world::Chunk;
///
/// let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
/// let mut store = CachedChunkStore::new(remote, SimRng::seed(2));
/// let pos = ChunkPos::new(0, 0);
/// store.put(Chunk::empty(pos).snapshot(), SimTime::ZERO).unwrap();
///
/// let read = store.read(pos, SimTime::ZERO).unwrap();
/// assert_eq!(read.location, ChunkLocation::Memory);
/// ```
#[derive(Debug)]
pub struct CachedChunkStore<R: ObjectStore> {
    remote: R,
    local: LocalDiskStore,
    memory: HashMap<ChunkPos, ChunkSnapshot>,
    /// Chunks modified since the last write-back.
    dirty: HashSet<ChunkPos>,
    /// Pre-fetches in flight: chunk -> instant the data arrives locally.
    in_flight: HashMap<ChunkPos, SimTime>,
    stats: CacheStats,
    /// Latency of serving a read straight from the in-memory map.
    memory_latency: SimDuration,
    /// Shard count used to batch prefetches and write-backs in the same
    /// groups the sharded world partitions chunks into.
    shard_count: usize,
}

impl<R: ObjectStore> CachedChunkStore<R> {
    /// Creates a cache in front of `remote`. The local-disk cache layer gets
    /// its own latency stream from `rng`.
    pub fn new(remote: R, rng: servo_simkit::SimRng) -> Self {
        CachedChunkStore {
            remote,
            local: LocalDiskStore::new(rng),
            memory: HashMap::new(),
            dirty: HashSet::new(),
            in_flight: HashMap::new(),
            stats: CacheStats::default(),
            memory_latency: SimDuration::from_micros(50),
            shard_count: DEFAULT_SHARDS,
        }
    }

    /// Sets the shard count used for grouping batch operations, returning
    /// the modified store. Use the owning [`ShardedWorld::shard_count`] so
    /// cache batches align with world shards.
    pub fn with_shard_batching(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count.clamp(1, 1 << 10).next_power_of_two();
        self
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access to the remote backend (e.g. to seed it with generated terrain).
    pub fn remote_mut(&mut self) -> &mut R {
        &mut self.remote
    }

    /// Number of chunks resident in memory.
    pub fn resident_chunks(&self) -> usize {
        self.memory.len()
    }

    /// Whether a chunk is resident in memory.
    pub fn is_resident(&self, pos: ChunkPos) -> bool {
        self.memory.contains_key(&pos)
    }

    fn key(pos: ChunkPos) -> String {
        format!("terrain/{}/{}", pos.x, pos.z)
    }

    /// Inserts a freshly generated or modified chunk into the cache and
    /// marks it dirty for the next write-back.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] if the local cache copy cannot
    /// be written.
    pub fn put(&mut self, snapshot: ChunkSnapshot, now: SimTime) -> Result<(), ServoError> {
        self.local
            .write(&Self::key(snapshot.pos), snapshot.bytes.clone(), now)?;
        self.dirty.insert(snapshot.pos);
        self.memory.insert(snapshot.pos, snapshot);
        Ok(())
    }

    /// Completes any pre-fetches that have arrived by `now`, moving them
    /// into memory. Returns how many arrived.
    pub fn poll(&mut self, now: SimTime) -> usize {
        self.poll_arrivals(now).len()
    }

    /// The worker behind [`CachedChunkStore::poll`]: completes due
    /// pre-fetches and returns the positions that actually materialised
    /// this call.
    fn poll_arrivals(&mut self, now: SimTime) -> Vec<ChunkPos> {
        let due: Vec<ChunkPos> = self
            .in_flight
            .iter()
            .filter(|(_, &t)| t <= now)
            .map(|(&p, _)| p)
            .collect();
        let mut arrived = Vec::with_capacity(due.len());
        for pos in due {
            self.in_flight.remove(&pos);
            // The data was transferred in the background; materialise it.
            if let Ok(read) = self.remote.read(&Self::key(pos), now) {
                let snapshot = ChunkSnapshot {
                    pos,
                    bytes: read.data,
                };
                let _ = self
                    .local
                    .write(&Self::key(pos), snapshot.bytes.clone(), now);
                self.memory.insert(pos, snapshot);
                arrived.push(pos);
            }
        }
        arrived
    }

    /// Starts asynchronous pre-fetches for every chunk in `positions` that
    /// is not already resident, cached locally on disk, or in flight,
    /// grouping the requests by the world shard that will receive the data.
    ///
    /// Shard grouping keeps each batch's arrivals clustered on one shard,
    /// so [`CachedChunkStore::integrate_arrived`] takes each shard's write
    /// lock once per poll instead of bouncing between shards; it also makes
    /// the issue order (and therefore the latency stream consumed from the
    /// RNG) deterministic regardless of the iteration order of the caller's
    /// set type.
    pub fn prefetch<I: IntoIterator<Item = ChunkPos>>(&mut self, positions: I, now: SimTime) {
        let mut by_shard: Vec<Vec<ChunkPos>> = (0..self.shard_count).map(|_| Vec::new()).collect();
        for pos in positions {
            by_shard[shard_index(pos, self.shard_count)].push(pos);
        }
        for batch in &mut by_shard {
            batch.sort_by_key(|p| (p.x, p.z));
        }
        for pos in by_shard.into_iter().flatten() {
            if self.memory.contains_key(&pos)
                || self.in_flight.contains_key(&pos)
                || self.local.contains(&Self::key(pos))
            {
                continue;
            }
            if !self.remote.contains(&Self::key(pos)) {
                continue;
            }
            // Sample the transfer time by performing the remote read now and
            // recording only its completion time; the bytes are re-read (at
            // no extra simulated cost) when the transfer completes in
            // `poll`.
            if let Ok(read) = self.remote.read(&Self::key(pos), now) {
                self.in_flight.insert(pos, read.completed_at);
                self.stats.prefetches_issued += 1;
            }
        }
    }

    /// Reads a chunk through the cache hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::NotFound`] if the chunk exists nowhere
    /// (it must be generated instead), or [`ServoError::StorageFailed`] if
    /// the backing store fails.
    pub fn read(&mut self, pos: ChunkPos, now: SimTime) -> Result<CachedRead, ServoError> {
        self.poll(now);
        let key = Self::key(pos);

        if let Some(snapshot) = self.memory.get(&pos) {
            self.stats.memory_hits += 1;
            return Ok(CachedRead {
                snapshot: snapshot.clone(),
                latency: self.memory_latency,
                location: ChunkLocation::Memory,
            });
        }

        if let Some(&arrives_at) = self.in_flight.get(&pos) {
            // Wait for the in-flight transfer to finish.
            self.stats.prefetch_joins += 1;
            let wait = arrives_at.saturating_since(now).max(self.memory_latency);
            self.poll(arrives_at);
            let snapshot = self
                .memory
                .get(&pos)
                .cloned()
                .ok_or_else(|| ServoError::storage_failed("prefetched chunk vanished"))?;
            return Ok(CachedRead {
                snapshot,
                latency: wait,
                location: ChunkLocation::PrefetchInFlight,
            });
        }

        if self.local.contains(&key) {
            let read = self.local.read(&key, now)?;
            self.stats.disk_hits += 1;
            let snapshot = ChunkSnapshot {
                pos,
                bytes: read.data,
            };
            self.memory.insert(pos, snapshot.clone());
            return Ok(CachedRead {
                snapshot,
                latency: read.latency,
                location: ChunkLocation::LocalDisk,
            });
        }

        let read = self.remote.read(&key, now)?;
        self.stats.remote_misses += 1;
        let snapshot = ChunkSnapshot {
            pos,
            bytes: read.data,
        };
        let _ = self.local.write(&key, snapshot.bytes.clone(), now);
        self.memory.insert(pos, snapshot.clone());
        Ok(CachedRead {
            snapshot,
            latency: read.latency,
            location: ChunkLocation::Remote,
        })
    }

    /// Evicts from memory every chunk not contained in `keep`. Evicted
    /// chunks remain in the local-disk cache; dirty evicted chunks are
    /// written back to remote storage first.
    ///
    /// Returns the number of chunks evicted.
    pub fn evict_except(&mut self, keep: &HashSet<ChunkPos>, now: SimTime) -> usize {
        let to_evict: Vec<ChunkPos> = self
            .memory
            .keys()
            .filter(|p| !keep.contains(p))
            .copied()
            .collect();
        for pos in &to_evict {
            if self.dirty.remove(pos) {
                if let Some(snapshot) = self.memory.get(pos) {
                    let _ = self
                        .remote
                        .write(&Self::key(*pos), snapshot.bytes.clone(), now);
                    self.stats.write_backs += 1;
                }
            }
            self.memory.remove(pos);
        }
        to_evict.len()
    }

    /// Writes every dirty chunk back to remote storage (the paper's periodic
    /// write policy), batched per world shard. Returns the number of chunks
    /// written.
    ///
    /// The per-shard order (shard by shard, chunk coordinates within a
    /// shard) replaces the arbitrary `HashSet` drain order the seed used,
    /// making the latency stream consumed from the RNG — and with it every
    /// derived statistic — reproducible across runs.
    pub fn write_back_dirty(&mut self, now: SimTime) -> usize {
        let mut dirty: Vec<ChunkPos> = self.dirty.drain().collect();
        dirty.sort_by_key(|p| (shard_index(*p, self.shard_count), p.x, p.z));
        let mut written = 0;
        for pos in dirty {
            if let Some(snapshot) = self.memory.get(&pos) {
                if self
                    .remote
                    .write(&Self::key(pos), snapshot.bytes.clone(), now)
                    .is_ok()
                {
                    written += 1;
                    self.stats.write_backs += 1;
                } else {
                    // Keep it dirty so the next write-back retries.
                    self.dirty.insert(pos);
                }
            }
        }
        written
    }

    /// Completes arrived pre-fetches like [`CachedChunkStore::poll`] and
    /// additionally integrates the chunks that arrived *in this call*
    /// straight into `world`, as one shard-grouped batch insert. Returns
    /// the number of chunks integrated.
    ///
    /// Only this call's arrivals are integrated — chunks that are merely
    /// resident in the cache are left alone, so a chunk the caller
    /// deliberately unloaded with `ShardedWorld::remove_chunk` is not
    /// resurrected.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::CorruptData`] if an arrived snapshot cannot be
    /// decoded (all arrivals stay resident in the cache either way).
    pub fn integrate_arrived(
        &mut self,
        world: &ShardedWorld,
        now: SimTime,
    ) -> Result<usize, ServoError> {
        let arrived = self.poll_arrivals(now);
        let mut chunks = Vec::with_capacity(arrived.len());
        for pos in arrived {
            if world.is_loaded(pos) {
                continue;
            }
            let snapshot = self
                .memory
                .get(&pos)
                .expect("poll_arrivals materialised this position");
            chunks.push(snapshot.restore()?);
        }
        let integrated = chunks.len();
        world.insert_chunks(chunks);
        Ok(integrated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlobStore, BlobTier};
    use servo_simkit::SimRng;
    use servo_world::Chunk;

    fn store_with_remote_chunks(n: i32) -> CachedChunkStore<BlobStore> {
        let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
        for x in 0..n {
            for z in 0..n {
                let pos = ChunkPos::new(x, z);
                let chunk = Chunk::empty(pos);
                remote
                    .write(
                        &format!("terrain/{}/{}", x, z),
                        chunk.to_bytes(),
                        SimTime::ZERO,
                    )
                    .unwrap();
            }
        }
        CachedChunkStore::new(remote, SimRng::seed(2))
    }

    #[test]
    fn read_miss_then_memory_hit() {
        let mut store = store_with_remote_chunks(2);
        let pos = ChunkPos::new(0, 0);
        let first = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(first.location, ChunkLocation::Remote);
        let second = store.read(pos, SimTime::ZERO + first.latency).unwrap();
        assert_eq!(second.location, ChunkLocation::Memory);
        assert!(second.latency < SimDuration::from_millis(1));
        assert_eq!(store.stats().remote_misses, 1);
        assert_eq!(store.stats().memory_hits, 1);
        assert_eq!(first.snapshot.restore().unwrap().pos(), pos);
    }

    #[test]
    fn unknown_chunk_is_not_found() {
        let mut store = store_with_remote_chunks(1);
        let err = store.read(ChunkPos::new(9, 9), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, ServoError::NotFound { .. }));
    }

    #[test]
    fn prefetch_arrivals_become_memory_hits() {
        let mut store = store_with_remote_chunks(3);
        let targets: Vec<ChunkPos> = (0..3)
            .flat_map(|x| (0..3).map(move |z| ChunkPos::new(x, z)))
            .collect();
        store.prefetch(targets.clone(), SimTime::ZERO);
        assert_eq!(store.stats().prefetches_issued, 9);
        // Long after the transfers finish, every read is a memory hit.
        let later = SimTime::from_secs(10);
        for pos in targets {
            let read = store.read(pos, later).unwrap();
            assert_eq!(read.location, ChunkLocation::Memory, "chunk {pos}");
        }
        assert_eq!(store.stats().hit_rate(), 1.0);
    }

    #[test]
    fn read_during_prefetch_waits_for_remaining_time() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(0, 0);
        store.prefetch([pos], SimTime::ZERO);
        // Read immediately: must join the in-flight transfer, not start a new
        // remote read.
        let read = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(read.location, ChunkLocation::PrefetchInFlight);
        assert_eq!(store.stats().remote_misses, 0);
        assert!(read.latency >= SimDuration::from_micros(50));
    }

    #[test]
    fn prefetch_skips_resident_and_missing_chunks() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(0, 0);
        store.read(pos, SimTime::ZERO).unwrap();
        store.prefetch([pos, ChunkPos::new(5, 5)], SimTime::ZERO);
        // Resident chunk and non-existent chunk are both skipped.
        assert_eq!(store.stats().prefetches_issued, 0);
    }

    #[test]
    fn eviction_keeps_local_copy_and_writes_back_dirty() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(4, 4);
        let chunk = Chunk::empty(pos);
        store.put(chunk.snapshot(), SimTime::ZERO).unwrap();
        assert!(store.is_resident(pos));
        let evicted = store.evict_except(&HashSet::new(), SimTime::ZERO);
        assert_eq!(evicted, 1);
        assert!(!store.is_resident(pos));
        assert_eq!(store.stats().write_backs, 1);
        // The chunk is still available quickly from the local disk cache.
        let read = store.read(pos, SimTime::from_secs(1)).unwrap();
        assert_eq!(read.location, ChunkLocation::LocalDisk);
    }

    #[test]
    fn write_back_flushes_dirty_chunks() {
        let mut store = store_with_remote_chunks(0);
        for x in 0..4 {
            let pos = ChunkPos::new(x, 0);
            store
                .put(Chunk::empty(pos).snapshot(), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(store.write_back_dirty(SimTime::ZERO), 4);
        // A second write-back has nothing to do.
        assert_eq!(store.write_back_dirty(SimTime::ZERO), 0);
        // The remote store now contains the chunks.
        assert_eq!(store.remote_mut().len(), 4);
    }

    #[test]
    fn integrate_arrived_moves_chunks_into_sharded_world() {
        use servo_world::ShardedWorld;
        let mut store = store_with_remote_chunks(3);
        let world = ShardedWorld::new();
        let targets: Vec<ChunkPos> = (0..3)
            .flat_map(|x| (0..3).map(move |z| ChunkPos::new(x, z)))
            .collect();
        store.prefetch(targets.clone(), SimTime::ZERO);
        let integrated = store
            .integrate_arrived(&world, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(integrated, 9);
        assert_eq!(world.loaded_chunks(), 9);
        for pos in &targets {
            assert!(world.is_loaded(*pos));
        }
        // Re-integrating is a no-op: everything is already loaded.
        assert_eq!(
            store
                .integrate_arrived(&world, SimTime::from_secs(11))
                .unwrap(),
            0
        );
    }

    #[test]
    fn write_back_order_is_deterministic() {
        let collect_latency_profile = || {
            let mut store = store_with_remote_chunks(0).with_shard_batching(8);
            for x in 0..12 {
                for z in 0..12 {
                    let pos = ChunkPos::new(x, z);
                    store
                        .put(Chunk::empty(pos).snapshot(), SimTime::ZERO)
                        .unwrap();
                }
            }
            assert_eq!(store.write_back_dirty(SimTime::ZERO), 144);
            store.remote_mut().len()
        };
        assert_eq!(collect_latency_profile(), collect_latency_profile());
    }

    #[test]
    fn hit_rate_reflects_misses() {
        let mut store = store_with_remote_chunks(2);
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 1), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 1), SimTime::ZERO).unwrap();
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(store.stats().total_reads(), 4);
    }
}

//! The server-local terrain cache with pre-fetching.
//!
//! Servo keeps terrain in serverless storage but hides its latency
//! variability behind a server-local cache (Section III-E): chunks near a
//! player are pre-fetched before they are needed, reads served from memory
//! or the local file system stay well under one simulation step, and writes
//! to remote storage happen periodically in the background.
//!
//! Dirty tracking, recency tracking, and write-back grouping are all
//! *per world shard* (the same [`shard_index`] partition the sharded world
//! uses), so a write-back pass visits only the shards that were actually
//! modified and eviction walks small per-shard recency maps instead of
//! scanning the full resident map.

use std::collections::{HashMap, HashSet};

use servo_types::consts::TICK_BUDGET;
use servo_types::{ChunkPos, ServoError, SimDuration, SimTime};
use servo_world::ChunkStore;
use servo_world::{shard_index, ChunkSnapshot, ShardDelta, ShardedWorld, DEFAULT_SHARDS};

use crate::backend::{LocalDiskStore, ObjectStore, ReadResult, WriteResult};

/// The canonical object-store key terrain chunks persist under. Every
/// producer of persisted terrain — the cache write-back path, remote
/// seeding, and the cluster's migration quiesce flush — must share this
/// scheme, or recovery paths silently stop finding each other's bytes.
pub fn chunk_key(pos: ChunkPos) -> String {
    format!("terrain/{}/{}", pos.x, pos.z)
}

/// Where a chunk read was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkLocation {
    /// Already resident in the in-memory cache.
    Memory,
    /// Found in the local file-system cache.
    LocalDisk,
    /// A pre-fetch for this chunk was already in flight; the read waited for
    /// the remaining transfer time.
    PrefetchInFlight,
    /// Fetched synchronously from remote storage.
    Remote,
    /// Produced by a terrain generator rather than loaded from storage.
    Generated,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from memory.
    pub memory_hits: u64,
    /// Reads served from the local disk cache.
    pub disk_hits: u64,
    /// Reads that joined an in-flight pre-fetch.
    pub prefetch_joins: u64,
    /// Pre-fetch joins that still had to wait longer than one simulation
    /// step — latency the game loop *does* observe, even though no new
    /// remote request was issued.
    pub slow_prefetch_joins: u64,
    /// Reads that had to go to remote storage synchronously.
    pub remote_misses: u64,
    /// Pre-fetch requests issued.
    pub prefetches_issued: u64,
    /// Chunks written back to remote storage.
    pub write_backs: u64,
    /// Remote operations retried after a transient storage failure.
    pub retries: u64,
    /// Remote operations that failed even after exhausting their retry
    /// budget (the error then surfaces exactly like a no-retry failure).
    pub retries_exhausted: u64,
}

impl CacheStats {
    /// Total number of chunk reads served.
    pub fn total_reads(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.prefetch_joins + self.remote_misses
    }

    /// Adds another store's counters into this one — e.g. to aggregate the
    /// per-shard segments of a sharded chunk service.
    pub fn merge(&mut self, other: &CacheStats) {
        self.memory_hits += other.memory_hits;
        self.disk_hits += other.disk_hits;
        self.prefetch_joins += other.prefetch_joins;
        self.slow_prefetch_joins += other.slow_prefetch_joins;
        self.remote_misses += other.remote_misses;
        self.prefetches_issued += other.prefetches_issued;
        self.write_backs += other.write_backs;
        self.retries += other.retries;
        self.retries_exhausted += other.retries_exhausted;
    }

    /// Fraction of reads that did not require a synchronous remote fetch.
    ///
    /// Asynchronous services never fetch synchronously — a demand-read
    /// miss becomes an in-flight transfer (counted under
    /// `prefetches_issued`, joined on arrival) — so they report 1.0 here
    /// by construction. Use [`CacheStats::effective_hit_rate`] to compare
    /// a synchronous and an asynchronous service: it charges joins that
    /// stalled the loop past one simulation step as misses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.remote_misses as f64 / total as f64
    }

    /// Fraction of reads the game loop experienced as fast: like
    /// [`CacheStats::hit_rate`], but pre-fetch joins that still waited past
    /// one simulation step also count as misses. [`CacheStats::hit_rate`]
    /// flatters the cache by counting such joins as hits even though the
    /// tick stalled on them.
    pub fn effective_hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 1.0;
        }
        1.0 - (self.remote_misses + self.slow_prefetch_joins) as f64 / total as f64
    }
}

/// An outcome of a cached chunk read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRead {
    /// The chunk snapshot.
    pub snapshot: ChunkSnapshot,
    /// End-to-end latency as observed by the game loop.
    pub latency: SimDuration,
    /// Where the chunk was served from.
    pub location: ChunkLocation,
}

/// The outcome of a non-blocking [`CachedChunkStore::try_read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryRead {
    /// The chunk was available without touching remote storage.
    Ready(CachedRead),
    /// A remote transfer is in flight (issued by this call if necessary);
    /// the data arrives at the given instant and materialises on the next
    /// [`CachedChunkStore::poll`] at or after it.
    InFlight {
        /// The instant the transfer completes.
        arrives_at: SimTime,
    },
}

/// A chunk store that fronts a remote [`ObjectStore`] with an in-memory map,
/// a local-disk cache, and asynchronous pre-fetching.
///
/// # Example
///
/// ```
/// use servo_storage::{BlobStore, BlobTier, CachedChunkStore, ChunkLocation};
/// use servo_simkit::SimRng;
/// use servo_types::{ChunkPos, SimTime};
/// use servo_world::Chunk;
///
/// let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
/// let mut store = CachedChunkStore::new(remote, SimRng::seed(2));
/// let pos = ChunkPos::new(0, 0);
/// store.put(Chunk::empty(pos).snapshot(), SimTime::ZERO).unwrap();
///
/// let read = store.read(pos, SimTime::ZERO).unwrap();
/// assert_eq!(read.location, ChunkLocation::Memory);
/// ```
#[derive(Debug)]
pub struct CachedChunkStore<R: ObjectStore> {
    remote: R,
    local: LocalDiskStore,
    memory: HashMap<ChunkPos, ChunkSnapshot>,
    /// Chunks modified since the last write-back, per world shard — the
    /// write-back pass visits only shards whose set is non-empty.
    dirty: Vec<HashSet<ChunkPos>>,
    /// Lifetime count of `put`s per shard, the epoch reported in the
    /// [`ShardDelta`]s of [`CachedChunkStore::take_dirty_deltas`].
    dirty_epochs: Vec<u64>,
    /// Per-shard access stamps over the resident set — eviction sorts one
    /// shard's stamps to find its least-recently-used chunks instead of
    /// scanning the full resident map, and recording an access is O(1).
    recency: Vec<HashMap<ChunkPos, u64>>,
    /// Monotone access clock feeding the recency stamps.
    access_clock: u64,
    /// Reusable buffer for grouping one shard's dirty chunks during
    /// write-back; kept across calls so the hot path does not allocate.
    write_back_scratch: Vec<ChunkPos>,
    /// Pre-fetches in flight: chunk -> instant the data arrives locally.
    in_flight: HashMap<ChunkPos, SimTime>,
    stats: CacheStats,
    /// Latency of serving a read straight from the in-memory map.
    memory_latency: SimDuration,
    /// Shard count used to batch prefetches and write-backs in the same
    /// groups the sharded world partitions chunks into.
    shard_count: usize,
    /// Bounded retry-and-backoff for transient remote failures. Zero
    /// attempts (the default) preserves the historical fail-once behavior
    /// bit for bit.
    retry: RetryPolicy,
}

/// Bounded retry-and-backoff applied to remote reads and writes when the
/// store reports a transient [`ServoError::StorageFailed`]. Each retry is
/// issued `backoff * attempt` later in simulated time, so retried
/// operations genuinely cost more latency than clean ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 disables retrying).
    pub attempts: u32,
    /// Delay added per retry attempt.
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 0,
            backoff: SimDuration::from_millis(5),
        }
    }
}

impl<R: ObjectStore> CachedChunkStore<R> {
    /// Creates a cache in front of `remote`. The local-disk cache layer gets
    /// its own latency stream from `rng`.
    pub fn new(remote: R, rng: servo_simkit::SimRng) -> Self {
        CachedChunkStore {
            remote,
            local: LocalDiskStore::new(rng),
            memory: HashMap::new(),
            dirty: (0..DEFAULT_SHARDS).map(|_| HashSet::new()).collect(),
            dirty_epochs: vec![0; DEFAULT_SHARDS],
            recency: (0..DEFAULT_SHARDS).map(|_| HashMap::new()).collect(),
            access_clock: 0,
            write_back_scratch: Vec::new(),
            in_flight: HashMap::new(),
            stats: CacheStats::default(),
            memory_latency: SimDuration::from_micros(50),
            shard_count: DEFAULT_SHARDS,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the bounded retry-and-backoff policy for transient remote
    /// failures (see [`RetryPolicy`]).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Reads `key` from the remote store, retrying transient failures up to
    /// the policy's budget with linear backoff. `NotFound` is never retried.
    fn remote_read_retrying(&mut self, key: &str, now: SimTime) -> Result<ReadResult, ServoError> {
        let mut attempt: u32 = 0;
        loop {
            match self
                .remote
                .read(key, now + self.retry.backoff * attempt as u64)
            {
                Ok(read) => return Ok(read),
                Err(err @ ServoError::NotFound { .. }) => return Err(err),
                Err(err) => {
                    if attempt >= self.retry.attempts {
                        if self.retry.attempts > 0 {
                            self.stats.retries_exhausted += 1;
                        }
                        return Err(err);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                }
            }
        }
    }

    /// Writes `key` to the remote store with the same bounded retry policy
    /// as [`CachedChunkStore::remote_read_retrying`].
    fn remote_write_retrying(
        &mut self,
        key: &str,
        data: Vec<u8>,
        now: SimTime,
    ) -> Result<WriteResult, ServoError> {
        let mut attempt: u32 = 0;
        loop {
            match self
                .remote
                .write(key, data.clone(), now + self.retry.backoff * attempt as u64)
            {
                Ok(write) => return Ok(write),
                Err(err) => {
                    if attempt >= self.retry.attempts {
                        if self.retry.attempts > 0 {
                            self.stats.retries_exhausted += 1;
                        }
                        return Err(err);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                }
            }
        }
    }

    /// Sets the shard count used for grouping batch operations, returning
    /// the modified store. Use the owning [`ShardedWorld::shard_count`] so
    /// cache batches align with world shards.
    pub fn with_shard_batching(mut self, shard_count: usize) -> Self {
        self.set_shard_batching(shard_count);
        self
    }

    /// In-place version of [`CachedChunkStore::with_shard_batching`], used
    /// by the chunk services when binding to a world.
    pub(crate) fn set_shard_batching(&mut self, shard_count: usize) {
        self.shard_count = shard_count.clamp(1, 1 << 10).next_power_of_two();
        let mut dirty: Vec<HashSet<ChunkPos>> =
            (0..self.shard_count).map(|_| HashSet::new()).collect();
        for set in self.dirty.drain(..) {
            for pos in set {
                dirty[shard_index(pos, self.shard_count)].insert(pos);
            }
        }
        self.dirty = dirty;
        self.dirty_epochs = vec![0; self.shard_count];
        let mut recency: Vec<HashMap<ChunkPos, u64>> =
            (0..self.shard_count).map(|_| HashMap::new()).collect();
        for map in self.recency.drain(..) {
            for (pos, stamp) in map {
                recency[shard_index(pos, self.shard_count)].insert(pos, stamp);
            }
        }
        self.recency = recency;
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access to the remote backend (e.g. to seed it with generated terrain).
    pub fn remote_mut(&mut self) -> &mut R {
        &mut self.remote
    }

    /// Number of chunks resident in memory.
    pub fn resident_chunks(&self) -> usize {
        self.memory.len()
    }

    /// Whether a chunk is resident in memory.
    pub fn is_resident(&self, pos: ChunkPos) -> bool {
        self.memory.contains_key(&pos)
    }

    /// Whether a transfer for this chunk is currently in flight.
    pub fn is_in_flight(&self, pos: ChunkPos) -> bool {
        self.in_flight.contains_key(&pos)
    }

    /// Number of transfers currently in flight.
    pub fn transfers_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of in-flight transfers whose data has arrived by `now` but
    /// has not been materialised by a poll yet.
    pub fn transfers_due(&self, now: SimTime) -> usize {
        self.in_flight.values().filter(|&&t| t <= now).count()
    }

    /// A clone of the resident snapshot at `pos`, if any.
    pub fn snapshot(&self, pos: ChunkPos) -> Option<ChunkSnapshot> {
        self.memory.get(&pos).cloned()
    }

    fn shard_of(&self, pos: ChunkPos) -> usize {
        shard_index(pos, self.shard_count)
    }

    /// Stamps `pos` as the most recently used chunk of its shard. O(1) —
    /// this sits on the memory-hit read path.
    fn touch(&mut self, pos: ChunkPos) {
        self.access_clock += 1;
        self.recency[shard_index(pos, self.shard_count)].insert(pos, self.access_clock);
    }

    fn key(pos: ChunkPos) -> String {
        chunk_key(pos)
    }

    /// Inserts a freshly generated or modified chunk into the cache and
    /// marks it dirty for the next write-back.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] if the local cache copy cannot
    /// be written.
    pub fn put(&mut self, snapshot: ChunkSnapshot, now: SimTime) -> Result<(), ServoError> {
        self.local
            .write(&Self::key(snapshot.pos), snapshot.bytes.clone(), now)?;
        let shard = self.shard_of(snapshot.pos);
        self.dirty[shard].insert(snapshot.pos);
        self.dirty_epochs[shard] += 1;
        let pos = snapshot.pos;
        self.memory.insert(pos, snapshot);
        self.touch(pos);
        Ok(())
    }

    /// Completes any pre-fetches that have arrived by `now`, moving them
    /// into memory. Returns how many arrived.
    pub fn poll(&mut self, now: SimTime) -> usize {
        self.poll_arrived(now).len()
    }

    /// Completes due pre-fetches and returns the positions that actually
    /// materialised this call (the asynchronous chunk services use the
    /// positions to resolve tickets waiting on them).
    pub fn poll_arrived(&mut self, now: SimTime) -> Vec<ChunkPos> {
        let due: Vec<ChunkPos> = self
            .in_flight
            .iter()
            .filter(|(_, &t)| t <= now)
            .map(|(&p, _)| p)
            .collect();
        let mut arrived = Vec::with_capacity(due.len());
        for pos in due {
            self.in_flight.remove(&pos);
            // The data was transferred in the background; materialise it.
            match self.remote_read_retrying(&Self::key(pos), now) {
                Ok(read) => {
                    let snapshot = ChunkSnapshot {
                        pos,
                        bytes: read.data,
                    };
                    let _ = self
                        .local
                        .write(&Self::key(pos), snapshot.bytes.clone(), now);
                    self.memory.insert(pos, snapshot);
                    self.touch(pos);
                    arrived.push(pos);
                }
                Err(ServoError::NotFound { .. }) => {}
                Err(_) if self.retry.attempts > 0 => {
                    // Transient failure even after the retry budget: keep
                    // the transfer in flight with a pushed-out arrival so
                    // waiters are resolved on a later poll instead of
                    // being stranded.
                    self.in_flight.insert(
                        pos,
                        now + self.retry.backoff * (self.retry.attempts + 1) as u64,
                    );
                }
                Err(_) => {}
            }
        }
        arrived
    }

    /// Starts asynchronous pre-fetches for every chunk in `positions` that
    /// is not already resident, cached locally on disk, or in flight,
    /// grouping the requests by the world shard that will receive the data.
    ///
    /// Shard grouping keeps each batch's arrivals clustered on one shard,
    /// so [`CachedChunkStore::integrate_arrived`] takes each shard's write
    /// lock once per poll instead of bouncing between shards; it also makes
    /// the issue order (and therefore the latency stream consumed from the
    /// RNG) deterministic regardless of the iteration order of the caller's
    /// set type.
    pub fn prefetch<I: IntoIterator<Item = ChunkPos>>(&mut self, positions: I, now: SimTime) {
        let mut by_shard: Vec<Vec<ChunkPos>> = (0..self.shard_count).map(|_| Vec::new()).collect();
        for pos in positions {
            by_shard[shard_index(pos, self.shard_count)].push(pos);
        }
        for batch in &mut by_shard {
            batch.sort_by_key(|p| (p.x, p.z));
        }
        for pos in by_shard.into_iter().flatten() {
            if self.memory.contains_key(&pos)
                || self.in_flight.contains_key(&pos)
                || self.local.contains(&Self::key(pos))
            {
                continue;
            }
            if !self.remote.contains(&Self::key(pos)) {
                continue;
            }
            // Sample the transfer time by performing the remote read now and
            // recording only its completion time; the bytes are re-read (at
            // no extra simulated cost) when the transfer completes in
            // `poll`.
            if let Ok(read) = self.remote_read_retrying(&Self::key(pos), now) {
                self.in_flight.insert(pos, read.completed_at);
                self.stats.prefetches_issued += 1;
            }
        }
    }

    /// Reads a chunk through the cache hierarchy, resolving remote misses
    /// *synchronously*: the returned latency includes the full remote
    /// transfer when nothing closer holds the chunk.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::NotFound`] if the chunk exists nowhere
    /// (it must be generated instead), or [`ServoError::StorageFailed`] if
    /// the backing store fails.
    pub fn read(&mut self, pos: ChunkPos, now: SimTime) -> Result<CachedRead, ServoError> {
        self.poll(now);
        let key = Self::key(pos);

        if let Some(snapshot) = self.memory.get(&pos).cloned() {
            self.stats.memory_hits += 1;
            self.touch(pos);
            return Ok(CachedRead {
                snapshot,
                latency: self.memory_latency,
                location: ChunkLocation::Memory,
            });
        }

        if let Some(&arrives_at) = self.in_flight.get(&pos) {
            // Wait for the in-flight transfer to finish.
            self.stats.prefetch_joins += 1;
            let wait = arrives_at.saturating_since(now).max(self.memory_latency);
            if wait > TICK_BUDGET {
                self.stats.slow_prefetch_joins += 1;
            }
            self.poll(arrives_at);
            let snapshot = self
                .memory
                .get(&pos)
                .cloned()
                .ok_or_else(|| ServoError::storage_failed("prefetched chunk vanished"))?;
            return Ok(CachedRead {
                snapshot,
                latency: wait,
                location: ChunkLocation::PrefetchInFlight,
            });
        }

        if self.local.contains(&key) {
            let read = self.local.read(&key, now)?;
            self.stats.disk_hits += 1;
            let snapshot = ChunkSnapshot {
                pos,
                bytes: read.data,
            };
            self.memory.insert(pos, snapshot.clone());
            self.touch(pos);
            return Ok(CachedRead {
                snapshot,
                latency: read.latency,
                location: ChunkLocation::LocalDisk,
            });
        }

        let read = self.remote_read_retrying(&key, now)?;
        self.stats.remote_misses += 1;
        let snapshot = ChunkSnapshot {
            pos,
            bytes: read.data,
        };
        let _ = self.local.write(&key, snapshot.bytes.clone(), now);
        self.memory.insert(pos, snapshot.clone());
        self.touch(pos);
        Ok(CachedRead {
            snapshot,
            latency: read.latency,
            location: ChunkLocation::Remote,
        })
    }

    /// The non-blocking counterpart of [`CachedChunkStore::read`]: serves
    /// memory, in-flight, and local-disk outcomes like `read`, but turns a
    /// remote miss into an *asynchronous transfer* ([`TryRead::InFlight`])
    /// instead of paying the remote latency inline. The pipelined chunk
    /// service is built on this: the tick path never blocks on remote
    /// storage.
    ///
    /// Joins of in-flight transfers are not counted in [`CacheStats`] here;
    /// the caller records them when the data arrives (it knows the observed
    /// wait), via [`CachedChunkStore::record_async_join`].
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::NotFound`] if the chunk exists nowhere, or
    /// [`ServoError::StorageFailed`] if the backing store fails.
    pub fn try_read(&mut self, pos: ChunkPos, now: SimTime) -> Result<TryRead, ServoError> {
        let key = Self::key(pos);

        if let Some(snapshot) = self.memory.get(&pos).cloned() {
            self.stats.memory_hits += 1;
            self.touch(pos);
            return Ok(TryRead::Ready(CachedRead {
                snapshot,
                latency: self.memory_latency,
                location: ChunkLocation::Memory,
            }));
        }

        if let Some(&arrives_at) = self.in_flight.get(&pos) {
            return Ok(TryRead::InFlight { arrives_at });
        }

        if self.local.contains(&key) {
            let read = self.local.read(&key, now)?;
            self.stats.disk_hits += 1;
            let snapshot = ChunkSnapshot {
                pos,
                bytes: read.data,
            };
            self.memory.insert(pos, snapshot.clone());
            self.touch(pos);
            return Ok(TryRead::Ready(CachedRead {
                snapshot,
                latency: read.latency,
                location: ChunkLocation::LocalDisk,
            }));
        }

        if !self.remote.contains(&key) {
            return Err(ServoError::not_found(format!("chunk {pos}")));
        }
        let read = self.remote_read_retrying(&key, now)?;
        self.stats.prefetches_issued += 1;
        let arrives_at = read.completed_at;
        self.in_flight.insert(pos, arrives_at);
        Ok(TryRead::InFlight { arrives_at })
    }

    /// Records that an asynchronous read joined a transfer and observed
    /// `wait` of tick-visible latency before its data arrived (counted as a
    /// slow join when the wait exceeded one simulation step).
    pub fn record_async_join(&mut self, wait: SimDuration) {
        self.stats.prefetch_joins += 1;
        if wait > TICK_BUDGET {
            self.stats.slow_prefetch_joins += 1;
        }
    }

    /// Evicts from memory every chunk not contained in `keep`, walking the
    /// per-shard recency maps (least recently used first, by access stamp)
    /// instead of scanning the full resident map. Evicted chunks remain in
    /// the local-disk cache; dirty evicted chunks are written back to
    /// remote storage first.
    ///
    /// Returns the number of chunks evicted.
    pub fn evict_except(&mut self, keep: &HashSet<ChunkPos>, now: SimTime) -> usize {
        let mut evicted = 0usize;
        for shard in 0..self.shard_count {
            if self.recency[shard].is_empty() {
                continue;
            }
            let map = std::mem::take(&mut self.recency[shard]);
            let mut entries: Vec<(ChunkPos, u64)> = map.into_iter().collect();
            entries.sort_by_key(|&(pos, stamp)| (stamp, pos.x, pos.z));
            let mut kept = HashMap::with_capacity(entries.len());
            for (pos, stamp) in entries {
                if keep.contains(&pos) {
                    kept.insert(pos, stamp);
                    continue;
                }
                if self.dirty[shard].remove(&pos) {
                    if let Some(snapshot) = self.memory.get(&pos) {
                        let bytes = snapshot.bytes.clone();
                        let _ = self.remote_write_retrying(&Self::key(pos), bytes, now);
                        self.stats.write_backs += 1;
                    }
                }
                self.memory.remove(&pos);
                evicted += 1;
            }
            self.recency[shard] = kept;
        }
        evicted
    }

    /// Writes every dirty chunk back to remote storage (the paper's periodic
    /// write policy), shard by shard — clean shards are skipped without any
    /// scanning. Returns the number of chunks written.
    ///
    /// Within one shard chunks flush in `(x, z)` order through a reusable
    /// scratch buffer (no per-call set allocation), so the latency stream
    /// consumed from the RNG — and with it every derived statistic — is
    /// reproducible across runs.
    pub fn write_back_dirty(&mut self, now: SimTime) -> usize {
        let mut written = 0;
        for shard in 0..self.shard_count {
            if self.dirty[shard].is_empty() {
                continue;
            }
            self.write_back_scratch.clear();
            self.write_back_scratch.extend(self.dirty[shard].drain());
            self.write_back_scratch.sort_by_key(|p| (p.x, p.z));
            for i in 0..self.write_back_scratch.len() {
                let pos = self.write_back_scratch[i];
                if let Some(snapshot) = self.memory.get(&pos) {
                    let bytes = snapshot.bytes.clone();
                    if self
                        .remote_write_retrying(&Self::key(pos), bytes, now)
                        .is_ok()
                    {
                        written += 1;
                        self.stats.write_backs += 1;
                    } else {
                        // Keep it dirty so the next write-back retries.
                        self.dirty[shard].insert(pos);
                    }
                }
            }
        }
        written
    }

    /// Writes the given chunks back to remote storage (skipping positions
    /// not resident in memory), clearing their dirty flags on success and
    /// re-marking them on failure. The chunk services drive this with the
    /// per-shard deltas from [`CachedChunkStore::take_dirty_deltas`] and
    /// [`ShardedWorld::drain_dirty`]. Returns the positions actually
    /// written — the caller's signal for which durability obligations (WAL
    /// records, staged sets) may now be discharged; a failed position is
    /// re-marked dirty and must stay recoverable.
    pub fn write_back(&mut self, positions: &[ChunkPos], now: SimTime) -> Vec<ChunkPos> {
        let mut written = Vec::with_capacity(positions.len());
        for &pos in positions {
            let Some(snapshot) = self.memory.get(&pos) else {
                continue;
            };
            let bytes = snapshot.bytes.clone();
            let shard = shard_index(pos, self.shard_count);
            if self
                .remote_write_retrying(&Self::key(pos), bytes, now)
                .is_ok()
            {
                written.push(pos);
                self.stats.write_backs += 1;
                self.dirty[shard].remove(&pos);
            } else {
                self.dirty[shard].insert(pos);
            }
        }
        written
    }

    /// Takes the per-shard sets of chunks dirtied through
    /// [`CachedChunkStore::put`] since the last call, as one sorted
    /// [`ShardDelta`] per affected shard (clean shards produce nothing).
    /// The reported epoch is the shard's lifetime `put` count.
    pub fn take_dirty_deltas(&mut self) -> Vec<ShardDelta> {
        let mut deltas = Vec::new();
        for shard in 0..self.shard_count {
            if self.dirty[shard].is_empty() {
                continue;
            }
            let mut chunks: Vec<ChunkPos> = self.dirty[shard].drain().collect();
            chunks.sort_by_key(|p| (p.x, p.z));
            deltas.push(ShardDelta {
                shard,
                epoch: self.dirty_epochs[shard],
                chunks,
            });
        }
        deltas
    }

    /// Completes arrived pre-fetches like [`CachedChunkStore::poll`] and
    /// additionally integrates the chunks that arrived *in this call*
    /// straight into `world`, as one shard-grouped batch insert. Returns
    /// the number of chunks integrated.
    ///
    /// Only this call's arrivals are integrated — chunks that are merely
    /// resident in the cache are left alone, so a chunk the caller
    /// deliberately unloaded with `ShardedWorld::remove_chunk` is not
    /// resurrected.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::CorruptData`] if an arrived snapshot cannot be
    /// decoded (all arrivals stay resident in the cache either way).
    pub fn integrate_arrived<B: ChunkStore>(
        &mut self,
        world: &ShardedWorld<B>,
        now: SimTime,
    ) -> Result<usize, ServoError> {
        let arrived = self.poll_arrived(now);
        let mut chunks = Vec::with_capacity(arrived.len());
        for pos in arrived {
            if world.is_loaded(pos) {
                continue;
            }
            let snapshot = self
                .memory
                .get(&pos)
                .expect("poll_arrived materialised this position");
            chunks.push(snapshot.restore()?);
        }
        let integrated = chunks.len();
        world.insert_chunks(chunks);
        Ok(integrated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlobStore, BlobTier};
    use servo_simkit::SimRng;
    use servo_world::Chunk;

    fn store_with_remote_chunks(n: i32) -> CachedChunkStore<BlobStore> {
        let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
        for x in 0..n {
            for z in 0..n {
                let pos = ChunkPos::new(x, z);
                let chunk = Chunk::empty(pos);
                remote
                    .write(
                        &format!("terrain/{}/{}", x, z),
                        chunk.to_bytes(),
                        SimTime::ZERO,
                    )
                    .unwrap();
            }
        }
        CachedChunkStore::new(remote, SimRng::seed(2))
    }

    #[test]
    fn read_miss_then_memory_hit() {
        let mut store = store_with_remote_chunks(2);
        let pos = ChunkPos::new(0, 0);
        let first = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(first.location, ChunkLocation::Remote);
        let second = store.read(pos, SimTime::ZERO + first.latency).unwrap();
        assert_eq!(second.location, ChunkLocation::Memory);
        assert!(second.latency < SimDuration::from_millis(1));
        assert_eq!(store.stats().remote_misses, 1);
        assert_eq!(store.stats().memory_hits, 1);
        assert_eq!(first.snapshot.restore().unwrap().pos(), pos);
    }

    #[test]
    fn unknown_chunk_is_not_found() {
        let mut store = store_with_remote_chunks(1);
        let err = store.read(ChunkPos::new(9, 9), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, ServoError::NotFound { .. }));
        let err = store
            .try_read(ChunkPos::new(9, 9), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ServoError::NotFound { .. }));
    }

    #[test]
    fn prefetch_arrivals_become_memory_hits() {
        let mut store = store_with_remote_chunks(3);
        let targets: Vec<ChunkPos> = (0..3)
            .flat_map(|x| (0..3).map(move |z| ChunkPos::new(x, z)))
            .collect();
        store.prefetch(targets.clone(), SimTime::ZERO);
        assert_eq!(store.stats().prefetches_issued, 9);
        // Long after the transfers finish, every read is a memory hit.
        let later = SimTime::from_secs(10);
        for pos in targets {
            let read = store.read(pos, later).unwrap();
            assert_eq!(read.location, ChunkLocation::Memory, "chunk {pos}");
        }
        assert_eq!(store.stats().hit_rate(), 1.0);
    }

    #[test]
    fn read_during_prefetch_waits_for_remaining_time() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(0, 0);
        store.prefetch([pos], SimTime::ZERO);
        // Read immediately: must join the in-flight transfer, not start a new
        // remote read.
        let read = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(read.location, ChunkLocation::PrefetchInFlight);
        assert_eq!(store.stats().remote_misses, 0);
        assert!(read.latency >= SimDuration::from_micros(50));
    }

    #[test]
    fn try_read_issues_async_transfer_instead_of_blocking() {
        let mut store = store_with_remote_chunks(2);
        let pos = ChunkPos::new(1, 1);
        // First touch: a transfer is issued, nothing blocks.
        let TryRead::InFlight { arrives_at } = store.try_read(pos, SimTime::ZERO).unwrap() else {
            panic!("expected an in-flight transfer");
        };
        assert!(arrives_at > SimTime::ZERO);
        assert!(store.is_in_flight(pos));
        assert_eq!(store.stats().remote_misses, 0);
        assert_eq!(store.stats().prefetches_issued, 1);
        // Asking again joins the same transfer.
        assert!(matches!(
            store.try_read(pos, SimTime::ZERO).unwrap(),
            TryRead::InFlight { .. }
        ));
        assert_eq!(store.stats().prefetches_issued, 1);
        // Once polled past the arrival, the chunk is a memory hit.
        assert_eq!(store.poll_arrived(arrives_at), vec![pos]);
        let TryRead::Ready(read) = store.try_read(pos, arrives_at).unwrap() else {
            panic!("expected a ready read");
        };
        assert_eq!(read.location, ChunkLocation::Memory);
        // A slow async join counts against the effective hit rate only.
        store.record_async_join(SimDuration::from_millis(200));
        let stats = store.stats();
        assert_eq!(stats.prefetch_joins, 1);
        assert_eq!(stats.slow_prefetch_joins, 1);
        assert!(stats.effective_hit_rate() < stats.hit_rate());
    }

    #[test]
    fn prefetch_skips_resident_and_missing_chunks() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(0, 0);
        store.read(pos, SimTime::ZERO).unwrap();
        store.prefetch([pos, ChunkPos::new(5, 5)], SimTime::ZERO);
        // Resident chunk and non-existent chunk are both skipped.
        assert_eq!(store.stats().prefetches_issued, 0);
    }

    #[test]
    fn eviction_keeps_local_copy_and_writes_back_dirty() {
        let mut store = store_with_remote_chunks(1);
        let pos = ChunkPos::new(4, 4);
        let chunk = Chunk::empty(pos);
        store.put(chunk.snapshot(), SimTime::ZERO).unwrap();
        assert!(store.is_resident(pos));
        let evicted = store.evict_except(&HashSet::new(), SimTime::ZERO);
        assert_eq!(evicted, 1);
        assert!(!store.is_resident(pos));
        assert_eq!(store.stats().write_backs, 1);
        // The chunk is still available quickly from the local disk cache.
        let read = store.read(pos, SimTime::from_secs(1)).unwrap();
        assert_eq!(read.location, ChunkLocation::LocalDisk);
    }

    #[test]
    fn eviction_prefers_least_recently_used_order() {
        let mut store = store_with_remote_chunks(0).with_shard_batching(1);
        for x in 0..4 {
            store
                .put(Chunk::empty(ChunkPos::new(x, 0)).snapshot(), SimTime::ZERO)
                .unwrap();
        }
        // Touch chunk 0 so it becomes the most recently used.
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        // With one shard the LRU list orders all four chunks; evicting all
        // writes the dirty ones back in LRU order: 1, 2, 3, then 0.
        let evicted = store.evict_except(&HashSet::new(), SimTime::ZERO);
        assert_eq!(evicted, 4);
        assert_eq!(store.stats().write_backs, 4);
        assert_eq!(store.resident_chunks(), 0);
    }

    #[test]
    fn write_back_flushes_dirty_chunks() {
        let mut store = store_with_remote_chunks(0);
        for x in 0..4 {
            let pos = ChunkPos::new(x, 0);
            store
                .put(Chunk::empty(pos).snapshot(), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(store.write_back_dirty(SimTime::ZERO), 4);
        // A second write-back has nothing to do.
        assert_eq!(store.write_back_dirty(SimTime::ZERO), 0);
        // The remote store now contains the chunks.
        assert_eq!(store.remote_mut().len(), 4);
    }

    #[test]
    fn take_dirty_deltas_reports_only_touched_shards() {
        let mut store = store_with_remote_chunks(0).with_shard_batching(8);
        let pos = ChunkPos::new(3, 7);
        store
            .put(Chunk::empty(pos).snapshot(), SimTime::ZERO)
            .unwrap();
        let deltas = store.take_dirty_deltas();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].shard, shard_index(pos, 8));
        assert_eq!(deltas[0].chunks, vec![pos]);
        assert_eq!(deltas[0].epoch, 1);
        // Taking drains: the set is clean afterwards, and targeted
        // write-back of the taken positions flushes to remote.
        assert!(store.take_dirty_deltas().is_empty());
        assert_eq!(store.write_back(&[pos], SimTime::ZERO), vec![pos]);
        assert_eq!(store.remote_mut().len(), 1);
    }

    #[test]
    fn integrate_arrived_moves_chunks_into_sharded_world() {
        use servo_world::ShardedWorld;
        let mut store = store_with_remote_chunks(3);
        let world = ShardedWorld::new();
        let targets: Vec<ChunkPos> = (0..3)
            .flat_map(|x| (0..3).map(move |z| ChunkPos::new(x, z)))
            .collect();
        store.prefetch(targets.clone(), SimTime::ZERO);
        let integrated = store
            .integrate_arrived(&world, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(integrated, 9);
        assert_eq!(world.loaded_chunks(), 9);
        for pos in &targets {
            assert!(world.is_loaded(*pos));
        }
        // Re-integrating is a no-op: everything is already loaded.
        assert_eq!(
            store
                .integrate_arrived(&world, SimTime::from_secs(11))
                .unwrap(),
            0
        );
    }

    #[test]
    fn write_back_order_is_deterministic() {
        let collect_latency_profile = || {
            let mut store = store_with_remote_chunks(0).with_shard_batching(8);
            for x in 0..12 {
                for z in 0..12 {
                    let pos = ChunkPos::new(x, z);
                    store
                        .put(Chunk::empty(pos).snapshot(), SimTime::ZERO)
                        .unwrap();
                }
            }
            assert_eq!(store.write_back_dirty(SimTime::ZERO), 144);
            store.remote_mut().len()
        };
        assert_eq!(collect_latency_profile(), collect_latency_profile());
    }

    #[test]
    fn hit_rate_reflects_misses() {
        let mut store = store_with_remote_chunks(2);
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 1), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
        store.read(ChunkPos::new(0, 1), SimTime::ZERO).unwrap();
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(store.stats().total_reads(), 4);
        // No slow joins occurred, so the effective rate matches.
        assert_eq!(store.stats().effective_hit_rate(), store.stats().hit_rate());
    }

    #[test]
    fn slow_prefetch_joins_lower_effective_hit_rate() {
        // A ~1 MB object takes >100 ms to transfer on the standard tier, so
        // a join issued at transfer start is guaranteed to wait past one
        // 50 ms simulation step.
        let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
        remote
            .write("terrain/0/0", vec![7u8; 1_000_000], SimTime::ZERO)
            .unwrap();
        let mut store = CachedChunkStore::new(remote, SimRng::seed(2));
        let pos = ChunkPos::new(0, 0);
        store.prefetch([pos], SimTime::ZERO);
        let read = store.read(pos, SimTime::ZERO).unwrap();
        assert_eq!(read.location, ChunkLocation::PrefetchInFlight);
        assert!(read.latency > TICK_BUDGET, "wait {:?}", read.latency);
        let stats = store.stats();
        assert_eq!(stats.prefetch_joins, 1);
        assert_eq!(stats.slow_prefetch_joins, 1);
        assert_eq!(stats.hit_rate(), 1.0);
        assert_eq!(stats.effective_hit_rate(), 0.0);
    }
}

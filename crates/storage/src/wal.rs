//! A write-ahead delta log for staged-but-unflushed terrain.
//!
//! The periodic write-back policy (Section III-E) leaves a window between a
//! chunk being modified and its bytes reaching remote storage. A zone server
//! that crashes inside that window would silently lose every staged chunk —
//! the modifications exist only in its memory. The [`DeltaWal`] closes the
//! window: every position staged for write-back is appended here *with the
//! chunk bytes captured at staging time*, and records are truncated only
//! once the corresponding write-back has durably landed. The log models a
//! durable device that survives the zone server (a replicated log service or
//! attached journal volume), so crash recovery replays it to rebuild the
//! staged-but-unflushed state.
//!
//! Replay semantics are last-writer-wins per chunk: records carry a
//! monotone sequence number, and [`DeltaWal::replay_shard`] keeps only the
//! highest-sequence record per position. Replay is therefore idempotent and
//! insensitive to record order — properties the `wal_semantics` proptest
//! suite pins down.

use std::sync::{Arc, Mutex};

use servo_types::ChunkPos;
use servo_world::{shard_index, ShardDelta};

/// One logged staging event: the chunk's bytes as they were when the
/// position entered the write-back working set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The chunk's position.
    pub pos: ChunkPos,
    /// Monotone append sequence; higher wins on replay.
    pub seq: u64,
    /// The chunk's serialized bytes at staging time.
    pub bytes: Vec<u8>,
}

/// The per-zone write-ahead delta log. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct DeltaWal {
    shard_count: usize,
    next_seq: u64,
    /// Per-shard record logs, in append order.
    shards: Vec<Vec<WalRecord>>,
    appended: u64,
    truncated: u64,
}

impl DeltaWal {
    /// Creates an empty log partitioned like a world with `shard_count`
    /// shards (clamped to a power of two, matching [`shard_index`]).
    pub fn new(shard_count: usize) -> Self {
        let shard_count = shard_count.clamp(1, 1 << 10).next_power_of_two();
        DeltaWal {
            shard_count,
            next_seq: 0,
            shards: (0..shard_count).map(|_| Vec::new()).collect(),
            appended: 0,
            truncated: 0,
        }
    }

    /// The number of shards the log is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Appends a staging event for `pos`, stamping and returning its
    /// sequence number.
    pub fn append(&mut self, pos: ChunkPos, bytes: Vec<u8>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.appended += 1;
        self.shards[shard_index(pos, self.shard_count)].push(WalRecord { pos, seq, bytes });
        seq
    }

    /// Ingests a record with an explicit sequence number (tests and
    /// cross-log merges); future appends stamp past it.
    pub fn ingest(&mut self, record: WalRecord) {
        self.next_seq = self.next_seq.max(record.seq + 1);
        self.appended += 1;
        self.shards[shard_index(record.pos, self.shard_count)].push(record);
    }

    /// The highest sequence number logged for `pos`, if any record remains.
    pub fn latest_seq(&self, pos: ChunkPos) -> Option<u64> {
        self.shards[shard_index(pos, self.shard_count)]
            .iter()
            .filter(|r| r.pos == pos)
            .map(|r| r.seq)
            .max()
    }

    /// Truncates `pos`'s records with sequence `<= through_seq` — the
    /// write-back that made them durable has completed. Records appended
    /// *after* the flushed snapshot was taken keep their place: truncation
    /// never drops an unflushed delta. Returns how many records dropped.
    pub fn truncate(&mut self, pos: ChunkPos, through_seq: u64) -> usize {
        let shard = &mut self.shards[shard_index(pos, self.shard_count)];
        let before = shard.len();
        shard.retain(|r| r.pos != pos || r.seq > through_seq);
        let dropped = before - shard.len();
        self.truncated += dropped as u64;
        dropped
    }

    /// Replays one shard's log: the surviving record per position with the
    /// highest sequence number, sorted by `(x, z)`. Replaying a replay (or
    /// any permutation of the same records) yields the same result.
    pub fn replay_shard(&self, shard: usize) -> Vec<WalRecord> {
        let Some(records) = self.shards.get(shard) else {
            return Vec::new();
        };
        let mut latest: std::collections::HashMap<ChunkPos, &WalRecord> = Default::default();
        for record in records {
            match latest.get(&record.pos) {
                Some(existing) if existing.seq >= record.seq => {}
                _ => {
                    latest.insert(record.pos, record);
                }
            }
        }
        let mut out: Vec<WalRecord> = latest.into_values().cloned().collect();
        out.sort_by_key(|r| (r.pos.x, r.pos.z));
        out
    }

    /// The recoverable delta for `shard`: every position with a surviving
    /// record, as one [`ShardDelta`] whose epoch is the highest surviving
    /// sequence. `None` when the shard's log is empty.
    pub fn delta(&self, shard: usize) -> Option<ShardDelta> {
        let replay = self.replay_shard(shard);
        if replay.is_empty() {
            return None;
        }
        Some(ShardDelta {
            shard,
            epoch: replay.iter().map(|r| r.seq).max().unwrap_or(0),
            chunks: replay.iter().map(|r| r.pos).collect(),
        })
    }

    /// The raw surviving records of one shard, in append order.
    pub fn records(&self, shard: usize) -> &[WalRecord] {
        self.shards.get(shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total surviving records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether no records survive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime number of records appended (including ingested ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Lifetime number of records truncated after durable write-back.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }
}

/// A cloneable handle sharing one [`DeltaWal`] between the per-shard
/// segments of a `PipelinedChunkService` and the cluster that owns the
/// zone: the cluster keeps a clone so the log outlives a crashed zone's
/// pipeline, exactly like a durable log device would. The lock is a leaf —
/// taken briefly inside a segment's staging or write-back step, never
/// around another lock.
#[derive(Debug, Clone)]
pub struct SharedWal(Arc<Mutex<DeltaWal>>);

impl SharedWal {
    /// Creates a shared log for `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        SharedWal(Arc::new(Mutex::new(DeltaWal::new(shard_count))))
    }

    /// Runs `f` with the log (briefly locks it).
    pub fn with<T>(&self, f: impl FnOnce(&mut DeltaWal) -> T) -> T {
        let mut wal = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut wal)
    }

    /// See [`DeltaWal::append`].
    pub fn append(&self, pos: ChunkPos, bytes: Vec<u8>) -> u64 {
        self.with(|wal| wal.append(pos, bytes))
    }

    /// See [`DeltaWal::latest_seq`].
    pub fn latest_seq(&self, pos: ChunkPos) -> Option<u64> {
        self.with(|wal| wal.latest_seq(pos))
    }

    /// See [`DeltaWal::truncate`].
    pub fn truncate(&self, pos: ChunkPos, through_seq: u64) -> usize {
        self.with(|wal| wal.truncate(pos, through_seq))
    }

    /// See [`DeltaWal::replay_shard`].
    pub fn replay_shard(&self, shard: usize) -> Vec<WalRecord> {
        self.with(|wal| wal.replay_shard(shard))
    }

    /// See [`DeltaWal::delta`].
    pub fn delta(&self, shard: usize) -> Option<ShardDelta> {
        self.with(|wal| wal.delta(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(x: i32, z: i32) -> ChunkPos {
        ChunkPos::new(x, z)
    }

    #[test]
    fn append_stamps_monotone_sequences() {
        let mut wal = DeltaWal::new(4);
        let a = wal.append(pos(0, 0), vec![1]);
        let b = wal.append(pos(1, 0), vec![2]);
        assert!(b > a);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.appended(), 2);
    }

    #[test]
    fn replay_is_last_writer_wins_per_chunk() {
        let mut wal = DeltaWal::new(1);
        wal.append(pos(0, 0), vec![1]);
        wal.append(pos(0, 0), vec![2]);
        wal.append(pos(1, 0), vec![9]);
        let replay = wal.replay_shard(0);
        assert_eq!(replay.len(), 2);
        let winner = replay.iter().find(|r| r.pos == pos(0, 0)).unwrap();
        assert_eq!(winner.bytes, vec![2]);
    }

    #[test]
    fn truncate_through_flushed_seq_keeps_later_appends() {
        let mut wal = DeltaWal::new(1);
        let flushed = wal.append(pos(0, 0), vec![1]);
        let later = wal.append(pos(0, 0), vec![2]);
        assert_eq!(wal.truncate(pos(0, 0), flushed), 1);
        assert_eq!(wal.latest_seq(pos(0, 0)), Some(later));
        let replay = wal.replay_shard(0);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].bytes, vec![2]);
    }

    #[test]
    fn delta_reports_surviving_positions() {
        let mut wal = DeltaWal::new(4);
        wal.append(pos(0, 0), vec![1]);
        let shard = shard_index(pos(0, 0), 4);
        let delta = wal.delta(shard).unwrap();
        assert_eq!(delta.shard, shard);
        assert_eq!(delta.chunks, vec![pos(0, 0)]);
        wal.truncate(pos(0, 0), u64::MAX);
        assert!(wal.delta(shard).is_none());
        assert!(wal.is_empty());
    }
}

//! Object-store backends and their latency models.

use std::collections::HashMap;

use servo_simkit::{Distribution, LatencyModel, SimRng};
use servo_types::{ServoError, SimDuration, SimTime};

/// The outcome of a successful read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// The stored bytes.
    pub data: Vec<u8>,
    /// End-to-end latency of the read as observed by the game server.
    pub latency: SimDuration,
    /// The instant the data is available to the caller.
    pub completed_at: SimTime,
}

/// The outcome of a successful write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteResult {
    /// End-to-end latency of the write.
    pub latency: SimDuration,
    /// The instant the write is durable.
    pub completed_at: SimTime,
}

/// A key-value object store with latency-modelled operations.
///
/// Implementations store real bytes; only the *timing* is synthetic, which
/// keeps the code path identical to a production backend (serialize, write,
/// read, deserialize) while making experiments reproducible.
pub trait ObjectStore {
    /// Reads the object at `key`, starting at instant `now`.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::NotFound`] if the key does not exist and
    /// [`ServoError::StorageFailed`] on injected faults.
    fn read(&mut self, key: &str, now: SimTime) -> Result<ReadResult, ServoError>;

    /// Writes `data` at `key`, starting at instant `now`.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::StorageFailed`] on injected faults.
    fn write(&mut self, key: &str, data: Vec<u8>, now: SimTime) -> Result<WriteResult, ServoError>;

    /// Whether an object exists at `key` (no latency accounted).
    fn contains(&self, key: &str) -> bool;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// Whether the store holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short name for experiment output.
    fn name(&self) -> &'static str;
}

/// Local disk storage: the baseline the paper compares managed storage
/// against in Figure 13 (99.9% of requests within 16 ms, outliers only
/// during boot).
#[derive(Debug, Clone)]
pub struct LocalDiskStore {
    objects: HashMap<String, Vec<u8>>,
    rng: SimRng,
    latency: LatencyModel,
    boot_latency: LatencyModel,
    /// Reads served so far; the first few pay the boot penalty.
    reads: u64,
    boot_reads: u64,
    fail_next: Option<String>,
}

impl LocalDiskStore {
    /// Creates a local-disk store.
    pub fn new(rng: SimRng) -> Self {
        LocalDiskStore {
            objects: HashMap::new(),
            rng,
            // Body ~1.5 ms, 99.9p well under 16 ms.
            latency: LatencyModel::new(1.5, 0.45)
                .with_outliers(0.0005, 10.0, 3.0)
                .with_ceiling(16.0),
            // Cold page cache / JIT during boot: up to ~123 ms.
            boot_latency: LatencyModel::new(35.0, 0.5).with_ceiling(123.0),
            reads: 0,
            boot_reads: 12,
            fail_next: None,
        }
    }

    /// Injects a failure: the next operation returns
    /// [`ServoError::StorageFailed`] with the given reason.
    pub fn inject_failure(&mut self, reason: impl Into<String>) {
        self.fail_next = Some(reason.into());
    }
}

impl ObjectStore for LocalDiskStore {
    fn read(&mut self, key: &str, now: SimTime) -> Result<ReadResult, ServoError> {
        if let Some(reason) = self.fail_next.take() {
            return Err(ServoError::storage_failed(reason));
        }
        let data = self
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| ServoError::not_found(format!("object {key}")))?;
        self.reads += 1;
        let model = if self.reads <= self.boot_reads {
            &self.boot_latency
        } else {
            &self.latency
        };
        let latency = model.sample(&mut self.rng);
        Ok(ReadResult {
            data,
            latency,
            completed_at: now + latency,
        })
    }

    fn write(&mut self, key: &str, data: Vec<u8>, now: SimTime) -> Result<WriteResult, ServoError> {
        if let Some(reason) = self.fail_next.take() {
            return Err(ServoError::storage_failed(reason));
        }
        self.objects.insert(key.to_string(), data);
        let latency = self.latency.sample(&mut self.rng);
        Ok(WriteResult {
            latency,
            completed_at: now + latency,
        })
    }

    fn contains(&self, key: &str) -> bool {
        self.objects.contains_key(key)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// Deterministic transient-failure rates for a [`BlobStore`], driven by a
/// dedicated [`SimRng`] substream so an armed-but-zero-rate profile leaves
/// the store's latency stream — and therefore every derived statistic —
/// untouched. Failed operations consume no latency sample and do not count
/// toward the read/write counters, matching the single-shot
/// [`BlobStore::inject_failure`] behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability in `[0, 1]` that a read fails transiently.
    pub read_fail_rate: f64,
    /// Probability in `[0, 1]` that a write fails transiently.
    pub write_fail_rate: f64,
}

impl FaultProfile {
    /// A profile that never fails (useful as a default arm in sweeps).
    pub fn none() -> Self {
        FaultProfile {
            read_fail_rate: 0.0,
            write_fail_rate: 0.0,
        }
    }
}

/// The service tier of the blob store, matching the Premium/Standard plans
/// compared in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlobTier {
    /// The cheaper plan with higher and more variable latency.
    Standard,
    /// The SSD-backed plan with lower latency and higher throughput.
    Premium,
}

/// Serverless blob storage (Azure Blob Storage / AWS S3 class).
///
/// Latency is a per-request base (log-normal body with a heavy tail) plus a
/// size-dependent transfer time, so small player-data objects are quick
/// while multi-hundred-kilobyte terrain objects take hundreds of
/// milliseconds on the Standard tier — the contrast shown in Figure 3.
#[derive(Debug, Clone)]
pub struct BlobStore {
    objects: HashMap<String, Vec<u8>>,
    rng: SimRng,
    tier: BlobTier,
    base_latency: LatencyModel,
    /// Sustained download throughput in bytes per millisecond.
    throughput_bytes_per_ms: f64,
    fail_next: Option<String>,
    /// Transient fault injection: rates plus a dedicated RNG, armed via
    /// [`BlobStore::with_faults`]. Kept separate from the latency RNG so an
    /// unarmed store's streams are bit-identical to a pre-fault build.
    faults: Option<(FaultProfile, SimRng)>,
    /// Counters for experiment output.
    reads: u64,
    writes: u64,
}

impl BlobStore {
    /// Creates a blob store of the given tier.
    pub fn new(tier: BlobTier, rng: SimRng) -> Self {
        let (base_latency, throughput_bytes_per_ms) = match tier {
            // Body median ~8 ms, 99.9p ~226 ms, outliers to ~500 ms
            // (Figure 13, "Serverless" curve).
            BlobTier::Standard => (
                LatencyModel::new(8.0, 0.55)
                    .with_outliers(0.0035, 120.0, 1.9)
                    .with_ceiling(520.0),
                9_000.0, // ~9 MB/s
            ),
            BlobTier::Premium => (
                LatencyModel::new(4.0, 0.4)
                    .with_outliers(0.0015, 60.0, 2.2)
                    .with_ceiling(260.0),
                28_000.0, // ~28 MB/s
            ),
        };
        BlobStore {
            objects: HashMap::new(),
            rng,
            tier,
            base_latency,
            throughput_bytes_per_ms,
            fail_next: None,
            faults: None,
            reads: 0,
            writes: 0,
        }
    }

    /// Arms deterministic transient faults: each read (write) independently
    /// fails with the profile's rate, sampled from `rng`. Use a dedicated
    /// substream (e.g. `rng.substream("faults")`) — the latency RNG stays
    /// untouched either way.
    pub fn with_faults(mut self, profile: FaultProfile, rng: SimRng) -> Self {
        self.faults = Some((profile, rng));
        self
    }

    fn transient_fault(&mut self, is_read: bool) -> bool {
        match &mut self.faults {
            Some((profile, rng)) => {
                let rate = if is_read {
                    profile.read_fail_rate
                } else {
                    profile.write_fail_rate
                };
                rate > 0.0 && rng.unit() < rate
            }
            None => false,
        }
    }

    /// The tier this store was created with.
    pub fn tier(&self) -> BlobTier {
        self.tier
    }

    /// Number of read operations served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write operations served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Every stored key, sorted (no latency accounted) — audit surface for
    /// ownership tests and recovery tooling.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.objects.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Injects a failure: the next operation returns
    /// [`ServoError::StorageFailed`] with the given reason.
    pub fn inject_failure(&mut self, reason: impl Into<String>) {
        self.fail_next = Some(reason.into());
    }

    fn transfer_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_millis_f64(bytes as f64 / self.throughput_bytes_per_ms)
    }
}

impl ObjectStore for BlobStore {
    fn read(&mut self, key: &str, now: SimTime) -> Result<ReadResult, ServoError> {
        if let Some(reason) = self.fail_next.take() {
            return Err(ServoError::storage_failed(reason));
        }
        if self.transient_fault(true) {
            return Err(ServoError::storage_failed("transient blob read fault"));
        }
        let data = self
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| ServoError::not_found(format!("object {key}")))?;
        self.reads += 1;
        let latency = self.base_latency.sample(&mut self.rng) + self.transfer_time(data.len());
        Ok(ReadResult {
            completed_at: now + latency,
            latency,
            data,
        })
    }

    fn write(&mut self, key: &str, data: Vec<u8>, now: SimTime) -> Result<WriteResult, ServoError> {
        if let Some(reason) = self.fail_next.take() {
            return Err(ServoError::storage_failed(reason));
        }
        if self.transient_fault(false) {
            return Err(ServoError::storage_failed("transient blob write fault"));
        }
        self.writes += 1;
        let latency = self.base_latency.sample(&mut self.rng) + self.transfer_time(data.len());
        self.objects.insert(key.to_string(), data);
        Ok(WriteResult {
            latency,
            completed_at: now + latency,
        })
    }

    fn contains(&self, key: &str) -> bool {
        self.objects.contains_key(key)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn name(&self) -> &'static str {
        match self.tier {
            BlobTier::Standard => "blob-standard",
            BlobTier::Premium => "blob-premium",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_metrics_helpers::percentile_ms;

    /// Tiny local helper: percentile of read latencies in milliseconds.
    mod servo_metrics_helpers {
        use super::*;
        pub fn percentile_ms(mut samples: Vec<f64>, q: f64) -> f64 {
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[idx]
        }
        pub fn collect_read_latencies<S: ObjectStore>(
            store: &mut S,
            key: &str,
            n: usize,
        ) -> Vec<f64> {
            let mut out = Vec::with_capacity(n);
            let mut now = SimTime::ZERO;
            for _ in 0..n {
                let r = store.read(key, now).unwrap();
                now = r.completed_at;
                out.push(r.latency.as_millis_f64());
            }
            out
        }
    }
    use servo_metrics_helpers::collect_read_latencies;

    #[test]
    fn read_returns_written_bytes() {
        let mut store = LocalDiskStore::new(SimRng::seed(1));
        assert!(store.is_empty());
        store.write("a", vec![9, 9, 9], SimTime::ZERO).unwrap();
        let r = store.read("a", SimTime::ZERO).unwrap();
        assert_eq!(r.data, vec![9, 9, 9]);
        assert_eq!(store.len(), 1);
        assert!(store.contains("a"));
    }

    #[test]
    fn missing_key_is_not_found() {
        let mut store = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
        let err = store.read("missing", SimTime::ZERO).unwrap_err();
        assert!(matches!(err, ServoError::NotFound { .. }));
    }

    #[test]
    fn injected_failures_surface_once() {
        let mut store = LocalDiskStore::new(SimRng::seed(1));
        store.write("a", vec![1], SimTime::ZERO).unwrap();
        store.inject_failure("disk offline");
        assert!(store.read("a", SimTime::ZERO).is_err());
        assert!(store.read("a", SimTime::ZERO).is_ok());

        let mut blob = BlobStore::new(BlobTier::Premium, SimRng::seed(1));
        blob.inject_failure("throttled");
        assert!(blob.write("k", vec![0], SimTime::ZERO).is_err());
        assert!(blob.write("k", vec![0], SimTime::ZERO).is_ok());
    }

    #[test]
    fn local_disk_tail_is_tight_after_boot() {
        let mut store = LocalDiskStore::new(SimRng::seed(7));
        store
            .write("chunk", vec![0u8; 20_000], SimTime::ZERO)
            .unwrap();
        let latencies = collect_read_latencies(&mut store, "chunk", 5_000);
        // Ignore the boot reads, as the paper does when explaining outliers.
        let steady = latencies[20..].to_vec();
        assert!(percentile_ms(steady.clone(), 0.999) <= 16.0);
        // Boot reads are visibly slower.
        assert!(latencies[..10].iter().cloned().fold(0.0, f64::max) > 16.0);
    }

    #[test]
    fn blob_standard_has_heavy_tail() {
        let mut store = BlobStore::new(BlobTier::Standard, SimRng::seed(3));
        store
            .write("chunk", vec![0u8; 20_000], SimTime::ZERO)
            .unwrap();
        let latencies = collect_read_latencies(&mut store, "chunk", 8_000);
        let p999 = percentile_ms(latencies.clone(), 0.999);
        let p50 = percentile_ms(latencies, 0.5);
        assert!(p999 > 100.0, "99.9p was {p999}");
        assert!(p50 < 30.0, "median was {p50}");
    }

    #[test]
    fn premium_is_faster_than_standard_for_large_objects() {
        let big = vec![0u8; 2_000_000];
        let mut standard = BlobStore::new(BlobTier::Standard, SimRng::seed(5));
        let mut premium = BlobStore::new(BlobTier::Premium, SimRng::seed(5));
        standard
            .write("terrain", big.clone(), SimTime::ZERO)
            .unwrap();
        premium.write("terrain", big, SimTime::ZERO).unwrap();
        let s: f64 = collect_read_latencies(&mut standard, "terrain", 50)
            .iter()
            .sum();
        let p: f64 = collect_read_latencies(&mut premium, "terrain", 50)
            .iter()
            .sum();
        assert!(s > 2.0 * p, "standard {s} premium {p}");
        assert_eq!(standard.reads(), 50);
    }

    #[test]
    fn large_objects_take_longer_than_small_ones() {
        let mut store = BlobStore::new(BlobTier::Standard, SimRng::seed(9));
        store
            .write("player", vec![0u8; 2_000], SimTime::ZERO)
            .unwrap();
        store
            .write("terrain", vec![0u8; 2_000_000], SimTime::ZERO)
            .unwrap();
        let small: f64 = collect_read_latencies(&mut store, "player", 100)
            .iter()
            .sum();
        let large: f64 = collect_read_latencies(&mut store, "terrain", 100)
            .iter()
            .sum();
        assert!(large > small * 3.0);
    }

    #[test]
    fn store_names_are_distinct() {
        assert_eq!(LocalDiskStore::new(SimRng::seed(1)).name(), "local");
        assert_eq!(
            BlobStore::new(BlobTier::Standard, SimRng::seed(1)).name(),
            "blob-standard"
        );
        assert_eq!(
            BlobStore::new(BlobTier::Premium, SimRng::seed(1)).name(),
            "blob-premium"
        );
        assert_eq!(
            BlobStore::new(BlobTier::Premium, SimRng::seed(1)).tier(),
            BlobTier::Premium
        );
    }
}

//! Voxel world substrate.
//!
//! A modifiable virtual environment's terrain is a grid of blocks organised
//! in 16 x 16 x 256 chunks (the paper's Section II-A and IV-D). This crate
//! provides the block vocabulary ([`Block`]), the chunk container
//! ([`Chunk`]) with a compact run-length serialization, the in-memory
//! [`World`] with chunk lifecycle management, and view-distance helpers used
//! by terrain generation and storage experiments.
//!
//! # Example
//!
//! ```
//! use servo_world::{Block, World};
//! use servo_types::BlockPos;
//!
//! let mut world = World::flat(4); // flat bedrock/dirt/grass world, ground at y=4
//! world.ensure_chunk_at(BlockPos::new(10, 0, 10).into());
//! world.set_block(BlockPos::new(10, 5, 10), Block::Lamp).unwrap();
//! assert_eq!(world.block(BlockPos::new(10, 5, 10)), Some(Block::Lamp));
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod chunk;
pub mod partition;
pub mod rebalance;
pub mod sharded;
pub mod store;
pub mod view;
pub mod world;

pub use block::Block;
pub use chunk::{Chunk, ChunkSnapshot};
pub use partition::ShardMap;
pub use rebalance::{
    ConstructFootprint, ConstructMigration, RebalanceConfig, RebalancePolicy, ShardMigration,
    ZoneLoadSample,
};
pub use sharded::{
    chunk_hash, shard_index, FxBuildHasher, FxHasher, ShardDelta, ShardedWorld, WorldSink,
    DEFAULT_SHARDS,
};
pub use store::{ChunkStore, ChunkWriter, LockFreeStore, RwLockStore};
pub use view::{missing_chunks, nearest_missing_distance_blocks, required_chunks, ChunkIndex};
pub use world::{World, WorldKind};

//! Dynamic zone rebalancing: deciding *when* to migrate shards and *which*.
//!
//! The paper's zoning model assumes a static chunk→zone assignment, but its
//! own QoS analysis makes the cluster's critical path the most loaded
//! zone's tick — so a player hotspot that happens to concentrate inside one
//! zone's shards leaves the other zones idle while the hot one violates
//! QoS. The [`RebalancePolicy`] watches per-zone load samples (fed back
//! from the cluster's tick breakdown) together with per-shard *heat*
//! (avatars standing in a shard's chunks plus the dirty volume its chunks
//! produce) and, when the hottest zone's smoothed load pulls far enough
//! away from the mean, proposes a bounded batch of [`ShardMigration`]s that
//! greedily re-packs the hot zone's hottest shards onto the coldest zones.
//!
//! The policy is *pure decision-making*: it never touches a
//! [`ShardMap`] and never performs a migration itself. The
//! cluster layer applies the proposals at a tick boundary (quiescing
//! persistence, transferring chunks and constructs, re-routing avatars) and
//! charges the migration storm to its message accounting. A policy that
//! never proposes anything leaves the cluster bit-for-bit on the static
//! path — the zero-migration equivalence the cluster test suite asserts.
//!
//! Everything here is deterministic: observations are folded into
//! exponentially weighted moving averages with fixed coefficients, and all
//! ties (hottest zone, hottest shard, coldest destination) break towards
//! the lowest index.

use crate::partition::ShardMap;

/// One zone's share of a cluster tick, as fed back to the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneLoadSample {
    /// The zone the sample describes.
    pub zone: usize,
    /// The zone's tick cost in milliseconds — simulation plus the
    /// cross-zone coordination charged to it (its contribution to the
    /// cluster's critical path).
    pub load_ms: f64,
    /// Avatars the zone simulated this tick.
    pub avatars: usize,
}

/// One proposed shard ownership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMigration {
    /// The shard to move.
    pub shard: usize,
    /// The zone that owned the shard when the proposal was made. The
    /// applier revalidates this against the live map, so a stale proposal
    /// is dropped instead of moving the wrong zone's shard.
    pub from: usize,
    /// The destination zone.
    pub to: usize,
}

/// One proposed construct ownership change — moving a *border construct*
/// (not a shard) to the zone that owns the majority of its blocks, so the
/// per-simulated-tick border exchange for it stops crossing that seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructMigration {
    /// The cluster's registry index of the construct to move.
    pub index: usize,
    /// The zone that owned the construct when the proposal was made; the
    /// applier revalidates against the live registry, dropping stale
    /// proposals.
    pub from: usize,
    /// The destination zone — the majority owner of the construct's
    /// blocks.
    pub to: usize,
}

/// One border construct's per-zone block footprint, as the cluster feeds
/// it to [`RebalancePolicy::observe_border_traffic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructFootprint {
    /// The cluster's registry index of the construct.
    pub index: usize,
    /// The zone currently simulating the construct.
    pub zone: usize,
    /// `(zone, blocks)` pairs counting how many of the construct's blocks
    /// each involved zone owns, ascending by zone.
    pub zone_blocks: Vec<(usize, u32)>,
}

/// Tuning knobs of the [`RebalancePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Ticks between decision evaluations (observations are folded in
    /// every tick regardless).
    pub evaluate_every: u64,
    /// Observations required before the first decision — lets the EWMAs
    /// settle so a single noisy tick cannot trigger a storm.
    pub warmup_ticks: u64,
    /// Ticks after a proposed batch during which no further batch is
    /// proposed, bounding migration churn while handoffs settle.
    pub cooldown_ticks: u64,
    /// The hottest zone must exceed `trigger_ratio` times the mean zone
    /// load before a batch is proposed.
    pub trigger_ratio: f64,
    /// The hottest zone must also exceed the coldest by this many
    /// milliseconds — keeps idle clusters (everyone near zero) stable.
    pub min_gap_ms: f64,
    /// Upper bound on migrations per proposed batch (the storm bound).
    pub max_migrations_per_step: usize,
    /// EWMA coefficient for both zone loads and shard heat, in `0..=1`;
    /// higher reacts faster.
    pub smoothing: f64,
    /// Heat contribution of one dirty chunk relative to one avatar.
    pub dirty_weight: f64,
    /// Makes border-traffic a rebalancing objective: when set, the policy
    /// also proposes [`ConstructMigration`]s through
    /// [`RebalancePolicy::observe_border_traffic`], moving each border
    /// construct towards the zone owning the majority of its blocks. Off
    /// by default, so existing clusters (and the zero-migration
    /// equivalence proofs) are untouched.
    pub border_traffic: bool,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            evaluate_every: 10,
            warmup_ticks: 40,
            cooldown_ticks: 60,
            trigger_ratio: 1.35,
            min_gap_ms: 2.0,
            max_migrations_per_step: 4,
            smoothing: 0.2,
            dirty_weight: 0.05,
            border_traffic: false,
        }
    }
}

/// The shard-migration decision maker. Feed it one observation per cluster
/// tick via [`RebalancePolicy::observe`]; it returns a (usually empty)
/// batch of migrations for the cluster to apply.
///
/// # Example
///
/// ```
/// use servo_world::{RebalanceConfig, RebalancePolicy, ShardMap, ZoneLoadSample};
///
/// let map = ShardMap::contiguous(16, 2);
/// let mut policy = RebalancePolicy::new(RebalanceConfig {
///     warmup_ticks: 2,
///     evaluate_every: 1,
///     ..RebalanceConfig::default()
/// });
/// // Zone 0 carries all the load; its shard 0 holds all the avatars.
/// let mut shard_avatars = vec![0u32; 16];
/// shard_avatars[0] = 30;
/// let zones = [
///     ZoneLoadSample { zone: 0, load_ms: 20.0, avatars: 30 },
///     ZoneLoadSample { zone: 1, load_ms: 2.0, avatars: 0 },
/// ];
/// let mut proposed = Vec::new();
/// for _ in 0..8 {
///     proposed.extend(policy.observe(&map, &zones, &shard_avatars, &[0; 16]));
/// }
/// // A hot single shard cannot be split: the policy moves nothing, because
/// // moving the only hot shard would just relocate the hotspot.
/// assert!(proposed.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    config: RebalanceConfig,
    /// Smoothed per-zone load in milliseconds.
    zone_load: Vec<f64>,
    /// Smoothed per-shard heat (avatars + weighted dirty volume).
    shard_heat: Vec<f64>,
    ticks_observed: u64,
    cooldown_remaining: u64,
    proposed_batches: u64,
}

impl RebalancePolicy {
    /// Creates a policy with the given tuning.
    pub fn new(config: RebalanceConfig) -> Self {
        RebalancePolicy {
            config: RebalanceConfig {
                smoothing: config.smoothing.clamp(0.0, 1.0),
                max_migrations_per_step: config.max_migrations_per_step,
                evaluate_every: config.evaluate_every.max(1),
                ..config
            },
            zone_load: Vec::new(),
            shard_heat: Vec::new(),
            ticks_observed: 0,
            cooldown_remaining: 0,
            proposed_batches: 0,
        }
    }

    /// A policy that observes but never proposes a migration — the
    /// rebalance-enabled configuration that must be tick-for-tick identical
    /// to a static cluster (asserted by the cluster equivalence suite).
    pub fn never() -> Self {
        RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: u64::MAX,
            ..RebalanceConfig::default()
        })
    }

    /// The policy's tuning.
    pub fn config(&self) -> RebalanceConfig {
        self.config
    }

    /// Number of migration batches proposed so far.
    pub fn proposed_batches(&self) -> u64 {
        self.proposed_batches
    }

    /// Folds in one cluster tick's observation and returns the migrations
    /// to apply at this tick boundary (usually none).
    ///
    /// `zones` carries one load sample per zone (order and completeness do
    /// not matter; zones without a sample keep their smoothed value).
    /// `shard_avatars[s]` counts the avatars currently standing in shard
    /// `s`'s chunks and `shard_dirty[s]` the dirty chunks shard `s`
    /// produced since the previous observation; slices shorter than the
    /// map's shard count are treated as zero-padded.
    pub fn observe(
        &mut self,
        map: &ShardMap,
        zones: &[ZoneLoadSample],
        shard_avatars: &[u32],
        shard_dirty: &[u64],
    ) -> Vec<ShardMigration> {
        let zone_count = map.zones();
        let shard_count = map.shard_count();
        self.zone_load.resize(zone_count, 0.0);
        self.shard_heat.resize(shard_count, 0.0);
        let alpha = self.config.smoothing;
        for sample in zones {
            if sample.zone < zone_count {
                let slot = &mut self.zone_load[sample.zone];
                *slot += alpha * (sample.load_ms - *slot);
            }
        }
        for shard in 0..shard_count {
            let avatars = shard_avatars.get(shard).copied().unwrap_or(0) as f64;
            let dirty = shard_dirty.get(shard).copied().unwrap_or(0) as f64;
            let heat = avatars + self.config.dirty_weight * dirty;
            let slot = &mut self.shard_heat[shard];
            *slot += alpha * (heat - *slot);
        }
        self.ticks_observed += 1;
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            return Vec::new();
        }
        if zone_count < 2
            || self.ticks_observed < self.config.warmup_ticks
            || !self
                .ticks_observed
                .is_multiple_of(self.config.evaluate_every)
        {
            return Vec::new();
        }

        // Trigger: the hottest zone's smoothed load must stand clearly
        // above both the mean and the coldest zone.
        let mean = self.zone_load.iter().sum::<f64>() / zone_count as f64;
        let (hot, &hot_load) = self
            .zone_load
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .expect("at least two zones");
        let cold_load = self.zone_load.iter().cloned().fold(f64::INFINITY, f64::min);
        if hot_load < self.config.trigger_ratio * mean
            || hot_load - cold_load < self.config.min_gap_ms
        {
            return Vec::new();
        }

        // Greedy re-pack: move the hot zone's hottest shards onto the
        // currently coldest zones (by accumulated shard heat), while each
        // move strictly improves the pair and the hot zone stays above its
        // fair share. Heat — not milliseconds — is the packing unit because
        // it is the only per-shard signal; the ms trigger above decides
        // *whether* to act, heat decides *what* to move.
        let mut zone_heat = vec![0.0f64; zone_count];
        for shard in 0..shard_count {
            zone_heat[map.zone_of_shard(shard)] += self.shard_heat[shard];
        }
        let fair_share = zone_heat.iter().sum::<f64>() / zone_count as f64;
        let mut candidates: Vec<usize> = map
            .zone_shards(hot)
            .into_iter()
            .filter(|&s| self.shard_heat[s] > 0.0)
            .collect();
        // Hottest first; ties towards the lowest shard index.
        candidates.sort_by(|&a, &b| {
            self.shard_heat[b]
                .partial_cmp(&self.shard_heat[a])
                .unwrap()
                .then(a.cmp(&b))
        });
        let mut migrations = Vec::new();
        for shard in candidates {
            if migrations.len() >= self.config.max_migrations_per_step
                || zone_heat[hot] <= fair_share
            {
                break;
            }
            let heat = self.shard_heat[shard];
            let (dest, &dest_heat) = zone_heat
                .iter()
                .enumerate()
                .filter(|&(z, _)| z != hot)
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                .expect("at least two zones");
            // Skip moves that merely relocate the hotspot: the destination
            // must end up cooler than the source currently is.
            if dest_heat + heat >= zone_heat[hot] {
                continue;
            }
            zone_heat[hot] -= heat;
            zone_heat[dest] += heat;
            migrations.push(ShardMigration {
                shard,
                from: hot,
                to: dest,
            });
        }
        if !migrations.is_empty() {
            self.cooldown_remaining = self.config.cooldown_ticks;
            self.proposed_batches += 1;
        }
        migrations
    }

    /// The border-traffic term: proposes moving border constructs to the
    /// zone owning the majority of their block footprint, so their
    /// per-simulated-tick state exchange stops crossing that seam. Called
    /// by the cluster right after [`RebalancePolicy::observe`] at each tick
    /// boundary, with `budget` migrations left of the shared
    /// `max_migrations_per_step` storm bound (recovery and shard proposals
    /// are served first).
    ///
    /// Inert unless [`RebalanceConfig::border_traffic`] is set, and gated
    /// on the same warmup and evaluation cadence as shard decisions. A
    /// construct is proposed only when another zone owns *strictly more*
    /// of its blocks than the current owner — after the move the owner
    /// *is* the majority, so the term has built-in hysteresis and never
    /// ping-pongs a construct. Candidates are ordered by descending block
    /// advantage (ties towards the lowest registry index), deterministic
    /// like every other decision here.
    pub fn observe_border_traffic(
        &mut self,
        footprints: &[ConstructFootprint],
        budget: usize,
    ) -> Vec<ConstructMigration> {
        if !self.config.border_traffic
            || self.ticks_observed < self.config.warmup_ticks
            || !self
                .ticks_observed
                .is_multiple_of(self.config.evaluate_every)
        {
            return Vec::new();
        }
        let mut candidates: Vec<(u32, ConstructMigration)> = Vec::new();
        for footprint in footprints {
            let owned = footprint
                .zone_blocks
                .iter()
                .find(|(zone, _)| *zone == footprint.zone)
                .map(|&(_, blocks)| blocks)
                .unwrap_or(0);
            let Some(&(majority, blocks)) = footprint
                .zone_blocks
                .iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            else {
                continue;
            };
            if majority == footprint.zone || blocks <= owned {
                continue;
            }
            candidates.push((
                blocks - owned,
                ConstructMigration {
                    index: footprint.index,
                    from: footprint.zone,
                    to: majority,
                },
            ));
        }
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.index.cmp(&b.1.index)));
        candidates
            .into_iter()
            .take(budget.min(self.config.max_migrations_per_step))
            .map(|(_, migration)| migration)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_samples(zones: usize, hot: usize, hot_ms: f64) -> Vec<ZoneLoadSample> {
        (0..zones)
            .map(|zone| ZoneLoadSample {
                zone,
                load_ms: if zone == hot { hot_ms } else { 2.0 },
                avatars: if zone == hot { 60 } else { 0 },
            })
            .collect()
    }

    /// Avatars spread over every shard the hot zone owns.
    fn heat_on_zone(map: &ShardMap, zone: usize, per_shard: u32) -> Vec<u32> {
        let mut avatars = vec![0u32; map.shard_count()];
        for shard in map.zone_shards(zone) {
            avatars[shard] = per_shard;
        }
        avatars
    }

    #[test]
    fn balanced_load_proposes_nothing() {
        let map = ShardMap::contiguous(16, 4);
        let mut policy = RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 1,
            evaluate_every: 1,
            ..RebalanceConfig::default()
        });
        let zones: Vec<ZoneLoadSample> = (0..4)
            .map(|zone| ZoneLoadSample {
                zone,
                load_ms: 5.0,
                avatars: 10,
            })
            .collect();
        let avatars = vec![4u32; 16];
        for _ in 0..100 {
            assert!(policy.observe(&map, &zones, &avatars, &[0; 16]).is_empty());
        }
        assert_eq!(policy.proposed_batches(), 0);
    }

    #[test]
    fn skewed_load_moves_hot_shards_to_cold_zones() {
        let map = ShardMap::contiguous(16, 4);
        let mut policy = RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 5,
            evaluate_every: 1,
            max_migrations_per_step: 8,
            ..RebalanceConfig::default()
        });
        let zones = skewed_samples(4, 0, 30.0);
        let avatars = heat_on_zone(&map, 0, 15);
        let mut proposed = Vec::new();
        for _ in 0..20 {
            proposed.extend(policy.observe(&map, &zones, &avatars, &[0; 16]));
        }
        assert!(!proposed.is_empty(), "policy never fired");
        // Proposals come from the hot zone, towards other zones, and never
        // move more than the batch bound at once.
        for migration in &proposed {
            assert_eq!(migration.from, 0);
            assert_ne!(migration.to, 0);
            assert_eq!(map.zone_of_shard(migration.shard), 0);
        }
        assert!(proposed.len() <= 8);
        // The batch leaves the hot zone at least one shard (4 owned, fair
        // share is a quarter of the heat).
        assert!(proposed.len() < map.zone_shards(0).len() + 1);
        assert_eq!(policy.proposed_batches(), 1, "cooldown did not hold");
    }

    #[test]
    fn dirty_volume_counts_as_heat() {
        let map = ShardMap::contiguous(16, 2);
        let mut policy = RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 5,
            evaluate_every: 1,
            dirty_weight: 1.0,
            max_migrations_per_step: 8,
            ..RebalanceConfig::default()
        });
        // No avatars at all: the skew is pure edit (dirty chunk) volume on
        // the shards of zone 0.
        let mut dirty = vec![0u64; 16];
        for shard in map.zone_shards(0) {
            dirty[shard] = 20;
        }
        let zones = skewed_samples(2, 0, 25.0);
        let mut proposed = Vec::new();
        for _ in 0..20 {
            proposed.extend(policy.observe(&map, &zones, &[0; 16], &dirty));
        }
        assert!(!proposed.is_empty(), "dirty heat never registered");
        assert!(proposed.iter().all(|m| m.from == 0 && m.to == 1));
    }

    #[test]
    fn never_policy_is_inert() {
        let map = ShardMap::contiguous(16, 4);
        let mut policy = RebalancePolicy::never();
        let zones = skewed_samples(4, 0, 500.0);
        let avatars = heat_on_zone(&map, 0, 100);
        for _ in 0..500 {
            assert!(policy.observe(&map, &zones, &avatars, &[0; 16]).is_empty());
        }
    }

    #[test]
    fn cooldown_spaces_out_batches() {
        let map = ShardMap::contiguous(16, 4);
        let mut policy = RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 1,
            evaluate_every: 1,
            cooldown_ticks: 10,
            max_migrations_per_step: 1,
            ..RebalanceConfig::default()
        });
        let zones = skewed_samples(4, 0, 40.0);
        let avatars = heat_on_zone(&map, 0, 15);
        let mut fired_at = Vec::new();
        for tick in 0..40u64 {
            // Apply nothing: the map stays skewed, so without the cooldown
            // every evaluation would fire.
            if !policy.observe(&map, &zones, &avatars, &[0; 16]).is_empty() {
                fired_at.push(tick);
            }
        }
        for pair in fired_at.windows(2) {
            assert!(pair[1] - pair[0] > 10, "batches too close: {fired_at:?}");
        }
    }

    fn footprint(index: usize, zone: usize, zone_blocks: &[(usize, u32)]) -> ConstructFootprint {
        ConstructFootprint {
            index,
            zone,
            zone_blocks: zone_blocks.to_vec(),
        }
    }

    /// A warmed-up policy with the border-traffic term armed.
    fn traffic_policy() -> RebalancePolicy {
        let map = ShardMap::contiguous(16, 2);
        let mut policy = RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 1,
            evaluate_every: 1,
            border_traffic: true,
            ..RebalanceConfig::default()
        });
        policy.observe(&map, &[], &[], &[]);
        policy
    }

    #[test]
    fn traffic_term_moves_constructs_to_their_majority_zone() {
        let mut policy = traffic_policy();
        let footprints = vec![
            // Majority elsewhere: proposed, towards zone 1.
            footprint(0, 0, &[(0, 6), (1, 8)]),
            // Already home with the majority: untouched (hysteresis).
            footprint(1, 1, &[(0, 6), (1, 8)]),
            // Exact tie: not strictly better anywhere, untouched.
            footprint(2, 0, &[(0, 7), (1, 7)]),
        ];
        let proposed = policy.observe_border_traffic(&footprints, usize::MAX);
        assert_eq!(
            proposed,
            vec![ConstructMigration {
                index: 0,
                from: 0,
                to: 1,
            }]
        );
    }

    #[test]
    fn traffic_term_orders_by_advantage_and_respects_the_budget() {
        let mut policy = traffic_policy();
        let footprints = vec![
            footprint(0, 0, &[(0, 6), (1, 8)]),  // advantage 2
            footprint(1, 0, &[(0, 2), (1, 12)]), // advantage 10
            footprint(2, 0, &[(0, 5), (1, 9)]),  // advantage 4
        ];
        let proposed = policy.observe_border_traffic(&footprints, 2);
        assert_eq!(proposed.len(), 2);
        assert_eq!(proposed[0].index, 1);
        assert_eq!(proposed[1].index, 2);
        // The shared storm bound caps the batch even with a huge budget.
        let capped = policy.observe_border_traffic(
            &(0..10)
                .map(|i| footprint(i, 0, &[(0, 2), (1, 12)]))
                .collect::<Vec<_>>(),
            usize::MAX,
        );
        assert_eq!(
            capped.len(),
            RebalanceConfig::default().max_migrations_per_step
        );
    }

    #[test]
    fn traffic_term_is_inert_unless_armed() {
        let map = ShardMap::contiguous(16, 2);
        let footprints = vec![footprint(0, 0, &[(0, 2), (1, 12)])];
        // Default config: flag off.
        let mut off = RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 1,
            evaluate_every: 1,
            ..RebalanceConfig::default()
        });
        off.observe(&map, &[], &[], &[]);
        assert!(off
            .observe_border_traffic(&footprints, usize::MAX)
            .is_empty());
        // Armed but still warming up: inert too.
        let cold = &mut RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 100,
            evaluate_every: 1,
            border_traffic: true,
            ..RebalanceConfig::default()
        });
        cold.observe(&map, &[], &[], &[]);
        assert!(cold
            .observe_border_traffic(&footprints, usize::MAX)
            .is_empty());
    }

    #[test]
    fn short_slices_are_zero_padded() {
        let map = ShardMap::contiguous(16, 2);
        let mut policy = RebalancePolicy::new(RebalanceConfig::default());
        // Must not panic with empty or short observation slices.
        assert!(policy.observe(&map, &[], &[], &[]).is_empty());
        assert!(policy
            .observe(
                &map,
                &[ZoneLoadSample {
                    zone: 9,
                    load_ms: 1.0,
                    avatars: 0
                }],
                &[1, 2],
                &[3]
            )
            .is_empty());
    }
}

//! Shard ownership for zoned multi-server deployments.
//!
//! Zoning (paper Section II-B) partitions the *world* over servers. On top
//! of [`ShardedWorld`](crate::ShardedWorld) the natural partition unit is
//! the shard: a [`ShardMap`] assigns every shard to exactly one zone, and a
//! chunk belongs to the zone owning its shard. Because shard assignment is
//! hash-based, a zone's chunks are interleaved with its neighbours' across
//! the map — which is precisely the property that makes the zoning
//! experiment interesting: almost any multi-chunk structure near another
//! zone's terrain crosses an ownership boundary and forces cross-server
//! coordination.
//!
//! The map answers three questions the cluster layer needs every tick:
//!
//! * which zone owns a chunk ([`ShardMap::zone_of_chunk`]), used to route
//!   players, events and constructs to their simulating server;
//! * whether a chunk sits on a zone border ([`ShardMap::is_border_chunk`]),
//!   i.e. whether a modification to it must be mirrored to neighbouring
//!   zones ([`ShardMap::neighbor_zones`]);
//! * which shards a zone owns ([`ShardMap::zone_shards`]), the argument to
//!   the per-zone dirty-drain view
//!   [`ShardedWorld::drain_dirty_shards`](crate::ShardedWorld::drain_dirty_shards).
//!
//! The assignment is *dynamic*: [`ShardMap::migrate`] re-assigns one shard
//! to a new zone through a shared `&self` reference, so a cluster can
//! rebalance ownership at a tick boundary while every layer holding the
//! same `Arc<ShardMap>` (restriction filters, persistence pull views,
//! border mirroring) observes the new ownership on its next query. Each
//! successful migration bumps [`ShardMap::version`]. Border and neighbour
//! queries are *derived* from the per-shard cells on every call, so they
//! can never go stale relative to `zone_of_chunk` — the invariant the
//! `shard_map` property suite pins down across arbitrary migration
//! sequences.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use servo_types::{BlockPos, ChunkPos};

use crate::sharded::shard_index;

/// An assignment of world shards to zones (servers) for a zoned cluster.
///
/// Shards start out in contiguous, balanced blocks: shard `s` belongs to
/// zone `s * zones / shard_count`. With a power-of-two shard count and
/// `zones <= shard_count` every zone initially owns either `floor` or
/// `ceil` of `shard_count / zones` shards. [`ShardMap::migrate`] can then
/// re-assign individual shards; every shard is owned by exactly one zone at
/// all times (each shard is a single ownership cell), and a zone may
/// temporarily own no shards at all.
///
/// # Example
///
/// ```
/// use servo_world::{ShardMap, DEFAULT_SHARDS};
/// use servo_types::ChunkPos;
///
/// let map = ShardMap::contiguous(DEFAULT_SHARDS, 4);
/// assert_eq!(map.zones(), 4);
/// // Every chunk belongs to exactly one zone.
/// let zone = map.zone_of_chunk(ChunkPos::new(3, -2));
/// assert!(zone < 4);
/// // Ownership can move at runtime; the version tracks each migration.
/// assert_eq!(map.version(), 0);
/// assert!(map.migrate(0, 3));
/// assert_eq!(map.zone_of_shard(0), 3);
/// assert_eq!(map.version(), 1);
/// // A single-zone map has no borders at all.
/// assert!(!ShardMap::contiguous(DEFAULT_SHARDS, 1).is_border_chunk(ChunkPos::ORIGIN));
/// ```
#[derive(Debug)]
pub struct ShardMap {
    shard_count: usize,
    zones: usize,
    /// `zone_of[s]` is the zone owning shard `s` — one independent
    /// ownership cell per shard, updated by [`ShardMap::migrate`] and read
    /// with acquire loads everywhere, so shard ownership is a partition by
    /// construction.
    zone_of: Vec<AtomicUsize>,
    /// Bumped once per successful migration; consumers use it to detect
    /// that cached derivations (e.g. a zone's shard list) are stale.
    version: AtomicU64,
}

impl Clone for ShardMap {
    fn clone(&self) -> Self {
        ShardMap {
            shard_count: self.shard_count,
            zones: self.zones,
            zone_of: self
                .zone_of
                .iter()
                .map(|cell| AtomicUsize::new(cell.load(Ordering::Acquire)))
                .collect(),
            version: AtomicU64::new(self.version.load(Ordering::Acquire)),
        }
    }
}

impl PartialEq for ShardMap {
    /// Two maps are equal when they describe the same ownership (layout and
    /// current shard→zone assignment); the version counter is bookkeeping,
    /// not ownership, and does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.shard_count == other.shard_count
            && self.zones == other.zones
            && self
                .zone_of
                .iter()
                .zip(&other.zone_of)
                .all(|(a, b)| a.load(Ordering::Acquire) == b.load(Ordering::Acquire))
    }
}

impl Eq for ShardMap {}

impl ShardMap {
    /// Builds the contiguous balanced assignment of `shard_count` shards to
    /// `zones` zones. `zones` is clamped to `1..=shard_count`;
    /// `shard_count` is rounded up to a power of two (matching
    /// [`ShardedWorld`](crate::ShardedWorld)'s layout rule).
    pub fn contiguous(shard_count: usize, zones: usize) -> Self {
        let shard_count = shard_count.clamp(1, 1 << 10).next_power_of_two();
        let zones = zones.clamp(1, shard_count);
        let zone_of: Vec<AtomicUsize> = (0..shard_count)
            .map(|s| AtomicUsize::new(s * zones / shard_count))
            .collect();
        ShardMap {
            shard_count,
            zones,
            zone_of,
            version: AtomicU64::new(0),
        }
    }

    /// Number of zones (servers) in the partition.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Number of world shards the map covers.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of migrations applied so far. Monotone; bumped exactly once
    /// per successful [`ShardMap::migrate`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Re-assigns shard `shard` to `zone`, returning whether ownership
    /// actually changed (migrating a shard to its current owner is a
    /// no-op that does not bump the version).
    ///
    /// Works through `&self` so clusters sharing the map via `Arc` can
    /// rebalance at tick boundaries; every consumer sees the new owner on
    /// its next `zone_of_*` query, and border/neighbour queries are derived
    /// from the same cells so they stay consistent automatically.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count` or `zone >= zones`.
    pub fn migrate(&self, shard: usize, zone: usize) -> bool {
        assert!(shard < self.shard_count, "shard {shard} out of range");
        assert!(zone < self.zones, "zone {zone} out of range");
        let previous = self.zone_of[shard].swap(zone, Ordering::AcqRel);
        if previous == zone {
            return false;
        }
        self.version.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// The zone owning shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count`.
    pub fn zone_of_shard(&self, shard: usize) -> usize {
        self.zone_of[shard].load(Ordering::Acquire)
    }

    /// The shards zone `zone` owns, in ascending order. Derived from the
    /// ownership cells on every call, so it reflects past migrations.
    ///
    /// # Panics
    ///
    /// Panics if `zone >= zones`.
    pub fn zone_shards(&self, zone: usize) -> Vec<usize> {
        assert!(zone < self.zones, "zone {zone} out of range");
        (0..self.shard_count)
            .filter(|&s| self.zone_of_shard(s) == zone)
            .collect()
    }

    /// The zone owning the chunk at `pos` (the zone of its shard).
    #[inline]
    pub fn zone_of_chunk(&self, pos: ChunkPos) -> usize {
        self.zone_of_shard(shard_index(pos, self.shard_count))
    }

    /// The zone owning the chunk containing the block at `pos` — the
    /// routing rule for avatars and player events.
    #[inline]
    pub fn zone_of_block(&self, pos: BlockPos) -> usize {
        self.zone_of_chunk(ChunkPos::from(pos))
    }

    /// Whether any of the four laterally adjacent chunks belongs to a
    /// different zone — the condition under which a modification to the
    /// chunk at `pos` must be coordinated with neighbouring servers.
    pub fn is_border_chunk(&self, pos: ChunkPos) -> bool {
        if self.zones <= 1 {
            return false;
        }
        let own = self.zone_of_chunk(pos);
        self.lateral_neighbors(pos)
            .into_iter()
            .any(|n| self.zone_of_chunk(n) != own)
    }

    /// The distinct zones, ascending and excluding the owner, found among
    /// the four laterally adjacent chunks of `pos`. Empty for interior
    /// chunks; these are the destinations of border-chunk update messages.
    pub fn neighbor_zones(&self, pos: ChunkPos) -> Vec<usize> {
        if self.zones <= 1 {
            return Vec::new();
        }
        let own = self.zone_of_chunk(pos);
        let mut zones: Vec<usize> = self
            .lateral_neighbors(pos)
            .into_iter()
            .map(|n| self.zone_of_chunk(n))
            .filter(|&z| z != own)
            .collect();
        zones.sort_unstable();
        zones.dedup();
        zones
    }

    /// The distinct zones, ascending, owning the chunks under `positions`.
    /// A construct whose blocks span more than one zone is a *border
    /// construct*: its owner must exchange state with every other involved
    /// zone each simulated tick.
    pub fn zones_of_blocks<I: IntoIterator<Item = BlockPos>>(&self, positions: I) -> Vec<usize> {
        let mut zones: Vec<usize> = positions
            .into_iter()
            .map(|p| self.zone_of_block(p))
            .collect();
        zones.sort_unstable();
        zones.dedup();
        zones
    }

    #[inline]
    fn lateral_neighbors(&self, pos: ChunkPos) -> [ChunkPos; 4] {
        [
            ChunkPos::new(pos.x - 1, pos.z),
            ChunkPos::new(pos.x + 1, pos.z),
            ChunkPos::new(pos.x, pos.z - 1),
            ChunkPos::new(pos.x, pos.z + 1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::DEFAULT_SHARDS;

    #[test]
    fn contiguous_assignment_is_balanced_and_total() {
        let map = ShardMap::contiguous(16, 4);
        assert_eq!(map.zones(), 4);
        assert_eq!(map.shard_count(), 16);
        let mut seen = vec![false; 16];
        for zone in 0..4 {
            assert_eq!(map.zone_shards(zone).len(), 4);
            for s in map.zone_shards(zone) {
                assert_eq!(map.zone_of_shard(s), zone);
                assert!(!seen[s], "shard {s} owned twice");
                seen[s] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert_eq!(ShardMap::contiguous(16, 0).zones(), 1);
        assert_eq!(ShardMap::contiguous(16, 99).zones(), 16);
        // Non-power-of-two shard counts round up like the world does.
        assert_eq!(ShardMap::contiguous(12, 2).shard_count(), 16);
    }

    #[test]
    fn chunk_zone_matches_shard_zone() {
        let map = ShardMap::contiguous(DEFAULT_SHARDS, 4);
        for x in -8..8 {
            for z in -8..8 {
                let pos = ChunkPos::new(x, z);
                assert_eq!(
                    map.zone_of_chunk(pos),
                    map.zone_of_shard(shard_index(pos, DEFAULT_SHARDS))
                );
            }
        }
    }

    #[test]
    fn block_routing_follows_the_containing_chunk() {
        let map = ShardMap::contiguous(DEFAULT_SHARDS, 8);
        let block = BlockPos::new(35, 7, -3);
        assert_eq!(
            map.zone_of_block(block),
            map.zone_of_chunk(ChunkPos::from(block))
        );
    }

    #[test]
    fn single_zone_has_no_borders() {
        let map = ShardMap::contiguous(DEFAULT_SHARDS, 1);
        for x in -4..4 {
            for z in -4..4 {
                let pos = ChunkPos::new(x, z);
                assert!(!map.is_border_chunk(pos));
                assert!(map.neighbor_zones(pos).is_empty());
            }
        }
    }

    #[test]
    fn border_chunks_exist_and_neighbor_zones_are_consistent() {
        let map = ShardMap::contiguous(DEFAULT_SHARDS, 4);
        let mut borders = 0usize;
        for x in -8..8 {
            for z in -8..8 {
                let pos = ChunkPos::new(x, z);
                let neighbors = map.neighbor_zones(pos);
                assert_eq!(map.is_border_chunk(pos), !neighbors.is_empty());
                assert!(!neighbors.contains(&map.zone_of_chunk(pos)));
                if map.is_border_chunk(pos) {
                    borders += 1;
                }
            }
        }
        // Hash sharding interleaves zones: borders are common.
        assert!(borders > 100, "only {borders} border chunks");
    }

    #[test]
    fn zones_of_blocks_dedupes_and_sorts() {
        let map = ShardMap::contiguous(DEFAULT_SHARDS, 4);
        // Find two laterally adjacent chunks in different zones.
        let mut found = None;
        'outer: for x in 0..32 {
            for z in 0..32 {
                let a = ChunkPos::new(x, z);
                let b = ChunkPos::new(x + 1, z);
                if map.zone_of_chunk(a) != map.zone_of_chunk(b) {
                    found = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = found.expect("4 zones over hash shards must have adjacent-zone pairs");
        let blocks = [a.min_block(), b.min_block(), a.min_block()];
        let zones = map.zones_of_blocks(blocks);
        assert_eq!(zones.len(), 2);
        assert!(zones[0] < zones[1]);
    }

    #[test]
    fn migrate_moves_ownership_and_bumps_version() {
        let map = ShardMap::contiguous(16, 4);
        let shard = 5;
        let old = map.zone_of_shard(shard);
        let new = (old + 1) % 4;
        assert!(map.migrate(shard, new));
        assert_eq!(map.zone_of_shard(shard), new);
        assert_eq!(map.version(), 1);
        assert!(map.zone_shards(new).contains(&shard));
        assert!(!map.zone_shards(old).contains(&shard));
        // No-op migrations do not bump the version.
        assert!(!map.migrate(shard, new));
        assert_eq!(map.version(), 1);
        // Every chunk of the shard follows the new owner.
        for x in -16..16 {
            for z in -16..16 {
                let pos = ChunkPos::new(x, z);
                if shard_index(pos, 16) == shard {
                    assert_eq!(map.zone_of_chunk(pos), new);
                }
            }
        }
    }

    #[test]
    fn migrate_preserves_the_partition() {
        let map = ShardMap::contiguous(16, 4);
        for step in 0..32 {
            map.migrate(step % 16, (step * 7 + 3) % 4);
            let mut owned = [0usize; 16];
            for zone in 0..4 {
                for shard in map.zone_shards(zone) {
                    owned[shard] += 1;
                }
            }
            assert!(owned.iter().all(|&n| n == 1), "not a partition at {step}");
        }
    }

    #[test]
    fn clone_and_eq_follow_ownership_not_version() {
        let map = ShardMap::contiguous(16, 4);
        map.migrate(3, 2);
        let copy = map.clone();
        assert_eq!(map, copy);
        assert_eq!(copy.zone_of_shard(3), 2);
        assert_eq!(copy.version(), map.version());
        // Migrating the copy does not affect the original: shard 4 keeps
        // its contiguous owner (zone 1 for 16 shards over 4 zones) there.
        let original_owner = map.zone_of_shard(4);
        copy.migrate(4, 3);
        assert_eq!(copy.zone_of_shard(4), 3);
        assert_eq!(map.zone_of_shard(4), original_owner);
        assert_ne!(map, copy);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn migrate_rejects_unknown_zone() {
        ShardMap::contiguous(16, 4).migrate(0, 4);
    }
}

//! The sharded, concurrent world.
//!
//! The paper's core observation is that a modifiable virtual environment is
//! bottlenecked by the single game-loop thread of one server. The seed
//! [`crate::World`] mirrors that constraint: one `HashMap` behind one
//! `&mut` borrow. [`ShardedWorld`] removes it for the in-memory layer:
//! chunks are distributed over `N` power-of-two shards by a fast
//! FxHash-style hash of their [`ChunkPos`], and each shard stores its
//! chunks in a pluggable [`ChunkStore`] backend. The backend is a type
//! parameter (defaulting to [`RwLockStore`], the seed's
//! one-`RwLock<HashMap>`-per-shard design), so the same world policy —
//! sharding, dirty tracking, epochs, batch routing — runs unchanged over
//! the lock-free cell-locked [`LockFreeStore`](crate::LockFreeStore) or
//! any future backend; see [`crate::store`] for the trait contract. Cheap
//! global counters (loaded chunks, total modifications) are lock-free
//! atomics regardless of backend.
//!
//! Concurrency model (also documented in `ARCHITECTURE.md`):
//!
//! * readers of different chunks never contend unless the *backend*
//!   serializes them: under [`RwLockStore`] readers of one shard share
//!   that shard's read lock, under
//!   [`LockFreeStore`](crate::LockFreeStore) readers contend only on the
//!   same chunk;
//! * writers contend at most within one shard (and on the lock-free
//!   backend, only within one chunk);
//! * no operation ever holds two shards' batch handles at once, so lock
//!   ordering is trivial and deadlock-free — multi-chunk operations
//!   ([`set_blocks`], [`fill_region`], [`insert_chunks`]) visit shards
//!   one at a time through one [`ChunkWriter`] each;
//! * the counters are updated after the backend access ends; they are
//!   eventually consistent with in-flight writers but exact once all
//!   writers have returned;
//! * every block modification also lands in the owning shard's *dirty set*
//!   (guarded by its own small mutex, never held together with a backend
//!   handle) and bumps that shard's *epoch*; this bookkeeping lives in
//!   [`ShardedWorld`] itself, outside the backend, so dirty tracking and
//!   epochs stay exact — byte-for-byte identical write-back — no matter
//!   which backend stores the chunks. [`ShardedWorld::drain_dirty`] hands
//!   the per-shard deltas to the storage write-back pipeline, which
//!   therefore skips clean shards entirely.
//!
//! [`set_blocks`]: ShardedWorld::set_blocks
//! [`fill_region`]: ShardedWorld::fill_region
//! [`insert_chunks`]: ShardedWorld::insert_chunks

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use servo_types::consts::{CHUNK_HEIGHT, CHUNK_SIZE};
use servo_types::{BlockPos, ChunkPos, ServoError};

use crate::block::Block;
use crate::chunk::{Chunk, ChunkSnapshot};
use crate::store::{ChunkStore, ChunkWriter, RwLockStore};
use crate::world::{split_pos, World, WorldKind};

/// A fast, non-cryptographic hasher in the style of rustc's FxHash
/// (multiply-rotate over machine words). Hand-rolled because this build
/// environment has no access to the `fxhash`/`rustc-hash` crates; the only
/// requirement is speed on small keys such as [`ChunkPos`], where the
/// default SipHash hasher costs more than the map probe itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The multiplier FxHash uses on 64-bit platforms (derived from the golden
/// ratio, `2^64 / phi`).
const FX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_word(i as u32 as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], used by every shard map.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The FxHash of a chunk position, packing both coordinates into one word.
#[inline]
pub fn chunk_hash(pos: ChunkPos) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.add_word(((pos.x as u32 as u64) << 32) | pos.z as u32 as u64);
    hasher.finish()
}

/// The shard a chunk position belongs to, for a power-of-two `shard_count`.
///
/// Uses the *top* bits of the hash: FxHash accumulates entropy towards the
/// high bits of the multiply, so the top bits distribute better than the
/// bottom ones. Shared with the storage layer so cache batching groups
/// chunks exactly like the world shards them.
#[inline]
pub fn shard_index(pos: ChunkPos, shard_count: usize) -> usize {
    debug_assert!(shard_count.is_power_of_two());
    if shard_count <= 1 {
        return 0;
    }
    let bits = shard_count.trailing_zeros();
    (chunk_hash(pos) >> (64 - bits)) as usize
}

/// One shard: an independently stored chunk map (the pluggable backend)
/// plus its dirty tracking, which is backend-independent by design.
#[derive(Debug, Default)]
struct Shard<B> {
    chunks: B,
    /// Chunks modified since the last [`ShardedWorld::drain_dirty`]. Guarded
    /// by its own mutex so writers never hold it together with a backend
    /// access.
    dirty: Mutex<HashSet<ChunkPos, FxBuildHasher>>,
    /// Monotone per-shard modification counter: the number of block
    /// modifications this shard has absorbed over its lifetime. Storage
    /// consumers use it to order and deduplicate [`ShardDelta`]s.
    epoch: AtomicU64,
}

/// The set of chunks one world shard dirtied between two
/// [`ShardedWorld::drain_dirty`] calls — the unit of work the storage
/// write-back pipeline consumes. Write-back visits only the shards that
/// actually produced a delta, skipping clean shards entirely.
///
/// # Example
///
/// ```
/// use servo_world::{Block, ShardedWorld};
/// use servo_types::BlockPos;
///
/// let world = ShardedWorld::flat(4);
/// world.ensure_chunk_at(servo_types::ChunkPos::new(0, 0));
/// world.set_block(BlockPos::new(1, 10, 1), Block::Stone).unwrap();
/// let deltas = world.drain_dirty();
/// // One chunk was edited, so exactly one shard reports a delta.
/// assert_eq!(deltas.len(), 1);
/// assert_eq!(deltas[0].chunks, vec![servo_types::ChunkPos::new(0, 0)]);
/// // Draining leaves every shard clean again.
/// assert!(world.drain_dirty().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDelta {
    /// The index of the shard that produced this delta.
    pub shard: usize,
    /// The shard's modification epoch at drain time (its lifetime count of
    /// block modifications).
    pub epoch: u64,
    /// The chunks dirtied since the previous drain, sorted by `(x, z)` so
    /// downstream write-back consumes a deterministic order.
    pub chunks: Vec<ChunkPos>,
}

/// The default shard count. Sixteen shards keep the collision probability
/// low for up to a few tens of worker threads while costing only sixteen
/// small maps of overhead.
pub const DEFAULT_SHARDS: usize = 16;

/// A sharded, concurrently accessible game world, generic over the
/// [`ChunkStore`] backend that holds each shard's chunks.
///
/// Exposes the same block/chunk API as [`World`] plus closure-based
/// accessors ([`ShardedWorld::read_chunk`], [`ShardedWorld::with_chunk_mut`])
/// and batch operations that pin each involved shard's
/// [`ChunkWriter`] once per batch instead of once per block. All methods
/// take `&self`; the type is `Send + Sync` and safe to share across
/// `std::thread::scope` workers.
///
/// The default backend is [`RwLockStore`]; `ShardedWorld` written without
/// parameters is exactly the seed design. Use
/// [`ShardedWorld::<B>::new_in`] / [`flat_in`](ShardedWorld::flat_in) to
/// pick another backend, e.g.
/// `ShardedWorld::<LockFreeStore>::flat_in(4)`.
///
/// # Example
///
/// ```
/// use servo_world::{Block, ShardedWorld};
/// use servo_types::{BlockPos, ChunkPos};
///
/// let world = ShardedWorld::flat(4);
/// world.ensure_chunk_at(ChunkPos::new(0, 0));
/// std::thread::scope(|scope| {
///     scope.spawn(|| world.set_block(BlockPos::new(1, 10, 1), Block::Lamp).unwrap());
///     scope.spawn(|| world.block(BlockPos::new(3, 4, 3)));
/// });
/// assert_eq!(world.block(BlockPos::new(1, 10, 1)), Some(Block::Lamp));
/// ```
#[derive(Debug)]
pub struct ShardedWorld<B: ChunkStore = RwLockStore> {
    kind: WorldKind,
    flat_ground_height: i32,
    shards: Box<[Shard<B>]>,
    /// Number of loaded chunks, maintained outside the shard backends.
    loaded: AtomicUsize,
    /// Total block modifications, maintained outside the shard backends.
    modifications: AtomicU64,
}

impl<B: ChunkStore> Default for ShardedWorld<B> {
    fn default() -> Self {
        ShardedWorld::new_in()
    }
}

impl ShardedWorld {
    /// Creates an empty world of the default (procedural) kind with
    /// [`DEFAULT_SHARDS`] shards over the default [`RwLockStore`] backend.
    pub fn new() -> Self {
        Self::new_in()
    }

    /// Creates a flat world whose ground surface sits at `ground_height`,
    /// with [`DEFAULT_SHARDS`] shards over the default [`RwLockStore`]
    /// backend.
    pub fn flat(ground_height: i32) -> Self {
        Self::flat_in(ground_height)
    }
}

impl<B: ChunkStore> ShardedWorld<B> {
    fn with_layout(kind: WorldKind, flat_ground_height: i32, shard_count: usize) -> Self {
        let shard_count = shard_count.clamp(1, 1 << 10).next_power_of_two();
        ShardedWorld {
            kind,
            flat_ground_height,
            shards: (0..shard_count)
                .map(|_| Shard {
                    chunks: B::new(),
                    dirty: Mutex::default(),
                    epoch: AtomicU64::new(0),
                })
                .collect(),
            loaded: AtomicUsize::new(0),
            modifications: AtomicU64::new(0),
        }
    }

    /// Creates an empty world of the default (procedural) kind with
    /// [`DEFAULT_SHARDS`] shards over backend `B`.
    pub fn new_in() -> Self {
        Self::with_layout(WorldKind::Default, 4, DEFAULT_SHARDS)
    }

    /// Creates a flat world whose ground surface sits at `ground_height`,
    /// with [`DEFAULT_SHARDS`] shards over backend `B`.
    pub fn flat_in(ground_height: i32) -> Self {
        Self::with_layout(
            WorldKind::Flat,
            ground_height.clamp(1, CHUNK_HEIGHT - 1),
            DEFAULT_SHARDS,
        )
    }

    /// Moves a single-threaded [`World`] into a sharded world over backend
    /// `B` (the generic form of the `From<World>` conversion).
    pub fn from_world(mut world: World) -> Self {
        let sharded = Self::with_layout(world.kind(), world.flat_ground(), DEFAULT_SHARDS);
        sharded
            .modifications
            .store(world.total_modifications(), Ordering::Relaxed);
        let positions: Vec<ChunkPos> = world.loaded_positions().collect();
        sharded.insert_chunks(positions.into_iter().filter_map(|p| world.remove_chunk(p)));
        sharded
    }

    /// Returns this world re-created with `shard_count` shards (rounded up
    /// to a power of two, clamped to `1..=1024`). Existing chunks are
    /// redistributed.
    pub fn with_shards(mut self, shard_count: usize) -> Self {
        let rebuilt = Self::with_layout(self.kind, self.flat_ground_height, shard_count);
        rebuilt.modifications.store(
            self.modifications.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        // Undrained dirty chunks keep their write-back obligation across the
        // re-shard (epochs restart from zero: they are per-layout counters).
        for delta in self.drain_dirty() {
            for pos in delta.chunks {
                let target = &rebuilt.shards[rebuilt.shard_of(pos)];
                target
                    .dirty
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(pos);
            }
        }
        for shard in self.shards.iter_mut() {
            rebuilt.insert_chunks(shard.chunks.drain_all());
        }
        rebuilt
    }

    /// The world kind.
    pub fn kind(&self) -> WorldKind {
        self.kind
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning the chunk at `pos` — the partition key the
    /// parallel tick path and the storage batcher use.
    #[inline]
    pub fn shard_of(&self, pos: ChunkPos) -> usize {
        shard_index(pos, self.shards.len())
    }

    #[inline]
    fn shard(&self, pos: ChunkPos) -> &Shard<B> {
        &self.shards[self.shard_of(pos)]
    }

    /// Number of chunks currently loaded, read from a lock-free counter.
    pub fn loaded_chunks(&self) -> usize {
        self.loaded.load(Ordering::Acquire)
    }

    /// Total number of block modifications applied through this world, read
    /// from a lock-free counter.
    pub fn total_modifications(&self) -> u64 {
        self.modifications.load(Ordering::Acquire)
    }

    /// The modification epoch of one shard: its lifetime count of block
    /// modifications. Monotone; storage consumers use it to order deltas.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].epoch.load(Ordering::Acquire)
    }

    /// Number of shards currently holding dirty (modified since the last
    /// [`ShardedWorld::drain_dirty`]) chunks.
    pub fn dirty_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| !s.dirty.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
            .count()
    }

    /// Marks `delta_mods` block modifications against the chunk at `pos` in
    /// shard `shard`: bumps the global and per-shard counters and records the
    /// chunk in the shard's dirty set.
    fn note_modified(&self, shard: usize, pos: ChunkPos, delta_mods: u64) {
        if delta_mods == 0 {
            return;
        }
        self.modifications.fetch_add(delta_mods, Ordering::AcqRel);
        let s = &self.shards[shard];
        s.epoch.fetch_add(delta_mods, Ordering::AcqRel);
        s.dirty
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(pos);
    }

    /// Takes every shard's dirty set, returning one [`ShardDelta`] per shard
    /// that was modified since the previous drain. Shards that stayed clean
    /// produce no delta, which is what lets a storage write-back pass skip
    /// them without scanning anything.
    ///
    /// Chunk loads ([`ShardedWorld::insert_chunk`],
    /// [`ShardedWorld::insert_chunks`], [`ShardedWorld::ensure_chunk_at`])
    /// do *not* dirty a shard — only block modifications do — so terrain
    /// streaming in from storage never triggers its own write-back.
    pub fn drain_dirty(&self) -> Vec<ShardDelta> {
        let mut deltas = Vec::new();
        for index in 0..self.shards.len() {
            self.drain_one_shard(index, &mut deltas);
        }
        deltas
    }

    /// Like [`ShardedWorld::drain_dirty`], but restricted to the given shard
    /// indices — the per-zone drain view a zoned cluster uses so each zone
    /// server flushes and coordinates only the shards it owns. Out-of-range
    /// indices are ignored; duplicate indices drain (at most) once because
    /// the first drain leaves the shard clean.
    pub fn drain_dirty_shards(&self, shards: &[usize]) -> Vec<ShardDelta> {
        let mut deltas = Vec::new();
        for &index in shards {
            if index < self.shards.len() {
                self.drain_one_shard(index, &mut deltas);
            }
        }
        deltas.sort_by_key(|d| d.shard);
        deltas
    }

    fn drain_one_shard(&self, index: usize, deltas: &mut Vec<ShardDelta>) {
        let shard = &self.shards[index];
        let taken = {
            let mut dirty = shard.dirty.lock().unwrap_or_else(|e| e.into_inner());
            if dirty.is_empty() {
                return;
            }
            std::mem::take(&mut *dirty)
        };
        let mut chunks: Vec<ChunkPos> = taken.into_iter().collect();
        chunks.sort_by_key(|p| (p.x, p.z));
        deltas.push(ShardDelta {
            shard: index,
            epoch: shard.epoch.load(Ordering::Acquire),
            chunks,
        });
    }

    /// Whether the chunk at `pos` is loaded. On the lock-free backend this
    /// is an optimistic membership check that takes no lock at all.
    pub fn is_loaded(&self, pos: ChunkPos) -> bool {
        self.shard(pos).chunks.contains(pos)
    }

    /// A snapshot of the positions of the chunks loaded in one shard,
    /// sorted by `(x, z)` — the transfer unit of a shard migration, which
    /// must hand the complete shard to its new owner deterministically.
    /// Out-of-range shards yield an empty set.
    pub fn shard_positions(&self, shard: usize) -> Vec<ChunkPos> {
        let Some(shard) = self.shards.get(shard) else {
            return Vec::new();
        };
        let mut positions = shard.chunks.keys();
        positions.sort_by_key(|p| (p.x, p.z));
        positions
    }

    /// A snapshot of the positions of all loaded chunks, shard by shard.
    pub fn loaded_positions(&self) -> Vec<ChunkPos> {
        let mut positions = Vec::with_capacity(self.loaded_chunks());
        for shard in self.shards.iter() {
            positions.extend(shard.chunks.keys());
        }
        positions
    }

    /// Inserts a fully-built chunk, replacing any chunk already there.
    pub fn insert_chunk(&self, chunk: Chunk) {
        let pos = chunk.pos();
        let replaced = self.shard(pos).chunks.insert(chunk).is_some();
        if !replaced {
            self.loaded.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Inserts a batch of chunks, grouping them so each involved shard's
    /// batch handle is pinned once.
    pub fn insert_chunks<I: IntoIterator<Item = Chunk>>(&self, chunks: I) {
        let mut by_shard: Vec<Vec<Chunk>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for chunk in chunks {
            by_shard[self.shard_of(chunk.pos())].push(chunk);
        }
        for (shard, batch) in self.shards.iter().zip(by_shard) {
            if batch.is_empty() {
                continue;
            }
            let mut added = 0usize;
            {
                let mut writer = shard.chunks.writer();
                for chunk in batch {
                    if writer.insert(chunk).is_none() {
                        added += 1;
                    }
                }
            }
            if added > 0 {
                self.loaded.fetch_add(added, Ordering::AcqRel);
            }
        }
    }

    /// Removes and returns the chunk at `pos`. The chunk also leaves its
    /// shard's dirty set: an unloaded chunk has nothing left to write back.
    pub fn remove_chunk(&self, pos: ChunkPos) -> Option<Chunk> {
        let shard = self.shard(pos);
        let removed = shard.chunks.remove(pos);
        if removed.is_some() {
            shard
                .dirty
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&pos);
            self.loaded.fetch_sub(1, Ordering::AcqRel);
        }
        removed
    }

    fn build_chunk(&self, pos: ChunkPos) -> Chunk {
        let mut chunk = Chunk::empty(pos);
        if self.kind == WorldKind::Flat {
            chunk
                .fill_box(
                    (0, 0, 0),
                    (CHUNK_SIZE - 1, 0, CHUNK_SIZE - 1),
                    Block::Bedrock,
                )
                .expect("layer 0 is in range");
            if self.flat_ground_height > 1 {
                chunk
                    .fill_box(
                        (0, 1, 0),
                        (CHUNK_SIZE - 1, self.flat_ground_height - 1, CHUNK_SIZE - 1),
                        Block::Dirt,
                    )
                    .expect("dirt body in range");
            }
            chunk
                .fill_box(
                    (0, self.flat_ground_height, 0),
                    (CHUNK_SIZE - 1, self.flat_ground_height, CHUNK_SIZE - 1),
                    Block::Grass,
                )
                .expect("ground layer in range");
        }
        chunk
    }

    /// Ensures a chunk exists at `pos`, creating a default one if missing
    /// (pre-filled terrain for flat worlds, empty otherwise — the same rule
    /// as [`World::ensure_chunk_at`]).
    pub fn ensure_chunk_at(&self, pos: ChunkPos) {
        let shard = self.shard(pos);
        if shard.chunks.contains(pos) {
            return;
        }
        // Build outside any lock; racing creators build identical chunks
        // and the atomic insert-if-absent keeps the first one.
        let chunk = self.build_chunk(pos);
        if shard.chunks.insert_if_absent(chunk) {
            self.loaded.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Runs `f` with shared access to the chunk at `pos`, or returns `None`
    /// if the chunk is not loaded. Other readers proceed concurrently (all
    /// readers of the shard under [`RwLockStore`]; all readers of *other
    /// chunks* — plus same-chunk readers — under the lock-free backend).
    pub fn read_chunk<R>(&self, pos: ChunkPos, f: impl FnOnce(&Chunk) -> R) -> Option<R> {
        self.shard(pos).chunks.read(pos, f)
    }

    /// Runs `f` with exclusive access to the chunk at `pos`, or returns
    /// `None` if the chunk is not loaded. Block changes `f` makes are folded
    /// into [`ShardedWorld::total_modifications`].
    pub fn with_chunk_mut<R>(&self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R> {
        let shard = self.shard_of(pos);
        let (result, delta) = self.shards[shard].chunks.update(pos, |chunk| {
            let before = chunk.modifications();
            let result = f(chunk);
            (result, chunk.modifications() - before)
        })?;
        self.note_modified(shard, pos, delta);
        Some(result)
    }

    /// Reads the block at a world position. Returns `None` if the containing
    /// chunk is not loaded or `y` is out of range.
    pub fn block(&self, pos: BlockPos) -> Option<Block> {
        let (chunk_pos, lx, ly, lz) = split_pos(pos);
        self.shard(chunk_pos)
            .chunks
            .read(chunk_pos, |chunk| chunk.local(lx, ly, lz))?
    }

    /// Writes the block at a world position.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] if the containing chunk is not
    /// loaded, or [`ServoError::OutOfBounds`] if `y` is outside the world.
    pub fn set_block(&self, pos: BlockPos, block: Block) -> Result<(), ServoError> {
        let (chunk_pos, lx, ly, lz) = split_pos(pos);
        let shard = self.shard_of(chunk_pos);
        self.shards[shard]
            .chunks
            .update(chunk_pos, |chunk| chunk.set_local(lx, ly, lz, block))
            .ok_or(ServoError::ChunkNotLoaded {
                x: chunk_pos.x,
                z: chunk_pos.z,
            })??;
        self.note_modified(shard, chunk_pos, 1);
        Ok(())
    }

    /// Writes a batch of blocks, pinning each involved shard's batch handle
    /// once per batch (and resolving each chunk once per run of same-chunk
    /// positions within it) instead of locking per block. Returns the number
    /// of blocks written.
    ///
    /// Writes land shard by shard; within one shard they apply in input
    /// order. On the first failing write the already applied writes are kept
    /// and the error returned.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] or [`ServoError::OutOfBounds`]
    /// for the first offending position.
    pub fn set_blocks<I>(&self, blocks: I) -> Result<usize, ServoError>
    where
        I: IntoIterator<Item = (BlockPos, Block)>,
    {
        /// One write resolved to its chunk and local coordinates.
        type ResolvedWrite = (ChunkPos, i32, i32, i32, Block);
        let mut by_shard: Vec<Vec<ResolvedWrite>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (pos, block) in blocks {
            let (chunk_pos, lx, ly, lz) = split_pos(pos);
            by_shard[self.shard_of(chunk_pos)].push((chunk_pos, lx, ly, lz, block));
        }
        let mut written = 0usize;
        let mut result = Ok(());
        'shards: for (shard_index, batch) in by_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // Per-chunk runs written under this shard's batch handle,
            // flushed into the dirty tracking after the handle is released.
            let mut runs: Vec<(ChunkPos, u64)> = Vec::new();
            {
                let mut writer = self.shards[shard_index].chunks.writer();
                let mut i = 0;
                while i < batch.len() {
                    let chunk_pos = batch[i].0;
                    // The run of consecutive writes hitting this chunk.
                    let mut end = i;
                    while end < batch.len() && batch[end].0 == chunk_pos {
                        end += 1;
                    }
                    let run = &batch[i..end];
                    let outcome = writer.update(chunk_pos, |chunk| {
                        let mut run_written = 0u64;
                        for &(_, lx, ly, lz, block) in run {
                            if let Err(e) = chunk.set_local(lx, ly, lz, block) {
                                return (run_written, Some(e));
                            }
                            run_written += 1;
                        }
                        (run_written, None)
                    });
                    match outcome {
                        None => {
                            result = Err(ServoError::ChunkNotLoaded {
                                x: chunk_pos.x,
                                z: chunk_pos.z,
                            });
                            break;
                        }
                        Some((run_written, maybe_err)) => {
                            written += run_written as usize;
                            if run_written > 0 {
                                runs.push((chunk_pos, run_written));
                            }
                            if let Some(e) = maybe_err {
                                result = Err(e);
                                break;
                            }
                        }
                    }
                    i = end;
                }
            }
            for (chunk_pos, run_written) in runs {
                self.note_modified(shard_index, chunk_pos, run_written);
            }
            if result.is_err() {
                break 'shards;
            }
        }
        result.map(|()| written)
    }

    /// Fills the axis-aligned region spanning `min..=max` (inclusive world
    /// coordinates) with `block`, pinning each involved shard's batch handle
    /// once and filling each chunk with one bulk box write. Returns the
    /// number of blocks whose value actually changed.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] if any overlapped chunk is not
    /// loaded, or [`ServoError::OutOfBounds`] if the `y` range leaves the
    /// world or the region is inverted. Nothing is written until the whole
    /// region has been validated as loaded (validation and filling release
    /// the backend in between: a concurrent `remove_chunk` can still surface
    /// as an error mid-fill, in which case the already filled chunks keep
    /// their contents).
    pub fn fill_region(
        &self,
        min: BlockPos,
        max: BlockPos,
        block: Block,
    ) -> Result<usize, ServoError> {
        if min.x > max.x || min.y > max.y || min.z > max.z {
            return Err(ServoError::OutOfBounds {
                what: format!("inverted region {min}..={max}"),
            });
        }
        if !(0..CHUNK_HEIGHT).contains(&min.y) || !(0..CHUNK_HEIGHT).contains(&max.y) {
            return Err(ServoError::OutOfBounds {
                what: format!("region y range {}..={}", min.y, max.y),
            });
        }
        let (min_chunk, max_chunk) = (ChunkPos::from(min), ChunkPos::from(max));
        let mut by_shard: Vec<Vec<ChunkPos>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for cx in min_chunk.x..=max_chunk.x {
            for cz in min_chunk.z..=max_chunk.z {
                let pos = ChunkPos::new(cx, cz);
                if !self.is_loaded(pos) {
                    return Err(ServoError::ChunkNotLoaded { x: cx, z: cz });
                }
                by_shard[self.shard_of(pos)].push(pos);
            }
        }
        let mut changed = 0usize;
        let mut result = Ok(());
        'shards: for (shard_index, batch) in by_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut runs: Vec<(ChunkPos, u64)> = Vec::new();
            {
                let mut writer = self.shards[shard_index].chunks.writer();
                for &chunk_pos in batch {
                    let base = chunk_pos.min_block();
                    let lo = ((min.x - base.x).max(0), min.y, (min.z - base.z).max(0));
                    let hi = (
                        (max.x - base.x).min(CHUNK_SIZE - 1),
                        max.y,
                        (max.z - base.z).min(CHUNK_SIZE - 1),
                    );
                    let Some(filled) =
                        writer.update(chunk_pos, |chunk| chunk.fill_box(lo, hi, block))
                    else {
                        result = Err(ServoError::ChunkNotLoaded {
                            x: chunk_pos.x,
                            z: chunk_pos.z,
                        });
                        break;
                    };
                    match filled {
                        Ok(n) => {
                            changed += n;
                            if n > 0 {
                                runs.push((chunk_pos, n as u64));
                            }
                        }
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
            }
            // Flush the changes that did land even when a concurrent
            // remove_chunk surfaced as a mid-fill error — those blocks were
            // written and kept, so the counters must reflect them.
            for (chunk_pos, n) in runs {
                self.note_modified(shard_index, chunk_pos, n);
            }
            if result.is_err() {
                break 'shards;
            }
        }
        result.map(|()| changed)
    }

    /// The ground height (highest non-air block) at the given column, if the
    /// chunk is loaded.
    pub fn height_at(&self, x: i32, z: i32) -> Option<i32> {
        let (chunk_pos, lx, _, lz) = split_pos(BlockPos::new(x, 0, z));
        self.shard(chunk_pos)
            .chunks
            .read(chunk_pos, |chunk| chunk.height_at(lx, lz))?
    }

    /// Total number of stateful (simulated-construct) blocks across all
    /// loaded chunks.
    pub fn stateful_blocks(&self) -> usize {
        let mut total = 0usize;
        for shard in self.shards.iter() {
            shard
                .chunks
                .for_each(|chunk| total += chunk.stateful_blocks());
        }
        total
    }

    /// Copies the world into a single-threaded [`World`] snapshot.
    pub fn to_world(&self) -> World {
        let mut world = match self.kind {
            WorldKind::Flat => World::flat(self.flat_ground_height),
            WorldKind::Default => World::new(),
        };
        for shard in self.shards.iter() {
            shard
                .chunks
                .for_each(|chunk| world.insert_chunk(chunk.clone()));
        }
        world
    }
}

impl From<World> for ShardedWorld {
    fn from(world: World) -> ShardedWorld {
        ShardedWorld::from_world(world)
    }
}

/// The object-safe face a [`ShardedWorld`] shows the storage pipeline:
/// everything write-back and snapshot persistence need, without the
/// closure-generic accessors, so services can hold an
/// `Arc<dyn WorldSink>` and serve any backend through one pointer.
pub trait WorldSink: Send + Sync + std::fmt::Debug {
    /// Number of shards (the write-back batching granularity).
    fn shard_count(&self) -> usize;

    /// The shard owning the chunk at `pos`.
    fn shard_of(&self, pos: ChunkPos) -> usize;

    /// The serialized bytes of the chunk at `pos`, if loaded.
    fn chunk_bytes(&self, pos: ChunkPos) -> Option<Vec<u8>>;

    /// A compressed snapshot of the chunk at `pos`, if loaded.
    fn chunk_snapshot(&self, pos: ChunkPos) -> Option<ChunkSnapshot>;

    /// Takes every shard's dirty set (see [`ShardedWorld::drain_dirty`]).
    fn drain_dirty(&self) -> Vec<ShardDelta>;

    /// Takes the dirty sets of the given shards only (see
    /// [`ShardedWorld::drain_dirty_shards`]).
    fn drain_dirty_shards(&self, shards: &[usize]) -> Vec<ShardDelta>;
}

impl<B: ChunkStore> WorldSink for ShardedWorld<B> {
    fn shard_count(&self) -> usize {
        ShardedWorld::shard_count(self)
    }

    fn shard_of(&self, pos: ChunkPos) -> usize {
        ShardedWorld::shard_of(self, pos)
    }

    fn chunk_bytes(&self, pos: ChunkPos) -> Option<Vec<u8>> {
        self.read_chunk(pos, |chunk| chunk.to_bytes())
    }

    fn chunk_snapshot(&self, pos: ChunkPos) -> Option<ChunkSnapshot> {
        self.read_chunk(pos, |chunk| chunk.snapshot())
    }

    fn drain_dirty(&self) -> Vec<ShardDelta> {
        ShardedWorld::drain_dirty(self)
    }

    fn drain_dirty_shards(&self, shards: &[usize]) -> Vec<ShardDelta> {
        ShardedWorld::drain_dirty_shards(self, shards)
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hash_is_stable_and_spreads() {
        let a = chunk_hash(ChunkPos::new(3, -2));
        let b = chunk_hash(ChunkPos::new(3, -2));
        assert_eq!(a, b);
        // Neighbouring chunks land on a healthy mix of shards.
        let mut seen = std::collections::HashSet::new();
        for x in 0..16 {
            for z in 0..16 {
                seen.insert(shard_index(ChunkPos::new(x, z), 16));
            }
        }
        assert!(seen.len() >= 12, "only {} shards used", seen.len());
    }

    #[test]
    fn shard_count_is_power_of_two() {
        assert_eq!(ShardedWorld::new().shard_count(), DEFAULT_SHARDS);
        assert_eq!(ShardedWorld::new().with_shards(3).shard_count(), 4);
        assert_eq!(ShardedWorld::new().with_shards(0).shard_count(), 1);
        assert_eq!(ShardedWorld::new().with_shards(8).shard_count(), 8);
    }

    #[test]
    fn behaves_like_world_for_basic_ops() {
        let world = ShardedWorld::flat(4);
        world.ensure_chunk_at(ChunkPos::new(0, 0));
        world.ensure_chunk_at(ChunkPos::new(-1, -1));
        assert_eq!(world.loaded_chunks(), 2);
        assert_eq!(world.block(BlockPos::new(0, 0, 0)), Some(Block::Bedrock));
        assert_eq!(world.block(BlockPos::new(5, 4, 5)), Some(Block::Grass));
        assert_eq!(world.block(BlockPos::new(-5, 4, -5)), Some(Block::Grass));
        assert_eq!(world.height_at(-5, -5), Some(4));
        assert_eq!(world.block(BlockPos::new(100, 4, 100)), None);

        world
            .set_block(BlockPos::new(1, 10, 1), Block::Lamp)
            .unwrap();
        assert_eq!(world.block(BlockPos::new(1, 10, 1)), Some(Block::Lamp));
        assert_eq!(world.total_modifications(), 1);
        assert_eq!(world.stateful_blocks(), 1);
        assert!(world
            .set_block(BlockPos::new(100, 4, 100), Block::Stone)
            .is_err());
    }

    #[test]
    fn closure_accessors_reach_the_chunk() {
        let world = ShardedWorld::flat(4);
        world.ensure_chunk_at(ChunkPos::ORIGIN);
        let ground = world
            .read_chunk(ChunkPos::ORIGIN, |chunk| chunk.height_at(3, 3))
            .unwrap();
        assert_eq!(ground, Some(4));
        let changed = world
            .with_chunk_mut(ChunkPos::ORIGIN, |chunk| {
                chunk.fill_box((0, 30, 0), (3, 30, 3), Block::Wood).unwrap()
            })
            .unwrap();
        assert_eq!(changed, 16);
        assert_eq!(world.total_modifications(), 16);
        assert!(world.read_chunk(ChunkPos::new(9, 9), |_| ()).is_none());
        assert!(world.with_chunk_mut(ChunkPos::new(9, 9), |_| ()).is_none());
    }

    #[test]
    fn batch_ops_agree_with_world() {
        let sharded = ShardedWorld::flat(4);
        let mut plain = World::flat(4);
        for cx in -2..=2 {
            for cz in -2..=2 {
                sharded.ensure_chunk_at(ChunkPos::new(cx, cz));
                plain.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let writes: Vec<(BlockPos, Block)> = (0..200)
            .map(|i| {
                (
                    BlockPos::new((i * 7) % 64 - 32, 5 + i % 20, (i * 13) % 64 - 32),
                    if i % 2 == 0 {
                        Block::Stone
                    } else {
                        Block::Lamp
                    },
                )
            })
            .collect();
        assert_eq!(
            sharded.set_blocks(writes.clone()).unwrap(),
            plain.set_blocks(writes.clone()).unwrap()
        );
        let min = BlockPos::new(-30, 40, -30);
        let max = BlockPos::new(30, 42, 30);
        assert_eq!(
            sharded.fill_region(min, max, Block::Sand).unwrap(),
            plain.fill_region(min, max, Block::Sand).unwrap()
        );
        for &(pos, _) in &writes {
            assert_eq!(sharded.block(pos), plain.block(pos), "at {pos}");
        }
        assert_eq!(sharded.to_world().loaded_chunks(), plain.loaded_chunks());
    }

    #[test]
    fn insert_remove_and_conversions() {
        let sharded = ShardedWorld::new();
        let mut chunk = Chunk::empty(ChunkPos::new(3, 3));
        chunk.fill_layer(7, Block::Sand).unwrap();
        sharded.insert_chunk(chunk);
        assert!(sharded.is_loaded(ChunkPos::new(3, 3)));
        assert_eq!(sharded.block(BlockPos::new(48, 7, 48)), Some(Block::Sand));
        // Replacing does not inflate the loaded counter.
        sharded.insert_chunk(Chunk::empty(ChunkPos::new(3, 3)));
        assert_eq!(sharded.loaded_chunks(), 1);
        let removed = sharded.remove_chunk(ChunkPos::new(3, 3)).unwrap();
        assert_eq!(removed.pos(), ChunkPos::new(3, 3));
        assert_eq!(sharded.loaded_chunks(), 0);
        assert!(sharded.remove_chunk(ChunkPos::new(3, 3)).is_none());

        let mut plain = World::flat(4);
        for i in 0..20 {
            plain.ensure_chunk_at(ChunkPos::new(i, -i));
        }
        plain
            .set_block(BlockPos::new(1, 9, 1), Block::Wire)
            .unwrap();
        let converted = ShardedWorld::from(plain);
        assert_eq!(converted.loaded_chunks(), 20);
        assert_eq!(converted.total_modifications(), 1);
        assert_eq!(converted.block(BlockPos::new(1, 9, 1)), Some(Block::Wire));
        let mut positions = converted.loaded_positions();
        positions.sort_by_key(|p| (p.x, p.z));
        let mut expected: Vec<ChunkPos> = (0..20).map(|i| ChunkPos::new(i, -i)).collect();
        expected.sort_by_key(|p| (p.x, p.z));
        assert_eq!(positions, expected);
    }

    #[test]
    fn dirty_tracking_is_per_shard() {
        let world = ShardedWorld::flat(4);
        for cx in 0..4 {
            for cz in 0..4 {
                world.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        // Loading chunks does not dirty anything.
        assert_eq!(world.dirty_shard_count(), 0);
        assert!(world.drain_dirty().is_empty());

        // Edit blocks of exactly one chunk: exactly one shard reports dirt.
        world
            .set_block(BlockPos::new(1, 9, 1), Block::Stone)
            .unwrap();
        world
            .set_block(BlockPos::new(2, 9, 2), Block::Lamp)
            .unwrap();
        assert_eq!(world.dirty_shard_count(), 1);
        let deltas = world.drain_dirty();
        assert_eq!(deltas.len(), 1);
        let delta = &deltas[0];
        assert_eq!(delta.shard, world.shard_of(ChunkPos::new(0, 0)));
        assert_eq!(delta.chunks, vec![ChunkPos::new(0, 0)]);
        assert_eq!(delta.epoch, 2);
        assert_eq!(world.shard_epoch(delta.shard), 2);
        // Drained means clean.
        assert!(world.drain_dirty().is_empty());
        assert_eq!(world.dirty_shard_count(), 0);
        // The global counter is untouched by draining.
        assert_eq!(world.total_modifications(), 2);
    }

    #[test]
    fn batch_mutations_mark_dirty_chunks() {
        let world = ShardedWorld::flat(4);
        for cx in -2..=2 {
            for cz in -2..=2 {
                world.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        world
            .fill_region(
                BlockPos::new(-20, 40, -20),
                BlockPos::new(20, 41, 20),
                Block::Sand,
            )
            .unwrap();
        let filled: std::collections::HashSet<ChunkPos> = world
            .drain_dirty()
            .iter()
            .flat_map(|d| d.chunks.iter().copied())
            .collect();
        // The region spans chunks -2..=1 on both axes (blocks -20..=20).
        assert_eq!(filled.len(), 4 * 4);

        world
            .set_blocks([
                (BlockPos::new(0, 50, 0), Block::Wood),
                (BlockPos::new(17, 50, 17), Block::Wood),
            ])
            .unwrap();
        let edited: Vec<ChunkPos> = world
            .drain_dirty()
            .iter()
            .flat_map(|d| d.chunks.iter().copied())
            .collect();
        assert_eq!(edited.len(), 2);

        // with_chunk_mut folds its delta into the dirty tracking too; a
        // read-only closure stays clean.
        world
            .with_chunk_mut(ChunkPos::new(1, 1), |chunk| {
                chunk.fill_layer(60, Block::Stone).unwrap()
            })
            .unwrap();
        world.read_chunk(ChunkPos::new(0, 0), |c| c.modifications());
        let deltas = world.drain_dirty();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].chunks, vec![ChunkPos::new(1, 1)]);

        // Removing a chunk clears its pending dirt.
        world
            .set_block(BlockPos::new(33, 9, 33), Block::Lamp)
            .unwrap();
        world.remove_chunk(ChunkPos::new(2, 2)).unwrap();
        assert!(world.drain_dirty().is_empty());
    }

    #[test]
    fn drain_dirty_shards_is_a_restricted_view() {
        let world = ShardedWorld::flat(4);
        for cx in 0..6 {
            for cz in 0..6 {
                world.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        // Dirty two chunks living in different shards.
        let a = ChunkPos::new(0, 0);
        let mut b = ChunkPos::new(1, 0);
        for cx in 1..6 {
            for cz in 0..6 {
                let candidate = ChunkPos::new(cx, cz);
                if world.shard_of(candidate) != world.shard_of(a) {
                    b = candidate;
                }
            }
        }
        assert_ne!(world.shard_of(a), world.shard_of(b));
        world
            .set_block(a.min_block() + BlockPos::new(1, 9, 1), Block::Stone)
            .unwrap();
        world
            .set_block(b.min_block() + BlockPos::new(1, 9, 1), Block::Lamp)
            .unwrap();

        // Draining only a's shard leaves b's shard dirty.
        let drained = world.drain_dirty_shards(&[world.shard_of(a)]);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].chunks, vec![a]);
        let rest = world.drain_dirty();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].chunks, vec![b]);
        // Out-of-range and duplicate indices are harmless.
        assert!(world
            .drain_dirty_shards(&[world.shard_of(a), world.shard_of(a), 10_000])
            .is_empty());
    }

    #[test]
    fn insert_chunks_batches_per_shard() {
        let world = ShardedWorld::new().with_shards(4);
        let chunks: Vec<Chunk> = (0..40)
            .map(|i| Chunk::empty(ChunkPos::new(i, i * 2)))
            .collect();
        world.insert_chunks(chunks);
        assert_eq!(world.loaded_chunks(), 40);
        for i in 0..40 {
            assert!(world.is_loaded(ChunkPos::new(i, i * 2)));
        }
    }

    #[test]
    fn flat_chunks_match_world_construction() {
        let sharded = ShardedWorld::flat(9);
        let mut plain = World::flat(9);
        sharded.ensure_chunk_at(ChunkPos::ORIGIN);
        plain.ensure_chunk_at(ChunkPos::ORIGIN);
        let from_sharded = sharded
            .read_chunk(ChunkPos::ORIGIN, |c| c.to_bytes())
            .unwrap();
        assert_eq!(
            from_sharded,
            plain.chunk(ChunkPos::ORIGIN).unwrap().to_bytes()
        );
    }

    /// The whole block/chunk/dirty surface exercised over an arbitrary
    /// backend — the same sequence every backend must agree on.
    fn exercise_backend<B: ChunkStore>() {
        let world = ShardedWorld::<B>::flat_in(4);
        for cx in -2..=2 {
            for cz in -2..=2 {
                world.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        assert_eq!(world.loaded_chunks(), 25);
        assert_eq!(world.block(BlockPos::new(0, 0, 0)), Some(Block::Bedrock));
        assert_eq!(world.block(BlockPos::new(5, 4, 5)), Some(Block::Grass));
        world
            .set_block(BlockPos::new(1, 10, 1), Block::Lamp)
            .unwrap();
        assert_eq!(world.block(BlockPos::new(1, 10, 1)), Some(Block::Lamp));
        let written = world
            .set_blocks((0..64).map(|i| {
                (
                    BlockPos::new(i % 32 - 16, 8 + i % 8, i % 32 - 16),
                    Block::Stone,
                )
            }))
            .unwrap();
        assert_eq!(written, 64);
        let filled = world
            .fill_region(
                BlockPos::new(-10, 40, -10),
                BlockPos::new(10, 41, 10),
                Block::Sand,
            )
            .unwrap();
        assert_eq!(filled, 21 * 21 * 2);
        assert_eq!(world.total_modifications(), 1 + 64 + 21 * 21 * 2);
        let dirty: usize = world.drain_dirty().iter().map(|d| d.chunks.len()).sum();
        assert!(dirty >= 4, "fill spans at least four chunks, saw {dirty}");
        let removed = world.remove_chunk(ChunkPos::new(2, 2)).unwrap();
        assert_eq!(removed.pos(), ChunkPos::new(2, 2));
        assert_eq!(world.loaded_chunks(), 24);
        assert!(!world.is_loaded(ChunkPos::new(2, 2)));
        // The fill raised the column height to the sand slab's top layer.
        assert_eq!(world.height_at(5, 5), Some(41));
        assert_eq!(world.loaded_positions().len(), 24);
        assert_eq!(world.to_world().loaded_chunks(), 24);
    }

    #[test]
    fn rwlock_backend_passes_the_exercise() {
        exercise_backend::<RwLockStore>();
    }

    #[test]
    fn lockfree_backend_passes_the_exercise() {
        exercise_backend::<crate::store::LockFreeStore>();
    }

    #[test]
    fn backends_agree_on_final_bytes() {
        fn run<B: ChunkStore>() -> Vec<Vec<u8>> {
            let world = ShardedWorld::<B>::flat_in(5);
            for cx in 0..3 {
                for cz in 0..3 {
                    world.ensure_chunk_at(ChunkPos::new(cx, cz));
                }
            }
            world
                .set_blocks((0..128).map(|i| {
                    (
                        BlockPos::new(i % 48, 6 + (i * 3) % 20, (i * 7) % 48),
                        if i % 3 == 0 { Block::Wood } else { Block::Lamp },
                    )
                }))
                .unwrap();
            let mut positions = world.loaded_positions();
            positions.sort_by_key(|p| (p.x, p.z));
            positions
                .into_iter()
                .map(|p| world.read_chunk(p, |c| c.to_bytes()).unwrap())
                .collect()
        }
        assert_eq!(run::<RwLockStore>(), run::<crate::store::LockFreeStore>());
    }

    #[test]
    fn world_sink_is_object_safe_and_delegates() {
        let world = ShardedWorld::flat(4);
        world.ensure_chunk_at(ChunkPos::ORIGIN);
        world
            .set_block(BlockPos::new(1, 9, 1), Block::Stone)
            .unwrap();
        let sink: std::sync::Arc<dyn WorldSink> = std::sync::Arc::new(world);
        assert_eq!(sink.shard_count(), DEFAULT_SHARDS);
        assert!(sink.chunk_bytes(ChunkPos::ORIGIN).is_some());
        assert!(sink.chunk_snapshot(ChunkPos::ORIGIN).is_some());
        assert!(sink.chunk_bytes(ChunkPos::new(9, 9)).is_none());
        let deltas = sink.drain_dirty();
        assert_eq!(deltas.len(), 1);
        assert!(sink
            .drain_dirty_shards(&[sink.shard_of(ChunkPos::ORIGIN)])
            .is_empty());
    }

    #[test]
    fn concurrent_mixed_load_over_lockfree_backend() {
        let world = ShardedWorld::<crate::store::LockFreeStore>::flat_in(4);
        for cx in 0..4 {
            for cz in 0..4 {
                world.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        std::thread::scope(|scope| {
            for t in 0..4 {
                let world = &world;
                scope.spawn(move || {
                    for i in 0..200 {
                        let pos = BlockPos::new((t * 16 + i) % 64, 10 + t, (i * 3) % 64);
                        if i % 4 == 0 {
                            world.set_block(pos, Block::Stone).unwrap();
                        } else {
                            let _ = world.block(pos);
                            let _ = world.is_loaded(ChunkPos::from(pos));
                        }
                    }
                });
            }
        });
        assert_eq!(world.total_modifications(), 4 * 50);
        assert_eq!(world.loaded_chunks(), 16);
    }
}

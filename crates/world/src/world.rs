//! The in-memory world: a collection of loaded chunks.

use std::collections::HashMap;

use servo_types::consts::{CHUNK_HEIGHT, CHUNK_SIZE};
use servo_types::{BlockPos, ChunkPos, ServoError};

use crate::block::Block;
use crate::chunk::Chunk;

/// The terrain flavour of a world, matching the paper's experiment setups
/// (Section IV-A: "default" procedurally generated terrain vs. the "flat"
/// world players use to prototype simulated constructs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorldKind {
    /// Procedurally generated terrain with mountains and rivers.
    #[default]
    Default,
    /// An infinite flat plain.
    Flat,
}

/// The in-memory game world: loaded chunks plus bookkeeping about
/// modifications, used by both the baseline servers and Servo.
///
/// Chunks are created explicitly (by a terrain generator or by loading from
/// storage); block access on a missing chunk returns `None` / an error so the
/// caller can trigger generation or loading.
///
/// # Example
///
/// ```
/// use servo_world::{Block, World};
/// use servo_types::{BlockPos, ChunkPos};
///
/// let mut w = World::flat(4);
/// w.ensure_chunk_at(ChunkPos::new(0, 0));
/// assert_eq!(w.block(BlockPos::new(3, 4, 3)), Some(Block::Grass));
/// assert_eq!(w.block(BlockPos::new(100, 4, 100)), None); // chunk not loaded
/// ```
#[derive(Debug, Clone, Default)]
pub struct World {
    kind: WorldKind,
    flat_ground_height: i32,
    chunks: HashMap<ChunkPos, Chunk>,
    total_modifications: u64,
}

impl World {
    /// Creates an empty world of the default (procedural) kind. Chunks must
    /// be inserted by a terrain generator.
    pub fn new() -> Self {
        World {
            kind: WorldKind::Default,
            flat_ground_height: 4,
            chunks: HashMap::new(),
            total_modifications: 0,
        }
    }

    /// Creates a flat world whose ground surface sits at `ground_height`.
    ///
    /// Chunks are still created lazily ([`World::ensure_chunk_at`]), but when
    /// created they are pre-filled with bedrock, dirt and a grass surface.
    pub fn flat(ground_height: i32) -> Self {
        World {
            kind: WorldKind::Flat,
            flat_ground_height: ground_height.clamp(1, CHUNK_HEIGHT - 1),
            chunks: HashMap::new(),
            total_modifications: 0,
        }
    }

    /// The world kind.
    pub fn kind(&self) -> WorldKind {
        self.kind
    }

    /// Number of chunks currently loaded in memory.
    pub fn loaded_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the chunk at `pos` is loaded.
    pub fn is_loaded(&self, pos: ChunkPos) -> bool {
        self.chunks.contains_key(&pos)
    }

    /// Iterates over the positions of all loaded chunks.
    pub fn loaded_positions(&self) -> impl Iterator<Item = ChunkPos> + '_ {
        self.chunks.keys().copied()
    }

    /// Total number of block modifications applied through this world.
    pub fn total_modifications(&self) -> u64 {
        self.total_modifications
    }

    /// Inserts a fully-built chunk (from a generator or storage), replacing
    /// any chunk already at that position.
    pub fn insert_chunk(&mut self, chunk: Chunk) {
        self.chunks.insert(chunk.pos(), chunk);
    }

    /// Removes and returns the chunk at `pos`, e.g. when it falls out of all
    /// players' view distance and is persisted to storage.
    pub fn remove_chunk(&mut self, pos: ChunkPos) -> Option<Chunk> {
        self.chunks.remove(&pos)
    }

    /// Returns a reference to the chunk at `pos`, if loaded.
    pub fn chunk(&self, pos: ChunkPos) -> Option<&Chunk> {
        self.chunks.get(&pos)
    }

    /// Returns a mutable reference to the chunk at `pos`, if loaded.
    pub fn chunk_mut(&mut self, pos: ChunkPos) -> Option<&mut Chunk> {
        self.chunks.get_mut(&pos)
    }

    /// Ensures a chunk exists at `pos`, creating a default one if missing.
    ///
    /// For [`WorldKind::Flat`] the created chunk has a bedrock floor, dirt
    /// body and grass surface at the configured ground height; for
    /// [`WorldKind::Default`] an empty chunk is created (procedural content
    /// is supplied by the `servo-pcg` generator instead).
    pub fn ensure_chunk_at(&mut self, pos: ChunkPos) -> &mut Chunk {
        let ground = self.flat_ground_height;
        let kind = self.kind;
        self.chunks.entry(pos).or_insert_with(|| {
            let mut chunk = Chunk::empty(pos);
            if kind == WorldKind::Flat {
                chunk
                    .fill_layer(0, Block::Bedrock)
                    .expect("layer 0 is in range");
                for y in 1..ground {
                    chunk.fill_layer(y, Block::Dirt).expect("layer in range");
                }
                chunk
                    .fill_layer(ground, Block::Grass)
                    .expect("ground layer in range");
            }
            chunk
        })
    }

    /// Reads the block at a world position. Returns `None` if the containing
    /// chunk is not loaded or `y` is out of range.
    pub fn block(&self, pos: BlockPos) -> Option<Block> {
        let chunk = self.chunks.get(&ChunkPos::from(pos))?;
        let (lx, ly, lz) = Self::local_coords(pos);
        chunk.local(lx, ly, lz)
    }

    /// Writes the block at a world position.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] if the containing chunk is not
    /// loaded, or [`ServoError::OutOfBounds`] if `y` is outside the world.
    pub fn set_block(&mut self, pos: BlockPos, block: Block) -> Result<(), ServoError> {
        let chunk_pos = ChunkPos::from(pos);
        let chunk = self
            .chunks
            .get_mut(&chunk_pos)
            .ok_or(ServoError::ChunkNotLoaded {
                x: chunk_pos.x,
                z: chunk_pos.z,
            })?;
        let (lx, ly, lz) = Self::local_coords(pos);
        chunk.set_local(lx, ly, lz, block)?;
        self.total_modifications += 1;
        Ok(())
    }

    /// The ground height (highest non-air block) at the given column, if the
    /// chunk is loaded.
    pub fn height_at(&self, x: i32, z: i32) -> Option<i32> {
        let pos = BlockPos::new(x, 0, z);
        let chunk = self.chunks.get(&ChunkPos::from(pos))?;
        let (lx, _, lz) = Self::local_coords(pos);
        chunk.height_at(lx, lz)
    }

    /// Total number of stateful (simulated-construct) blocks across all
    /// loaded chunks.
    pub fn stateful_blocks(&self) -> usize {
        self.chunks.values().map(|c| c.stateful_blocks()).sum()
    }

    fn local_coords(pos: BlockPos) -> (i32, i32, i32) {
        (
            pos.x.rem_euclid(CHUNK_SIZE),
            pos.y,
            pos.z.rem_euclid(CHUNK_SIZE),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_world_chunks_have_surface() {
        let mut w = World::flat(4);
        w.ensure_chunk_at(ChunkPos::new(0, 0));
        w.ensure_chunk_at(ChunkPos::new(-1, -1));
        assert_eq!(w.loaded_chunks(), 2);
        assert_eq!(w.block(BlockPos::new(0, 0, 0)), Some(Block::Bedrock));
        assert_eq!(w.block(BlockPos::new(5, 4, 5)), Some(Block::Grass));
        assert_eq!(w.block(BlockPos::new(5, 5, 5)), Some(Block::Air));
        assert_eq!(w.block(BlockPos::new(-5, 4, -5)), Some(Block::Grass));
        assert_eq!(w.height_at(-5, -5), Some(4));
    }

    #[test]
    fn block_access_requires_loaded_chunk() {
        let mut w = World::flat(4);
        assert_eq!(w.block(BlockPos::new(100, 4, 100)), None);
        let err = w
            .set_block(BlockPos::new(100, 4, 100), Block::Stone)
            .unwrap_err();
        assert!(matches!(err, ServoError::ChunkNotLoaded { .. }));
    }

    #[test]
    fn set_block_across_chunks_and_negative_coords() {
        let mut w = World::flat(4);
        for cx in -3..=3 {
            for cz in -3..=3 {
                w.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let positions = [
            BlockPos::new(0, 10, 0),
            BlockPos::new(-1, 10, -1),
            BlockPos::new(17, 10, -17),
            BlockPos::new(-33, 10, 31),
        ];
        for (i, &p) in positions.iter().enumerate() {
            w.set_block(p, Block::Lamp).unwrap();
            assert_eq!(w.block(p), Some(Block::Lamp), "position {i}");
        }
        assert_eq!(w.total_modifications(), positions.len() as u64);
        assert_eq!(w.stateful_blocks(), positions.len());
    }

    #[test]
    fn out_of_range_y_is_rejected() {
        let mut w = World::flat(4);
        w.ensure_chunk_at(ChunkPos::ORIGIN);
        assert!(w.set_block(BlockPos::new(0, 256, 0), Block::Stone).is_err());
        assert!(w.set_block(BlockPos::new(0, -1, 0), Block::Stone).is_err());
        assert_eq!(w.block(BlockPos::new(0, 300, 0)), None);
    }

    #[test]
    fn default_world_creates_empty_chunks() {
        let mut w = World::new();
        assert_eq!(w.kind(), WorldKind::Default);
        w.ensure_chunk_at(ChunkPos::ORIGIN);
        assert_eq!(w.block(BlockPos::new(0, 0, 0)), Some(Block::Air));
    }

    #[test]
    fn insert_and_remove_chunks() {
        let mut w = World::new();
        let mut chunk = Chunk::empty(ChunkPos::new(3, 3));
        chunk.fill_layer(7, Block::Sand).unwrap();
        w.insert_chunk(chunk);
        assert!(w.is_loaded(ChunkPos::new(3, 3)));
        assert_eq!(w.block(BlockPos::new(48, 7, 48)), Some(Block::Sand));
        let removed = w.remove_chunk(ChunkPos::new(3, 3)).unwrap();
        assert_eq!(removed.pos(), ChunkPos::new(3, 3));
        assert!(!w.is_loaded(ChunkPos::new(3, 3)));
        assert_eq!(w.remove_chunk(ChunkPos::new(3, 3)), None);
    }

    #[test]
    fn loaded_positions_iterates_all() {
        let mut w = World::flat(4);
        let expected: Vec<ChunkPos> = (0..5).map(|i| ChunkPos::new(i, -i)).collect();
        for &p in &expected {
            w.ensure_chunk_at(p);
        }
        let mut got: Vec<ChunkPos> = w.loaded_positions().collect();
        got.sort_by_key(|p| (p.x, p.z));
        assert_eq!(got.len(), expected.len());
    }
}

//! The in-memory world: a collection of loaded chunks.

use std::collections::HashMap;

use servo_types::consts::{CHUNK_BITS, CHUNK_HEIGHT, CHUNK_MASK, CHUNK_SIZE};
use servo_types::{BlockPos, ChunkPos, ServoError};

use crate::block::Block;
use crate::chunk::Chunk;

/// Splits a world position into its chunk position and chunk-local
/// coordinates in a single pass of shift/mask arithmetic (`CHUNK_SIZE` is a
/// power of two; the arithmetic shift floors correctly for negative
/// coordinates).
#[inline]
pub(crate) fn split_pos(pos: BlockPos) -> (ChunkPos, i32, i32, i32) {
    (
        ChunkPos::new(pos.x >> CHUNK_BITS, pos.z >> CHUNK_BITS),
        pos.x & CHUNK_MASK,
        pos.y,
        pos.z & CHUNK_MASK,
    )
}

/// The terrain flavour of a world, matching the paper's experiment setups
/// (Section IV-A: "default" procedurally generated terrain vs. the "flat"
/// world players use to prototype simulated constructs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorldKind {
    /// Procedurally generated terrain with mountains and rivers.
    #[default]
    Default,
    /// An infinite flat plain.
    Flat,
}

/// The in-memory game world: loaded chunks plus bookkeeping about
/// modifications, used by both the baseline servers and Servo.
///
/// Chunks are created explicitly (by a terrain generator or by loading from
/// storage); block access on a missing chunk returns `None` / an error so the
/// caller can trigger generation or loading.
///
/// # Example
///
/// ```
/// use servo_world::{Block, World};
/// use servo_types::{BlockPos, ChunkPos};
///
/// let mut w = World::flat(4);
/// w.ensure_chunk_at(ChunkPos::new(0, 0));
/// assert_eq!(w.block(BlockPos::new(3, 4, 3)), Some(Block::Grass));
/// assert_eq!(w.block(BlockPos::new(100, 4, 100)), None); // chunk not loaded
/// ```
#[derive(Debug, Clone, Default)]
pub struct World {
    kind: WorldKind,
    flat_ground_height: i32,
    chunks: HashMap<ChunkPos, Chunk>,
    total_modifications: u64,
}

impl World {
    /// Creates an empty world of the default (procedural) kind. Chunks must
    /// be inserted by a terrain generator.
    pub fn new() -> Self {
        World {
            kind: WorldKind::Default,
            flat_ground_height: 4,
            chunks: HashMap::new(),
            total_modifications: 0,
        }
    }

    /// Creates a flat world whose ground surface sits at `ground_height`.
    ///
    /// Chunks are still created lazily ([`World::ensure_chunk_at`]), but when
    /// created they are pre-filled with bedrock, dirt and a grass surface.
    pub fn flat(ground_height: i32) -> Self {
        World {
            kind: WorldKind::Flat,
            flat_ground_height: ground_height.clamp(1, CHUNK_HEIGHT - 1),
            chunks: HashMap::new(),
            total_modifications: 0,
        }
    }

    /// The world kind.
    pub fn kind(&self) -> WorldKind {
        self.kind
    }

    /// The configured flat-world ground height (meaningful for
    /// [`WorldKind::Flat`] worlds).
    pub(crate) fn flat_ground(&self) -> i32 {
        self.flat_ground_height
    }

    /// Number of chunks currently loaded in memory.
    pub fn loaded_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the chunk at `pos` is loaded.
    pub fn is_loaded(&self, pos: ChunkPos) -> bool {
        self.chunks.contains_key(&pos)
    }

    /// Iterates over the positions of all loaded chunks.
    pub fn loaded_positions(&self) -> impl Iterator<Item = ChunkPos> + '_ {
        self.chunks.keys().copied()
    }

    /// Total number of block modifications applied through this world.
    pub fn total_modifications(&self) -> u64 {
        self.total_modifications
    }

    /// Inserts a fully-built chunk (from a generator or storage), replacing
    /// any chunk already at that position.
    pub fn insert_chunk(&mut self, chunk: Chunk) {
        self.chunks.insert(chunk.pos(), chunk);
    }

    /// Removes and returns the chunk at `pos`, e.g. when it falls out of all
    /// players' view distance and is persisted to storage.
    pub fn remove_chunk(&mut self, pos: ChunkPos) -> Option<Chunk> {
        self.chunks.remove(&pos)
    }

    /// Returns a reference to the chunk at `pos`, if loaded.
    pub fn chunk(&self, pos: ChunkPos) -> Option<&Chunk> {
        self.chunks.get(&pos)
    }

    /// Returns a mutable reference to the chunk at `pos`, if loaded.
    pub fn chunk_mut(&mut self, pos: ChunkPos) -> Option<&mut Chunk> {
        self.chunks.get_mut(&pos)
    }

    /// Ensures a chunk exists at `pos`, creating a default one if missing.
    ///
    /// For [`WorldKind::Flat`] the created chunk has a bedrock floor, dirt
    /// body and grass surface at the configured ground height; for
    /// [`WorldKind::Default`] an empty chunk is created (procedural content
    /// is supplied by the `servo-pcg` generator instead).
    pub fn ensure_chunk_at(&mut self, pos: ChunkPos) -> &mut Chunk {
        let ground = self.flat_ground_height;
        let kind = self.kind;
        self.chunks.entry(pos).or_insert_with(|| {
            let mut chunk = Chunk::empty(pos);
            if kind == WorldKind::Flat {
                chunk
                    .fill_layer(0, Block::Bedrock)
                    .expect("layer 0 is in range");
                for y in 1..ground {
                    chunk.fill_layer(y, Block::Dirt).expect("layer in range");
                }
                chunk
                    .fill_layer(ground, Block::Grass)
                    .expect("ground layer in range");
            }
            chunk
        })
    }

    /// Combined lookup: the chunk containing `pos` plus the chunk-local
    /// coordinates of `pos`, resolved with a single hash of the chunk
    /// position. The hot accessors ([`World::block`], [`World::set_block`],
    /// [`World::height_at`]) are all built on this.
    #[inline]
    pub fn chunk_and_local(&self, pos: BlockPos) -> Option<(&Chunk, (i32, i32, i32))> {
        let (chunk_pos, lx, ly, lz) = split_pos(pos);
        Some((self.chunks.get(&chunk_pos)?, (lx, ly, lz)))
    }

    /// Reads the block at a world position. Returns `None` if the containing
    /// chunk is not loaded or `y` is out of range.
    pub fn block(&self, pos: BlockPos) -> Option<Block> {
        let (chunk, (lx, ly, lz)) = self.chunk_and_local(pos)?;
        chunk.local(lx, ly, lz)
    }

    /// Writes the block at a world position.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] if the containing chunk is not
    /// loaded, or [`ServoError::OutOfBounds`] if `y` is outside the world.
    pub fn set_block(&mut self, pos: BlockPos, block: Block) -> Result<(), ServoError> {
        let (chunk_pos, lx, ly, lz) = split_pos(pos);
        let chunk = self
            .chunks
            .get_mut(&chunk_pos)
            .ok_or(ServoError::ChunkNotLoaded {
                x: chunk_pos.x,
                z: chunk_pos.z,
            })?;
        chunk.set_local(lx, ly, lz, block)?;
        self.total_modifications += 1;
        Ok(())
    }

    /// Writes a batch of blocks, resolving the containing chunk once per
    /// run of consecutive same-chunk positions instead of once per block.
    /// Returns the number of blocks written.
    ///
    /// Writes are applied in order; on the first failing write the already
    /// applied prefix is kept and the error returned.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] or [`ServoError::OutOfBounds`]
    /// for the first offending position.
    pub fn set_blocks<I>(&mut self, blocks: I) -> Result<usize, ServoError>
    where
        I: IntoIterator<Item = (BlockPos, Block)>,
    {
        let mut items = blocks.into_iter().peekable();
        let mut written = 0usize;
        let mut result = Ok(());
        'runs: while let Some((pos, block)) = items.next() {
            let (chunk_pos, lx, ly, lz) = split_pos(pos);
            let Some(chunk) = self.chunks.get_mut(&chunk_pos) else {
                result = Err(ServoError::ChunkNotLoaded {
                    x: chunk_pos.x,
                    z: chunk_pos.z,
                });
                break;
            };
            if let Err(e) = chunk.set_local(lx, ly, lz, block) {
                result = Err(e);
                break;
            }
            written += 1;
            // Drain the rest of the same-chunk run without re-hashing.
            while let Some(&(next_pos, _)) = items.peek() {
                let (next_chunk, nlx, nly, nlz) = split_pos(next_pos);
                if next_chunk != chunk_pos {
                    break;
                }
                let (_, next_block) = items.next().expect("peeked item exists");
                if let Err(e) = chunk.set_local(nlx, nly, nlz, next_block) {
                    result = Err(e);
                    break 'runs;
                }
                written += 1;
            }
        }
        self.total_modifications += written as u64;
        result.map(|()| written)
    }

    /// Fills the axis-aligned region spanning `min..=max` (inclusive world
    /// coordinates) with `block`, taking each involved chunk once and
    /// filling it with a bulk box write. Returns the number of blocks whose
    /// value actually changed.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::ChunkNotLoaded`] if any overlapped chunk is not
    /// loaded, or [`ServoError::OutOfBounds`] if the `y` range leaves the
    /// world or the region is inverted. Nothing is written until the whole
    /// region has been validated as loaded.
    pub fn fill_region(
        &mut self,
        min: BlockPos,
        max: BlockPos,
        block: Block,
    ) -> Result<usize, ServoError> {
        if min.x > max.x || min.y > max.y || min.z > max.z {
            return Err(ServoError::OutOfBounds {
                what: format!("inverted region {min}..={max}"),
            });
        }
        if !(0..CHUNK_HEIGHT).contains(&min.y) || !(0..CHUNK_HEIGHT).contains(&max.y) {
            return Err(ServoError::OutOfBounds {
                what: format!("region y range {}..={}", min.y, max.y),
            });
        }
        let (min_chunk, max_chunk) = (ChunkPos::from(min), ChunkPos::from(max));
        for cx in min_chunk.x..=max_chunk.x {
            for cz in min_chunk.z..=max_chunk.z {
                if !self.chunks.contains_key(&ChunkPos::new(cx, cz)) {
                    return Err(ServoError::ChunkNotLoaded { x: cx, z: cz });
                }
            }
        }
        let mut changed = 0usize;
        for cx in min_chunk.x..=max_chunk.x {
            for cz in min_chunk.z..=max_chunk.z {
                let chunk_pos = ChunkPos::new(cx, cz);
                let base = chunk_pos.min_block();
                let lo = ((min.x - base.x).max(0), min.y, (min.z - base.z).max(0));
                let hi = (
                    (max.x - base.x).min(CHUNK_SIZE - 1),
                    max.y,
                    (max.z - base.z).min(CHUNK_SIZE - 1),
                );
                let chunk = self.chunks.get_mut(&chunk_pos).expect("validated above");
                changed += chunk.fill_box(lo, hi, block)?;
            }
        }
        self.total_modifications += changed as u64;
        Ok(changed)
    }

    /// The ground height (highest non-air block) at the given column, if the
    /// chunk is loaded.
    pub fn height_at(&self, x: i32, z: i32) -> Option<i32> {
        let (chunk, (lx, _, lz)) = self.chunk_and_local(BlockPos::new(x, 0, z))?;
        chunk.height_at(lx, lz)
    }

    /// Total number of stateful (simulated-construct) blocks across all
    /// loaded chunks.
    pub fn stateful_blocks(&self) -> usize {
        self.chunks.values().map(|c| c.stateful_blocks()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_world_chunks_have_surface() {
        let mut w = World::flat(4);
        w.ensure_chunk_at(ChunkPos::new(0, 0));
        w.ensure_chunk_at(ChunkPos::new(-1, -1));
        assert_eq!(w.loaded_chunks(), 2);
        assert_eq!(w.block(BlockPos::new(0, 0, 0)), Some(Block::Bedrock));
        assert_eq!(w.block(BlockPos::new(5, 4, 5)), Some(Block::Grass));
        assert_eq!(w.block(BlockPos::new(5, 5, 5)), Some(Block::Air));
        assert_eq!(w.block(BlockPos::new(-5, 4, -5)), Some(Block::Grass));
        assert_eq!(w.height_at(-5, -5), Some(4));
    }

    #[test]
    fn block_access_requires_loaded_chunk() {
        let mut w = World::flat(4);
        assert_eq!(w.block(BlockPos::new(100, 4, 100)), None);
        let err = w
            .set_block(BlockPos::new(100, 4, 100), Block::Stone)
            .unwrap_err();
        assert!(matches!(err, ServoError::ChunkNotLoaded { .. }));
    }

    #[test]
    fn set_block_across_chunks_and_negative_coords() {
        let mut w = World::flat(4);
        for cx in -3..=3 {
            for cz in -3..=3 {
                w.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let positions = [
            BlockPos::new(0, 10, 0),
            BlockPos::new(-1, 10, -1),
            BlockPos::new(17, 10, -17),
            BlockPos::new(-33, 10, 31),
        ];
        for (i, &p) in positions.iter().enumerate() {
            w.set_block(p, Block::Lamp).unwrap();
            assert_eq!(w.block(p), Some(Block::Lamp), "position {i}");
        }
        assert_eq!(w.total_modifications(), positions.len() as u64);
        assert_eq!(w.stateful_blocks(), positions.len());
    }

    #[test]
    fn out_of_range_y_is_rejected() {
        let mut w = World::flat(4);
        w.ensure_chunk_at(ChunkPos::ORIGIN);
        assert!(w.set_block(BlockPos::new(0, 256, 0), Block::Stone).is_err());
        assert!(w.set_block(BlockPos::new(0, -1, 0), Block::Stone).is_err());
        assert_eq!(w.block(BlockPos::new(0, 300, 0)), None);
    }

    #[test]
    fn default_world_creates_empty_chunks() {
        let mut w = World::new();
        assert_eq!(w.kind(), WorldKind::Default);
        w.ensure_chunk_at(ChunkPos::ORIGIN);
        assert_eq!(w.block(BlockPos::new(0, 0, 0)), Some(Block::Air));
    }

    #[test]
    fn insert_and_remove_chunks() {
        let mut w = World::new();
        let mut chunk = Chunk::empty(ChunkPos::new(3, 3));
        chunk.fill_layer(7, Block::Sand).unwrap();
        w.insert_chunk(chunk);
        assert!(w.is_loaded(ChunkPos::new(3, 3)));
        assert_eq!(w.block(BlockPos::new(48, 7, 48)), Some(Block::Sand));
        let removed = w.remove_chunk(ChunkPos::new(3, 3)).unwrap();
        assert_eq!(removed.pos(), ChunkPos::new(3, 3));
        assert!(!w.is_loaded(ChunkPos::new(3, 3)));
        assert_eq!(w.remove_chunk(ChunkPos::new(3, 3)), None);
    }

    #[test]
    fn loaded_positions_iterates_all() {
        let mut w = World::flat(4);
        let mut expected: Vec<ChunkPos> = (0..5).map(|i| ChunkPos::new(i, -i)).collect();
        for &p in &expected {
            w.ensure_chunk_at(p);
        }
        let mut got: Vec<ChunkPos> = w.loaded_positions().collect();
        got.sort_by_key(|p| (p.x, p.z));
        expected.sort_by_key(|p| (p.x, p.z));
        // The exact position sets must match, not just their sizes.
        assert_eq!(got, expected);
    }

    #[test]
    fn set_blocks_matches_individual_writes() {
        let mut batch_world = World::flat(4);
        let mut single_world = World::flat(4);
        for cx in -1..=1 {
            for cz in -1..=1 {
                batch_world.ensure_chunk_at(ChunkPos::new(cx, cz));
                single_world.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let writes: Vec<(BlockPos, Block)> = (0..100)
            .map(|i| {
                (
                    BlockPos::new(i % 40 - 16, 10 + i % 7, (i * 3) % 40 - 16),
                    Block::Lamp,
                )
            })
            .collect();
        let written = batch_world.set_blocks(writes.clone()).unwrap();
        assert_eq!(written, writes.len());
        for &(pos, block) in &writes {
            single_world.set_block(pos, block).unwrap();
        }
        for &(pos, _) in &writes {
            assert_eq!(batch_world.block(pos), single_world.block(pos));
        }
        assert_eq!(
            batch_world.total_modifications(),
            single_world.total_modifications()
        );
    }

    #[test]
    fn set_blocks_fails_on_first_unloaded_chunk() {
        let mut w = World::flat(4);
        w.ensure_chunk_at(ChunkPos::ORIGIN);
        let err = w
            .set_blocks([
                (BlockPos::new(1, 10, 1), Block::Stone),
                (BlockPos::new(100, 10, 100), Block::Stone),
            ])
            .unwrap_err();
        assert!(matches!(err, ServoError::ChunkNotLoaded { .. }));
        // The prefix before the failure was applied.
        assert_eq!(w.block(BlockPos::new(1, 10, 1)), Some(Block::Stone));
        assert_eq!(w.total_modifications(), 1);
    }

    #[test]
    fn fill_region_spans_chunks() {
        let mut w = World::flat(4);
        for cx in -1..=1 {
            for cz in -1..=1 {
                w.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let changed = w
            .fill_region(
                BlockPos::new(-5, 10, -5),
                BlockPos::new(20, 12, 4),
                Block::Stone,
            )
            .unwrap();
        assert_eq!(changed, 26 * 3 * 10);
        assert_eq!(w.block(BlockPos::new(-5, 10, -5)), Some(Block::Stone));
        assert_eq!(w.block(BlockPos::new(20, 12, 4)), Some(Block::Stone));
        assert_eq!(w.block(BlockPos::new(-6, 10, -5)), Some(Block::Air));
        assert_eq!(w.block(BlockPos::new(20, 13, 4)), Some(Block::Air));
        assert_eq!(w.total_modifications(), changed as u64);
    }

    #[test]
    fn fill_region_requires_all_chunks_loaded() {
        let mut w = World::flat(4);
        w.ensure_chunk_at(ChunkPos::ORIGIN);
        // The region touches the unloaded chunk [1, 0]: nothing is written.
        let err = w
            .fill_region(
                BlockPos::new(0, 10, 0),
                BlockPos::new(17, 10, 0),
                Block::Stone,
            )
            .unwrap_err();
        assert!(matches!(err, ServoError::ChunkNotLoaded { x: 1, z: 0 }));
        assert_eq!(w.block(BlockPos::new(0, 10, 0)), Some(Block::Air));
        assert_eq!(w.total_modifications(), 0);
    }
}

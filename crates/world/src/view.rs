//! View-distance helpers.
//!
//! Players must always have terrain loaded out to their configured view
//! distance (128 blocks by default in the paper's Figure 10 experiment).
//! These helpers compute which chunks are required for a set of avatar
//! positions and how close the nearest *missing* terrain is — the QoS metric
//! of the terrain-generation experiments.

use std::collections::BTreeSet;

use servo_types::consts::CHUNK_SIZE;
use servo_types::{BlockPos, ChunkPos};

use crate::sharded::ShardedWorld;
use crate::world::World;

/// Read access to which chunks are loaded, implemented by both the
/// single-threaded [`World`] and the concurrent [`ShardedWorld`] so the
/// view-distance helpers work against either.
pub trait ChunkIndex {
    /// Whether the chunk at `pos` is loaded.
    fn contains_chunk(&self, pos: ChunkPos) -> bool;
}

impl ChunkIndex for World {
    fn contains_chunk(&self, pos: ChunkPos) -> bool {
        self.is_loaded(pos)
    }
}

impl<B: crate::store::ChunkStore> ChunkIndex for ShardedWorld<B> {
    fn contains_chunk(&self, pos: ChunkPos) -> bool {
        self.is_loaded(pos)
    }
}

/// The set of chunk positions required to cover `view_distance_blocks`
/// around every given avatar position.
pub fn required_chunks(
    avatar_positions: &[BlockPos],
    view_distance_blocks: i32,
) -> BTreeSet<ChunkPos> {
    let radius_chunks = (view_distance_blocks.max(0) + CHUNK_SIZE - 1) / CHUNK_SIZE;
    let mut required = BTreeSet::new();
    for &pos in avatar_positions {
        let centre = ChunkPos::from(pos);
        for chunk in centre.square_around(radius_chunks as u32) {
            required.insert(chunk);
        }
    }
    required
}

/// The required chunks that are not currently loaded in `world`.
pub fn missing_chunks(
    world: &impl ChunkIndex,
    avatar_positions: &[BlockPos],
    view_distance_blocks: i32,
) -> Vec<ChunkPos> {
    required_chunks(avatar_positions, view_distance_blocks)
        .into_iter()
        .filter(|pos| !world.contains_chunk(*pos))
        .collect()
}

/// The distance, in blocks, from the closest avatar to the closest missing
/// (not loaded) chunk within the view distance. If no chunk is missing the
/// view distance itself is returned — the "full view distance" plateau of
/// Figure 10a.
///
/// This is the vertical-axis metric of Figure 10 (left): it should stay at
/// the configured view distance (128) for good QoS, and drops when terrain
/// generation cannot keep up with player movement.
pub fn nearest_missing_distance_blocks(
    world: &impl ChunkIndex,
    avatar_positions: &[BlockPos],
    view_distance_blocks: i32,
) -> f64 {
    let mut nearest = view_distance_blocks as f64;
    for &avatar in avatar_positions {
        for chunk in required_chunks(&[avatar], view_distance_blocks) {
            if world.contains_chunk(chunk) {
                continue;
            }
            // Distance from the avatar to the nearest corner of the chunk.
            let min = chunk.min_block();
            let max_x = min.x + CHUNK_SIZE - 1;
            let max_z = min.z + CHUNK_SIZE - 1;
            let dx = if avatar.x < min.x {
                (min.x - avatar.x) as f64
            } else if avatar.x > max_x {
                (avatar.x - max_x) as f64
            } else {
                0.0
            };
            let dz = if avatar.z < min.z {
                (min.z - avatar.z) as f64
            } else if avatar.z > max_z {
                (avatar.z - max_z) as f64
            } else {
                0.0
            };
            let dist = (dx * dx + dz * dz).sqrt();
            if dist < nearest {
                nearest = dist;
            }
        }
    }
    nearest
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_types::ChunkPos;

    #[test]
    fn required_chunks_covers_view_square() {
        let required = required_chunks(&[BlockPos::new(0, 64, 0)], 32);
        // 32 blocks -> 2 chunks radius -> 5x5 square.
        assert_eq!(required.len(), 25);
        assert!(required.contains(&ChunkPos::new(2, 2)));
        assert!(!required.contains(&ChunkPos::new(3, 0)));
    }

    #[test]
    fn required_chunks_merges_multiple_avatars() {
        let one = required_chunks(&[BlockPos::new(0, 64, 0)], 16);
        let far_apart = required_chunks(
            &[BlockPos::new(0, 64, 0), BlockPos::new(1000, 64, 1000)],
            16,
        );
        assert_eq!(far_apart.len(), one.len() * 2);
        let overlapping = required_chunks(&[BlockPos::new(0, 64, 0), BlockPos::new(1, 64, 1)], 16);
        assert_eq!(overlapping.len(), one.len());
    }

    #[test]
    fn missing_chunks_shrinks_as_world_loads() {
        let mut world = World::flat(4);
        let avatars = [BlockPos::new(8, 5, 8)];
        let missing_before = missing_chunks(&world, &avatars, 32);
        assert_eq!(missing_before.len(), 25);
        for pos in &missing_before {
            world.ensure_chunk_at(*pos);
        }
        assert!(missing_chunks(&world, &avatars, 32).is_empty());
    }

    #[test]
    fn nearest_missing_distance_is_view_distance_when_loaded() {
        let mut world = World::flat(4);
        let avatars = [BlockPos::new(8, 5, 8)];
        for pos in missing_chunks(&world, &avatars, 128) {
            world.ensure_chunk_at(pos);
        }
        let d = nearest_missing_distance_blocks(&world, &avatars, 128);
        assert_eq!(d, 128.0);
    }

    #[test]
    fn nearest_missing_distance_drops_when_terrain_missing() {
        let mut world = World::flat(4);
        let avatars = [BlockPos::new(8, 5, 8)];
        // Load only the avatar's own chunk.
        world.ensure_chunk_at(ChunkPos::new(0, 0));
        let d = nearest_missing_distance_blocks(&world, &avatars, 128);
        // The nearest missing chunk is adjacent: at most 8 blocks away.
        assert!(d <= 8.0, "distance was {d}");
        assert!(d > 0.0);
    }

    #[test]
    fn zero_view_distance_requires_single_chunk() {
        let required = required_chunks(&[BlockPos::new(5, 64, 5)], 0);
        assert_eq!(required.len(), 1);
    }
}

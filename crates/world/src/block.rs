//! Block types.

use std::fmt;

/// A block type in the voxel world.
///
/// The first group are passive terrain blocks; the second group are the
/// *stateful* block kinds that make up simulated constructs (Section II-A of
/// the paper: batteries, lamps, wires and other programmable terrain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u16)]
pub enum Block {
    /// Empty space.
    #[default]
    Air = 0,
    /// Generic stone.
    Stone = 1,
    /// Dirt.
    Dirt = 2,
    /// Grass-covered dirt.
    Grass = 3,
    /// Sand.
    Sand = 4,
    /// Water.
    Water = 5,
    /// Unbreakable world floor.
    Bedrock = 6,
    /// Tree trunk.
    Wood = 7,
    /// Tree canopy.
    Leaves = 8,
    /// Snow cover.
    Snow = 9,

    /// A power source (battery): always emits a signal.
    PowerSource = 100,
    /// A signal wire: propagates power with decaying strength.
    Wire = 101,
    /// A lamp: lights up when powered.
    Lamp = 102,
    /// A repeater: re-emits full-strength signal one tick later.
    Repeater = 103,
    /// A torch (inverter): emits unless its input is powered.
    Torch = 104,
}

impl Block {
    /// All block kinds, useful for exhaustive tests.
    pub const ALL: [Block; 15] = [
        Block::Air,
        Block::Stone,
        Block::Dirt,
        Block::Grass,
        Block::Sand,
        Block::Water,
        Block::Bedrock,
        Block::Wood,
        Block::Leaves,
        Block::Snow,
        Block::PowerSource,
        Block::Wire,
        Block::Lamp,
        Block::Repeater,
        Block::Torch,
    ];

    /// The compact numeric identifier stored in chunk data.
    pub const fn id(self) -> u16 {
        self as u16
    }

    /// Reconstructs a block from its numeric identifier.
    ///
    /// Unknown identifiers return `None`; chunk deserialization treats them
    /// as corrupt data.
    pub const fn from_id(id: u16) -> Option<Block> {
        Some(match id {
            0 => Block::Air,
            1 => Block::Stone,
            2 => Block::Dirt,
            3 => Block::Grass,
            4 => Block::Sand,
            5 => Block::Water,
            6 => Block::Bedrock,
            7 => Block::Wood,
            8 => Block::Leaves,
            9 => Block::Snow,
            100 => Block::PowerSource,
            101 => Block::Wire,
            102 => Block::Lamp,
            103 => Block::Repeater,
            104 => Block::Torch,
            _ => return None,
        })
    }

    /// Whether the block is empty space.
    pub const fn is_air(self) -> bool {
        matches!(self, Block::Air)
    }

    /// Whether the block is a *stateful* block, i.e. participates in
    /// simulated constructs and generates simulation work every tick.
    pub const fn is_stateful(self) -> bool {
        matches!(
            self,
            Block::PowerSource | Block::Wire | Block::Lamp | Block::Repeater | Block::Torch
        )
    }

    /// Whether the block blocks movement (used by the workload models to
    /// keep avatars on the ground).
    pub const fn is_solid(self) -> bool {
        !matches!(self, Block::Air | Block::Water)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Block::Air => "air",
            Block::Stone => "stone",
            Block::Dirt => "dirt",
            Block::Grass => "grass",
            Block::Sand => "sand",
            Block::Water => "water",
            Block::Bedrock => "bedrock",
            Block::Wood => "wood",
            Block::Leaves => "leaves",
            Block::Snow => "snow",
            Block::PowerSource => "power source",
            Block::Wire => "wire",
            Block::Lamp => "lamp",
            Block::Repeater => "repeater",
            Block::Torch => "torch",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips_for_all_blocks() {
        for b in Block::ALL {
            assert_eq!(Block::from_id(b.id()), Some(b));
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert_eq!(Block::from_id(50), None);
        assert_eq!(Block::from_id(u16::MAX), None);
    }

    #[test]
    fn stateful_classification() {
        assert!(Block::Wire.is_stateful());
        assert!(Block::PowerSource.is_stateful());
        assert!(!Block::Stone.is_stateful());
        assert!(!Block::Air.is_stateful());
    }

    #[test]
    fn solidity() {
        assert!(Block::Stone.is_solid());
        assert!(!Block::Air.is_solid());
        assert!(!Block::Water.is_solid());
        assert!(Block::Air.is_air());
    }

    #[test]
    fn display_is_nonempty() {
        for b in Block::ALL {
            assert!(!b.to_string().is_empty());
        }
    }
}

//! Pluggable per-shard chunk storage backends.
//!
//! [`ShardedWorld`](crate::ShardedWorld) owns the *policy* of the
//! concurrent world — sharding, dirty tracking, modification epochs,
//! batch routing — but delegates the *mechanism* of storing one shard's
//! chunks to a [`ChunkStore`] backend. The split follows the
//! `Collection`/`CollectionHandle` adapter shape of concurrent-map bench
//! harnesses: [`ChunkStore`] is the collection (shared, `&self`,
//! closure-based accessors), and [`ChunkWriter`] is the short-lived
//! exclusive handle a batch operation pins so a backend that *can* hold
//! one lock across a whole batch (the `RwLock` store) does, while a
//! backend with per-entry locking simply serves each call individually.
//!
//! Two backends ship:
//!
//! * [`RwLockStore`] — the seed design: one `RwLock<HashMap>` per shard.
//!   Readers of one shard share a lock; a batch writer takes it once per
//!   batch. This is the default backend and the equivalence baseline.
//! * [`LockFreeStore`] — an scc-style cell-locked map (the `scc` compat
//!   crate): lock-free chain traversal for lookups, an 8-byte
//!   seqlock-augmented read-write lock *per chunk*, and membership checks
//!   that pay no read-modify-write at all. Readers of *different chunks*
//!   in the same shard never touch a shared cache line, which removes the
//!   shard-lock convoy the read-mostly scan path plateaus on.
//!
//! Every [`ShardedWorld`](crate::ShardedWorld) entry point works over any
//! backend, and the differential property suite
//! (`tests/backend_differential.rs`) pins all backends to the plain
//! [`World`](crate::World) byte for byte.

use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

use servo_types::ChunkPos;

use crate::chunk::Chunk;
use crate::sharded::FxBuildHasher;

/// One shard's chunk storage: a concurrent map from [`ChunkPos`] to
/// [`Chunk`] with closure-based access, in the `Collection` role of the
/// adapter shape (see the [module docs](self)).
///
/// # Contract
///
/// * `read`/`update` run their closure under shared/exclusive access to
///   that one chunk; backends may serialize more broadly (a whole-shard
///   lock) but never less.
/// * `insert_if_absent` is atomic: of many racing inserters of one
///   position, exactly one returns `true`.
/// * `len` and `contains` are linearizable against insert/remove.
/// * Methods taking `&self` may be called from any thread concurrently;
///   iteration (`keys`, `for_each`) may be weakly consistent under
///   concurrent mutation but must be exact once writers have returned.
pub trait ChunkStore: Send + Sync + fmt::Debug + 'static {
    /// The exclusive batch handle (the `CollectionHandle` role). Holding
    /// one must not block other shards; whether it blocks other access to
    /// *this* shard is the backend's choice.
    type Writer<'a>: ChunkWriter
    where
        Self: 'a;

    /// Stable backend identifier used by benches and reports.
    const NAME: &'static str;

    /// Creates an empty store.
    fn new() -> Self;

    /// Runs `f` with shared access to the chunk at `pos`.
    fn read<R>(&self, pos: ChunkPos, f: impl FnOnce(&Chunk) -> R) -> Option<R>;

    /// Runs `f` with exclusive access to the chunk at `pos`.
    fn update<R>(&self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R>;

    /// Inserts `chunk`, replacing and returning any chunk already at its
    /// position.
    fn insert(&self, chunk: Chunk) -> Option<Chunk>;

    /// Inserts `chunk` only if its position is vacant; returns whether it
    /// was inserted. Racing inserters of one position elect exactly one
    /// winner.
    fn insert_if_absent(&self, chunk: Chunk) -> bool;

    /// Removes and returns the chunk at `pos`.
    fn remove(&self, pos: ChunkPos) -> Option<Chunk>;

    /// Whether a chunk is stored at `pos`.
    fn contains(&self, pos: ChunkPos) -> bool;

    /// Number of chunks stored.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored positions (unordered).
    fn keys(&self) -> Vec<ChunkPos>;

    /// Visits every stored chunk with shared access.
    fn for_each(&self, f: impl FnMut(&Chunk));

    /// Pins an exclusive batch handle.
    fn writer(&self) -> Self::Writer<'_>;

    /// Removes and returns every chunk. Requires `&mut self` (a quiescent
    /// point), used when a world re-shards.
    fn drain_all(&mut self) -> Vec<Chunk> {
        self.keys()
            .into_iter()
            .filter_map(|pos| self.remove(pos))
            .collect()
    }
}

/// The exclusive batch handle of a [`ChunkStore`]; see the trait docs.
pub trait ChunkWriter {
    /// Runs `f` with exclusive access to the chunk at `pos`.
    fn update<R>(&mut self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R>;

    /// Inserts `chunk`, replacing and returning any previous occupant.
    fn insert(&mut self, chunk: Chunk) -> Option<Chunk>;

    /// Inserts `chunk` only if its position is vacant.
    fn insert_if_absent(&mut self, chunk: Chunk) -> bool;
}

// ---------------------------------------------------------------------------
// RwLock backend (the seed design, now one implementation among peers).
// ---------------------------------------------------------------------------

/// The seed backend: one `RwLock<HashMap>` per shard. Readers of a shard
/// share its lock; batch writers hold it once per batch. Contention is
/// per shard — any two operations on the same shard synchronize on one
/// cache line even when they touch different chunks.
#[derive(Debug, Default)]
pub struct RwLockStore {
    chunks: RwLock<HashMap<ChunkPos, Chunk, FxBuildHasher>>,
}

impl RwLockStore {
    fn read_guard(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<ChunkPos, Chunk, FxBuildHasher>> {
        self.chunks.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_guard(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<ChunkPos, Chunk, FxBuildHasher>> {
        self.chunks.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl ChunkStore for RwLockStore {
    type Writer<'a> = RwLockWriter<'a>;

    const NAME: &'static str = "rwlock";

    fn new() -> Self {
        Self::default()
    }

    fn read<R>(&self, pos: ChunkPos, f: impl FnOnce(&Chunk) -> R) -> Option<R> {
        self.read_guard().get(&pos).map(f)
    }

    fn update<R>(&self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R> {
        self.write_guard().get_mut(&pos).map(f)
    }

    fn insert(&self, chunk: Chunk) -> Option<Chunk> {
        self.write_guard().insert(chunk.pos(), chunk)
    }

    fn insert_if_absent(&self, chunk: Chunk) -> bool {
        match self.write_guard().entry(chunk.pos()) {
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(chunk);
                true
            }
            std::collections::hash_map::Entry::Occupied(_) => false,
        }
    }

    fn remove(&self, pos: ChunkPos) -> Option<Chunk> {
        self.write_guard().remove(&pos)
    }

    fn contains(&self, pos: ChunkPos) -> bool {
        self.read_guard().contains_key(&pos)
    }

    fn len(&self) -> usize {
        self.read_guard().len()
    }

    fn keys(&self) -> Vec<ChunkPos> {
        self.read_guard().keys().copied().collect()
    }

    fn for_each(&self, mut f: impl FnMut(&Chunk)) {
        for chunk in self.read_guard().values() {
            f(chunk);
        }
    }

    fn writer(&self) -> RwLockWriter<'_> {
        RwLockWriter {
            guard: self.write_guard(),
        }
    }

    fn drain_all(&mut self) -> Vec<Chunk> {
        self.write_guard().drain().map(|(_, c)| c).collect()
    }
}

/// Batch handle of [`RwLockStore`]: holds the shard write lock for the
/// whole batch, so a multi-chunk write pays one lock acquisition.
pub struct RwLockWriter<'a> {
    guard: std::sync::RwLockWriteGuard<'a, HashMap<ChunkPos, Chunk, FxBuildHasher>>,
}

impl fmt::Debug for RwLockWriter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLockWriter").finish_non_exhaustive()
    }
}

impl ChunkWriter for RwLockWriter<'_> {
    fn update<R>(&mut self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R> {
        self.guard.get_mut(&pos).map(f)
    }

    fn insert(&mut self, chunk: Chunk) -> Option<Chunk> {
        self.guard.insert(chunk.pos(), chunk)
    }

    fn insert_if_absent(&mut self, chunk: Chunk) -> bool {
        match self.guard.entry(chunk.pos()) {
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(chunk);
                true
            }
            std::collections::hash_map::Entry::Occupied(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-free backend over the scc-style cell-locked map.
// ---------------------------------------------------------------------------

/// The lock-free backend: an scc-style cell-locked concurrent map per
/// shard (`scc::HashMap`). Lookups traverse lock-free; each chunk carries
/// its own 8-byte seqlock-augmented read-write lock, so readers of
/// different chunks share nothing and membership checks
/// ([`ChunkStore::contains`]) are optimistic loads with sequence
/// validation — no read-modify-write. Writers still serialize, but per
/// chunk rather than per shard.
#[derive(Debug)]
pub struct LockFreeStore {
    chunks: scc::HashMap<ChunkPos, Chunk, FxBuildHasher>,
}

impl Default for LockFreeStore {
    fn default() -> Self {
        LockFreeStore {
            // One shard of a world holds a modest fraction of the loaded
            // set; 256 buckets keep chains short up to a few thousand
            // chunks per shard and cost 2 KiB per shard.
            chunks: scc::HashMap::with_capacity_and_hasher(256, FxBuildHasher::default()),
        }
    }
}

impl ChunkStore for LockFreeStore {
    type Writer<'a> = LockFreeWriter<'a>;

    const NAME: &'static str = "lockfree_scc";

    fn new() -> Self {
        Self::default()
    }

    fn read<R>(&self, pos: ChunkPos, f: impl FnOnce(&Chunk) -> R) -> Option<R> {
        self.chunks.read(&pos, |_, chunk| f(chunk))
    }

    fn update<R>(&self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R> {
        self.chunks.update(&pos, |_, chunk| f(chunk))
    }

    fn insert(&self, chunk: Chunk) -> Option<Chunk> {
        self.chunks.upsert(chunk.pos(), chunk)
    }

    fn insert_if_absent(&self, chunk: Chunk) -> bool {
        self.chunks.insert(chunk.pos(), chunk).is_ok()
    }

    fn remove(&self, pos: ChunkPos) -> Option<Chunk> {
        self.chunks.remove(&pos).map(|(_, chunk)| chunk)
    }

    fn contains(&self, pos: ChunkPos) -> bool {
        self.chunks.contains(&pos)
    }

    fn len(&self) -> usize {
        self.chunks.len()
    }

    fn keys(&self) -> Vec<ChunkPos> {
        let mut keys = Vec::with_capacity(self.chunks.len());
        self.chunks.scan(|pos, _| keys.push(*pos));
        keys
    }

    fn for_each(&self, mut f: impl FnMut(&Chunk)) {
        self.chunks.scan(|_, chunk| f(chunk));
    }

    fn writer(&self) -> LockFreeWriter<'_> {
        LockFreeWriter { store: self }
    }
}

/// Batch handle of [`LockFreeStore`]: there is no shard-wide lock to
/// hold, so each call locks just its own chunk's cell — a batch writer
/// on this backend never blocks readers of other chunks.
#[derive(Debug)]
pub struct LockFreeWriter<'a> {
    store: &'a LockFreeStore,
}

impl ChunkWriter for LockFreeWriter<'_> {
    fn update<R>(&mut self, pos: ChunkPos, f: impl FnOnce(&mut Chunk) -> R) -> Option<R> {
        self.store.update(pos, f)
    }

    fn insert(&mut self, chunk: Chunk) -> Option<Chunk> {
        self.store.insert(chunk)
    }

    fn insert_if_absent(&mut self, chunk: Chunk) -> bool {
        ChunkStore::insert_if_absent(self.store, chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn exercise<B: ChunkStore>() {
        let store = B::new();
        assert!(store.is_empty());
        assert!(!store.contains(ChunkPos::new(1, 2)));

        let mut chunk = Chunk::empty(ChunkPos::new(1, 2));
        chunk.set_local(3, 4, 5, Block::Stone).unwrap();
        assert!(store.insert(chunk).is_none());
        assert!(store.contains(ChunkPos::new(1, 2)));
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.read(ChunkPos::new(1, 2), |c| c.local(3, 4, 5)),
            Some(Some(Block::Stone))
        );

        // insert replaces; insert_if_absent does not.
        assert!(store.insert(Chunk::empty(ChunkPos::new(1, 2))).is_some());
        assert!(!store.insert_if_absent(Chunk::empty(ChunkPos::new(1, 2))));
        assert!(store.insert_if_absent(Chunk::empty(ChunkPos::new(7, 7))));
        assert_eq!(store.len(), 2);

        // update mutates in place.
        store
            .update(ChunkPos::new(7, 7), |c| {
                c.set_local(0, 0, 0, Block::Lamp).unwrap()
            })
            .unwrap();
        assert_eq!(
            store.read(ChunkPos::new(7, 7), |c| c.local(0, 0, 0)),
            Some(Some(Block::Lamp))
        );

        // writer batch path.
        {
            let mut writer = store.writer();
            assert!(writer
                .update(ChunkPos::new(7, 7), |c| c
                    .set_local(1, 1, 1, Block::Wood)
                    .unwrap())
                .is_some());
            assert!(writer.insert_if_absent(Chunk::empty(ChunkPos::new(9, 9))));
            assert!(writer.insert(Chunk::empty(ChunkPos::new(10, 10))).is_none());
        }
        assert_eq!(store.len(), 4);

        let mut keys = store.keys();
        keys.sort_by_key(|p| (p.x, p.z));
        assert_eq!(
            keys,
            vec![
                ChunkPos::new(1, 2),
                ChunkPos::new(7, 7),
                ChunkPos::new(9, 9),
                ChunkPos::new(10, 10)
            ]
        );
        let mut seen = 0;
        store.for_each(|_| seen += 1);
        assert_eq!(seen, 4);

        assert!(store.remove(ChunkPos::new(9, 9)).is_some());
        assert!(store.remove(ChunkPos::new(9, 9)).is_none());
        assert_eq!(store.len(), 3);

        let mut store = store;
        let drained = store.drain_all();
        assert_eq!(drained.len(), 3);
        assert!(store.is_empty());
    }

    #[test]
    fn rwlock_store_contract() {
        exercise::<RwLockStore>();
    }

    #[test]
    fn lockfree_store_contract() {
        exercise::<LockFreeStore>();
    }

    #[test]
    fn racing_insert_if_absent_elects_one_winner() {
        let store = LockFreeStore::new();
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (store, winners) = (&store, &winners);
                scope.spawn(move || {
                    if store.insert_if_absent(Chunk::empty(ChunkPos::new(5, 5))) {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(store.len(), 1);
    }
}

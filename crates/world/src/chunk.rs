//! The chunk container: a 16 x 16 x 256 column of blocks.

use servo_types::consts::{CHUNK_HEIGHT, CHUNK_SIZE};
use servo_types::{ChunkPos, ServoError};

use crate::block::Block;

/// Number of blocks in a chunk.
pub const BLOCKS_PER_CHUNK: usize =
    (CHUNK_SIZE as usize) * (CHUNK_SIZE as usize) * (CHUNK_HEIGHT as usize);

/// `log2(CHUNK_HEIGHT)`: the `y` coordinate occupies the low bits of a
/// block's linear index.
const HEIGHT_BITS: u32 = CHUNK_HEIGHT.trailing_zeros();

/// `log2(CHUNK_SIZE)`: the `z` coordinate occupies the next bits.
const SIZE_BITS: u32 = CHUNK_SIZE.trailing_zeros();

/// A 16 x 16 x 256 column of blocks, the unit of terrain generation, loading
/// and storage in the paper (Section IV-D: "an area of 16x16x256 blocks").
///
/// Blocks are addressed with chunk-local coordinates: `x` and `z` in
/// `0..16`, `y` in `0..256`.
///
/// # Example
///
/// ```
/// use servo_world::{Block, Chunk};
/// use servo_types::ChunkPos;
///
/// let mut chunk = Chunk::empty(ChunkPos::new(0, 0));
/// chunk.set_local(3, 64, 5, Block::Stone).unwrap();
/// assert_eq!(chunk.local(3, 64, 5), Some(Block::Stone));
/// assert_eq!(chunk.non_air_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    pos: ChunkPos,
    /// Block identifiers in x-major, then z, then y order.
    blocks: Vec<u16>,
    /// Number of modifications since the chunk was created or loaded.
    modifications: u64,
}

impl Chunk {
    /// Creates an all-air chunk at the given position.
    pub fn empty(pos: ChunkPos) -> Self {
        Chunk {
            pos,
            blocks: vec![Block::Air.id(); BLOCKS_PER_CHUNK],
            modifications: 0,
        }
    }

    /// The chunk's position in chunk space.
    pub fn pos(&self) -> ChunkPos {
        self.pos
    }

    /// Number of modifications applied since creation or deserialization.
    pub fn modifications(&self) -> u64 {
        self.modifications
    }

    #[inline]
    fn index(x: i32, y: i32, z: i32) -> Option<usize> {
        // One unsigned comparison per axis replaces both range checks
        // (negative values wrap above the upper bound), and the power-of-two
        // dimensions make the linear index a shift/or instead of two
        // multiplications. Same x-major, z, y layout as before:
        // (x * CHUNK_SIZE + z) * CHUNK_HEIGHT + y.
        if (x as u32) < CHUNK_SIZE as u32
            && (y as u32) < CHUNK_HEIGHT as u32
            && (z as u32) < CHUNK_SIZE as u32
        {
            Some(
                ((x as usize) << (SIZE_BITS + HEIGHT_BITS))
                    | ((z as usize) << HEIGHT_BITS)
                    | y as usize,
            )
        } else {
            None
        }
    }

    /// Reads the block at chunk-local coordinates, or `None` if out of range.
    pub fn local(&self, x: i32, y: i32, z: i32) -> Option<Block> {
        let idx = Self::index(x, y, z)?;
        Block::from_id(self.blocks[idx])
    }

    /// Writes the block at chunk-local coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::OutOfBounds`] if a coordinate is outside the
    /// chunk.
    pub fn set_local(&mut self, x: i32, y: i32, z: i32, block: Block) -> Result<(), ServoError> {
        let idx = Self::index(x, y, z).ok_or_else(|| ServoError::OutOfBounds {
            what: format!("chunk-local ({x}, {y}, {z})"),
        })?;
        if self.blocks[idx] != block.id() {
            self.blocks[idx] = block.id();
            self.modifications += 1;
        }
        Ok(())
    }

    /// Fills every block of the horizontal layer at height `y`.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::OutOfBounds`] if `y` is outside the chunk.
    pub fn fill_layer(&mut self, y: i32, block: Block) -> Result<(), ServoError> {
        if !(0..CHUNK_HEIGHT).contains(&y) {
            return Err(ServoError::OutOfBounds {
                what: format!("layer y={y}"),
            });
        }
        self.fill_box((0, y, 0), (CHUNK_SIZE - 1, y, CHUNK_SIZE - 1), block)?;
        Ok(())
    }

    /// Fills the axis-aligned box spanning `x0..=x1`, `y0..=y1`, `z0..=z1`
    /// (chunk-local, inclusive) with `block`, counting each actually changed
    /// block as one modification. Returns the number of changed blocks.
    ///
    /// This is the per-chunk primitive behind the world-level batch
    /// operations: bounds are validated once and the inner loop writes
    /// contiguous `y` runs directly, instead of paying an index computation
    /// and range check per block.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::OutOfBounds`] if any corner lies outside the
    /// chunk or a range is inverted.
    pub fn fill_box(
        &mut self,
        (x0, y0, z0): (i32, i32, i32),
        (x1, y1, z1): (i32, i32, i32),
        block: Block,
    ) -> Result<usize, ServoError> {
        if Self::index(x0, y0, z0).is_none() || Self::index(x1, y1, z1).is_none() {
            return Err(ServoError::OutOfBounds {
                what: format!("chunk-local box ({x0}, {y0}, {z0})..=({x1}, {y1}, {z1})"),
            });
        }
        // Each axis must be validated individually: a single comparison of
        // the two linear indices lets a dominant higher axis mask an
        // inverted lower one.
        if x0 > x1 || y0 > y1 || z0 > z1 {
            return Err(ServoError::OutOfBounds {
                what: format!("inverted box ({x0}, {y0}, {z0})..=({x1}, {y1}, {z1})"),
            });
        }
        let id = block.id();
        let mut changed = 0usize;
        for x in x0..=x1 {
            for z in z0..=z1 {
                let base =
                    ((x as usize) << (SIZE_BITS + HEIGHT_BITS)) | ((z as usize) << HEIGHT_BITS);
                for slot in &mut self.blocks[base + y0 as usize..=base + y1 as usize] {
                    if *slot != id {
                        *slot = id;
                        changed += 1;
                    }
                }
            }
        }
        self.modifications += changed as u64;
        Ok(changed)
    }

    /// The height of the highest non-air block in the column at `(x, z)`,
    /// or `None` for an empty column or out-of-range coordinates.
    pub fn height_at(&self, x: i32, z: i32) -> Option<i32> {
        if !(0..CHUNK_SIZE).contains(&x) || !(0..CHUNK_SIZE).contains(&z) {
            return None;
        }
        (0..CHUNK_HEIGHT)
            .rev()
            .find(|&y| self.local(x, y, z).map(|b| !b.is_air()).unwrap_or(false))
    }

    /// Number of non-air blocks in the chunk.
    pub fn non_air_blocks(&self) -> usize {
        let air = Block::Air.id();
        self.blocks.iter().filter(|&&b| b != air).count()
    }

    /// Number of stateful blocks (simulated-construct material) in the chunk.
    pub fn stateful_blocks(&self) -> usize {
        self.blocks
            .iter()
            .filter(|&&b| Block::from_id(b).map(|b| b.is_stateful()).unwrap_or(false))
            .count()
    }

    /// Serializes the chunk into a compact run-length encoded byte buffer.
    ///
    /// Layout: chunk x (i32 LE), chunk z (i32 LE), number of runs (u32 LE),
    /// then `(count: u32 LE, block id: u16 LE)` per run.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.pos.x.to_le_bytes());
        out.extend_from_slice(&self.pos.z.to_le_bytes());
        let mut runs: Vec<(u32, u16)> = Vec::new();
        for &b in &self.blocks {
            match runs.last_mut() {
                Some((count, id)) if *id == b => *count += 1,
                _ => runs.push((1, b)),
            }
        }
        out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
        for (count, id) in runs {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }

    /// Deserializes a chunk produced by [`Chunk::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::CorruptData`] if the buffer is truncated, the
    /// run lengths do not add up to a full chunk, or a block id is unknown.
    pub fn from_bytes(bytes: &[u8]) -> Result<Chunk, ServoError> {
        fn corrupt(reason: &str) -> ServoError {
            ServoError::CorruptData {
                reason: reason.to_string(),
            }
        }
        if bytes.len() < 12 {
            return Err(corrupt("buffer shorter than header"));
        }
        let x = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let z = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let run_count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let mut blocks = Vec::with_capacity(BLOCKS_PER_CHUNK);
        let mut offset = 12;
        for _ in 0..run_count {
            if offset + 6 > bytes.len() {
                return Err(corrupt("truncated run"));
            }
            let count = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let id = u16::from_le_bytes(bytes[offset + 4..offset + 6].try_into().unwrap());
            if Block::from_id(id).is_none() {
                return Err(corrupt("unknown block id"));
            }
            if blocks.len() + count > BLOCKS_PER_CHUNK {
                return Err(corrupt("run overflows chunk"));
            }
            blocks.extend(std::iter::repeat_n(id, count));
            offset += 6;
        }
        if blocks.len() != BLOCKS_PER_CHUNK {
            return Err(corrupt("runs do not cover full chunk"));
        }
        Ok(Chunk {
            pos: ChunkPos::new(x, z),
            blocks,
            modifications: 0,
        })
    }

    /// The serialized size of this chunk in bytes, used by the storage model
    /// to account for transfer volume.
    pub fn serialized_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Takes an immutable snapshot of the chunk suitable for handing to a
    /// remote component (a generation function or the storage layer).
    pub fn snapshot(&self) -> ChunkSnapshot {
        ChunkSnapshot {
            pos: self.pos,
            bytes: self.to_bytes(),
        }
    }
}

/// An immutable serialized copy of a chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkSnapshot {
    /// Position of the chunk.
    pub pos: ChunkPos,
    /// Serialized chunk contents ([`Chunk::to_bytes`] layout).
    pub bytes: Vec<u8>,
}

impl ChunkSnapshot {
    /// Reconstructs the chunk from the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::CorruptData`] if the snapshot bytes are invalid.
    pub fn restore(&self) -> Result<Chunk, ServoError> {
        Chunk::from_bytes(&self.bytes)
    }

    /// Size of the serialized data in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chunk_is_all_air() {
        let c = Chunk::empty(ChunkPos::new(1, -1));
        assert_eq!(c.non_air_blocks(), 0);
        assert_eq!(c.local(0, 0, 0), Some(Block::Air));
        assert_eq!(c.height_at(5, 5), None);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        c.set_local(15, 255, 15, Block::Stone).unwrap();
        c.set_local(0, 0, 0, Block::Bedrock).unwrap();
        assert_eq!(c.local(15, 255, 15), Some(Block::Stone));
        assert_eq!(c.local(0, 0, 0), Some(Block::Bedrock));
        assert_eq!(c.non_air_blocks(), 2);
        assert_eq!(c.modifications(), 2);
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        assert_eq!(c.local(16, 0, 0), None);
        assert_eq!(c.local(0, 256, 0), None);
        assert_eq!(c.local(-1, 0, 0), None);
        assert!(c.set_local(0, -1, 0, Block::Stone).is_err());
        assert!(c.fill_layer(256, Block::Stone).is_err());
    }

    #[test]
    fn redundant_writes_do_not_count_as_modifications() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        c.set_local(1, 1, 1, Block::Air).unwrap();
        assert_eq!(c.modifications(), 0);
        c.set_local(1, 1, 1, Block::Dirt).unwrap();
        c.set_local(1, 1, 1, Block::Dirt).unwrap();
        assert_eq!(c.modifications(), 1);
    }

    #[test]
    fn height_at_finds_highest_block() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        c.fill_layer(0, Block::Bedrock).unwrap();
        c.fill_layer(10, Block::Grass).unwrap();
        c.set_local(3, 42, 3, Block::Wood).unwrap();
        assert_eq!(c.height_at(0, 0), Some(10));
        assert_eq!(c.height_at(3, 3), Some(42));
        assert_eq!(c.height_at(16, 0), None);
    }

    #[test]
    fn fill_box_writes_exactly_the_box() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        let changed = c.fill_box((2, 10, 3), (4, 12, 5), Block::Stone).unwrap();
        assert_eq!(changed, 27);
        assert_eq!(c.non_air_blocks(), 27);
        assert_eq!(c.modifications(), 27);
        assert_eq!(c.local(2, 10, 3), Some(Block::Stone));
        assert_eq!(c.local(4, 12, 5), Some(Block::Stone));
        assert_eq!(c.local(1, 10, 3), Some(Block::Air));
        assert_eq!(c.local(2, 13, 3), Some(Block::Air));
        // Refilling the same box changes nothing.
        assert_eq!(c.fill_box((2, 10, 3), (4, 12, 5), Block::Stone).unwrap(), 0);
        assert_eq!(c.modifications(), 27);
    }

    #[test]
    fn fill_box_rejects_bad_ranges() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        assert!(c.fill_box((0, 0, 0), (16, 0, 0), Block::Stone).is_err());
        assert!(c.fill_box((0, -1, 0), (0, 0, 0), Block::Stone).is_err());
        assert!(c.fill_box((5, 0, 0), (4, 0, 0), Block::Stone).is_err());
        // Inversions on a lower-order axis must be rejected even when a
        // higher-order axis makes the linear end index larger.
        assert!(c.fill_box((0, 5, 0), (1, 3, 0), Block::Stone).is_err());
        assert!(c.fill_box((0, 0, 5), (1, 0, 3), Block::Stone).is_err());
        assert_eq!(c.modifications(), 0);
    }

    #[test]
    fn fill_box_agrees_with_set_local() {
        let mut a = Chunk::empty(ChunkPos::ORIGIN);
        let mut b = Chunk::empty(ChunkPos::ORIGIN);
        a.fill_box((1, 2, 3), (6, 9, 4), Block::Sand).unwrap();
        for x in 1..=6 {
            for y in 2..=9 {
                for z in 3..=4 {
                    b.set_local(x, y, z, Block::Sand).unwrap();
                }
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn serialization_round_trips() {
        let mut c = Chunk::empty(ChunkPos::new(-3, 7));
        c.fill_layer(0, Block::Bedrock).unwrap();
        c.fill_layer(1, Block::Dirt).unwrap();
        c.set_local(8, 2, 8, Block::Lamp).unwrap();
        c.set_local(9, 2, 8, Block::Wire).unwrap();
        let bytes = c.to_bytes();
        let restored = Chunk::from_bytes(&bytes).unwrap();
        assert_eq!(restored.pos(), c.pos());
        assert_eq!(restored.local(8, 2, 8), Some(Block::Lamp));
        assert_eq!(restored.non_air_blocks(), c.non_air_blocks());
    }

    #[test]
    fn rle_compresses_uniform_chunks() {
        let c = Chunk::empty(ChunkPos::ORIGIN);
        // A uniform chunk serializes to the 12-byte header plus one run.
        assert_eq!(c.to_bytes().len(), 18);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        assert!(Chunk::from_bytes(&[]).is_err());
        assert!(Chunk::from_bytes(&[0u8; 11]).is_err());
        // Valid header claiming one run that does not cover the chunk.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&10u32.to_le_bytes());
        bytes.extend_from_slice(&Block::Stone.id().to_le_bytes());
        assert!(Chunk::from_bytes(&bytes).is_err());
        // Unknown block id.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(BLOCKS_PER_CHUNK as u32).to_le_bytes());
        bytes.extend_from_slice(&999u16.to_le_bytes());
        assert!(Chunk::from_bytes(&bytes).is_err());
    }

    #[test]
    fn snapshot_restores_identical_chunk() {
        let mut c = Chunk::empty(ChunkPos::new(2, 2));
        c.fill_layer(5, Block::Sand).unwrap();
        let snap = c.snapshot();
        assert_eq!(snap.size_bytes(), snap.bytes.len());
        let restored = snap.restore().unwrap();
        assert_eq!(restored.local(0, 5, 0), Some(Block::Sand));
        assert_eq!(restored.pos(), ChunkPos::new(2, 2));
    }

    #[test]
    fn stateful_block_count() {
        let mut c = Chunk::empty(ChunkPos::ORIGIN);
        c.set_local(0, 0, 0, Block::Wire).unwrap();
        c.set_local(0, 0, 1, Block::Lamp).unwrap();
        c.set_local(0, 0, 2, Block::Stone).unwrap();
        assert_eq!(c.stateful_blocks(), 2);
    }
}

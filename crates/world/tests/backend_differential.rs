//! Differential suite for the pluggable world backends.
//!
//! Every property here runs the *same* arbitrary operation sequence against
//! three worlds — the single-threaded [`World`], [`ShardedWorld`] over the
//! default [`RwLockStore`], and [`ShardedWorld`] over the lock-free
//! [`LockFreeStore`] — and demands they agree on everything observable:
//! final chunk bytes, loaded-chunk counts, modification counters, and (for
//! the two sharded worlds, which are the only ones that track them) the
//! drained dirty sets and shard epochs. This is the proof obligation behind
//! swapping a backend: any divergence a storage pipeline or a persistence
//! drain could observe shows up here as a shrunk counterexample.

use proptest::prelude::*;
use servo_types::consts::CHUNK_HEIGHT;
use servo_types::{BlockPos, ChunkPos};
use servo_world::{Block, ChunkStore, LockFreeStore, RwLockStore, ShardDelta, ShardedWorld, World};

/// One operation in a generated differential schedule. Coordinates are kept
/// small so sequences revisit chunks (revisits are where dirty-set and
/// counter bookkeeping can drift).
#[derive(Debug, Clone)]
enum Op {
    /// A single-block write (possibly to an unloaded chunk — the error must
    /// agree too).
    Set {
        x: i32,
        y: i32,
        z: i32,
        block: Block,
    },
    /// A batch write through `set_blocks`.
    Batch {
        writes: Vec<((i32, i32, i32), Block)>,
    },
    /// A box fill through `fill_region`.
    Fill {
        x0: i32,
        z0: i32,
        dx: i32,
        dz: i32,
        y0: i32,
        dy: i32,
        block: Block,
    },
    /// Load a chunk (idempotent).
    Ensure { cx: i32, cz: i32 },
    /// Unload a chunk (possibly absent).
    Remove { cx: i32, cz: i32 },
    /// Drain the dirty sets mid-sequence; the two sharded worlds must
    /// produce identical deltas, and draining must not disturb any other
    /// observable state.
    Drain,
}

fn arb_block() -> impl Strategy<Value = Block> {
    prop::sample::select(Block::ALL.to_vec())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => ((-40i32..40, 0i32..CHUNK_HEIGHT, -40i32..40), arb_block())
            .prop_map(|((x, y, z), block)| Op::Set { x, y, z, block }),
        3 => prop::collection::vec(
            ((-40i32..40, 0i32..CHUNK_HEIGHT, -40i32..40), arb_block()),
            1..24,
        )
        .prop_map(|writes| Op::Batch { writes }),
        2 => (-36i32..36, -36i32..36, 0i32..20, 0i32..20, 1i32..60, 0i32..6, arb_block())
            .prop_map(|(x0, z0, dx, dz, y0, dy, block)| Op::Fill { x0, z0, dx, dz, y0, dy, block }),
        2 => (-4i32..4, -4i32..4).prop_map(|(cx, cz)| Op::Ensure { cx, cz }),
        1 => (-4i32..4, -4i32..4).prop_map(|(cx, cz)| Op::Remove { cx, cz }),
        1 => Just(Op::Drain),
    ]
}

/// The three worlds under differential test, stepped in lockstep.
struct Trio {
    plain: World,
    rwlock: ShardedWorld<RwLockStore>,
    lockfree: ShardedWorld<LockFreeStore>,
}

impl Trio {
    fn new() -> Self {
        let mut plain = World::flat(4);
        let rwlock = ShardedWorld::<RwLockStore>::flat_in(4);
        let lockfree = ShardedWorld::<LockFreeStore>::flat_in(4);
        for cx in -3..3 {
            for cz in -3..3 {
                let pos = ChunkPos::new(cx, cz);
                plain.ensure_chunk_at(pos);
                rwlock.ensure_chunk_at(pos);
                lockfree.ensure_chunk_at(pos);
            }
        }
        Trio {
            plain,
            rwlock,
            lockfree,
        }
    }

    /// Applies one op to all three worlds, checking that outcome-level
    /// results (ok-ness, written counts, removed-chunk bytes) agree.
    fn apply(&mut self, op: &Op) {
        match op {
            Op::Set { x, y, z, block } => {
                let pos = BlockPos::new(*x, *y, *z);
                let a = self.plain.set_block(pos, *block).is_ok();
                let b = self.rwlock.set_block(pos, *block).is_ok();
                let c = self.lockfree.set_block(pos, *block).is_ok();
                prop_assert_eq!(a, b, "set_block ok-ness at {}", pos);
                prop_assert_eq!(a, c, "set_block ok-ness at {}", pos);
            }
            Op::Batch { writes } => {
                // A *failed* batch leaves a documented, intentionally
                // different partial state: the plain world stops at the
                // failing write in input order, the sharded worlds complete
                // whole shards before the failing one. The plain-vs-sharded
                // property therefore only covers batches that succeed, so
                // writes to unloaded chunks are filtered out here (the
                // loaded sets are identical across the trio by the other
                // assertions). Failing batches are differenced
                // backend-vs-backend in a dedicated property below.
                let batch: Vec<(BlockPos, Block)> = writes
                    .iter()
                    .map(|((x, y, z), b)| (BlockPos::new(*x, *y, *z), *b))
                    .filter(|(pos, _)| self.plain.is_loaded(ChunkPos::from(*pos)))
                    .collect();
                let a = self.plain.set_blocks(batch.clone()).unwrap();
                let b = self.rwlock.set_blocks(batch.clone()).unwrap();
                let c = self.lockfree.set_blocks(batch).unwrap();
                prop_assert_eq!(a, b, "batch written count");
                prop_assert_eq!(a, c, "batch written count");
            }
            Op::Fill {
                x0,
                z0,
                dx,
                dz,
                y0,
                dy,
                block,
            } => {
                let min = BlockPos::new(*x0, *y0, *z0);
                let max = BlockPos::new(x0 + dx, y0 + dy, z0 + dz);
                let a = self.plain.fill_region(min, max, *block);
                let b = self.rwlock.fill_region(min, max, *block);
                let c = self.lockfree.fill_region(min, max, *block);
                prop_assert_eq!(a.is_ok(), b.is_ok());
                prop_assert_eq!(a.is_ok(), c.is_ok());
                if let (Ok(a), Ok(b), Ok(c)) = (a, b, c) {
                    prop_assert_eq!(a, b, "fill changed count");
                    prop_assert_eq!(a, c, "fill changed count");
                }
            }
            Op::Ensure { cx, cz } => {
                let pos = ChunkPos::new(*cx, *cz);
                self.plain.ensure_chunk_at(pos);
                self.rwlock.ensure_chunk_at(pos);
                self.lockfree.ensure_chunk_at(pos);
            }
            Op::Remove { cx, cz } => {
                let pos = ChunkPos::new(*cx, *cz);
                let a = self.plain.remove_chunk(pos);
                let b = self.rwlock.remove_chunk(pos);
                let c = self.lockfree.remove_chunk(pos);
                prop_assert_eq!(a.is_some(), b.is_some(), "remove at {}", pos);
                prop_assert_eq!(a.is_some(), c.is_some(), "remove at {}", pos);
                if let (Some(a), Some(b), Some(c)) = (a, b, c) {
                    prop_assert_eq!(a.to_bytes(), b.to_bytes(), "removed bytes at {}", pos);
                    prop_assert_eq!(a.to_bytes(), c.to_bytes(), "removed bytes at {}", pos);
                }
            }
            Op::Drain => {
                let b = self.rwlock.drain_dirty();
                let c = self.lockfree.drain_dirty();
                prop_assert_eq!(b, c, "mid-sequence dirty deltas");
            }
        }
    }

    /// The full end-state comparison: bytes, loaded sets, counters, dirty
    /// deltas, epochs.
    fn assert_converged(&self) {
        prop_assert_eq!(self.plain.loaded_chunks(), self.rwlock.loaded_chunks());
        prop_assert_eq!(self.plain.loaded_chunks(), self.lockfree.loaded_chunks());
        prop_assert_eq!(
            self.plain.total_modifications(),
            self.rwlock.total_modifications()
        );
        prop_assert_eq!(
            self.plain.total_modifications(),
            self.lockfree.total_modifications()
        );
        prop_assert_eq!(self.plain.stateful_blocks(), self.rwlock.stateful_blocks());
        prop_assert_eq!(
            self.plain.stateful_blocks(),
            self.lockfree.stateful_blocks()
        );

        // Loaded position sets are identical...
        let mut plain_positions: Vec<ChunkPos> = self.plain.loaded_positions().collect();
        let mut rw_positions = self.rwlock.loaded_positions();
        let mut lf_positions = self.lockfree.loaded_positions();
        let key = |p: &ChunkPos| (p.x, p.z);
        plain_positions.sort_unstable_by_key(key);
        rw_positions.sort_unstable_by_key(key);
        lf_positions.sort_unstable_by_key(key);
        prop_assert_eq!(&plain_positions, &rw_positions);
        prop_assert_eq!(&plain_positions, &lf_positions);

        // ...and every loaded chunk is byte-identical across all three.
        for pos in plain_positions {
            let reference = self.plain.chunk(pos).expect("listed as loaded").to_bytes();
            let rw = self.rwlock.read_chunk(pos, |c| c.to_bytes());
            let lf = self.lockfree.read_chunk(pos, |c| c.to_bytes());
            prop_assert_eq!(Some(&reference), rw.as_ref(), "rwlock bytes at {}", pos);
            prop_assert_eq!(Some(&reference), lf.as_ref(), "lockfree bytes at {}", pos);
        }

        // The sharded pair agrees on shard layout, dirty sets and epochs
        // (the plain world has no dirty tracking to compare against).
        prop_assert_eq!(self.rwlock.shard_count(), self.lockfree.shard_count());
        let rw_deltas: Vec<ShardDelta> = self.rwlock.drain_dirty();
        let lf_deltas: Vec<ShardDelta> = self.lockfree.drain_dirty();
        prop_assert_eq!(rw_deltas, lf_deltas, "final dirty deltas");
        for shard in 0..self.rwlock.shard_count() {
            prop_assert_eq!(
                self.rwlock.shard_epoch(shard),
                self.lockfree.shard_epoch(shard),
                "epoch of shard {}",
                shard
            );
        }
        // Draining is complete: a second drain is empty on both.
        prop_assert!(self.rwlock.drain_dirty().is_empty());
        prop_assert!(self.lockfree.drain_dirty().is_empty());
    }
}

proptest! {
    /// The headline differential property: arbitrary operation sequences
    /// leave all three worlds observationally identical.
    #[test]
    fn backends_agree_on_arbitrary_sequences(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let mut trio = Trio::new();
        for op in &ops {
            trio.apply(op);
        }
        trio.assert_converged();
    }

    /// Write-back equivalence: after the same edits, the dirty deltas the
    /// persistence layer would drain name the same chunks with the same
    /// epochs, and snapshotting those chunks yields the same bytes from
    /// either backend.
    #[test]
    fn drained_deltas_snapshot_identically(
        writes in prop::collection::vec(
            ((-40i32..40, 1i32..80, -40i32..40), arb_block()),
            1..80,
        ),
    ) {
        let rwlock = ShardedWorld::<RwLockStore>::flat_in(4);
        let lockfree = ShardedWorld::<LockFreeStore>::flat_in(4);
        for cx in -3..3 {
            for cz in -3..3 {
                rwlock.ensure_chunk_at(ChunkPos::new(cx, cz));
                lockfree.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let batch: Vec<(BlockPos, Block)> = writes
            .iter()
            .map(|((x, y, z), b)| (BlockPos::new(*x, *y, *z), *b))
            .collect();
        prop_assert_eq!(
            rwlock.set_blocks(batch.clone()).unwrap(),
            lockfree.set_blocks(batch).unwrap()
        );
        let rw_deltas = rwlock.drain_dirty();
        let lf_deltas = lockfree.drain_dirty();
        prop_assert_eq!(&rw_deltas, &lf_deltas);
        for delta in &rw_deltas {
            for &pos in &delta.chunks {
                prop_assert_eq!(
                    rwlock.read_chunk(pos, |c| c.to_bytes()),
                    lockfree.read_chunk(pos, |c| c.to_bytes()),
                    "snapshot at {}",
                    pos
                );
            }
        }
    }

    /// The two sharded backends agree *exactly* even on failing batches:
    /// they share the shard-ordered partial-application contract (whole
    /// shards before the failing one), so final bytes, counters, and dirty
    /// deltas must match although the plain world would diverge here.
    #[test]
    fn sharded_backends_agree_on_failing_batches(
        writes in prop::collection::vec(
            ((-80i32..80, 1i32..80, -80i32..80), arb_block()),
            1..60,
        ),
    ) {
        let rwlock = ShardedWorld::<RwLockStore>::flat_in(4);
        let lockfree = ShardedWorld::<LockFreeStore>::flat_in(4);
        // Load only a partial grid so batches regularly hit unloaded
        // chunks and fail partway through.
        for cx in -2..2 {
            for cz in -2..2 {
                rwlock.ensure_chunk_at(ChunkPos::new(cx, cz));
                lockfree.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let batch: Vec<(BlockPos, Block)> = writes
            .iter()
            .map(|((x, y, z), b)| (BlockPos::new(*x, *y, *z), *b))
            .collect();
        let b = rwlock.set_blocks(batch.clone());
        let c = lockfree.set_blocks(batch);
        prop_assert_eq!(b.is_ok(), c.is_ok());
        if let (Ok(b), Ok(c)) = (&b, &c) {
            prop_assert_eq!(b, c, "written count");
        }
        prop_assert_eq!(rwlock.total_modifications(), lockfree.total_modifications());
        prop_assert_eq!(rwlock.drain_dirty(), lockfree.drain_dirty());
        let mut positions = rwlock.loaded_positions();
        positions.sort_unstable_by_key(|p| (p.x, p.z));
        for pos in positions {
            prop_assert_eq!(
                rwlock.read_chunk(pos, |chunk| chunk.to_bytes()),
                lockfree.read_chunk(pos, |chunk| chunk.to_bytes()),
                "bytes at {}",
                pos
            );
        }
    }

    /// Round-trip equivalence: converting either sharded world back to a
    /// plain `World` reproduces the plain world byte for byte.
    #[test]
    fn to_world_round_trips_identically(
        writes in prop::collection::vec(
            ((-30i32..30, 1i32..60, -30i32..30), arb_block()),
            1..50,
        ),
    ) {
        let mut trio = Trio::new();
        for ((x, y, z), block) in &writes {
            trio.apply(&Op::Set { x: *x, y: *y, z: *z, block: *block });
        }
        let rw_world = trio.rwlock.to_world();
        let lf_world = trio.lockfree.to_world();
        prop_assert_eq!(rw_world.loaded_chunks(), trio.plain.loaded_chunks());
        prop_assert_eq!(lf_world.loaded_chunks(), trio.plain.loaded_chunks());
        for pos in trio.plain.loaded_positions() {
            let reference = trio.plain.chunk(pos).unwrap().to_bytes();
            prop_assert_eq!(&rw_world.chunk(pos).unwrap().to_bytes(), &reference);
            prop_assert_eq!(&lf_world.chunk(pos).unwrap().to_bytes(), &reference);
        }
    }
}

/// The generic exercise also holds for any *future* backend wired through
/// the trait: this free function is the reusable differential core, and a
/// plain `#[test]` pins it for both current backends so a failure names the
/// backend directly rather than a proptest seed.
fn exercise_against_plain<B: ChunkStore>() {
    let mut plain = World::flat(4);
    let sharded = ShardedWorld::<B>::flat_in(4);
    for cx in -2..2 {
        for cz in -2..2 {
            plain.ensure_chunk_at(ChunkPos::new(cx, cz));
            sharded.ensure_chunk_at(ChunkPos::new(cx, cz));
        }
    }
    for i in 0..500i32 {
        let pos = BlockPos::new((i * 7) % 32 - 16, (i % 60) + 1, (i * 13) % 32 - 16);
        let block = Block::ALL[(i as usize) % Block::ALL.len()];
        assert_eq!(
            plain.set_block(pos, block).is_ok(),
            sharded.set_block(pos, block).is_ok()
        );
    }
    assert_eq!(plain.total_modifications(), sharded.total_modifications());
    for pos in plain.loaded_positions() {
        assert_eq!(
            Some(plain.chunk(pos).unwrap().to_bytes()),
            sharded.read_chunk(pos, |c| c.to_bytes()),
            "bytes at {pos} over {}",
            B::NAME
        );
    }
}

#[test]
fn rwlock_backend_matches_plain_world() {
    exercise_against_plain::<RwLockStore>();
}

#[test]
fn lockfree_backend_matches_plain_world() {
    exercise_against_plain::<LockFreeStore>();
}

//! Concurrency tests for [`ShardedWorld`]: a multi-threaded stress test over
//! disjoint and overlapping key ranges, plus property tests checking that
//! the sharded world and the single-threaded [`World`] agree on arbitrary
//! operation sequences.

use proptest::prelude::*;
use servo_types::consts::CHUNK_HEIGHT;
use servo_types::{BlockPos, ChunkPos};
use servo_world::{Block, ShardedWorld, World};

const THREADS: usize = 8;

/// Eight threads hammer reads and writes across a shared chunk grid; block
/// contents and the modification counter must come out exactly as the
/// per-thread disjoint writes dictate.
#[test]
fn stress_disjoint_writers_concurrent_readers() {
    let world = ShardedWorld::flat(4);
    let grid = 8i32;
    for cx in 0..grid {
        for cz in 0..grid {
            world.ensure_chunk_at(ChunkPos::new(cx, cz));
        }
    }

    // Each writer owns a disjoint y-layer and writes a recognisable block
    // pattern; readers sweep the whole grid concurrently.
    let writes_per_thread = 2_000u64;
    std::thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let world = &world;
            scope.spawn(move || {
                let y = 20 + thread_id as i32;
                for i in 0..writes_per_thread {
                    let x = (i % (grid as u64 * 16)) as i32;
                    let z = ((i * 7) % (grid as u64 * 16)) as i32;
                    world
                        .set_block(BlockPos::new(x, y, z), Block::Lamp)
                        .expect("chunk is loaded");
                }
            });
            scope.spawn(move || {
                let mut non_air = 0usize;
                for i in 0..writes_per_thread {
                    let x = (i % (grid as u64 * 16)) as i32;
                    let z = ((i * 11) % (grid as u64 * 16)) as i32;
                    // Reads race with writers; any Some result is valid.
                    if let Some(b) = world.block(BlockPos::new(x, 4, z)) {
                        if !b.is_air() {
                            non_air += 1;
                        }
                    }
                }
                // The ground layer is grass everywhere.
                assert_eq!(non_air, writes_per_thread as usize);
            });
        }
    });

    // Every write targeted a loaded chunk, so the counter equals the total
    // number of set_block calls.
    assert_eq!(
        world.total_modifications(),
        THREADS as u64 * writes_per_thread
    );
    // Each writer's layer contains exactly its distinct positions.
    for thread_id in 0..THREADS {
        let y = 20 + thread_id as i32;
        let mut seen = std::collections::HashSet::new();
        for i in 0..writes_per_thread {
            let x = (i % (grid as u64 * 16)) as i32;
            let z = ((i * 7) % (grid as u64 * 16)) as i32;
            seen.insert((x, z));
        }
        let count: usize = (0..grid * 16)
            .flat_map(|x| (0..grid * 16).map(move |z| (x, z)))
            .filter(|&(x, z)| world.block(BlockPos::new(x, y, z)) == Some(Block::Lamp))
            .count();
        assert_eq!(count, seen.len(), "layer {y}");
    }
    assert_eq!(world.loaded_chunks(), (grid * grid) as usize);
}

/// Concurrent `ensure_chunk_at` racing on the same positions must create
/// each chunk exactly once (the loaded counter cannot double-count).
#[test]
fn stress_racing_chunk_creation() {
    let world = ShardedWorld::flat(4);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let world = &world;
            scope.spawn(move || {
                for cx in 0..12 {
                    for cz in 0..12 {
                        world.ensure_chunk_at(ChunkPos::new(cx, cz));
                    }
                }
            });
        }
    });
    assert_eq!(world.loaded_chunks(), 144);
    let mut positions = world.loaded_positions();
    positions.sort_by_key(|p| (p.x, p.z));
    positions.dedup();
    assert_eq!(positions.len(), 144);
    // Racing creators did not corrupt chunk contents.
    for pos in positions {
        assert_eq!(
            world.read_chunk(pos, |c| c.height_at(3, 3)).unwrap(),
            Some(4)
        );
    }
}

/// Mixed concurrent batch operations stay internally consistent: the
/// modification counter equals the sum of what each batch reported.
#[test]
fn stress_batch_operations() {
    let world = ShardedWorld::flat(4).with_shards(8);
    for cx in 0..8 {
        for cz in 0..8 {
            world.ensure_chunk_at(ChunkPos::new(cx, cz));
        }
    }
    let changed_total: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread_id in 0..THREADS {
            let world = &world;
            handles.push(scope.spawn(move || {
                let y = 30 + thread_id as i32 * 2;
                let mut changed = 0u64;
                // Disjoint y-layers: each thread's fills cannot overlap
                // another thread's, so reported change counts must add up.
                changed += world
                    .fill_region(
                        BlockPos::new(0, y, 0),
                        BlockPos::new(8 * 16 - 1, y, 8 * 16 - 1),
                        Block::Stone,
                    )
                    .expect("region loaded") as u64;
                let writes: Vec<(BlockPos, Block)> = (0..500)
                    .map(|i| {
                        (
                            BlockPos::new((i * 3) % 128, y + 1, (i * 5) % 128),
                            Block::Wood,
                        )
                    })
                    .collect();
                world.set_blocks(writes).expect("chunks loaded");
                changed + 500
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(world.total_modifications(), changed_total);
}

fn arb_block() -> impl Strategy<Value = Block> {
    prop::sample::select(Block::ALL.to_vec())
}

proptest! {
    /// `ShardedWorld` and `World` agree on any sequence of single-block
    /// writes: same per-position contents, same counters.
    #[test]
    fn agrees_with_world_on_single_writes(
        writes in prop::collection::vec(
            ((-64i32..64, 0i32..CHUNK_HEIGHT, -64i32..64), arb_block()),
            1..120,
        ),
    ) {
        let sharded = ShardedWorld::flat(4);
        let mut plain = World::flat(4);
        for cx in -4..4 {
            for cz in -4..4 {
                sharded.ensure_chunk_at(ChunkPos::new(cx, cz));
                plain.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        for ((x, y, z), block) in &writes {
            let pos = BlockPos::new(*x, *y, *z);
            prop_assert_eq!(
                sharded.set_block(pos, *block).is_ok(),
                plain.set_block(pos, *block).is_ok()
            );
        }
        for ((x, y, z), _) in &writes {
            let pos = BlockPos::new(*x, *y, *z);
            prop_assert_eq!(sharded.block(pos), plain.block(pos));
            prop_assert_eq!(sharded.height_at(*x, *z), plain.height_at(*x, *z));
        }
        prop_assert_eq!(sharded.total_modifications(), plain.total_modifications());
        prop_assert_eq!(sharded.loaded_chunks(), plain.loaded_chunks());
        prop_assert_eq!(sharded.stateful_blocks(), plain.stateful_blocks());
    }

    /// Batch writes through the sharded world equal single writes through
    /// the plain world, block for block.
    #[test]
    fn sharded_batches_equal_plain_singles(
        writes in prop::collection::vec(
            ((-48i32..48, 0i32..64, -48i32..48), arb_block()),
            1..150,
        ),
    ) {
        let sharded = ShardedWorld::flat(4).with_shards(4);
        let mut plain = World::flat(4);
        for cx in -3..3 {
            for cz in -3..3 {
                sharded.ensure_chunk_at(ChunkPos::new(cx, cz));
                plain.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let batch: Vec<(BlockPos, Block)> = writes
            .iter()
            .map(|((x, y, z), b)| (BlockPos::new(*x, *y, *z), *b))
            .collect();
        let written = sharded.set_blocks(batch.clone()).unwrap();
        prop_assert_eq!(written, batch.len());
        for (pos, block) in batch {
            plain.set_block(pos, block).unwrap();
        }
        for ((x, y, z), _) in &writes {
            let pos = BlockPos::new(*x, *y, *z);
            prop_assert_eq!(sharded.block(pos), plain.block(pos));
        }
        // A full conversion round trip preserves every chunk.
        let converted = sharded.to_world();
        for ((x, y, z), _) in &writes {
            let pos = BlockPos::new(*x, *y, *z);
            prop_assert_eq!(converted.block(pos), plain.block(pos));
        }
    }

    /// Region fills agree between the two worlds for arbitrary boxes.
    #[test]
    fn fill_region_agrees(
        x0 in -40i32..40,
        z0 in -40i32..40,
        dx in 0i32..30,
        dz in 0i32..30,
        y0 in 1i32..60,
        dy in 0i32..8,
        block in arb_block(),
    ) {
        let sharded = ShardedWorld::flat(4);
        let mut plain = World::flat(4);
        for cx in -4..=4 {
            for cz in -4..=4 {
                sharded.ensure_chunk_at(ChunkPos::new(cx, cz));
                plain.ensure_chunk_at(ChunkPos::new(cx, cz));
            }
        }
        let min = BlockPos::new(x0, y0, z0);
        let max = BlockPos::new(x0 + dx, y0 + dy, z0 + dz);
        let a = sharded.fill_region(min, max, block).unwrap();
        let b = plain.fill_region(min, max, block).unwrap();
        prop_assert_eq!(a, b);
        for probe in [min, max, BlockPos::new(x0 + dx / 2, y0, z0 + dz / 2)] {
            prop_assert_eq!(sharded.block(probe), plain.block(probe));
        }
        prop_assert_eq!(sharded.total_modifications(), plain.total_modifications());
    }
}

//! Property-based tests for the chunk and world data structures.

use proptest::prelude::*;
use servo_types::consts::{CHUNK_HEIGHT, CHUNK_SIZE};
use servo_types::{BlockPos, ChunkPos};
use servo_world::{Block, Chunk, World};

fn arb_block() -> impl Strategy<Value = Block> {
    prop::sample::select(Block::ALL.to_vec())
}

fn arb_local_coord() -> impl Strategy<Value = (i32, i32, i32)> {
    (0..CHUNK_SIZE, 0..CHUNK_HEIGHT, 0..CHUNK_SIZE)
}

proptest! {
    /// Any sequence of in-range writes is readable back, and serialization
    /// round-trips the exact chunk contents.
    #[test]
    fn chunk_serialization_round_trips(
        writes in prop::collection::vec((arb_local_coord(), arb_block()), 0..80),
        cx in -1000i32..1000,
        cz in -1000i32..1000,
    ) {
        let mut chunk = Chunk::empty(ChunkPos::new(cx, cz));
        for ((x, y, z), block) in &writes {
            chunk.set_local(*x, *y, *z, *block).unwrap();
        }
        let restored = Chunk::from_bytes(&chunk.to_bytes()).unwrap();
        prop_assert_eq!(restored.pos(), chunk.pos());
        for ((x, y, z), _) in &writes {
            prop_assert_eq!(restored.local(*x, *y, *z), chunk.local(*x, *y, *z));
        }
        prop_assert_eq!(restored.non_air_blocks(), chunk.non_air_blocks());
        prop_assert_eq!(restored.to_bytes(), chunk.to_bytes());
    }

    /// The last write to a position wins, and counts are consistent.
    #[test]
    fn last_write_wins(
        coord in arb_local_coord(),
        blocks in prop::collection::vec(arb_block(), 1..12),
    ) {
        let mut chunk = Chunk::empty(ChunkPos::ORIGIN);
        for b in &blocks {
            chunk.set_local(coord.0, coord.1, coord.2, *b).unwrap();
        }
        prop_assert_eq!(chunk.local(coord.0, coord.1, coord.2), Some(*blocks.last().unwrap()));
        let expected = if blocks.last().unwrap().is_air() { 0 } else { 1 };
        prop_assert_eq!(chunk.non_air_blocks(), expected);
    }

    /// World-space block addressing round-trips across arbitrary coordinates
    /// (including negatives) once the containing chunk is loaded.
    #[test]
    fn world_block_round_trip(
        x in -10_000i32..10_000,
        y in 0i32..CHUNK_HEIGHT,
        z in -10_000i32..10_000,
        block in arb_block(),
    ) {
        let mut world = World::new();
        let pos = BlockPos::new(x, y, z);
        world.ensure_chunk_at(ChunkPos::from(pos));
        world.set_block(pos, block).unwrap();
        prop_assert_eq!(world.block(pos), Some(block));
        // The write landed in exactly one chunk.
        prop_assert_eq!(world.loaded_chunks(), 1);
    }

    /// Truncating serialized data never panics: it either fails cleanly or
    /// (for the empty tail) still describes a valid chunk.
    #[test]
    fn truncated_chunk_data_is_rejected_cleanly(cut in 0usize..1000) {
        let mut chunk = Chunk::empty(ChunkPos::new(1, 2));
        chunk.fill_layer(3, Block::Stone).unwrap();
        let bytes = chunk.to_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let _ = Chunk::from_bytes(&bytes[..cut]);
    }

    /// Chunk-space conversion is consistent with the chunk's block range.
    #[test]
    fn chunk_pos_contains_its_blocks(x in -100_000i32..100_000, z in -100_000i32..100_000) {
        let pos = BlockPos::new(x, 10, z);
        let chunk = ChunkPos::from(pos);
        let min = chunk.min_block();
        prop_assert!(x >= min.x && x < min.x + CHUNK_SIZE);
        prop_assert!(z >= min.z && z < min.z + CHUNK_SIZE);
    }
}

//! Property tests for [`ShardMap`] invariants on zone seams: the border
//! flag must agree with `zone_of_chunk` everywhere, `neighbor_zones` must
//! be symmetric across a seam, and the shard→zone assignment must be a
//! partition — the properties the cluster's border protocol (mirroring,
//! construct exchange, per-zone persistence) silently depends on.

use proptest::prelude::*;
use servo_types::ChunkPos;
use servo_world::{shard_index, ShardMap};

fn lateral(pos: ChunkPos) -> [ChunkPos; 4] {
    [
        ChunkPos::new(pos.x - 1, pos.z),
        ChunkPos::new(pos.x + 1, pos.z),
        ChunkPos::new(pos.x, pos.z - 1),
        ChunkPos::new(pos.x, pos.z + 1),
    ]
}

proptest! {
    /// `is_border_chunk` and `neighbor_zones` are exactly derivable from
    /// `zone_of_chunk` over the lateral neighbourhood.
    #[test]
    fn border_flag_agrees_with_zone_of_chunk(
        shards in 1usize..64,
        zones in 1usize..16,
        x in -64i32..64,
        z in -64i32..64,
    ) {
        let map = ShardMap::contiguous(shards, zones);
        let pos = ChunkPos::new(x, z);
        let own = map.zone_of_chunk(pos);
        prop_assert_eq!(own, map.zone_of_shard(shard_index(pos, map.shard_count())));
        let differs = lateral(pos).iter().any(|&n| map.zone_of_chunk(n) != own);
        prop_assert_eq!(map.is_border_chunk(pos), differs);
        let neighbors = map.neighbor_zones(pos);
        prop_assert_eq!(neighbors.is_empty(), !map.is_border_chunk(pos));
        prop_assert!(!neighbors.contains(&own));
        prop_assert!(neighbors.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        let mut expected: Vec<usize> = lateral(pos)
            .iter()
            .map(|&n| map.zone_of_chunk(n))
            .filter(|&zone| zone != own)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(neighbors, expected);
    }

    /// A seam is visible from both of its sides: if zone B appears among
    /// the neighbour zones of a chunk owned by A, the adjacent chunk owned
    /// by B reports A among its neighbour zones — the property that makes
    /// border-chunk mirroring and construct state exchange converge from
    /// either endpoint.
    #[test]
    fn neighbor_zones_are_symmetric_across_seams(
        shards in 1usize..64,
        zones in 1usize..16,
        x in -64i32..64,
        z in -64i32..64,
    ) {
        let map = ShardMap::contiguous(shards, zones);
        let pos = ChunkPos::new(x, z);
        let own = map.zone_of_chunk(pos);
        for neighbor in lateral(pos) {
            let other = map.zone_of_chunk(neighbor);
            if other != own {
                prop_assert!(map.neighbor_zones(pos).contains(&other));
                prop_assert!(map.neighbor_zones(neighbor).contains(&own));
                prop_assert!(map.is_border_chunk(pos));
                prop_assert!(map.is_border_chunk(neighbor));
            }
        }
    }

    /// The shard→zone assignment is a partition: every shard owned by
    /// exactly one zone, and `zone_shards` agrees with `zone_of_shard`.
    #[test]
    fn zone_shards_partition_all_shards(shards in 1usize..64, zones in 1usize..64) {
        let map = ShardMap::contiguous(shards, zones);
        let mut seen = vec![0usize; map.shard_count()];
        for zone in 0..map.zones() {
            for shard in map.zone_shards(zone) {
                seen[shard] += 1;
                prop_assert_eq!(map.zone_of_shard(shard), zone);
            }
        }
        prop_assert!(seen.iter().all(|&count| count == 1));
    }

    /// Any sequence of `migrate` calls preserves the shard partition:
    /// after every single migration each shard is owned by exactly one
    /// zone, `zone_shards` agrees with `zone_of_shard`, and the version
    /// counter advances exactly once per effective migration.
    #[test]
    fn migrations_preserve_the_partition(
        shards in 1usize..64,
        zones in 2usize..16,
        moves in prop::collection::vec((0usize..64, 0usize..16), 1..40),
    ) {
        let map = ShardMap::contiguous(shards, zones);
        let mut expected_version = 0u64;
        for (raw_shard, raw_zone) in moves {
            let shard = raw_shard % map.shard_count();
            let zone = raw_zone % map.zones();
            let before = map.zone_of_shard(shard);
            let changed = map.migrate(shard, zone);
            prop_assert_eq!(changed, before != zone);
            if changed {
                expected_version += 1;
            }
            prop_assert_eq!(map.version(), expected_version);
            prop_assert_eq!(map.zone_of_shard(shard), zone);
            // Partition invariant after every step.
            let mut seen = vec![0usize; map.shard_count()];
            for z in 0..map.zones() {
                for s in map.zone_shards(z) {
                    seen[s] += 1;
                    prop_assert_eq!(map.zone_of_shard(s), z);
                }
            }
            prop_assert!(seen.iter().all(|&count| count == 1));
        }
    }

    /// `is_border_chunk` and `neighbor_zones` stay exactly derivable from
    /// `zone_of_chunk` after every migration — the derived border queries
    /// can never go stale relative to ownership.
    #[test]
    fn border_queries_stay_consistent_after_migrations(
        shards in 1usize..64,
        zones in 2usize..16,
        moves in prop::collection::vec((0usize..64, 0usize..16), 1..24),
        x in -32i32..32,
        z in -32i32..32,
    ) {
        let map = ShardMap::contiguous(shards, zones);
        for (raw_shard, raw_zone) in moves {
            map.migrate(raw_shard % map.shard_count(), raw_zone % map.zones());
            let pos = ChunkPos::new(x, z);
            let own = map.zone_of_chunk(pos);
            prop_assert_eq!(own, map.zone_of_shard(shard_index(pos, map.shard_count())));
            let mut expected: Vec<usize> = lateral(pos)
                .iter()
                .map(|&n| map.zone_of_chunk(n))
                .filter(|&zone| zone != own)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(map.is_border_chunk(pos), !expected.is_empty());
            prop_assert_eq!(map.neighbor_zones(pos), expected);
            // Seam symmetry survives migration too.
            for neighbor in lateral(pos) {
                let other = map.zone_of_chunk(neighbor);
                if other != own {
                    prop_assert!(map.neighbor_zones(neighbor).contains(&own));
                }
            }
        }
    }
}

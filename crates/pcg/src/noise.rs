//! Two-dimensional Perlin gradient noise.

/// A seeded two-dimensional Perlin noise field.
///
/// The implementation is the classic permutation-table construction; the
/// table is derived from the seed with a small deterministic shuffle so the
/// same seed always produces the same field.
///
/// # Example
///
/// ```
/// use servo_pcg::Perlin;
/// let noise = Perlin::new(7);
/// let v = noise.sample(1.5, -2.25);
/// assert!((-1.0..=1.0).contains(&v));
/// assert_eq!(v, Perlin::new(7).sample(1.5, -2.25));
/// ```
#[derive(Debug, Clone)]
pub struct Perlin {
    permutation: [u8; 512],
    seed: u64,
}

impl Perlin {
    /// Creates a noise field from a seed.
    pub fn new(seed: u64) -> Self {
        let mut table: [u8; 256] = [0; 256];
        for (i, v) in table.iter_mut().enumerate() {
            *v = i as u8;
        }
        // Fisher–Yates shuffle driven by a splitmix64 stream.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        for i in (1..256usize).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            table.swap(i, j);
        }
        let mut permutation = [0u8; 512];
        for i in 0..512 {
            permutation[i] = table[i % 256];
        }
        Perlin { permutation, seed }
    }

    /// The seed this field was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn gradient(hash: u8, x: f64, y: f64) -> f64 {
        // Eight gradient directions.
        match hash & 7 {
            0 => x + y,
            1 => x - y,
            2 => -x + y,
            3 => -x - y,
            4 => x,
            5 => -x,
            6 => y,
            _ => -y,
        }
    }

    fn fade(t: f64) -> f64 {
        t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
    }

    fn lerp(a: f64, b: f64, t: f64) -> f64 {
        a + t * (b - a)
    }

    /// Samples the noise field at `(x, y)`. The result is in `[-1, 1]`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let xi = x.floor() as i64;
        let yi = y.floor() as i64;
        let xf = x - xi as f64;
        let yf = y - yi as f64;
        let xi = (xi & 255) as usize;
        let yi = (yi & 255) as usize;

        let p = &self.permutation;
        let aa = p[p[xi] as usize + yi];
        let ab = p[p[xi] as usize + yi + 1];
        let ba = p[p[xi + 1] as usize + yi];
        let bb = p[p[xi + 1] as usize + yi + 1];

        let u = Self::fade(xf);
        let v = Self::fade(yf);

        let x1 = Self::lerp(
            Self::gradient(aa, xf, yf),
            Self::gradient(ba, xf - 1.0, yf),
            u,
        );
        let x2 = Self::lerp(
            Self::gradient(ab, xf, yf - 1.0),
            Self::gradient(bb, xf - 1.0, yf - 1.0),
            u,
        );
        // The raw range of this gradient set is within [-2, 2]; normalise.
        (Self::lerp(x1, x2, v) / 2.0).clamp(-1.0, 1.0)
    }

    /// Fractal Brownian motion: `octaves` layers of noise, each at double the
    /// frequency and half the amplitude of the previous. The result is in
    /// `[-1, 1]`.
    pub fn fbm(&self, x: f64, y: f64, octaves: u32, base_frequency: f64) -> f64 {
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut frequency = base_frequency;
        let mut max_amplitude = 0.0;
        for _ in 0..octaves.max(1) {
            total += self.sample(x * frequency, y * frequency) * amplitude;
            max_amplitude += amplitude;
            amplitude *= 0.5;
            frequency *= 2.0;
        }
        (total / max_amplitude).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_bounded() {
        let n = Perlin::new(1);
        for i in -50..50 {
            for j in -50..50 {
                let v = n.sample(i as f64 * 0.37, j as f64 * 0.51);
                assert!((-1.0..=1.0).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = Perlin::new(99);
        let b = Perlin::new(99);
        for i in 0..100 {
            let x = i as f64 * 0.173;
            assert_eq!(a.sample(x, -x), b.sample(x, -x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Perlin::new(1);
        let b = Perlin::new(2);
        let differs = (0..100).any(|i| {
            let x = i as f64 * 0.31 + 0.11;
            (a.sample(x, x * 0.7) - b.sample(x, x * 0.7)).abs() > 1e-12
        });
        assert!(differs);
    }

    #[test]
    fn noise_is_continuous() {
        // Adjacent samples should not jump wildly.
        let n = Perlin::new(5);
        let step = 0.01;
        for i in 0..1000 {
            let x = i as f64 * step;
            let a = n.sample(x, 0.5);
            let b = n.sample(x + step, 0.5);
            assert!((a - b).abs() < 0.1, "jump at {x}: {a} -> {b}");
        }
    }

    #[test]
    fn noise_has_variation() {
        let n = Perlin::new(5);
        let values: Vec<f64> = (0..200)
            .map(|i| n.sample(i as f64 * 0.37 + 0.19, i as f64 * 0.23))
            .collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.3, "range too small: {min}..{max}");
    }

    #[test]
    fn fbm_is_bounded_and_deterministic() {
        let n = Perlin::new(11);
        for i in 0..100 {
            let x = i as f64 * 0.7;
            let v = n.fbm(x, -x * 0.3, 4, 0.05);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, n.fbm(x, -x * 0.3, 4, 0.05));
        }
    }
}

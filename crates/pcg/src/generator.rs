//! Terrain generators.

use servo_types::consts::{CHUNK_HEIGHT, CHUNK_SIZE};
use servo_types::ChunkPos;
use servo_world::{Block, Chunk};

use crate::cost::GenerationCost;
use crate::noise::Perlin;

/// A terrain generator: produces the chunk at a given position,
/// deterministically from its configuration (seed).
///
/// Both the monolithic baseline servers and Servo's serverless generation
/// functions use implementations of this trait; Servo simply runs it inside
/// a function invocation instead of on the game server.
pub trait TerrainGenerator: Send + Sync {
    /// Generates the chunk at `pos`.
    fn generate(&self, pos: ChunkPos) -> Chunk;

    /// The compute cost of generating one chunk, used by the platform
    /// simulators to model generation latency.
    fn cost(&self) -> GenerationCost;

    /// A short human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// The flat world: bedrock floor, dirt body, grass surface — the world type
/// players use to prototype simulated constructs (Section IV-A).
#[derive(Debug, Clone)]
pub struct FlatGenerator {
    ground_height: i32,
}

impl FlatGenerator {
    /// Creates a flat generator whose grass surface sits at `ground_height`.
    pub fn new(ground_height: i32) -> Self {
        FlatGenerator {
            ground_height: ground_height.clamp(1, CHUNK_HEIGHT - 1),
        }
    }

    /// The height of the grass surface.
    pub fn ground_height(&self) -> i32 {
        self.ground_height
    }
}

impl Default for FlatGenerator {
    fn default() -> Self {
        FlatGenerator::new(4)
    }
}

impl TerrainGenerator for FlatGenerator {
    fn generate(&self, pos: ChunkPos) -> Chunk {
        let mut chunk = Chunk::empty(pos);
        chunk
            .fill_layer(0, Block::Bedrock)
            .expect("layer 0 in range");
        for y in 1..self.ground_height {
            chunk.fill_layer(y, Block::Dirt).expect("layer in range");
        }
        chunk
            .fill_layer(self.ground_height, Block::Grass)
            .expect("ground in range");
        chunk
    }

    fn cost(&self) -> GenerationCost {
        GenerationCost::FLAT
    }

    fn name(&self) -> &'static str {
        "flat"
    }
}

/// The default world: procedurally generated terrain with mountains,
/// water, beaches, and snow-capped peaks, built from fractal Perlin noise.
#[derive(Debug, Clone)]
pub struct DefaultGenerator {
    seed: u64,
    height_noise: Perlin,
    detail_noise: Perlin,
    sea_level: i32,
}

impl DefaultGenerator {
    /// Default sea level of the generated world.
    pub const DEFAULT_SEA_LEVEL: i32 = 62;

    /// Creates a default-world generator from a seed.
    pub fn new(seed: u64) -> Self {
        DefaultGenerator {
            seed,
            height_noise: Perlin::new(seed),
            detail_noise: Perlin::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1)),
            sea_level: Self::DEFAULT_SEA_LEVEL,
        }
    }

    /// The seed for the pseudo-random number generator — the parameter Servo
    /// passes to the remote generation function (Section III-D).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The terrain height of the column at world coordinates `(x, z)`.
    pub fn surface_height(&self, x: i32, z: i32) -> i32 {
        let wx = x as f64;
        let wz = z as f64;
        // Broad mountains plus fine detail.
        let broad = self.height_noise.fbm(wx, wz, 5, 0.004);
        let detail = self.detail_noise.fbm(wx, wz, 3, 0.02);
        let height = self.sea_level as f64 + broad * 48.0 + detail * 8.0;
        (height.round() as i32).clamp(1, CHUNK_HEIGHT - 2)
    }
}

impl TerrainGenerator for DefaultGenerator {
    fn generate(&self, pos: ChunkPos) -> Chunk {
        let mut chunk = Chunk::empty(pos);
        let base = pos.min_block();
        chunk
            .fill_layer(0, Block::Bedrock)
            .expect("layer 0 in range");
        for lx in 0..CHUNK_SIZE {
            for lz in 0..CHUNK_SIZE {
                let wx = base.x + lx;
                let wz = base.z + lz;
                let surface = self.surface_height(wx, wz);
                for y in 1..=surface {
                    let block = if y == surface {
                        if surface <= self.sea_level + 1 {
                            Block::Sand
                        } else if surface > self.sea_level + 38 {
                            Block::Snow
                        } else {
                            Block::Grass
                        }
                    } else if y > surface - 4 {
                        Block::Dirt
                    } else {
                        Block::Stone
                    };
                    chunk.set_local(lx, y, lz, block).expect("in range");
                }
                // Fill water up to sea level.
                for y in (surface + 1)..=self.sea_level {
                    chunk.set_local(lx, y, lz, Block::Water).expect("in range");
                }
            }
        }
        chunk
    }

    fn cost(&self) -> GenerationCost {
        GenerationCost::DEFAULT_WORLD
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_generator_builds_expected_layers() {
        let g = FlatGenerator::new(4);
        let chunk = g.generate(ChunkPos::new(0, 0));
        assert_eq!(chunk.local(0, 0, 0), Some(Block::Bedrock));
        assert_eq!(chunk.local(7, 2, 7), Some(Block::Dirt));
        assert_eq!(chunk.local(7, 4, 7), Some(Block::Grass));
        assert_eq!(chunk.local(7, 5, 7), Some(Block::Air));
        assert_eq!(chunk.height_at(3, 3), Some(4));
    }

    #[test]
    fn flat_generator_clamps_extreme_heights() {
        assert_eq!(FlatGenerator::new(0).ground_height(), 1);
        assert_eq!(FlatGenerator::new(9999).ground_height(), CHUNK_HEIGHT - 1);
    }

    #[test]
    fn default_generator_is_deterministic() {
        let a = DefaultGenerator::new(12345);
        let b = DefaultGenerator::new(12345);
        let pos = ChunkPos::new(5, -7);
        assert_eq!(a.generate(pos).to_bytes(), b.generate(pos).to_bytes());
    }

    #[test]
    fn different_seeds_give_different_terrain() {
        let a = DefaultGenerator::new(1);
        let b = DefaultGenerator::new(2);
        let pos = ChunkPos::new(0, 0);
        assert_ne!(a.generate(pos).to_bytes(), b.generate(pos).to_bytes());
    }

    #[test]
    fn default_terrain_has_varied_height_and_features() {
        let g = DefaultGenerator::new(7);
        let mut heights = Vec::new();
        for cx in -3..3 {
            for cz in -3..3 {
                let chunk = g.generate(ChunkPos::new(cx, cz));
                assert!(chunk.non_air_blocks() > 0);
                for lx in [0, 8, 15] {
                    for lz in [0, 8, 15] {
                        heights.push(chunk.height_at(lx, lz).unwrap());
                    }
                }
            }
        }
        let min = *heights.iter().min().unwrap();
        let max = *heights.iter().max().unwrap();
        assert!(max > min, "terrain is unexpectedly flat");
        assert!(min >= 1 && max < CHUNK_HEIGHT);
    }

    #[test]
    fn surface_blocks_match_biome_rules() {
        let g = DefaultGenerator::new(3);
        let mut seen_water_or_sand = false;
        let mut seen_grass = false;
        for cx in -6..6 {
            for cz in -6..6 {
                let chunk = g.generate(ChunkPos::new(cx, cz));
                for lx in 0..CHUNK_SIZE {
                    for lz in 0..CHUNK_SIZE {
                        let h = chunk.height_at(lx, lz).unwrap();
                        match chunk.local(lx, h, lz).unwrap() {
                            Block::Water | Block::Sand => seen_water_or_sand = true,
                            Block::Grass => seen_grass = true,
                            _ => {}
                        }
                    }
                }
            }
        }
        assert!(seen_grass, "no grass found in 144 chunks");
        assert!(seen_water_or_sand, "no water/beach found in 144 chunks");
    }

    #[test]
    fn generation_cost_distinguishes_world_types() {
        assert!(
            DefaultGenerator::new(1).cost().work_units > FlatGenerator::default().cost().work_units
        );
        assert_eq!(DefaultGenerator::new(1).name(), "default");
        assert_eq!(FlatGenerator::default().name(), "flat");
    }
}

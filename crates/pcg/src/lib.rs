//! Procedural content generation (PCG).
//!
//! MVEs generate their virtually infinite terrain on demand as players
//! explore (Section II-A of the paper). This crate implements that substrate
//! from scratch: a seeded Perlin-noise field, a "default" world generator
//! with mountains, water, beaches and snow, and the "flat" world generator
//! players use to prototype simulated constructs (Section IV-A).
//!
//! Generation is deterministic in `(seed, chunk position)` — exactly the
//! property Servo relies on when it moves generation into serverless
//! functions and passes only the seed and the coordinates (Section III-D).
//!
//! # Example
//!
//! ```
//! use servo_pcg::{DefaultGenerator, TerrainGenerator};
//! use servo_types::ChunkPos;
//!
//! let generator = DefaultGenerator::new(42);
//! let chunk = generator.generate(ChunkPos::new(3, -2));
//! assert!(chunk.non_air_blocks() > 0);
//! // Deterministic: the same seed and coordinates give the same terrain.
//! assert_eq!(chunk.to_bytes(), generator.generate(ChunkPos::new(3, -2)).to_bytes());
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod generator;
pub mod noise;

pub use cost::GenerationCost;
pub use generator::{DefaultGenerator, FlatGenerator, TerrainGenerator};
pub use noise::Perlin;

//! Generation cost model.
//!
//! The paper's Figure 11 measures chunk-generation latency on AWS Lambda as
//! a function of the memory (and therefore vCPU share) allocated to the
//! function: roughly 0.9 s on a 10240 MB function and more than 3 s on a
//! 320 MB function. The cost model here expresses generation work in
//! abstract *work units*; the FaaS platform simulator divides work units by
//! the function's compute speed to obtain latency, which reproduces that
//! scaling curve.

use servo_types::SimDuration;

/// The compute cost of generating a single chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationCost {
    /// Abstract work units per chunk. One work unit corresponds to one
    /// millisecond of compute on a full vCPU (the calibration anchor).
    pub work_units: f64,
}

impl GenerationCost {
    /// Cost of generating a flat-world chunk (trivial: three filled layers).
    pub const FLAT: GenerationCost = GenerationCost { work_units: 30.0 };

    /// Cost of generating a default-world chunk. Calibrated so that a full
    /// vCPU takes about 0.55 s per chunk, matching the paper's observation
    /// that a 10 GB Lambda function (~5.7 vCPU, but generation is mostly
    /// single-threaded so the effective speed-up saturates) generates a
    /// chunk in just under a second and a 320 MB function needs over 3 s.
    pub const DEFAULT_WORLD: GenerationCost = GenerationCost { work_units: 550.0 };

    /// Creates a cost of `work_units` abstract units.
    pub fn new(work_units: f64) -> Self {
        GenerationCost {
            work_units: work_units.max(0.0),
        }
    }

    /// The time this work takes on a processor running at `speed_factor`
    /// times the speed of one full vCPU.
    ///
    /// # Panics
    ///
    /// Panics if `speed_factor` is not positive.
    pub fn duration_at_speed(&self, speed_factor: f64) -> SimDuration {
        assert!(speed_factor > 0.0, "speed factor must be positive");
        SimDuration::from_millis_f64(self.work_units / speed_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_inversely_with_speed() {
        let cost = GenerationCost::new(100.0);
        assert_eq!(cost.duration_at_speed(1.0).as_millis(), 100);
        assert_eq!(cost.duration_at_speed(2.0).as_millis(), 50);
        assert_eq!(cost.duration_at_speed(0.25).as_millis(), 400);
    }

    #[test]
    fn negative_work_clamps_to_zero() {
        assert_eq!(GenerationCost::new(-5.0).work_units, 0.0);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn zero_speed_is_rejected() {
        GenerationCost::new(1.0).duration_at_speed(0.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn default_world_is_much_more_expensive_than_flat() {
        assert!(GenerationCost::DEFAULT_WORLD.work_units >= 10.0 * GenerationCost::FLAT.work_units);
    }
}

//! Remote state storage with distance-based pre-fetching
//! (paper Section III-E).

use servo_storage::{
    CacheStats, CachedRead, ChunkOutcome, ChunkRequest, ChunkService, ObjectStore, SyncChunkService,
};
use servo_types::{BlockPos, ChunkPos, ServoError, SimTime};
use servo_world::{required_chunks, ChunkSnapshot};

/// The distance-based pre-fetch policy: chunks within the players' view
/// distance plus a margin are proactively loaded from remote storage, and
/// chunks far outside any player's view are evicted from memory (they remain
/// cached on the local file system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchPolicy {
    /// View distance that must be resident in memory, in blocks.
    pub view_distance_blocks: i32,
    /// Extra margin beyond the view distance to pre-fetch, in blocks.
    pub prefetch_margin_blocks: i32,
    /// Margin beyond which resident chunks are evicted from memory, in
    /// blocks.
    pub eviction_margin_blocks: i32,
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy {
            view_distance_blocks: 128,
            prefetch_margin_blocks: 48,
            eviction_margin_blocks: 96,
        }
    }
}

/// Servo's terrain persistence component: serverless blob storage fronted by
/// the cache of `servo-storage`, driven by avatar positions.
///
/// All storage interaction goes through the [`ChunkService`]
/// request/completion pipeline (here the synchronous baseline adapter):
/// reads are submitted as tickets and resolved from completions,
/// maintenance submits `Prefetch`/`Evict` requests, and flushing submits a
/// `WriteBack` — this type holds no direct cache access.
///
/// # Example
///
/// ```
/// use servo_core::{PrefetchPolicy, RemoteTerrainStore};
/// use servo_storage::{BlobStore, BlobTier};
/// use servo_simkit::SimRng;
/// use servo_types::{BlockPos, ChunkPos, SimTime};
/// use servo_world::Chunk;
///
/// let remote = BlobStore::new(BlobTier::Standard, SimRng::seed(1));
/// let mut store = RemoteTerrainStore::new(remote, SimRng::seed(2), PrefetchPolicy::default());
/// store.put(Chunk::empty(ChunkPos::new(0, 0)).snapshot(), SimTime::ZERO).unwrap();
/// let read = store.read(ChunkPos::new(0, 0), SimTime::ZERO).unwrap();
/// assert!(read.latency.as_millis() < 50);
/// ```
#[derive(Debug)]
pub struct RemoteTerrainStore<R: ObjectStore> {
    service: SyncChunkService<R>,
    policy: PrefetchPolicy,
}

impl<R: ObjectStore> RemoteTerrainStore<R> {
    /// Creates a store in front of the remote backend `remote`.
    pub fn new(remote: R, rng: servo_simkit::SimRng, policy: PrefetchPolicy) -> Self {
        RemoteTerrainStore {
            service: SyncChunkService::new(remote, rng),
            policy,
        }
    }

    /// The pre-fetch policy in use.
    pub fn policy(&self) -> PrefetchPolicy {
        self.policy
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.service.stats()
    }

    /// Number of chunks currently resident in memory.
    pub fn resident_chunks(&self) -> usize {
        self.service.resident_chunks()
    }

    /// Access to the remote backend (e.g. to seed it with generated terrain).
    pub fn remote_mut(&mut self) -> &mut R {
        self.service.remote_mut()
    }

    /// Stores a generated or modified chunk (the pipeline's ingest
    /// boundary; everything else flows through submitted requests).
    ///
    /// # Errors
    ///
    /// Propagates storage failures from the cache layer.
    pub fn put(&mut self, snapshot: ChunkSnapshot, now: SimTime) -> Result<(), ServoError> {
        self.service.put(snapshot, now)
    }

    /// Reads the chunk at `pos`: submits a read ticket and resolves its
    /// completion (the synchronous service completes it in the same poll).
    ///
    /// # Errors
    ///
    /// Returns [`ServoError::NotFound`] if the chunk does not exist anywhere.
    pub fn read(&mut self, pos: ChunkPos, now: SimTime) -> Result<CachedRead, ServoError> {
        // Advance the service clock (and materialise arrivals) first so the
        // submitted read executes at `now`.
        self.service.poll(now);
        let ticket = self.service.submit(ChunkRequest::read(pos));
        for completion in self.service.poll(now) {
            if completion.ticket != ticket {
                continue;
            }
            return match completion.outcome {
                ChunkOutcome::Loaded {
                    chunk,
                    location,
                    latency,
                    ..
                } => Ok(CachedRead {
                    snapshot: chunk.snapshot(),
                    latency,
                    location,
                }),
                ChunkOutcome::Missing { pos } => Err(ServoError::not_found(format!(
                    "chunk {pos} in remote terrain storage"
                ))),
                ChunkOutcome::Failed { error, .. } => Err(error),
                ChunkOutcome::WroteBack { .. } | ChunkOutcome::Evicted { .. } => Err(
                    ServoError::storage_failed("read produced a maintenance completion"),
                ),
            };
        }
        Err(ServoError::storage_failed(
            "synchronous read ticket did not complete",
        ))
    }

    /// Runs one maintenance round for the given avatar positions:
    /// completes arrived pre-fetches, submits pre-fetch requests for chunks
    /// within the pre-fetch horizon, and submits an eviction request for
    /// chunks far outside every player's view.
    pub fn maintain(&mut self, avatar_positions: &[BlockPos], now: SimTime) {
        self.service.poll(now);
        let prefetch_horizon =
            self.policy.view_distance_blocks + self.policy.prefetch_margin_blocks;
        let prefetch_set = required_chunks(avatar_positions, prefetch_horizon);
        self.service.submit(ChunkRequest::prefetch(prefetch_set));

        let keep_horizon = prefetch_horizon + self.policy.eviction_margin_blocks;
        let keep = required_chunks(avatar_positions, keep_horizon);
        self.service.submit(ChunkRequest::evict(keep));
        self.service.poll(now);
    }

    /// Periodically writes dirty chunks back to remote storage (as a
    /// submitted `WriteBack` request); returns how many chunks were
    /// written.
    pub fn flush(&mut self, now: SimTime) -> usize {
        self.service.poll(now);
        let ticket = self.service.submit(ChunkRequest::write_back());
        self.service
            .poll(now)
            .into_iter()
            .find_map(|completion| match completion.outcome {
                ChunkOutcome::WroteBack { chunks } if completion.ticket == ticket => Some(chunks),
                _ => None,
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_metrics::percentile;
    use servo_simkit::SimRng;
    use servo_storage::{BlobStore, BlobTier, ChunkLocation};
    use servo_world::Chunk;

    fn seeded_remote(radius: i32) -> BlobStore {
        let mut remote = BlobStore::new(BlobTier::Standard, SimRng::seed(11));
        for x in -radius..=radius {
            for z in -radius..=radius {
                let pos = ChunkPos::new(x, z);
                remote
                    .write(
                        &format!("terrain/{}/{}", x, z),
                        Chunk::empty(pos).to_bytes(),
                        SimTime::ZERO,
                    )
                    .unwrap();
            }
        }
        remote
    }

    #[test]
    fn prefetching_turns_walk_reads_into_cache_hits() {
        let remote = seeded_remote(40);
        let mut store = RemoteTerrainStore::new(
            remote,
            SimRng::seed(2),
            PrefetchPolicy {
                view_distance_blocks: 64,
                prefetch_margin_blocks: 48,
                eviction_margin_blocks: 64,
            },
        );

        // A player walks east at 3 blocks/s for 10 virtual minutes; every
        // 50 ms tick we maintain the cache and read the chunk ahead.
        let mut latencies = Vec::new();
        for tick in 0..(20 * 600u64) {
            let now = SimTime::from_millis(tick * 50);
            let x = (tick as f64 * 0.15) as i32; // 3 blocks/s
            let player = [BlockPos::new(x, 4, 0)];
            store.maintain(&player, now);
            // Read the chunk at the edge of the view distance (the one the
            // game is about to need).
            let ahead = ChunkPos::from(BlockPos::new(x + 60, 4, 0));
            if let Ok(read) = store.read(ahead, now) {
                latencies.push(read.latency.as_millis_f64());
            }
        }
        assert!(!latencies.is_empty());
        // Discount the start-up transient (the paper attributes its largest
        // cache outliers to cold starts at experiment start).
        let steady = &latencies[200.min(latencies.len() / 2)..];
        let p999 = percentile(steady, 0.999);
        // The paper's MF5: caching brings the 99.9th percentile under one
        // simulation step (50 ms).
        assert!(p999 < 50.0, "99.9th percentile {p999} ms");
        assert!(store.stats().hit_rate() > 0.9);
    }

    #[test]
    fn without_prefetch_margin_remote_misses_occur() {
        let remote = seeded_remote(10);
        let mut store = RemoteTerrainStore::new(
            remote,
            SimRng::seed(3),
            PrefetchPolicy {
                view_distance_blocks: 16,
                prefetch_margin_blocks: 0,
                eviction_margin_blocks: 16,
            },
        );
        // Jump straight to a far-away chunk: nothing was pre-fetched.
        let read = store.read(ChunkPos::new(9, 9), SimTime::ZERO).unwrap();
        assert_eq!(read.location, ChunkLocation::Remote);
    }

    #[test]
    fn eviction_keeps_memory_bounded_during_long_walks() {
        let remote = seeded_remote(60);
        let mut store = RemoteTerrainStore::new(
            remote,
            SimRng::seed(4),
            PrefetchPolicy {
                view_distance_blocks: 32,
                prefetch_margin_blocks: 16,
                eviction_margin_blocks: 16,
            },
        );
        let mut max_resident = 0usize;
        for step in 0..200u64 {
            let now = SimTime::from_secs(step);
            let player = [BlockPos::new(step as i32 * 4, 4, 0)];
            store.maintain(&player, now);
            max_resident = max_resident.max(store.resident_chunks());
        }
        // The resident set stays around the pre-fetch horizon (a few dozen
        // chunks), far below the ~14 000 chunks that exist remotely.
        assert!(max_resident < 300, "resident chunks grew to {max_resident}");
    }

    #[test]
    fn flush_persists_new_chunks() {
        let remote = BlobStore::new(BlobTier::Premium, SimRng::seed(5));
        let mut store = RemoteTerrainStore::new(remote, SimRng::seed(6), PrefetchPolicy::default());
        for x in 0..5 {
            store
                .put(Chunk::empty(ChunkPos::new(x, 0)).snapshot(), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(store.flush(SimTime::ZERO), 5);
        assert_eq!(store.remote_mut().len(), 5);
        assert_eq!(store.flush(SimTime::ZERO), 0);
    }
}

//! Replicated speculative execution for simulated constructs
//! (paper Section III-C).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use servo_faas::FaasPlatform;
use servo_redstone::{simulate_sequence, Construct, SimulationOutcome};
use servo_server::{ScBackend, ScResolution};
use servo_types::{ConstructId, SimDuration, SimTime, Tick};

/// The compute-cost model of the offloaded construct simulation function.
///
/// Section IV-G of the paper measures that a 252-block construct simulates at
/// roughly 488 steps per second inside a function and a 484-block construct
/// at roughly 105 steps per second — a super-linear cost in construct size.
/// The model `work = coefficient * blocks^exponent` (milliseconds of compute
/// per step at one vCPU) reproduces that relationship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScWorkModel {
    /// Multiplicative coefficient.
    pub coefficient: f64,
    /// Exponent applied to the block count.
    pub exponent: f64,
}

impl Default for ScWorkModel {
    fn default() -> Self {
        // Calibrated so that 484 blocks -> ~7.3 ms/step (137 steps/s) and
        // 252 blocks -> ~1.6 ms/step, matching the order of magnitude of the
        // paper's Section IV-G measurements, and so that a 200-step
        // simulation of the 484-block construct takes ~1.5 s end to end
        // (Figure 9).
        ScWorkModel {
            coefficient: 3.6e-6,
            exponent: 2.35,
        }
    }
}

impl ScWorkModel {
    /// Milliseconds of compute (at one full vCPU) to simulate one step of a
    /// construct with `blocks` blocks.
    pub fn work_per_step(&self, blocks: usize) -> f64 {
        self.coefficient * (blocks.max(1) as f64).powf(self.exponent)
    }

    /// Total work units for simulating `steps` steps.
    pub fn work_for(&self, blocks: usize, steps: usize) -> f64 {
        self.work_per_step(blocks) * steps as f64
    }
}

/// Configuration of the speculative execution unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// How many ticks before the current speculative sequence runs out the
    /// next function invocation is issued (the paper's *tick lead*).
    pub tick_lead: u64,
    /// How many simulation steps each function invocation computes.
    pub simulation_steps: usize,
    /// Whether the remote function performs loop detection and the server
    /// replays detected loops without further invocations.
    pub loop_detection: bool,
    /// The compute-cost model of the remote function.
    pub work_model: ScWorkModel,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            tick_lead: 20,
            simulation_steps: 100,
            loop_detection: true,
            work_model: ScWorkModel::default(),
        }
    }
}

/// Aggregate statistics of the speculative execution unit.
#[derive(Debug, Clone, Default)]
pub struct SpeculationStats {
    /// Function invocations issued.
    pub invocations: u64,
    /// Invocations whose results were discarded because the construct was
    /// modified while they were in flight.
    pub discarded_stale: u64,
    /// Invocations that failed on the platform (timeout, concurrency).
    pub failed: u64,
    /// Construct-ticks served by applying a speculative state.
    pub speculative_applied: u64,
    /// Construct-ticks served by replaying a detected loop.
    pub loop_replayed: u64,
    /// Construct-ticks that fell back to local simulation.
    pub local_fallback: u64,
    /// Per-invocation efficiency samples (fraction of offloaded steps that
    /// were not wasted), as defined in Section III-C of the paper.
    pub efficiency_samples: Vec<f64>,
    /// End-to-end latency of each completed invocation.
    pub invocation_latencies: Vec<SimDuration>,
    /// Completion times of invocations (for invocations-per-minute plots).
    pub invocation_completions: Vec<SimTime>,
}

impl SpeculationStats {
    /// The median efficiency over all completed invocations, or `None` if no
    /// invocation completed.
    pub fn median_efficiency(&self) -> Option<f64> {
        if self.efficiency_samples.is_empty() {
            return None;
        }
        let mut sorted = self.efficiency_samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(sorted[sorted.len() / 2])
    }

    /// Invocations per minute, averaged over `elapsed`.
    pub fn invocations_per_minute(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.invocations as f64 / (elapsed.as_secs_f64() / 60.0)
    }
}

/// A cloneable handle to the speculation unit's statistics and billing.
#[derive(Debug, Clone)]
pub struct SpeculationHandle {
    inner: Arc<Mutex<Shared>>,
}

impl SpeculationHandle {
    /// A snapshot of the current statistics.
    pub fn stats(&self) -> SpeculationStats {
        self.inner.lock().stats.clone()
    }

    /// A snapshot of the FaaS billing meter for the SC-offload function.
    pub fn billing(&self) -> servo_faas::BillingMeter {
        self.inner.lock().platform.billing().clone()
    }

    /// A snapshot of the FaaS platform statistics (cold starts, peak
    /// concurrency).
    pub fn platform_stats(&self) -> servo_faas::PlatformStats {
        self.inner.lock().platform.stats()
    }
}

/// A pending (in-flight) function invocation for one construct.
#[derive(Debug, Clone)]
struct PendingInvocation {
    completes_at: SimTime,
    latency: SimDuration,
    /// The modification stamp of the construct at request time; a mismatch
    /// at completion means the result is outdated (Section III-C).
    stamp: u64,
    /// The construct step the offloaded simulation started from.
    start_step: u64,
    /// The precomputed result, applied only once `completes_at` is reached.
    outcome: SimulationOutcome,
}

/// The speculative state sequence currently available for application.
#[derive(Debug, Clone)]
struct AvailableSequence {
    stamp: u64,
    start_step: u64,
    outcome: SimulationOutcome,
}

#[derive(Debug, Default)]
struct ConstructSlot {
    pending: Option<PendingInvocation>,
    available: Option<AvailableSequence>,
}

#[derive(Debug)]
struct Shared {
    platform: FaasPlatform,
    stats: SpeculationStats,
}

/// The speculative execution unit: Servo's [`ScBackend`].
///
/// See the crate-level documentation and the paper's Section III-C for the
/// mechanism. The unit is deterministic given the platform's RNG seed.
pub struct SpeculativeScBackend {
    config: SpeculationConfig,
    slots: HashMap<ConstructId, ConstructSlot>,
    shared: Arc<Mutex<Shared>>,
}

impl std::fmt::Debug for SpeculativeScBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculativeScBackend")
            .field("config", &self.config)
            .field("constructs", &self.slots.len())
            .finish()
    }
}

impl SpeculativeScBackend {
    /// Creates a speculative execution unit that offloads to `platform`.
    pub fn new(config: SpeculationConfig, platform: FaasPlatform) -> Self {
        SpeculativeScBackend {
            config,
            slots: HashMap::new(),
            shared: Arc::new(Mutex::new(Shared {
                platform,
                stats: SpeculationStats::default(),
            })),
        }
    }

    /// A handle for reading statistics and billing after the unit has been
    /// moved into a [`GameServer`](servo_server::GameServer).
    pub fn handle(&self) -> SpeculationHandle {
        SpeculationHandle {
            inner: Arc::clone(&self.shared),
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> SpeculationConfig {
        self.config
    }

    /// Issues a new offload invocation for `construct`, speculating from
    /// `base` (a clone of the construct at `start_step`).
    fn issue(
        shared: &mut Shared,
        config: &SpeculationConfig,
        slot: &mut ConstructSlot,
        base: Construct,
        now: SimTime,
    ) {
        let start_step = base.state().step();
        let stamp = base.state().modification_stamp();
        let blocks = base.len();
        let work = config.work_model.work_for(blocks, config.simulation_steps);
        match shared.platform.invoke(now, work) {
            Ok(invocation) => {
                // The remote function runs the same deterministic engine; we
                // compute its reply eagerly but only deliver it at the
                // invocation's completion time.
                let mut remote = base;
                let outcome = if config.loop_detection {
                    simulate_sequence(&mut remote, config.simulation_steps)
                } else {
                    let states = remote.step_many(config.simulation_steps);
                    SimulationOutcome {
                        simulated_steps: states.len(),
                        states,
                        loop_info: None,
                    }
                };
                shared.stats.invocations += 1;
                slot.pending = Some(PendingInvocation {
                    completes_at: invocation.completed_at,
                    latency: invocation.latency,
                    stamp,
                    start_step,
                    outcome,
                });
            }
            Err(_) => {
                shared.stats.failed += 1;
            }
        }
    }
}

impl ScBackend for SpeculativeScBackend {
    fn resolve(
        &mut self,
        id: ConstructId,
        construct: &mut Construct,
        _tick: Tick,
        now: SimTime,
    ) -> ScResolution {
        let slot = self.slots.entry(id).or_default();
        let mut shared = self.shared.lock();
        let config = self.config;

        // Drop an available sequence that a player interaction invalidated.
        if let Some(available) = &slot.available {
            if available.stamp != construct.modification_stamp() {
                slot.available = None;
            }
        }

        // Try to apply a speculative state, delivering a completed pending
        // invocation first if the current sequence cannot serve this tick.
        for attempt in 0..2 {
            // Attempt 0 uses whatever is already available; attempt 1 runs
            // after delivering a completed pending invocation.
            let application = slot.available.as_ref().and_then(|available| {
                let target_step = construct.state().step() + 1;
                if target_step <= available.start_step {
                    // The sequence starts in the future (it was issued with a
                    // tick lead and the server has not caught up, e.g. after
                    // a modification); keep it and fall back locally.
                    return None;
                }
                let offset = (target_step - available.start_step) as usize;
                available.outcome.state_at(offset).map(|state| {
                    let replaying = available.outcome.loop_info.is_some()
                        && offset > available.outcome.simulated_steps;
                    let remaining = available.outcome.simulated_steps.saturating_sub(offset) as u64;
                    let refresh_base = if !replaying
                        && available.outcome.loop_info.is_none()
                        && remaining <= config.tick_lead
                        && slot.pending.is_none()
                    {
                        // Tick lead: speculate onward from the *end* of the
                        // current sequence, a state the server has not
                        // reached yet (Figure 6 of the paper).
                        available.outcome.states.last().map(|last| {
                            Construct::with_state(construct.blueprint().clone(), last.clone())
                        })
                    } else {
                        None
                    };
                    (state.clone(), target_step, replaying, refresh_base)
                })
            });

            if let Some((mut state, target_step, replaying, refresh_base)) = application {
                // Preserve the construct's global step counter and
                // modification stamp when replaying loop states.
                state.set_step(target_step);
                state.set_modification_stamp(construct.modification_stamp());
                construct.apply_state(state);
                if let Some(base) = refresh_base {
                    Self::issue(&mut shared, &config, slot, base, now);
                }
                if replaying {
                    shared.stats.loop_replayed += 1;
                    return ScResolution::LoopReplayed;
                }
                shared.stats.speculative_applied += 1;
                return ScResolution::SpeculativeApplied;
            }

            // The current sequence cannot serve this tick. If it is a
            // finished, non-looping sequence that is simply exhausted,
            // discard it so a delivered pending invocation can take over.
            if let Some(available) = &slot.available {
                let target_step = construct.state().step() + 1;
                if target_step > available.start_step && available.outcome.loop_info.is_none() {
                    slot.available = None;
                }
            }

            if attempt == 0 {
                // Deliver a completed invocation, discarding it if the
                // construct was modified while it was in flight.
                let completed = slot
                    .pending
                    .as_ref()
                    .map(|p| p.completes_at <= now)
                    .unwrap_or(false);
                if completed && slot.available.is_none() {
                    let pending = slot.pending.take().expect("checked above");
                    shared.stats.invocation_latencies.push(pending.latency);
                    shared
                        .stats
                        .invocation_completions
                        .push(pending.completes_at);
                    if pending.stamp == construct.modification_stamp() {
                        // Efficiency: the fraction of offloaded steps the
                        // server did not already compute locally while
                        // waiting (Section III-C).
                        let total = pending.outcome.simulated_steps.max(1) as f64;
                        let already_local =
                            construct.state().step().saturating_sub(pending.start_step) as f64;
                        let efficiency = ((total - already_local) / total).clamp(0.0, 1.0);
                        shared.stats.efficiency_samples.push(efficiency);
                        slot.available = Some(AvailableSequence {
                            stamp: pending.stamp,
                            start_step: pending.start_step,
                            outcome: pending.outcome,
                        });
                        continue;
                    }
                    shared.stats.discarded_stale += 1;
                }
            }
            break;
        }

        // Fall back to local simulation while (re)starting speculation.
        construct.step();
        shared.stats.local_fallback += 1;
        if slot.pending.is_none() {
            let base = construct.clone();
            Self::issue(&mut shared, &config, slot, base, now);
        }
        ScResolution::LocalSimulated
    }

    fn name(&self) -> &'static str {
        "servo-speculative"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_faas::FunctionConfig;
    use servo_redstone::generators;
    use servo_simkit::SimRng;
    use servo_types::{BlockPos, MemoryMb};

    fn backend(config: SpeculationConfig, seed: u64) -> SpeculativeScBackend {
        let platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(seed),
        );
        SpeculativeScBackend::new(config, platform)
    }

    /// Drives a single construct for `ticks` game ticks at 20 Hz.
    fn drive(
        backend: &mut SpeculativeScBackend,
        construct: &mut Construct,
        ticks: u64,
    ) -> Vec<ScResolution> {
        let mut out = Vec::new();
        for t in 0..ticks {
            let now = SimTime::from_millis(t * 50);
            out.push(backend.resolve(ConstructId::new(0), construct, Tick(t), now));
        }
        out
    }

    #[test]
    fn construct_advances_one_step_per_tick() {
        let mut b = backend(SpeculationConfig::default(), 1);
        let mut c = Construct::new(generators::dense_circuit(64));
        drive(&mut b, &mut c, 200);
        assert_eq!(c.state().step(), 200);
    }

    #[test]
    fn speculation_takes_over_after_initial_local_phase() {
        let mut b = backend(SpeculationConfig::default(), 2);
        let mut c = Construct::new(generators::dense_circuit(200));
        let resolutions = drive(&mut b, &mut c, 300);
        // The very first ticks are local (the function reply has not arrived
        // yet); later ticks are dominated by speculative application.
        assert_eq!(resolutions[0], ScResolution::LocalSimulated);
        let late = &resolutions[100..];
        let local_late = late
            .iter()
            .filter(|r| **r == ScResolution::LocalSimulated)
            .count();
        assert!(
            (local_late as f64) < late.len() as f64 * 0.2,
            "late local fallbacks: {local_late}/{}",
            late.len()
        );
        let handle = b.handle();
        assert!(handle.stats().invocations >= 1);
        assert!(handle.billing().total_cost_usd() > 0.0);
    }

    #[test]
    fn speculative_states_match_pure_local_simulation() {
        // Correctness: offloading must not change the construct's evolution.
        let blueprint = generators::dense_circuit(100);
        let mut offloaded = Construct::new(blueprint.clone());
        let mut reference = Construct::new(blueprint);
        let mut b = backend(SpeculationConfig::default(), 3);
        for t in 0..400u64 {
            let now = SimTime::from_millis(t * 50);
            b.resolve(ConstructId::new(0), &mut offloaded, Tick(t), now);
            reference.step();
            assert_eq!(
                offloaded.state().hash(),
                reference.state().hash(),
                "divergence at tick {t}"
            );
        }
    }

    #[test]
    fn looping_construct_switches_to_replay_and_stops_invoking() {
        let mut b = backend(SpeculationConfig::default(), 4);
        let mut c = Construct::new(generators::clock(6));
        drive(&mut b, &mut c, 600);
        let stats = b.handle().stats();
        assert!(
            stats.loop_replayed > 300,
            "replayed {}",
            stats.loop_replayed
        );
        // One or two invocations at the start, then the loop replays forever.
        assert!(stats.invocations <= 3, "invocations {}", stats.invocations);
    }

    #[test]
    fn disabling_loop_detection_keeps_invoking() {
        let config = SpeculationConfig {
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let mut b = backend(config, 5);
        let mut c = Construct::new(generators::clock(6));
        drive(&mut b, &mut c, 600);
        let stats = b.handle().stats();
        assert_eq!(stats.loop_replayed, 0);
        assert!(stats.invocations > 3);
    }

    #[test]
    fn player_modification_discards_stale_speculation() {
        let mut b = backend(SpeculationConfig::default(), 6);
        let mut c = Construct::new(generators::dense_circuit(80));
        // Let speculation get established.
        drive(&mut b, &mut c, 100);
        // Modify the construct: in-flight and available results are stale.
        c.apply_modification(BlockPos::new(0, 0, 0), None);
        let resolutions = drive(&mut b, &mut c, 100);
        // Immediately after the modification the server falls back to local
        // simulation (the old sequence is unusable).
        assert_eq!(resolutions[0], ScResolution::LocalSimulated);
        // And it recovers: offloaded results (fresh speculation or loop
        // replay of the re-simulated construct) take over again, with local
        // fallbacks limited to the re-invocation window.
        let local_after = resolutions
            .iter()
            .filter(|r| **r == ScResolution::LocalSimulated)
            .count();
        assert!(
            local_after < 20,
            "local fallbacks after modification: {local_after}"
        );
        assert!(resolutions.iter().any(|r| matches!(
            r,
            ScResolution::SpeculativeApplied | ScResolution::LoopReplayed
        )));
        assert_eq!(c.state().step(), 200);
    }

    #[test]
    fn higher_tick_lead_gives_higher_efficiency() {
        let run = |lead: u64| -> f64 {
            let config = SpeculationConfig {
                tick_lead: lead,
                simulation_steps: 100,
                loop_detection: false,
                ..SpeculationConfig::default()
            };
            let mut b = backend(config, 7);
            let mut c = Construct::new(generators::paper_medium());
            drive(&mut b, &mut c, 1200);
            b.handle().stats().median_efficiency().unwrap_or(0.0)
        };
        let none = run(0);
        let generous = run(40);
        assert!(generous > none, "lead 0: {none}, lead 40: {generous}");
        assert!(generous > 0.98, "lead 40 efficiency {generous}");
        assert!(none > 0.5, "lead 0 efficiency {none}");
    }

    #[test]
    fn work_model_matches_section_4g_shape() {
        let model = ScWorkModel::default();
        let small_rate = 1000.0 / model.work_per_step(252);
        let medium_rate = 1000.0 / model.work_per_step(484);
        // Small constructs simulate several times faster than medium ones,
        // and both are far above the 20 Hz game rate.
        assert!(small_rate > 3.0 * medium_rate);
        assert!(medium_rate > 20.0 * 5.0);
        assert!(
            small_rate > 400.0 && small_rate < 900.0,
            "rate {small_rate}"
        );
        assert!(
            medium_rate > 90.0 && medium_rate < 250.0,
            "rate {medium_rate}"
        );
    }

    #[test]
    fn stats_track_invocation_latency_and_rate() {
        let mut b = backend(SpeculationConfig::default(), 8);
        let mut c = Construct::new(generators::dense_circuit(64));
        drive(&mut b, &mut c, 400);
        let stats = b.handle().stats();
        assert!(!stats.invocation_latencies.is_empty());
        assert!(stats.invocations_per_minute(SimDuration::from_secs(20)) > 0.0);
        assert!(stats.median_efficiency().is_some());
        assert_eq!(
            stats.invocation_latencies.len(),
            stats.invocation_completions.len()
        );
    }
}

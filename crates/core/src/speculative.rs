//! Replicated speculative execution for simulated constructs
//! (paper Section III-C).
//!
//! # Concurrency model
//!
//! The unit's in-flight speculation state is split **per construct** into
//! [`SLOT_SHARDS`] lock shards (keyed by construct id), so the game loop
//! can fan per-construct resolution out across worker threads through the
//! [`PartitionedResolver`] table: each worker touches only the slot shards
//! of its constructs and **never** the shared FaaS platform. Everything
//! that must happen in a deterministic global order — statistics pushes
//! and platform invocations, whose RNG stream must be consumed exactly
//! like the sequential path consumes it — is *deferred* during the
//! fan-out and replayed by [`ScBackend::reconcile`] in ascending construct
//! id order (the order the sequential path visits constructs in). The
//! sequential [`ScBackend::resolve`] path is implemented as "defer, then
//! immediately replay", so both paths are identical by construction
//! (asserted end-to-end by `crates/core/tests/speculative_differential.rs`).
//!
//! Lock order (never violated): slot shard → stats → platform. Phase A
//! (planning/fan-out) takes only slot-shard locks; phase B (reconcile)
//! re-locks one slot shard at a time and then stats/platform, so planning
//! on one zone server and reconciliation on another can run concurrently
//! against one shared platform.
//!
//! # Sharing the platform
//!
//! [`SpeculativeScBackend::over`] builds a unit on an existing
//! [`SharedScPlatform`], so several backends — e.g. the zone servers of a
//! hybrid zoned+offloading cluster — offload to **one** platform whose
//! concurrency limit, container pool and billing meter are cluster-level,
//! exactly like a real per-function deployment shared by many game
//! servers.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use servo_faas::FaasPlatform;
use servo_redstone::{simulate_sequence, Construct, SimulationOutcome};
use servo_server::{
    PartitionedResolver, PublishedSequence, ResolutionPlan, ScBackend, ScResolution,
};
use servo_types::{ConstructId, SimDuration, SimTime, Tick};

/// Number of lock shards the per-construct speculation slots are split
/// into.
pub const SLOT_SHARDS: usize = 16;

/// A FaaS platform shared between several [`SpeculativeScBackend`]s (the
/// zone servers of a hybrid cluster offload to one platform, preserving
/// cluster-level concurrency limits and billing).
pub type SharedScPlatform = Arc<Mutex<FaasPlatform>>;

/// The compute-cost model of the offloaded construct simulation function.
///
/// Section IV-G of the paper measures that a 252-block construct simulates at
/// roughly 488 steps per second inside a function and a 484-block construct
/// at roughly 105 steps per second — a super-linear cost in construct size.
/// The model `work = coefficient * blocks^exponent` (milliseconds of compute
/// per step at one vCPU) reproduces that relationship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScWorkModel {
    /// Multiplicative coefficient.
    pub coefficient: f64,
    /// Exponent applied to the block count.
    pub exponent: f64,
}

impl Default for ScWorkModel {
    fn default() -> Self {
        // Calibrated so that 484 blocks -> ~7.3 ms/step (137 steps/s) and
        // 252 blocks -> ~1.6 ms/step, matching the order of magnitude of the
        // paper's Section IV-G measurements, and so that a 200-step
        // simulation of the 484-block construct takes ~1.5 s end to end
        // (Figure 9).
        ScWorkModel {
            coefficient: 3.6e-6,
            exponent: 2.35,
        }
    }
}

impl ScWorkModel {
    /// Milliseconds of compute (at one full vCPU) to simulate one step of a
    /// construct with `blocks` blocks.
    pub fn work_per_step(&self, blocks: usize) -> f64 {
        self.coefficient * (blocks.max(1) as f64).powf(self.exponent)
    }

    /// Total work units for simulating `steps` steps.
    pub fn work_for(&self, blocks: usize, steps: usize) -> f64 {
        self.work_per_step(blocks) * steps as f64
    }
}

/// Configuration of the speculative execution unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// How many ticks before the current speculative sequence runs out the
    /// next function invocation is issued (the paper's *tick lead*).
    pub tick_lead: u64,
    /// How many simulation steps each function invocation computes.
    pub simulation_steps: usize,
    /// Whether the remote function performs loop detection and the server
    /// replays detected loops without further invocations.
    pub loop_detection: bool,
    /// The compute-cost model of the remote function.
    pub work_model: ScWorkModel,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            tick_lead: 20,
            simulation_steps: 100,
            loop_detection: true,
            work_model: ScWorkModel::default(),
        }
    }
}

/// Aggregate statistics of the speculative execution unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpeculationStats {
    /// Function invocations issued.
    pub invocations: u64,
    /// Invocations whose results were discarded because the construct was
    /// modified while they were in flight.
    pub discarded_stale: u64,
    /// Speculative sequences (in flight or awaiting application) dropped
    /// because the construct's zone ownership migrated mid-run.
    pub discarded_migrated: u64,
    /// Invocations that failed on the platform (timeout, concurrency).
    pub failed: u64,
    /// Invocations that waited in the platform's saturation queue before a
    /// container slot freed up.
    pub queued_invocations: u64,
    /// Total saturation-queue wait accumulated by queued invocations, in
    /// milliseconds (already included in the invocation latencies).
    pub queue_wait_ms: f64,
    /// Construct-ticks served by applying a speculative state.
    pub speculative_applied: u64,
    /// Construct-ticks served by replaying a detected loop.
    pub loop_replayed: u64,
    /// Construct-ticks that fell back to local simulation.
    pub local_fallback: u64,
    /// Per-invocation efficiency samples (fraction of offloaded steps that
    /// were not wasted), as defined in Section III-C of the paper.
    pub efficiency_samples: Vec<f64>,
    /// End-to-end latency of each completed invocation.
    pub invocation_latencies: Vec<SimDuration>,
    /// Completion times of invocations (for invocations-per-minute plots).
    pub invocation_completions: Vec<SimTime>,
}

impl servo_metrics::StatsReport for SpeculationStats {
    fn section(&self) -> &'static str {
        "speculation"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("invocations", self.invocations.to_string()),
            ("discarded_stale", self.discarded_stale.to_string()),
            ("discarded_migrated", self.discarded_migrated.to_string()),
            ("failed", self.failed.to_string()),
            ("queued_invocations", self.queued_invocations.to_string()),
            ("queue_wait_ms", format!("{:.3}", self.queue_wait_ms)),
            ("speculative_applied", self.speculative_applied.to_string()),
            ("loop_replayed", self.loop_replayed.to_string()),
            ("local_fallback", self.local_fallback.to_string()),
            (
                "median_efficiency",
                self.median_efficiency()
                    .map(|e| format!("{e:.3}"))
                    .unwrap_or_else(|| "n/a".to_string()),
            ),
        ]
    }
}

impl SpeculationStats {
    /// The median efficiency over all completed invocations, or `None` if no
    /// invocation completed.
    pub fn median_efficiency(&self) -> Option<f64> {
        if self.efficiency_samples.is_empty() {
            return None;
        }
        let mut sorted = self.efficiency_samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(sorted[sorted.len() / 2])
    }

    /// Merges another unit's statistics into this one (counters add,
    /// sample vectors concatenate) — e.g. to aggregate the per-zone units
    /// of a hybrid zoned+offloading cluster.
    pub fn merge(&mut self, other: &SpeculationStats) {
        self.invocations += other.invocations;
        self.discarded_stale += other.discarded_stale;
        self.discarded_migrated += other.discarded_migrated;
        self.failed += other.failed;
        self.queued_invocations += other.queued_invocations;
        self.queue_wait_ms += other.queue_wait_ms;
        self.speculative_applied += other.speculative_applied;
        self.loop_replayed += other.loop_replayed;
        self.local_fallback += other.local_fallback;
        self.efficiency_samples
            .extend_from_slice(&other.efficiency_samples);
        self.invocation_latencies
            .extend_from_slice(&other.invocation_latencies);
        self.invocation_completions
            .extend_from_slice(&other.invocation_completions);
    }

    /// Invocations per minute, averaged over `elapsed`.
    pub fn invocations_per_minute(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.invocations as f64 / (elapsed.as_secs_f64() / 60.0)
    }
}

/// A cloneable handle to the speculation unit's statistics and billing.
#[derive(Debug, Clone)]
pub struct SpeculationHandle {
    platform: SharedScPlatform,
    stats: Arc<Mutex<SpeculationStats>>,
}

impl SpeculationHandle {
    /// A snapshot of the current statistics.
    pub fn stats(&self) -> SpeculationStats {
        self.stats.lock().clone()
    }

    /// A snapshot of the FaaS billing meter for the SC-offload function.
    /// When the platform is shared between several backends, the meter is
    /// the *platform-level* (cluster) aggregate.
    pub fn billing(&self) -> servo_faas::BillingMeter {
        self.platform.lock().billing().clone()
    }

    /// A snapshot of the FaaS platform statistics (cold starts, peak
    /// concurrency); platform-level when the platform is shared.
    pub fn platform_stats(&self) -> servo_faas::PlatformStats {
        self.platform.lock().stats()
    }

    /// The billing meter as it reads at `now`, including the warm-idle
    /// time accrued by containers the keep-alive policy is holding open —
    /// the full cost of the platform configuration at the end of a run.
    pub fn billing_at(&self, now: SimTime) -> servo_faas::BillingMeter {
        self.platform.lock().billing_at(now)
    }
}

/// A pending (in-flight) function invocation for one construct.
#[derive(Debug, Clone)]
struct PendingInvocation {
    completes_at: SimTime,
    latency: SimDuration,
    /// The modification stamp of the construct at request time; a mismatch
    /// at completion means the result is outdated (Section III-C).
    stamp: u64,
    /// The construct step the offloaded simulation started from.
    start_step: u64,
    /// The precomputed result, applied only once `completes_at` is reached.
    outcome: SimulationOutcome,
}

/// The speculative state sequence currently available for application.
#[derive(Debug, Clone)]
struct AvailableSequence {
    stamp: u64,
    start_step: u64,
    outcome: SimulationOutcome,
}

#[derive(Debug, Default)]
struct ConstructSlot {
    pending: Option<PendingInvocation>,
    available: Option<AvailableSequence>,
}

/// A completed invocation delivered by phase A, with the derived
/// efficiency sample (`None` when the result was stale and must count as
/// discarded).
#[derive(Debug)]
struct Delivered {
    latency: SimDuration,
    completes_at: SimTime,
    efficiency: Option<f64>,
}

/// The engine work of a prepared invocation: normally precomputed in
/// phase A (on the worker thread), but deferred to phase B while the
/// platform looks saturated — an invoke that fails would discard the
/// whole simulation, so there is no point paying for it up front.
#[derive(Debug)]
enum IssuePayload {
    Ready(SimulationOutcome),
    Deferred(Construct),
}

/// An invocation phase A decided to issue: the platform call — which
/// consumes the shared RNG stream and must happen in construct order — is
/// left to phase B.
#[derive(Debug)]
struct PreparedIssue {
    stamp: u64,
    start_step: u64,
    work: f64,
    payload: IssuePayload,
}

/// Everything one construct's phase-A resolution deferred to phase B.
#[derive(Debug)]
struct Deferred {
    id: ConstructId,
    resolution: ScResolution,
    delivered: Option<Delivered>,
    issue: Option<PreparedIssue>,
}

/// One lock shard of the per-construct speculation state.
#[derive(Debug, Default)]
struct SlotShard {
    slots: HashMap<ConstructId, ConstructSlot>,
    /// Phase-A actions of the current tick, drained by `reconcile`.
    deferred: Vec<Deferred>,
}

/// The speculative execution unit: Servo's [`ScBackend`].
///
/// See the crate- and module-level documentation and the paper's
/// Section III-C for the mechanism. The unit is deterministic given the
/// platform's RNG seed, for every `ServerConfig::with_parallelism` value:
/// the partitioned fan-out defers all shared-state effects and replays
/// them in the sequential path's order.
pub struct SpeculativeScBackend {
    config: SpeculationConfig,
    slot_shards: Vec<Mutex<SlotShard>>,
    platform: SharedScPlatform,
    stats: Arc<Mutex<SpeculationStats>>,
    /// Hint set by phase B when the platform rejected the last invocation
    /// (concurrency limit) and cleared when one succeeds. While set,
    /// phase A defers the speculative engine work instead of eagerly
    /// computing results a failing invoke would throw away. Purely a
    /// where-does-the-work-run hint: the computed outcome is identical.
    saturated: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for SpeculativeScBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculativeScBackend")
            .field("config", &self.config)
            .field("slot_shards", &self.slot_shards.len())
            .finish()
    }
}

impl SpeculativeScBackend {
    /// Creates a speculative execution unit that offloads to its own
    /// exclusive `platform`.
    pub fn new(config: SpeculationConfig, platform: FaasPlatform) -> Self {
        Self::over(config, Arc::new(Mutex::new(platform)))
    }

    /// Creates a speculative execution unit over an existing (possibly
    /// shared) platform. Zone servers of a hybrid cluster use this to
    /// offload to one platform with cluster-level concurrency and billing.
    pub fn over(config: SpeculationConfig, platform: SharedScPlatform) -> Self {
        SpeculativeScBackend {
            config,
            slot_shards: (0..SLOT_SHARDS)
                .map(|_| Mutex::new(SlotShard::default()))
                .collect(),
            platform,
            stats: Arc::new(Mutex::new(SpeculationStats::default())),
            saturated: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The platform this unit offloads to, for sharing with further units.
    pub fn platform(&self) -> SharedScPlatform {
        Arc::clone(&self.platform)
    }

    /// A handle for reading statistics and billing after the unit has been
    /// moved into a [`GameServer`](servo_server::GameServer).
    pub fn handle(&self) -> SpeculationHandle {
        SpeculationHandle {
            platform: Arc::clone(&self.platform),
            stats: Arc::clone(&self.stats),
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> SpeculationConfig {
        self.config
    }

    #[inline]
    fn slot_shard_of(id: ConstructId) -> usize {
        (id.raw() as usize) & (SLOT_SHARDS - 1)
    }

    /// Phase A for one construct: advance it using only its slot's state,
    /// deferring every shared-state effect. Runs under the construct's
    /// slot-shard lock and touches neither the platform nor the statistics.
    fn resolve_slot(
        config: &SpeculationConfig,
        slot: &mut ConstructSlot,
        construct: &mut Construct,
        now: SimTime,
        saturated: bool,
    ) -> (ScResolution, Option<Delivered>, Option<PreparedIssue>) {
        let mut delivered = None;

        // Drop an available sequence that a player interaction invalidated.
        if let Some(available) = &slot.available {
            if available.stamp != construct.modification_stamp() {
                slot.available = None;
            }
        }

        // Try to apply a speculative state, delivering a completed pending
        // invocation first if the current sequence cannot serve this tick.
        for attempt in 0..2 {
            // Attempt 0 uses whatever is already available; attempt 1 runs
            // after delivering a completed pending invocation.
            let application = slot.available.as_ref().and_then(|available| {
                let target_step = construct.state().step() + 1;
                if target_step <= available.start_step {
                    // The sequence starts in the future (it was issued with a
                    // tick lead and the server has not caught up, e.g. after
                    // a modification); keep it and fall back locally.
                    return None;
                }
                let offset = (target_step - available.start_step) as usize;
                available.outcome.state_at(offset).map(|state| {
                    let replaying = available.outcome.loop_info.is_some()
                        && offset > available.outcome.simulated_steps;
                    let remaining = available.outcome.simulated_steps.saturating_sub(offset) as u64;
                    let refresh_base = if !replaying
                        && available.outcome.loop_info.is_none()
                        && remaining <= config.tick_lead
                        && slot.pending.is_none()
                    {
                        // Tick lead: speculate onward from the *end* of the
                        // current sequence, a state the server has not
                        // reached yet (Figure 6 of the paper).
                        available.outcome.states.last().map(|last| {
                            Construct::with_state(construct.blueprint().clone(), last.clone())
                        })
                    } else {
                        None
                    };
                    (state.clone(), target_step, replaying, refresh_base)
                })
            });

            if let Some((mut state, target_step, replaying, refresh_base)) = application {
                // Preserve the construct's global step counter and
                // modification stamp when replaying loop states.
                state.set_step(target_step);
                state.set_modification_stamp(construct.modification_stamp());
                construct.apply_state(state);
                let issue = refresh_base.map(|base| Self::prepare_issue(config, base, saturated));
                let resolution = if replaying {
                    ScResolution::LoopReplayed
                } else {
                    ScResolution::SpeculativeApplied
                };
                return (resolution, delivered, issue);
            }

            // The current sequence cannot serve this tick. If it is a
            // finished, non-looping sequence that is simply exhausted,
            // discard it so a delivered pending invocation can take over.
            if let Some(available) = &slot.available {
                let target_step = construct.state().step() + 1;
                if target_step > available.start_step && available.outcome.loop_info.is_none() {
                    slot.available = None;
                }
            }

            if attempt == 0 {
                // Deliver a completed invocation, discarding it if the
                // construct was modified while it was in flight.
                let completed = slot
                    .pending
                    .as_ref()
                    .map(|p| p.completes_at <= now)
                    .unwrap_or(false);
                if completed && slot.available.is_none() {
                    let pending = slot.pending.take().expect("checked above");
                    let mut record = Delivered {
                        latency: pending.latency,
                        completes_at: pending.completes_at,
                        efficiency: None,
                    };
                    if pending.stamp == construct.modification_stamp() {
                        // Efficiency: the fraction of offloaded steps the
                        // server did not already compute locally while
                        // waiting (Section III-C). Steps the server stepped
                        // locally during the invocation's flight are wasted
                        // — but only up to the point where the sequence
                        // loops: a looping sequence serves *every* later
                        // tick by replay, so its usable steps are never
                        // exhausted by the wait.
                        let total = pending.outcome.simulated_steps.max(1) as f64;
                        let already_local =
                            construct.state().step().saturating_sub(pending.start_step) as f64;
                        let wasted = match pending.outcome.loop_info {
                            Some(info) => already_local.min(info.start as f64),
                            None => already_local,
                        };
                        record.efficiency = Some(((total - wasted) / total).clamp(0.0, 1.0));
                        slot.available = Some(AvailableSequence {
                            stamp: pending.stamp,
                            start_step: pending.start_step,
                            outcome: pending.outcome,
                        });
                        delivered = Some(record);
                        continue;
                    }
                    // Stale: the delivery is still recorded (latency and
                    // completion time), but counts as discarded.
                    delivered = Some(record);
                }
            }
            break;
        }

        // Fall back to local simulation while (re)starting speculation.
        construct.step();
        let issue = if slot.pending.is_none() {
            Some(Self::prepare_issue(config, construct.clone(), saturated))
        } else {
            None
        };
        (ScResolution::LocalSimulated, delivered, issue)
    }

    /// Prepares a new invocation speculating from `base`. The deterministic
    /// engine work normally runs here — on the worker thread during a
    /// partitioned fan-out — while the platform call is deferred to
    /// phase B. While the platform looks saturated the engine work is
    /// deferred too, so a rejected invoke wastes nothing.
    fn prepare_issue(
        config: &SpeculationConfig,
        base: Construct,
        saturated: bool,
    ) -> PreparedIssue {
        let start_step = base.state().step();
        let stamp = base.state().modification_stamp();
        let work = config
            .work_model
            .work_for(base.len(), config.simulation_steps);
        let payload = if saturated {
            IssuePayload::Deferred(base)
        } else {
            IssuePayload::Ready(Self::compute_outcome(config, base))
        };
        PreparedIssue {
            stamp,
            start_step,
            work,
            payload,
        }
    }

    /// The remote function's deterministic engine work for one invocation.
    fn compute_outcome(config: &SpeculationConfig, base: Construct) -> SimulationOutcome {
        let mut remote = base;
        if config.loop_detection {
            simulate_sequence(&mut remote, config.simulation_steps)
        } else {
            let states = remote.step_many(config.simulation_steps);
            SimulationOutcome {
                simulated_steps: states.len(),
                states,
                loop_info: None,
            }
        }
    }

    /// Phase B for one construct: replay the deferred statistics pushes and
    /// platform invocation. Lock order: the caller holds the construct's
    /// slot shard; stats, then the platform, are taken here.
    fn apply_deferred(&self, slot: &mut ConstructSlot, deferred: Deferred, now: SimTime) {
        use std::sync::atomic::Ordering;
        let mut stats = self.stats.lock();
        if let Some(record) = deferred.delivered {
            stats.invocation_latencies.push(record.latency);
            stats.invocation_completions.push(record.completes_at);
            match record.efficiency {
                Some(efficiency) => stats.efficiency_samples.push(efficiency),
                None => stats.discarded_stale += 1,
            }
        }
        match deferred.resolution {
            ScResolution::LocalSimulated => stats.local_fallback += 1,
            ScResolution::SpeculativeApplied => stats.speculative_applied += 1,
            ScResolution::LoopReplayed => stats.loop_replayed += 1,
            ScResolution::Skipped => {}
        }
        if let Some(issue) = deferred.issue {
            match self.platform.lock().invoke(now, issue.work) {
                Ok(invocation) => {
                    self.saturated.store(false, Ordering::Relaxed);
                    stats.invocations += 1;
                    if invocation.queue_wait > SimDuration::ZERO {
                        stats.queued_invocations += 1;
                        stats.queue_wait_ms += invocation.queue_wait.as_millis_f64();
                    }
                    let outcome = match issue.payload {
                        IssuePayload::Ready(outcome) => outcome,
                        // The platform looked saturated in phase A but the
                        // invoke got through: pay the engine work now (the
                        // result is identical — the computation is pure).
                        IssuePayload::Deferred(base) => Self::compute_outcome(&self.config, base),
                    };
                    slot.pending = Some(PendingInvocation {
                        completes_at: invocation.completed_at,
                        latency: invocation.latency,
                        stamp: issue.stamp,
                        start_step: issue.start_step,
                        outcome,
                    });
                }
                Err(_) => {
                    self.saturated.store(true, Ordering::Relaxed);
                    stats.failed += 1;
                }
            }
        }
    }
}

impl ScBackend for SpeculativeScBackend {
    fn resolve(
        &mut self,
        id: ConstructId,
        construct: &mut Construct,
        _tick: Tick,
        now: SimTime,
    ) -> ScResolution {
        // The sequential reference path is "phase A, then immediately
        // phase B" — which is exactly what the partitioned path replays,
        // making the two identical by construction.
        let mut guard = self.slot_shards[Self::slot_shard_of(id)].lock();
        let slot = guard.slots.entry(id).or_default();
        let saturated = self.saturated.load(std::sync::atomic::Ordering::Relaxed);
        let (resolution, delivered, issue) =
            Self::resolve_slot(&self.config, slot, construct, now, saturated);
        self.apply_deferred(
            slot,
            Deferred {
                id,
                resolution,
                delivered,
                issue,
            },
            now,
        );
        resolution
    }

    fn plan(&mut self, _tick: Tick) -> ResolutionPlan {
        // Speculative stepping always runs on the parallel
        // shard-partitioned path: per-construct state lives behind sharded
        // locks and shared effects are deferred to `reconcile`.
        ResolutionPlan::Partitioned
    }

    fn partitioned(&self) -> Option<&dyn PartitionedResolver> {
        Some(self)
    }

    fn reconcile(&mut self, _tick: Tick, now: SimTime) {
        let mut all: Vec<Deferred> = Vec::new();
        for shard in &self.slot_shards {
            all.append(&mut shard.lock().deferred);
        }
        // Ascending construct id is the order the sequential path visits
        // constructs in (ids are allocated in registration order), so the
        // platform's RNG stream and the stats vectors are consumed and
        // filled identically.
        all.sort_by_key(|deferred| deferred.id);
        for deferred in all {
            let mut guard = self.slot_shards[Self::slot_shard_of(deferred.id)].lock();
            let slot = guard
                .slots
                .get_mut(&deferred.id)
                .expect("deferred action for a construct phase A never saw");
            self.apply_deferred(slot, deferred, now);
        }
    }

    fn release(&mut self, id: ConstructId) {
        // The construct is migrating to another zone's backend: drop its
        // slot so a later reuse of the id on this server starts clean. A
        // result still in flight (or available but unapplied) is counted as
        // discarded — the offloaded steps are lost to the migration, the
        // same way a modification mid-flight loses them. The new owner's
        // backend re-establishes speculation from the construct's live
        // state on its first resolve.
        let mut guard = self.slot_shards[Self::slot_shard_of(id)].lock();
        if let Some(slot) = guard.slots.remove(&id) {
            let in_flight = slot.pending.is_some() as u64 + slot.available.is_some() as u64;
            if in_flight > 0 {
                self.stats.lock().discarded_migrated += in_flight;
            }
        }
    }

    fn published_sequence(&self, id: ConstructId) -> Option<PublishedSequence> {
        // The sequence serving this construct already lives in shared
        // remote storage (the FaaS platform wrote it there); publishing is
        // just naming it. Identity is (stamp, start_step): a modification
        // re-invokes under a fresh stamp and a migration releases the
        // slot, so neighbours holding an old handle observe the change.
        let guard = self.slot_shards[Self::slot_shard_of(id)].lock();
        let slot = guard.slots.get(&id)?;
        let available = slot.available.as_ref()?;
        let horizon = if available.outcome.loop_info.is_some() {
            // A looping sequence replays forever: any future step can be
            // served from the stored states.
            u64::MAX
        } else {
            available.start_step + available.outcome.simulated_steps as u64
        };
        Some(PublishedSequence {
            stamp: available.stamp,
            start_step: available.start_step,
            horizon,
        })
    }

    fn name(&self) -> &'static str {
        "servo-speculative"
    }
}

impl PartitionedResolver for SpeculativeScBackend {
    fn resolve_partitioned(
        &self,
        id: ConstructId,
        _shard: usize,
        construct: &mut Construct,
        _tick: Tick,
        now: SimTime,
    ) -> ScResolution {
        let mut guard = self.slot_shards[Self::slot_shard_of(id)].lock();
        let slot = guard.slots.entry(id).or_default();
        let saturated = self.saturated.load(std::sync::atomic::Ordering::Relaxed);
        let (resolution, delivered, issue) =
            Self::resolve_slot(&self.config, slot, construct, now, saturated);
        guard.deferred.push(Deferred {
            id,
            resolution,
            delivered,
            issue,
        });
        resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_faas::FunctionConfig;
    use servo_redstone::generators;
    use servo_simkit::SimRng;
    use servo_types::{BlockPos, MemoryMb};

    fn backend(config: SpeculationConfig, seed: u64) -> SpeculativeScBackend {
        let platform = FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(seed),
        );
        SpeculativeScBackend::new(config, platform)
    }

    /// Drives a single construct for `ticks` game ticks at 20 Hz.
    fn drive(
        backend: &mut SpeculativeScBackend,
        construct: &mut Construct,
        ticks: u64,
    ) -> Vec<ScResolution> {
        let mut out = Vec::new();
        for t in 0..ticks {
            let now = SimTime::from_millis(t * 50);
            out.push(backend.resolve(ConstructId::new(0), construct, Tick(t), now));
        }
        out
    }

    #[test]
    fn construct_advances_one_step_per_tick() {
        let mut b = backend(SpeculationConfig::default(), 1);
        let mut c = Construct::new(generators::dense_circuit(64));
        drive(&mut b, &mut c, 200);
        assert_eq!(c.state().step(), 200);
    }

    #[test]
    fn speculation_takes_over_after_initial_local_phase() {
        let mut b = backend(SpeculationConfig::default(), 2);
        let mut c = Construct::new(generators::dense_circuit(200));
        let resolutions = drive(&mut b, &mut c, 300);
        // The very first ticks are local (the function reply has not arrived
        // yet); later ticks are dominated by speculative application.
        assert_eq!(resolutions[0], ScResolution::LocalSimulated);
        let late = &resolutions[100..];
        let local_late = late
            .iter()
            .filter(|r| **r == ScResolution::LocalSimulated)
            .count();
        assert!(
            (local_late as f64) < late.len() as f64 * 0.2,
            "late local fallbacks: {local_late}/{}",
            late.len()
        );
        let handle = b.handle();
        assert!(handle.stats().invocations >= 1);
        assert!(handle.billing().total_cost_usd() > 0.0);
    }

    #[test]
    fn planning_is_partitioned_with_a_resolver() {
        let mut b = backend(SpeculationConfig::default(), 9);
        assert_eq!(b.plan(Tick(0)), ResolutionPlan::Partitioned);
        assert!(b.partitioned().is_some());
    }

    #[test]
    fn partitioned_path_matches_sequential_resolve() {
        // Drive the same workload once through `resolve` and once through
        // `resolve_partitioned` + `reconcile`; construct states and all
        // statistics (including vector order) must agree exactly.
        let run = |partitioned: bool| {
            let mut b = backend(SpeculationConfig::default(), 11);
            let mut constructs: Vec<Construct> = (0..6)
                .map(|i| Construct::new(generators::dense_circuit(40 + i * 13)))
                .collect();
            for t in 0..240u64 {
                let now = SimTime::from_millis(t * 50);
                if t == 77 {
                    // A player modification invalidates one construct.
                    constructs[2].apply_modification(BlockPos::new(0, 0, 0), None);
                }
                if partitioned {
                    // Resolve in reverse order to prove order independence.
                    for (i, c) in constructs.iter_mut().enumerate().rev() {
                        b.resolve_partitioned(ConstructId::new(i as u64), 0, c, Tick(t), now);
                    }
                    b.reconcile(Tick(t), now);
                } else {
                    for (i, c) in constructs.iter_mut().enumerate() {
                        b.resolve(ConstructId::new(i as u64), c, Tick(t), now);
                    }
                }
            }
            let hashes: Vec<u64> = constructs.iter().map(|c| c.state().hash()).collect();
            let handle = b.handle();
            (hashes, handle.stats(), handle.billing())
        };
        let (seq_hashes, seq_stats, seq_billing) = run(false);
        let (par_hashes, par_stats, par_billing) = run(true);
        assert_eq!(seq_hashes, par_hashes);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq_billing, par_billing);
        assert!(seq_stats.invocations > 0);
    }

    #[test]
    fn saturated_platform_stays_identical_across_paths() {
        // A tiny concurrency limit forces invoke failures: the saturation
        // hint defers engine work, which must not change any observable
        // state between the sequential and partitioned paths.
        let run = |partitioned: bool| {
            let mut function = FunctionConfig::aws_like(MemoryMb::new(2048));
            function.max_concurrency = Some(2);
            let config = SpeculationConfig {
                loop_detection: false,
                ..SpeculationConfig::default()
            };
            let mut b =
                SpeculativeScBackend::new(config, FaasPlatform::new(function, SimRng::seed(31)));
            let mut constructs: Vec<Construct> = (0..8)
                .map(|i| Construct::new(generators::dense_circuit(40 + i * 9)))
                .collect();
            for t in 0..200u64 {
                let now = SimTime::from_millis(t * 50);
                if partitioned {
                    for (i, c) in constructs.iter_mut().enumerate().rev() {
                        b.resolve_partitioned(ConstructId::new(i as u64), 0, c, Tick(t), now);
                    }
                    b.reconcile(Tick(t), now);
                } else {
                    for (i, c) in constructs.iter_mut().enumerate() {
                        b.resolve(ConstructId::new(i as u64), c, Tick(t), now);
                    }
                }
            }
            let hashes: Vec<u64> = constructs.iter().map(|c| c.state().hash()).collect();
            (hashes, b.handle().stats())
        };
        let (seq_hashes, seq_stats) = run(false);
        let (par_hashes, par_stats) = run(true);
        assert!(seq_stats.failed > 0, "the limit never rejected an invoke");
        assert_eq!(seq_hashes, par_hashes);
        assert_eq!(seq_stats, par_stats);
    }

    #[test]
    fn shared_platform_aggregates_billing_across_backends() {
        let platform: SharedScPlatform = Arc::new(Mutex::new(FaasPlatform::new(
            FunctionConfig::aws_like(MemoryMb::new(2048)),
            SimRng::seed(21),
        )));
        let mut a = SpeculativeScBackend::over(SpeculationConfig::default(), Arc::clone(&platform));
        let mut b = SpeculativeScBackend::over(SpeculationConfig::default(), a.platform());
        let mut ca = Construct::new(generators::dense_circuit(64));
        let mut cb = Construct::new(generators::dense_circuit(64));
        drive(&mut a, &mut ca, 100);
        drive(&mut b, &mut cb, 100);
        // Per-backend stats stay separate...
        assert!(a.handle().stats().invocations > 0);
        assert!(b.handle().stats().invocations > 0);
        // ...while the platform meters the union.
        let platform_invocations = platform.lock().stats().invocations;
        assert_eq!(
            platform_invocations,
            a.handle().stats().invocations + b.handle().stats().invocations
        );
        assert_eq!(
            a.handle().billing().invocations(),
            platform_invocations,
            "the billing meter is platform-level"
        );
    }

    #[test]
    fn speculative_states_match_pure_local_simulation() {
        // Correctness: offloading must not change the construct's evolution.
        let blueprint = generators::dense_circuit(100);
        let mut offloaded = Construct::new(blueprint.clone());
        let mut reference = Construct::new(blueprint);
        let mut b = backend(SpeculationConfig::default(), 3);
        for t in 0..400u64 {
            let now = SimTime::from_millis(t * 50);
            b.resolve(ConstructId::new(0), &mut offloaded, Tick(t), now);
            reference.step();
            assert_eq!(
                offloaded.state().hash(),
                reference.state().hash(),
                "divergence at tick {t}"
            );
        }
    }

    #[test]
    fn looping_construct_switches_to_replay_and_stops_invoking() {
        let mut b = backend(SpeculationConfig::default(), 4);
        let mut c = Construct::new(generators::clock(6));
        drive(&mut b, &mut c, 600);
        let stats = b.handle().stats();
        assert!(
            stats.loop_replayed > 300,
            "replayed {}",
            stats.loop_replayed
        );
        // One or two invocations at the start, then the loop replays forever.
        assert!(stats.invocations <= 3, "invocations {}", stats.invocations);
    }

    #[test]
    fn disabling_loop_detection_keeps_invoking() {
        let config = SpeculationConfig {
            loop_detection: false,
            ..SpeculationConfig::default()
        };
        let mut b = backend(config, 5);
        let mut c = Construct::new(generators::clock(6));
        drive(&mut b, &mut c, 600);
        let stats = b.handle().stats();
        assert_eq!(stats.loop_replayed, 0);
        assert!(stats.invocations > 3);
    }

    #[test]
    fn player_modification_discards_stale_speculation() {
        let mut b = backend(SpeculationConfig::default(), 6);
        let mut c = Construct::new(generators::dense_circuit(80));
        // Let speculation get established.
        drive(&mut b, &mut c, 100);
        // Modify the construct: in-flight and available results are stale.
        c.apply_modification(BlockPos::new(0, 0, 0), None);
        let resolutions = drive(&mut b, &mut c, 100);
        // Immediately after the modification the server falls back to local
        // simulation (the old sequence is unusable).
        assert_eq!(resolutions[0], ScResolution::LocalSimulated);
        // And it recovers: offloaded results (fresh speculation or loop
        // replay of the re-simulated construct) take over again, with local
        // fallbacks limited to the re-invocation window.
        let local_after = resolutions
            .iter()
            .filter(|r| **r == ScResolution::LocalSimulated)
            .count();
        assert!(
            local_after < 20,
            "local fallbacks after modification: {local_after}"
        );
        assert!(resolutions.iter().any(|r| matches!(
            r,
            ScResolution::SpeculativeApplied | ScResolution::LoopReplayed
        )));
        assert_eq!(c.state().step(), 200);
    }

    #[test]
    fn higher_tick_lead_gives_higher_efficiency() {
        let run = |lead: u64| -> f64 {
            let config = SpeculationConfig {
                tick_lead: lead,
                simulation_steps: 100,
                loop_detection: false,
                ..SpeculationConfig::default()
            };
            let mut b = backend(config, 7);
            let mut c = Construct::new(generators::paper_medium());
            drive(&mut b, &mut c, 1200);
            b.handle().stats().median_efficiency().unwrap_or(0.0)
        };
        let none = run(0);
        let generous = run(40);
        assert!(generous > none, "lead 0: {none}, lead 40: {generous}");
        assert!(generous > 0.98, "lead 40 efficiency {generous}");
        assert!(none > 0.5, "lead 0 efficiency {none}");
    }

    #[test]
    fn work_model_matches_section_4g_shape() {
        let model = ScWorkModel::default();
        let small_rate = 1000.0 / model.work_per_step(252);
        let medium_rate = 1000.0 / model.work_per_step(484);
        // Small constructs simulate several times faster than medium ones,
        // and both are far above the 20 Hz game rate.
        assert!(small_rate > 3.0 * medium_rate);
        assert!(medium_rate > 20.0 * 5.0);
        assert!(
            small_rate > 400.0 && small_rate < 900.0,
            "rate {small_rate}"
        );
        assert!(
            medium_rate > 90.0 && medium_rate < 250.0,
            "rate {medium_rate}"
        );
    }

    #[test]
    fn stats_track_invocation_latency_and_rate() {
        let mut b = backend(SpeculationConfig::default(), 8);
        let mut c = Construct::new(generators::dense_circuit(64));
        drive(&mut b, &mut c, 400);
        let stats = b.handle().stats();
        assert!(!stats.invocation_latencies.is_empty());
        assert!(stats.invocations_per_minute(SimDuration::from_secs(20)) > 0.0);
        assert!(stats.median_efficiency().is_some());
        assert_eq!(
            stats.invocation_latencies.len(),
            stats.invocation_completions.len()
        );
    }
}

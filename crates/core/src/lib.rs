//! Servo: a serverless backend architecture for modifiable virtual
//! environments.
//!
//! This crate is the paper's primary contribution. It plugs three serverless
//! mechanisms into the MVE server substrate of `servo-server`:
//!
//! * **Replicated speculative execution for simulated constructs**
//!   ([`SpeculativeScBackend`], Section III-C): every construct is offloaded
//!   to a serverless function that simulates many steps ahead and returns a
//!   speculative state sequence. The server keeps simulating locally until
//!   the reply arrives, then switches to applying the precomputed states.
//!   A *tick lead* re-invokes the function before the current sequence runs
//!   out, and a loop-detection optimization lets the server replay cyclic
//!   constructs without any further invocations.
//! * **Serverless terrain generation** ([`FaasTerrainBackend`],
//!   Section III-D): chunk generation tasks are fanned out to FaaS, one
//!   invocation per chunk, with effectively unlimited concurrency.
//! * **Remote state storage with caching and pre-fetching**
//!   ([`RemoteTerrainStore`], Section III-E): terrain lives in serverless
//!   blob storage; a server-local cache plus a distance-based pre-fetch
//!   policy hides the storage latency variability from the game loop.
//!
//! [`ServoDeployment`] wires all of this together into a ready-to-run game
//! server, and exposes handles for inspecting speculation efficiency,
//! function latency, and billing after an experiment.
//!
//! # Example
//!
//! ```
//! use servo_core::ServoDeployment;
//! use servo_redstone::generators;
//! use servo_types::SimDuration;
//! use servo_workload::{BehaviorKind, PlayerFleet};
//! use servo_simkit::SimRng;
//!
//! let mut deployment = ServoDeployment::builder().seed(1).build();
//! deployment.server.add_constructs(10, |_| generators::dense_circuit(64));
//! let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(2));
//! fleet.connect_all(20);
//! deployment.server.run_with_fleet(&mut fleet, SimDuration::from_secs(5));
//! // Constructs were advanced mostly from offloaded speculative states.
//! assert!(deployment.server.stats().sc_merged + deployment.server.stats().sc_replayed > 0);
//! ```

#![warn(missing_docs)]

pub mod deployment;
pub mod speculative;
pub mod terrain;
pub mod terrain_store;

pub use deployment::{
    HybridDeployment, PersistenceConfig, PersistenceStats, ServoConfig, ServoDeployment,
};
pub use speculative::{
    ScWorkModel, SharedScPlatform, SpeculationConfig, SpeculationHandle, SpeculationStats,
    SpeculativeScBackend,
};
pub use terrain::{FaasTerrainBackend, TerrainOffloadHandle};
pub use terrain_store::{PrefetchPolicy, RemoteTerrainStore};

//! Wiring a complete Servo instance.

use servo_faas::{FaasPlatform, FunctionConfig};
use servo_pcg::{DefaultGenerator, FlatGenerator, TerrainGenerator};
use servo_server::{GameServer, ServerConfig};
use servo_simkit::SimRng;
use servo_types::MemoryMb;
use servo_world::WorldKind;

use crate::speculative::{SpeculationConfig, SpeculationHandle, SpeculativeScBackend};
use crate::terrain::{FaasTerrainBackend, TerrainOffloadHandle};

/// Configuration of a Servo deployment.
#[derive(Debug, Clone)]
pub struct ServoConfig {
    /// The game-server configuration (cost model, tick rate, view distance).
    pub server: ServerConfig,
    /// The speculative execution unit's configuration.
    pub speculation: SpeculationConfig,
    /// FaaS configuration of the SC-offloading function.
    pub sc_function: FunctionConfig,
    /// FaaS configuration of the terrain-generation function.
    pub generation_function: FunctionConfig,
    /// Seed for all random streams of the deployment.
    pub seed: u64,
}

impl Default for ServoConfig {
    fn default() -> Self {
        ServoConfig {
            server: ServerConfig::servo_base(),
            speculation: SpeculationConfig::default(),
            sc_function: FunctionConfig::aws_like(MemoryMb::new(2048)),
            generation_function: FunctionConfig::aws_like(MemoryMb::new(10240)),
            seed: 42,
        }
    }
}

/// Builder for [`ServoDeployment`].
#[derive(Debug, Clone, Default)]
pub struct ServoBuilder {
    config: ServoConfig,
}

impl ServoBuilder {
    /// Sets the random seed of the deployment.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the view distance of the game server, in blocks.
    pub fn view_distance(mut self, blocks: i32) -> Self {
        self.config.server.view_distance_blocks = blocks.max(0);
        self
    }

    /// Sets the world kind hosted by the instance.
    pub fn world_kind(mut self, kind: WorldKind) -> Self {
        self.config.server.world_kind = kind;
        self
    }

    /// Sets the speculation configuration.
    pub fn speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.config.speculation = speculation;
        self
    }

    /// Sets the FaaS configuration of the SC-offloading function.
    pub fn sc_function(mut self, function: FunctionConfig) -> Self {
        self.config.sc_function = function;
        self
    }

    /// Sets the FaaS configuration of the terrain-generation function.
    pub fn generation_function(mut self, function: FunctionConfig) -> Self {
        self.config.generation_function = function;
        self
    }

    /// Replaces the full server configuration.
    pub fn server_config(mut self, server: ServerConfig) -> Self {
        self.config.server = server;
        self
    }

    /// Builds the deployment.
    pub fn build(self) -> ServoDeployment {
        ServoDeployment::from_config(self.config)
    }
}

/// A complete Servo instance: the game server with Servo's serverless
/// backends plugged in, plus handles for inspecting the serverless side
/// after an experiment.
pub struct ServoDeployment {
    /// The running game server.
    pub server: GameServer,
    /// Handle to the speculative execution unit's statistics and billing.
    pub speculation: SpeculationHandle,
    /// Handle to the terrain-offloading statistics and billing.
    pub terrain: TerrainOffloadHandle,
    /// The configuration the deployment was built from.
    pub config: ServoConfig,
}

impl std::fmt::Debug for ServoDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServoDeployment")
            .field("server", &self.server)
            .field("seed", &self.config.seed)
            .finish()
    }
}

impl ServoDeployment {
    /// Starts building a deployment with default configuration.
    pub fn builder() -> ServoBuilder {
        ServoBuilder::default()
    }

    /// Builds a deployment from an explicit configuration.
    pub fn from_config(config: ServoConfig) -> Self {
        let rng = SimRng::seed(config.seed);

        let sc_platform = FaasPlatform::new(config.sc_function.clone(), rng.substream("sc-faas"));
        let sc_backend = SpeculativeScBackend::new(config.speculation, sc_platform);
        let speculation = sc_backend.handle();

        let generator: Box<dyn TerrainGenerator> = match config.server.world_kind {
            WorldKind::Flat => Box::new(FlatGenerator::default()),
            WorldKind::Default => Box::new(DefaultGenerator::new(config.seed)),
        };
        let generation_platform = FaasPlatform::new(
            config.generation_function.clone(),
            rng.substream("generation-faas"),
        );
        let terrain_backend = FaasTerrainBackend::new(generator, generation_platform);
        let terrain = terrain_backend.handle();

        let server = GameServer::new(
            config.server.clone(),
            Box::new(sc_backend),
            Box::new(terrain_backend),
            rng.substream("server"),
        );

        ServoDeployment {
            server,
            speculation,
            terrain,
            config,
        }
    }

    /// Builds the Opencraft baseline with the same world kind and view
    /// distance as this configuration would use — convenience for
    /// comparative experiments.
    pub fn opencraft_baseline(seed: u64, config: &ServerConfig) -> GameServer {
        Self::local_baseline(
            ServerConfig {
                costs: servo_server::CostModel::opencraft(),
                name: "Opencraft",
                ..config.clone()
            },
            seed,
        )
    }

    /// Builds the Minecraft baseline with the same world kind and view
    /// distance as this configuration would use.
    pub fn minecraft_baseline(seed: u64, config: &ServerConfig) -> GameServer {
        Self::local_baseline(
            ServerConfig {
                costs: servo_server::CostModel::minecraft(),
                name: "Minecraft",
                ..config.clone()
            },
            seed,
        )
    }

    fn local_baseline(config: ServerConfig, seed: u64) -> GameServer {
        let generator: Box<dyn TerrainGenerator> = match config.world_kind {
            WorldKind::Flat => Box::new(FlatGenerator::default()),
            WorldKind::Default => Box::new(DefaultGenerator::new(seed)),
        };
        let rng = SimRng::seed(seed);
        GameServer::new(
            config,
            Box::new(servo_server::LocalScBackend::every_other_tick()),
            Box::new(servo_server::LocalGenerationBackend::new(generator, 8)),
            rng.substream("server"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_redstone::generators;
    use servo_types::SimDuration;
    use servo_workload::{BehaviorKind, PlayerFleet};

    fn bounded_fleet(players: usize, seed: u64) -> PlayerFleet {
        let mut fleet =
            PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(seed));
        fleet.connect_all(players);
        fleet
    }

    #[test]
    fn deployment_runs_and_offloads() {
        let mut deployment = ServoDeployment::builder().seed(3).view_distance(32).build();
        deployment
            .server
            .add_constructs(20, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(30, 4);
        deployment
            .server
            .run_with_fleet(&mut fleet, SimDuration::from_secs(10));
        let stats = deployment.server.stats();
        // The overwhelming majority of construct-ticks are served from
        // offloaded results, not local simulation.
        assert!(stats.sc_merged + stats.sc_replayed > stats.sc_local * 3);
        assert!(deployment.speculation.stats().invocations > 0);
        // Terrain was generated through FaaS.
        assert!(deployment.terrain.stats().invocations > 0);
        assert!(deployment.server.world().loaded_chunks() > 0);
    }

    #[test]
    fn servo_beats_opencraft_with_many_constructs() {
        let constructs = 150usize;
        let players = 40usize;
        let seconds = 8u64;

        let mut servo = ServoDeployment::builder().seed(5).view_distance(32).build();
        servo
            .server
            .add_constructs(constructs, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(players, 6);
        servo
            .server
            .run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));

        let mut opencraft = ServoDeployment::opencraft_baseline(
            5,
            &ServerConfig::opencraft().with_view_distance(32),
        );
        opencraft.add_constructs(constructs, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(players, 6);
        opencraft.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));

        let mean = |s: &GameServer| {
            let d = s.tick_durations();
            d.iter().map(|x| x.as_millis_f64()).sum::<f64>() / d.len() as f64
        };
        assert!(
            mean(&servo.server) * 2.0 < mean(&opencraft),
            "servo {} vs opencraft {}",
            mean(&servo.server),
            mean(&opencraft)
        );
    }

    #[test]
    fn builder_options_are_applied() {
        let deployment = ServoDeployment::builder()
            .seed(9)
            .view_distance(64)
            .world_kind(WorldKind::Default)
            .speculation(SpeculationConfig {
                tick_lead: 5,
                ..SpeculationConfig::default()
            })
            .build();
        assert_eq!(deployment.config.seed, 9);
        assert_eq!(deployment.config.server.view_distance_blocks, 64);
        assert_eq!(deployment.config.speculation.tick_lead, 5);
        assert_eq!(deployment.server.config().name, "Servo");
    }

    #[test]
    fn baselines_share_world_settings() {
        let config = ServerConfig::minecraft().with_view_distance(48);
        let baseline = ServoDeployment::minecraft_baseline(1, &config);
        assert_eq!(baseline.config().view_distance_blocks, 48);
        assert_eq!(baseline.config().name, "Minecraft");
        let opencraft = ServoDeployment::opencraft_baseline(1, &config);
        assert_eq!(opencraft.config().name, "Opencraft");
    }
}

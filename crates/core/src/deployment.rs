//! Wiring a complete Servo instance.

use std::sync::Arc;

use parking_lot::Mutex;
use servo_faas::{AutoscalerConfig, FaasPlatform, FunctionConfig, PlatformConfig};
use servo_pcg::{DefaultGenerator, FlatGenerator, TerrainGenerator};
use servo_server::cluster::{
    BorderExchange, PersistenceBinding, ShardedGameCluster, ZonePersistenceStats,
};
use servo_server::multi::ClusterTick;
use servo_server::{GameServer, ServerConfig};
use servo_simkit::SimRng;
use servo_storage::{
    BlobStore, BlobTier, ChunkOutcome, ChunkRequest, ChunkService, PipelinedChunkService,
};
use servo_types::{MemoryMb, SimDuration, SimTime};
use servo_workload::PlayerFleet;
use servo_world::{required_chunks, WorldKind};

use crate::speculative::{
    SharedScPlatform, SpeculationConfig, SpeculationHandle, SpeculationStats, SpeculativeScBackend,
};
use crate::terrain::{FaasTerrainBackend, TerrainOffloadHandle};

/// Configuration of the deployment's persistence pipeline: the
/// [`PipelinedChunkService`] that prefetches terrain from and writes dirty
/// terrain back to serverless blob storage while the game loop runs.
#[derive(Debug, Clone)]
pub struct PersistenceConfig {
    /// Game ticks between write-back (and prefetch) passes.
    pub write_back_interval: u64,
    /// The blob-storage tier terrain persists to.
    pub tier: BlobTier,
    /// When set, the pipeline's disk-worker pool follows this autoscaler
    /// instead of staying at the server's static parallelism. Elasticity is
    /// wall-clock-only — simulated outcomes are identical either way — so
    /// the static default keeps existing baselines byte-stable.
    pub elastic_workers: Option<AutoscalerConfig>,
}

impl Default for PersistenceConfig {
    fn default() -> Self {
        PersistenceConfig {
            // One pass per simulated second at the 20 Hz tick rate.
            write_back_interval: 20,
            tier: BlobTier::Standard,
            elastic_workers: None,
        }
    }
}

impl PersistenceConfig {
    /// Lets the pipeline's worker pool scale with its submission backlog.
    pub fn with_elastic_workers(mut self, config: AutoscalerConfig) -> Self {
        self.elastic_workers = Some(config);
        self
    }
}

/// Counters of the deployment's persistence pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistenceStats {
    /// Write-back passes completed by the pipeline.
    pub write_back_passes: u64,
    /// Dirty chunks flushed to remote storage.
    pub chunks_flushed: u64,
    /// Chunks staged back into the cache by prefetch arrivals.
    pub prefetch_arrivals: u64,
}

impl servo_metrics::StatsReport for PersistenceStats {
    fn section(&self) -> &'static str {
        "persistence"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("write_back_passes", self.write_back_passes.to_string()),
            ("chunks_flushed", self.chunks_flushed.to_string()),
            ("prefetch_arrivals", self.prefetch_arrivals.to_string()),
        ]
    }
}

/// Configuration of a Servo deployment.
#[derive(Debug, Clone)]
pub struct ServoConfig {
    /// The game-server configuration (cost model, tick rate, view distance).
    pub server: ServerConfig,
    /// The speculative execution unit's configuration.
    pub speculation: SpeculationConfig,
    /// FaaS configuration of the SC-offloading function.
    pub sc_function: FunctionConfig,
    /// FaaS configuration of the terrain-generation function.
    pub generation_function: FunctionConfig,
    /// Platform friction (provisioning delay, keep-alive, queueing) of the
    /// SC-offloading function. The frictionless default reproduces the
    /// pre-platform-model behaviour exactly.
    pub sc_platform: PlatformConfig,
    /// Platform friction of the terrain-generation function.
    pub generation_platform: PlatformConfig,
    /// The persistence pipeline configuration; `None` disables remote
    /// persistence (terrain lives only in server memory, the seed
    /// behaviour).
    pub persistence: Option<PersistenceConfig>,
    /// How hybrid clusters built from this configuration exchange
    /// border-construct state across zone seams (ignored by single-server
    /// and classic zoned deployments). The batched default keeps existing
    /// hybrid baselines byte-stable; [`BorderExchange::Speculative`]
    /// ships per-construct sequence handles instead of eager state.
    pub border_exchange: BorderExchange,
    /// Seed for all random streams of the deployment.
    pub seed: u64,
}

impl Default for ServoConfig {
    fn default() -> Self {
        ServoConfig {
            server: ServerConfig::servo_base(),
            speculation: SpeculationConfig::default(),
            sc_function: FunctionConfig::aws_like(MemoryMb::new(2048)),
            generation_function: FunctionConfig::aws_like(MemoryMb::new(10240)),
            sc_platform: PlatformConfig::frictionless(),
            generation_platform: PlatformConfig::frictionless(),
            persistence: Some(PersistenceConfig::default()),
            border_exchange: BorderExchange::Batched,
            seed: 42,
        }
    }
}

/// Builder for [`ServoDeployment`].
#[derive(Debug, Clone, Default)]
pub struct ServoBuilder {
    config: ServoConfig,
}

impl ServoBuilder {
    /// Sets the random seed of the deployment.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the view distance of the game server, in blocks.
    pub fn view_distance(mut self, blocks: i32) -> Self {
        self.config.server.view_distance_blocks = blocks.max(0);
        self
    }

    /// Sets the world kind hosted by the instance.
    pub fn world_kind(mut self, kind: WorldKind) -> Self {
        self.config.server.world_kind = kind;
        self
    }

    /// Sets the speculation configuration.
    pub fn speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.config.speculation = speculation;
        self
    }

    /// Sets the FaaS configuration of the SC-offloading function.
    pub fn sc_function(mut self, function: FunctionConfig) -> Self {
        self.config.sc_function = function;
        self
    }

    /// Sets the FaaS configuration of the terrain-generation function.
    pub fn generation_function(mut self, function: FunctionConfig) -> Self {
        self.config.generation_function = function;
        self
    }

    /// Sets the platform friction of the SC-offloading function.
    pub fn sc_platform(mut self, platform: PlatformConfig) -> Self {
        self.config.sc_platform = platform;
        self
    }

    /// Sets the platform friction of the terrain-generation function.
    pub fn generation_platform(mut self, platform: PlatformConfig) -> Self {
        self.config.generation_platform = platform;
        self
    }

    /// Replaces the full server configuration.
    pub fn server_config(mut self, server: ServerConfig) -> Self {
        self.config.server = server;
        self
    }

    /// Sets (or, with `None`, disables) the persistence pipeline
    /// configuration.
    pub fn persistence(mut self, persistence: Option<PersistenceConfig>) -> Self {
        self.config.persistence = persistence;
        self
    }

    /// Sets how hybrid clusters exchange border-construct state across
    /// zone seams (defaults to [`BorderExchange::Batched`]).
    pub fn border_exchange(mut self, exchange: BorderExchange) -> Self {
        self.config.border_exchange = exchange;
        self
    }

    /// Builds the deployment.
    pub fn build(self) -> ServoDeployment {
        ServoDeployment::from_config(self.config)
    }

    /// Builds a *zoned* cluster instead of a single Servo instance: the
    /// classic scale-out alternative the ablation compares against. See
    /// [`ServoDeployment::zoned`].
    pub fn zoned(self, zones: usize) -> ShardedGameCluster {
        ServoDeployment::zoned_cluster(self.config, zones)
    }

    /// Builds a *hybrid* zoned+offloading cluster: zoning for players and
    /// terrain, serverless offloading for constructs, per-zone persistence.
    /// See [`HybridDeployment`].
    pub fn hybrid(self, zones: usize) -> HybridDeployment {
        HybridDeployment::from_config(self.config, zones)
    }
}

/// A complete Servo instance: the game server with Servo's serverless
/// backends plugged in, plus handles for inspecting the serverless side
/// after an experiment.
pub struct ServoDeployment {
    /// The running game server.
    pub server: GameServer,
    /// Handle to the speculative execution unit's statistics and billing.
    pub speculation: SpeculationHandle,
    /// Handle to the terrain-offloading statistics and billing.
    pub terrain: TerrainOffloadHandle,
    /// The configuration the deployment was built from.
    pub config: ServoConfig,
    /// The persistence pipeline, bound to the server's world so per-shard
    /// dirty deltas flow into write-back (Section III-E). Driven by
    /// [`ServoDeployment::run_with_fleet`].
    persistence: Option<PipelinedChunkService<BlobStore>>,
    persistence_stats: PersistenceStats,
}

impl std::fmt::Debug for ServoDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServoDeployment")
            .field("server", &self.server)
            .field("seed", &self.config.seed)
            .finish()
    }
}

impl ServoDeployment {
    /// Starts building a deployment with default configuration.
    pub fn builder() -> ServoBuilder {
        ServoBuilder::default()
    }

    /// Builds a deployment from an explicit configuration.
    pub fn from_config(config: ServoConfig) -> Self {
        let rng = SimRng::seed(config.seed);

        let sc_platform = FaasPlatform::with_platform_config(
            config.sc_function.clone(),
            config.sc_platform,
            rng.substream("sc-faas"),
        );
        let sc_backend = SpeculativeScBackend::new(config.speculation, sc_platform);
        let speculation = sc_backend.handle();

        let generator: Box<dyn TerrainGenerator> = match config.server.world_kind {
            WorldKind::Flat => Box::new(FlatGenerator::default()),
            WorldKind::Default => Box::new(DefaultGenerator::new(config.seed)),
        };
        let generation_platform = FaasPlatform::with_platform_config(
            config.generation_function.clone(),
            config.generation_platform,
            rng.substream("generation-faas"),
        );
        let terrain_backend = FaasTerrainBackend::new(generator, generation_platform);
        let terrain = terrain_backend.handle();

        let server = GameServer::new(
            config.server.clone(),
            Box::new(sc_backend),
            Box::new(terrain_backend),
            rng.substream("server"),
        );

        let persistence = config.persistence.as_ref().map(|p| {
            let remote = BlobStore::new(p.tier, rng.substream("persistence-blob"));
            let service = PipelinedChunkService::new(
                remote,
                rng.substream("persistence-disk"),
                config.server.parallelism.max(1),
            );
            let service = match p.elastic_workers {
                Some(scaler) => service.with_elastic_workers(scaler),
                None => service,
            };
            service.with_world(server.world_handle())
        });

        ServoDeployment {
            server,
            speculation,
            terrain,
            config,
            persistence,
            persistence_stats: PersistenceStats::default(),
        }
    }

    /// Builds a *zoned* cluster from this configuration: `zones` real game
    /// servers sharing the configured cost model, view distance and world
    /// kind, each wired its own per-zone [`ChunkService`] generation
    /// backend and restricted to its own slice of world shards. Constructs
    /// are simulated locally per zone (every other tick, as the production
    /// baselines do) — zoning is the classic alternative to Servo's
    /// offloading, which is exactly the comparison the multiserver
    /// ablation runs on [`ShardedGameCluster::baseline`].
    #[deprecated(
        since = "0.1.0",
        note = "construct through `ServoDeployment::builder().zoned(n)`; the free-standing \
                constructor will be removed next release"
    )]
    pub fn zoned(config: ServoConfig, zones: usize) -> ShardedGameCluster {
        Self::zoned_cluster(config, zones)
    }

    /// The builder's zoned construction path ([`ServoBuilder::zoned`]).
    fn zoned_cluster(config: ServoConfig, zones: usize) -> ShardedGameCluster {
        ShardedGameCluster::baseline(config.server.clone(), zones, config.seed)
    }

    /// Counters of the persistence pipeline (all zero when persistence is
    /// disabled or the deployment is driven through the bare server).
    pub fn persistence_stats(&self) -> PersistenceStats {
        self.persistence_stats
    }

    /// Runs `f` against the persistence pipeline's remote blob store, e.g.
    /// to inspect what has been persisted. Returns `None` when persistence
    /// is disabled.
    pub fn with_persisted<T>(&self, f: impl FnOnce(&mut BlobStore) -> T) -> Option<T> {
        self.persistence.as_ref().map(|p| p.with_remote(f))
    }

    /// Drives the server with a player fleet for `duration` of virtual
    /// time — like [`GameServer::run_with_fleet`] — while also driving the
    /// persistence pipeline: every
    /// [`PersistenceConfig::write_back_interval`] ticks the deployment
    /// prefetches the terrain the fleet currently needs and flushes dirty
    /// shards to blob storage, all through the measured
    /// [`PipelinedChunkService`] rather than ad-hoc storage calls.
    pub fn run_with_fleet(
        &mut self,
        fleet: &mut PlayerFleet,
        duration: SimDuration,
    ) -> Vec<servo_server::TickReport> {
        let end = self.server.now() + duration;
        let tick_budget = self.server.config().tick_budget();
        let parallelism = self.server.config().parallelism.max(1);
        let interval = self
            .config
            .persistence
            .as_ref()
            .map(|p| p.write_back_interval.max(1))
            .unwrap_or(u64::MAX);
        let view_distance = self.server.config().view_distance_blocks;
        let mut reports = Vec::new();
        let mut ticks_since_pass = 0u64;
        while self.server.now() < end {
            let now = self.server.now();
            let events = if parallelism > 1 {
                fleet.tick_parallel(now, tick_budget, parallelism)
            } else {
                fleet.tick(now, tick_budget)
            };
            let positions = fleet.positions();
            reports.push(self.server.run_tick(&positions, &events));
            if let Some(service) = self.persistence.as_mut() {
                let now = self.server.now();
                ticks_since_pass += 1;
                if ticks_since_pass >= interval {
                    ticks_since_pass = 0;
                    service.submit(ChunkRequest::prefetch(required_chunks(
                        &positions,
                        view_distance,
                    )));
                    service.submit(ChunkRequest::write_back());
                }
                for completion in service.poll(now) {
                    match completion.outcome {
                        ChunkOutcome::WroteBack { chunks } => {
                            self.persistence_stats.write_back_passes += 1;
                            self.persistence_stats.chunks_flushed += chunks as u64;
                        }
                        ChunkOutcome::Loaded { .. } => {
                            self.persistence_stats.prefetch_arrivals += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        reports
    }

    /// Flushes all remaining dirty terrain through the persistence
    /// pipeline and waits for the pass to complete. Returns the number of
    /// chunks written, or zero when persistence is disabled.
    pub fn flush_persistence(&mut self) -> u64 {
        let Some(service) = self.persistence.as_mut() else {
            return 0;
        };
        let now = self.server.now();
        let ticket = service.submit(ChunkRequest::write_back());
        let mut flushed = 0u64;
        // The pass runs on the pipeline's worker pool; poll until its
        // completion surfaces (completions are published before the
        // pending count drops, so this terminates).
        loop {
            let mut done = false;
            for completion in service.poll(now) {
                match completion.outcome {
                    ChunkOutcome::WroteBack { chunks } => {
                        self.persistence_stats.write_back_passes += 1;
                        self.persistence_stats.chunks_flushed += chunks as u64;
                        if completion.ticket == ticket {
                            flushed = chunks as u64;
                            done = true;
                        }
                    }
                    ChunkOutcome::Loaded { .. } => {
                        self.persistence_stats.prefetch_arrivals += 1;
                    }
                    _ => {}
                }
            }
            if done {
                return flushed;
            }
            std::thread::yield_now();
        }
    }

    /// Builds the Opencraft baseline with the same world kind and view
    /// distance as this configuration would use — convenience for
    /// comparative experiments.
    pub fn opencraft_baseline(seed: u64, config: &ServerConfig) -> GameServer {
        Self::local_baseline(
            ServerConfig {
                costs: servo_server::CostModel::opencraft(),
                name: "Opencraft",
                ..config.clone()
            },
            seed,
        )
    }

    /// Builds the Minecraft baseline with the same world kind and view
    /// distance as this configuration would use.
    pub fn minecraft_baseline(seed: u64, config: &ServerConfig) -> GameServer {
        Self::local_baseline(
            ServerConfig {
                costs: servo_server::CostModel::minecraft(),
                name: "Minecraft",
                ..config.clone()
            },
            seed,
        )
    }

    fn local_baseline(config: ServerConfig, seed: u64) -> GameServer {
        let generator: Box<dyn TerrainGenerator> = match config.world_kind {
            WorldKind::Flat => Box::new(FlatGenerator::default()),
            WorldKind::Default => Box::new(DefaultGenerator::new(seed)),
        };
        let rng = SimRng::seed(seed);
        GameServer::new(
            config,
            Box::new(servo_server::LocalScBackend::every_other_tick()),
            Box::new(servo_server::LocalGenerationBackend::new(generator, 8)),
            rng.substream("server"),
        )
    }
}

/// A hybrid zoned+offloading deployment — the configuration operators
/// would actually run (argued by the paper's extended technical report):
/// the world is partitioned over `zones` real game servers (zoning handles
/// players and terrain locality), while **every** zone plugs in Servo's
/// serverless backends — a [`SpeculativeScBackend`] over one *shared* FaaS
/// platform (cluster-level concurrency limits and billing), a per-zone
/// FaaS terrain-generation service, and a per-zone persistence pipeline
/// flushing exactly the zone's owned world shards to blob storage.
///
/// Border-construct state crosses zone seams in *batched* form
/// ([`BorderExchange::Batched`]) by default: offloaded speculative
/// sequences make construct states available as precomputed bundles, so
/// each (owner, neighbour) server pair exchanges one bundle per simulated
/// tick instead of one round-trip per construct — which is what lets the
/// hybrid stay within QoS on border-construct workloads where classic
/// zoning collapses (measured by `ablation_hybrid`).
/// [`ServoBuilder::border_exchange`] switches the cluster to the
/// speculation-aware handle exchange ([`BorderExchange::Speculative`]):
/// neighbours replay published sequences from the shared substrate and
/// the seam only carries per-construct handles on invalidation (measured
/// by `ablation_border`).
///
/// A 1-zone hybrid derives exactly the random streams of the single
/// [`ServoDeployment`], so it is tick-for-tick — and persisted-byte-for-
/// byte — identical to it (asserted by the `hybrid_equivalence` suite).
pub struct HybridDeployment {
    /// The running cluster (drive it with
    /// [`ShardedGameCluster::run_with_fleet`] or
    /// [`HybridDeployment::run_with_fleet`]).
    pub cluster: ShardedGameCluster,
    /// Per-zone handles to the speculative execution units' statistics.
    pub speculation: Vec<SpeculationHandle>,
    /// Per-zone handles to the terrain-offloading statistics.
    pub terrain: Vec<TerrainOffloadHandle>,
    /// The configuration the deployment was built from.
    pub config: ServoConfig,
    sc_platform: SharedScPlatform,
}

impl std::fmt::Debug for HybridDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridDeployment")
            .field("zones", &self.cluster.zones())
            .field("seed", &self.config.seed)
            .finish()
    }
}

impl HybridDeployment {
    /// Builds a hybrid deployment from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is zero.
    pub fn from_config(config: ServoConfig, zones: usize) -> Self {
        assert!(zones > 0, "a hybrid deployment needs at least one zone");
        let root = SimRng::seed(config.seed);
        // One platform for the SC-offload function, shared by every zone:
        // concurrency limits, the warm-container pool and the billing
        // meter are cluster-level, as for a real shared function
        // deployment.
        let sc_platform: SharedScPlatform =
            Arc::new(Mutex::new(FaasPlatform::with_platform_config(
                config.sc_function.clone(),
                config.sc_platform,
                root.substream("sc-faas"),
            )));
        // A 1-zone hybrid *is* the single Servo deployment: derive the same
        // streams `ServoDeployment::from_config` uses, so the equivalence
        // is exact. Multi-zone deployments give every zone its own
        // substream family.
        let zone_rng = |zone: usize| {
            if zones == 1 {
                root.clone()
            } else {
                root.substream_indexed("zone", zone as u64)
            }
        };
        let mut speculation = Vec::with_capacity(zones);
        let mut terrain = Vec::with_capacity(zones);
        let mut cluster = ShardedGameCluster::new(zones, |zone| {
            let rng = zone_rng(zone);
            let sc_backend =
                SpeculativeScBackend::over(config.speculation, Arc::clone(&sc_platform));
            speculation.push(sc_backend.handle());
            let generator: Box<dyn TerrainGenerator> = match config.server.world_kind {
                WorldKind::Flat => Box::new(FlatGenerator::default()),
                WorldKind::Default => Box::new(DefaultGenerator::new(config.seed)),
            };
            let generation_platform = FaasPlatform::with_platform_config(
                config.generation_function.clone(),
                config.generation_platform,
                rng.substream("generation-faas"),
            );
            let terrain_backend = FaasTerrainBackend::new(generator, generation_platform);
            terrain.push(terrain_backend.handle());
            GameServer::new(
                config.server.clone(),
                Box::new(sc_backend),
                Box::new(terrain_backend),
                rng.substream("server"),
            )
        })
        .with_border_exchange(config.border_exchange);
        if let Some(persistence) = &config.persistence {
            for zone in 0..zones {
                let rng = zone_rng(zone);
                let mut binding = PersistenceBinding::new(
                    BlobStore::new(persistence.tier, rng.substream("persistence-blob")),
                    rng.substream("persistence-disk"),
                )
                .write_back_interval(persistence.write_back_interval);
                // The builder's elastic_workers knob reaches zoned
                // pipelines too (elasticity only changes wall-clock
                // throughput, never simulated outcomes, so the `None`
                // default keeps committed baselines byte-stable).
                if let Some(scaler) = persistence.elastic_workers {
                    binding = binding.elastic(scaler);
                }
                cluster.bind_persistence(zone, binding);
            }
        }
        HybridDeployment {
            cluster,
            speculation,
            terrain,
            config,
            sc_platform,
        }
    }

    /// Enables dynamic zone rebalancing on the underlying cluster. The
    /// hybrid's speculative backends survive mid-run ownership changes:
    /// when a shard migration moves a construct to another zone's server,
    /// the source zone's `SpeculativeScBackend` releases its in-flight
    /// speculation (counted as `discarded_migrated`) and the destination
    /// zone re-establishes speculation from the construct's live state —
    /// over the same shared platform, so billing and concurrency stay
    /// cluster-level.
    pub fn enable_rebalancing(&mut self, policy: servo_world::RebalancePolicy) {
        self.cluster.enable_rebalancing(policy);
    }

    /// Schedules zone `zone` to crash at the start of cluster tick
    /// `tick`. The hybrid survives the crash: the substrate abandons the
    /// dead zone's in-flight speculation, its persistence pipeline is
    /// fenced, and the surviving zones adopt its shards — rebuilding
    /// terrain from the dead zone's remote store plus its write-ahead
    /// log and re-homing its constructs (see
    /// [`ShardedGameCluster::crash_zone`]).
    pub fn crash_zone(&mut self, zone: usize, tick: u64) {
        self.cluster.crash_zone(zone, tick);
    }

    /// Lifetime counters of the crash-recovery machinery.
    pub fn recovery_stats(&self) -> servo_server::RecoveryStats {
        self.cluster.recovery_stats()
    }

    /// Drives the cluster with a player fleet for `duration` of virtual
    /// time (persistence is driven inside the cluster tick).
    pub fn run_with_fleet(
        &mut self,
        fleet: &mut PlayerFleet,
        duration: SimDuration,
    ) -> Vec<ClusterTick> {
        self.cluster.run_with_fleet(fleet, duration)
    }

    /// Flushes all remaining dirty terrain of every zone and returns the
    /// number of chunks written.
    pub fn flush_persistence(&mut self) -> u64 {
        self.cluster.flush_persistence()
    }

    /// The persistence counters summed over all zones.
    pub fn persistence_stats(&self) -> ZonePersistenceStats {
        self.cluster.persistence_stats_total()
    }

    /// The speculation statistics merged over all zones.
    pub fn speculation_stats_total(&self) -> SpeculationStats {
        let mut total = SpeculationStats::default();
        for handle in &self.speculation {
            total.merge(&handle.stats());
        }
        total
    }

    /// The cluster-level billing meter of the shared SC-offload function.
    pub fn sc_billing(&self) -> servo_faas::BillingMeter {
        self.sc_platform.lock().billing().clone()
    }

    /// The cluster-level platform statistics of the shared SC-offload
    /// function (invocations, cold starts, peak concurrency).
    pub fn sc_platform_stats(&self) -> servo_faas::PlatformStats {
        self.sc_platform.lock().stats()
    }

    /// The cluster-level billing meter as it reads at `now`, including the
    /// warm-idle time accrued by containers the keep-alive policy holds
    /// open.
    pub fn sc_billing_at(&self, now: SimTime) -> servo_faas::BillingMeter {
        self.sc_platform.lock().billing_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_redstone::generators;
    use servo_storage::ObjectStore;
    use servo_types::SimDuration;
    use servo_workload::{BehaviorKind, PlayerFleet};

    fn bounded_fleet(players: usize, seed: u64) -> PlayerFleet {
        let mut fleet =
            PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(seed));
        fleet.connect_all(players);
        fleet
    }

    #[test]
    fn deployment_runs_and_offloads() {
        let mut deployment = ServoDeployment::builder().seed(3).view_distance(32).build();
        deployment
            .server
            .add_constructs(20, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(30, 4);
        deployment
            .server
            .run_with_fleet(&mut fleet, SimDuration::from_secs(10));
        let stats = deployment.server.stats();
        // The overwhelming majority of construct-ticks are served from
        // offloaded results, not local simulation.
        assert!(stats.sc_merged + stats.sc_replayed > stats.sc_local * 3);
        assert!(deployment.speculation.stats().invocations > 0);
        // Terrain was generated through FaaS.
        assert!(deployment.terrain.stats().invocations > 0);
        assert!(deployment.server.world().loaded_chunks() > 0);
    }

    #[test]
    fn servo_beats_opencraft_with_many_constructs() {
        let constructs = 150usize;
        let players = 40usize;
        let seconds = 8u64;

        let mut servo = ServoDeployment::builder().seed(5).view_distance(32).build();
        servo
            .server
            .add_constructs(constructs, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(players, 6);
        servo
            .server
            .run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));

        let mut opencraft = ServoDeployment::opencraft_baseline(
            5,
            &ServerConfig::opencraft().with_view_distance(32),
        );
        opencraft.add_constructs(constructs, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(players, 6);
        opencraft.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));

        let mean = |s: &GameServer| {
            let d = s.tick_durations();
            d.iter().map(|x| x.as_millis_f64()).sum::<f64>() / d.len() as f64
        };
        assert!(
            mean(&servo.server) * 2.0 < mean(&opencraft),
            "servo {} vs opencraft {}",
            mean(&servo.server),
            mean(&opencraft)
        );
    }

    #[test]
    fn persistence_pipeline_flushes_player_edits() {
        let mut deployment = ServoDeployment::builder()
            .seed(11)
            .view_distance(32)
            .build();
        let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(12));
        fleet.connect_all(10);
        deployment.run_with_fleet(&mut fleet, SimDuration::from_secs(10));
        deployment.flush_persistence();
        let stats = deployment.persistence_stats();
        assert!(stats.write_back_passes > 0, "no write-back pass ran");
        assert!(stats.chunks_flushed > 0, "no dirty chunk reached storage");
        let persisted = deployment.with_persisted(|remote| remote.len()).unwrap();
        assert!(persisted > 0, "remote blob store is empty");
        // A second flush with no new edits writes nothing further.
        assert_eq!(deployment.flush_persistence(), 0);
    }

    #[test]
    fn persistence_can_be_disabled() {
        let mut deployment = ServoDeployment::builder()
            .seed(13)
            .view_distance(32)
            .persistence(None)
            .build();
        let mut fleet = bounded_fleet(5, 14);
        let reports = deployment.run_with_fleet(&mut fleet, SimDuration::from_secs(2));
        assert!(!reports.is_empty());
        assert_eq!(deployment.flush_persistence(), 0);
        assert_eq!(deployment.persistence_stats(), PersistenceStats::default());
        assert!(deployment.with_persisted(|remote| remote.len()).is_none());
    }

    #[test]
    fn hybrid_offloads_constructs_and_batches_border_exchanges() {
        use servo_server::cluster::{border_construct_sites, place_across_east_seam};

        let mut hybrid = ServoDeployment::builder()
            .seed(51)
            .view_distance(32)
            .hybrid(4);
        assert_eq!(hybrid.cluster.border_exchange(), BorderExchange::Batched);
        assert_eq!(hybrid.cluster.zones(), 4);
        // A fleet of border-spanning constructs: far more constructs than
        // (owner, neighbour) zone pairs, which is where batching wins.
        let sites = border_construct_sites(hybrid.cluster.shard_map(), 40);
        for site in &sites {
            hybrid.cluster.add_construct(place_across_east_seam(
                &generators::wire_line(14),
                *site,
                6,
            ));
        }
        assert_eq!(hybrid.cluster.border_construct_count(), 40);
        let mut fleet = bounded_fleet(8, 52);
        hybrid.run_with_fleet(&mut fleet, SimDuration::from_secs(6));

        // Constructs are served from offloaded results, not local stepping.
        let stats = hybrid.cluster.server_stats_total();
        assert!(
            stats.sc_merged + stats.sc_replayed > stats.sc_local,
            "offloading never took over: local {} merged {} replayed {}",
            stats.sc_local,
            stats.sc_merged,
            stats.sc_replayed
        );
        // Batched exchange: messages stay far below the two-per-exchange
        // cost the per-construct baseline pays.
        let cluster_stats = hybrid.cluster.stats();
        assert!(cluster_stats.construct_exchanges > 0);
        assert!(
            cluster_stats.cross_server_messages < cluster_stats.construct_exchanges * 2,
            "batching never paid off: {} messages for {} exchanges",
            cluster_stats.cross_server_messages,
            cluster_stats.construct_exchanges
        );
        // The shared platform meters the union of all zones' invocations.
        let per_zone: u64 = (0..4)
            .map(|zone| hybrid.speculation[zone].stats().invocations)
            .sum();
        assert!(per_zone > 0);
        assert_eq!(hybrid.sc_platform_stats().invocations, per_zone);
        assert_eq!(hybrid.sc_billing().invocations(), per_zone);
        assert_eq!(hybrid.speculation_stats_total().invocations, per_zone);
    }

    #[test]
    fn hybrid_speculation_survives_mid_run_ownership_changes() {
        use servo_server::cluster::zone_hotspot_sites;
        use servo_types::{BlockPos, SimTime};
        use servo_workload::Hotspot;
        use servo_world::{RebalanceConfig, RebalancePolicy};

        let mut hybrid = ServoDeployment::builder()
            .seed(83)
            .view_distance(32)
            .hybrid(4);
        hybrid.enable_rebalancing(RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 10,
            evaluate_every: 5,
            cooldown_ticks: 20,
            trigger_ratio: 1.2,
            min_gap_ms: 0.5,
            max_migrations_per_step: 8,
            ..RebalanceConfig::default()
        }));
        // Constructs inside the future-hot chunks: their speculation is in
        // flight on zone 0's backend when the migration moves them away.
        let sites = zone_hotspot_sites(hybrid.cluster.shard_map(), 0, 4);
        for site in &sites {
            let base = site.min_block() + BlockPos::new(2, 6, 2);
            hybrid
                .cluster
                .add_construct(generators::dense_circuit(48).translated(base));
        }
        let mut fleet = bounded_fleet(40, 84);
        fleet.set_hotspot(Hotspot {
            targets: Hotspot::chunk_centers(&sites),
            converge_at: SimTime::from_secs(2),
            disperse_at: SimTime::from_secs(3_600),
            travel_speed: 24.0,
            dwell_radius: 4.0,
        });
        hybrid.run_with_fleet(&mut fleet, SimDuration::from_secs(12));

        let rebalance = hybrid.cluster.rebalance_stats();
        assert!(
            rebalance.constructs_transferred > 0,
            "no construct ever migrated: {rebalance:?}"
        );
        // Speculation kept working across the ownership change: constructs
        // are still overwhelmingly served from offloaded results, and the
        // shared platform's meter still matches the per-zone sum.
        let stats = hybrid.cluster.server_stats_total();
        assert!(
            stats.sc_merged + stats.sc_replayed > stats.sc_local,
            "offloading never recovered after migration: {stats:?}"
        );
        let speculation = hybrid.speculation_stats_total();
        assert_eq!(
            hybrid.sc_platform_stats().invocations,
            speculation.invocations
        );
        // Every registered construct is still simulated by exactly one
        // server — none was lost or duplicated by the handoff.
        for index in 0..hybrid.cluster.construct_count() {
            let (zone, id) = hybrid
                .cluster
                .construct_location(index)
                .expect("registered construct");
            assert!(
                hybrid.cluster.server(zone).construct(id).is_some(),
                "construct {index} missing from zone {zone} after migration"
            );
        }
    }

    #[test]
    fn zoned_builder_produces_a_restricted_cluster() {
        let cluster = ServoDeployment::builder()
            .seed(15)
            .view_distance(32)
            .zoned(4);
        assert_eq!(cluster.zones(), 4);
        for (zone, server) in cluster.servers().iter().enumerate() {
            assert_eq!(server.zone(), Some(zone));
            assert_eq!(server.config().view_distance_blocks, 32);
        }
    }

    #[test]
    fn builder_options_are_applied() {
        let deployment = ServoDeployment::builder()
            .seed(9)
            .view_distance(64)
            .world_kind(WorldKind::Default)
            .speculation(SpeculationConfig {
                tick_lead: 5,
                ..SpeculationConfig::default()
            })
            .build();
        assert_eq!(deployment.config.seed, 9);
        assert_eq!(deployment.config.server.view_distance_blocks, 64);
        assert_eq!(deployment.config.speculation.tick_lead, 5);
        assert_eq!(deployment.server.config().name, "Servo");
    }

    #[test]
    fn baselines_share_world_settings() {
        let config = ServerConfig::minecraft().with_view_distance(48);
        let baseline = ServoDeployment::minecraft_baseline(1, &config);
        assert_eq!(baseline.config().view_distance_blocks, 48);
        assert_eq!(baseline.config().name, "Minecraft");
        let opencraft = ServoDeployment::opencraft_baseline(1, &config);
        assert_eq!(opencraft.config().name, "Opencraft");
    }
}

//! Frictionless-platform equivalence: a deployment whose [`PlatformConfig`]
//! has zero provisioning delay, an effectively infinite keep-alive, and no
//! container cap or queue must reproduce the default deployment exactly —
//! tick durations, speculation and platform stats, billing, and persisted
//! world bytes. This is the guarantee that lets the platform model ride
//! along without perturbing any committed baseline.
//!
//! The converse sanity check: a platform *with* friction visibly changes
//! behaviour (provisioning delays surface in latency, short keep-alives
//! expire containers), so the equivalence above is not vacuous.

use std::collections::BTreeMap;

use servo_core::ServoDeployment;
use servo_faas::PlatformConfig;
use servo_simkit::SimRng;
use servo_storage::ObjectStore;
use servo_types::{ChunkPos, SimDuration, SimTime};
use servo_workload::{BehaviorKind, PlayerFleet};

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

fn key(pos: ChunkPos) -> String {
    format!("terrain/{}/{}", pos.x, pos.z)
}

/// Runs a deployment for `seconds` with a deterministic fleet and the
/// standard construct mix, then flushes persistence.
fn run(mut deployment: ServoDeployment, seconds: u64) -> ServoDeployment {
    deployment
        .server
        .add_constructs(6, |i| servo_redstone::generators::dense_circuit(32 + i * 7));
    let mut fleet = random_fleet(8, 77);
    deployment.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));
    deployment.flush_persistence();
    deployment
}

fn persisted_bytes(deployment: &ServoDeployment) -> BTreeMap<String, Vec<u8>> {
    let positions = deployment.server.world().loaded_positions();
    let late = SimTime::from_secs(10_000);
    deployment
        .with_persisted(|remote| {
            positions
                .iter()
                .filter_map(|&pos| {
                    remote
                        .read(&key(pos), late)
                        .ok()
                        .map(|r| (key(pos), r.data))
                })
                .collect()
        })
        .expect("deployment persists")
}

#[test]
fn frictionless_platform_reproduces_default_deployment_exactly() {
    let baseline = run(
        ServoDeployment::builder()
            .seed(57)
            .view_distance(32)
            .build(),
        8,
    );

    // Explicitly spelled-out frictionless platform, including a keep-alive
    // budget far beyond the run length (the "infinite keep-alive" arm):
    // within any finite run it must be indistinguishable from the default.
    let frictionless =
        PlatformConfig::frictionless().with_keep_alive(SimDuration::from_secs(1_000_000));
    let explicit = run(
        ServoDeployment::builder()
            .seed(57)
            .view_distance(32)
            .sc_platform(frictionless)
            .generation_platform(frictionless)
            .build(),
        8,
    );

    assert_eq!(baseline.server.stats(), explicit.server.stats());
    assert_eq!(
        baseline.server.tick_durations(),
        explicit.server.tick_durations()
    );
    assert_eq!(
        baseline.server.world().total_modifications(),
        explicit.server.world().total_modifications()
    );
    assert_eq!(baseline.speculation.stats(), explicit.speculation.stats());
    assert_eq!(
        baseline.speculation.billing(),
        explicit.speculation.billing()
    );
    assert_eq!(
        baseline.speculation.platform_stats(),
        explicit.speculation.platform_stats()
    );
    assert_eq!(baseline.terrain.stats(), explicit.terrain.stats());
    assert_eq!(baseline.terrain.billing(), explicit.terrain.billing());
    assert_eq!(
        baseline.persistence_stats(),
        explicit.persistence_stats(),
        "persistence pipelines diverged"
    );
    let baseline_map = persisted_bytes(&baseline);
    assert!(!baseline_map.is_empty(), "nothing reached blob storage");
    assert_eq!(
        baseline_map,
        persisted_bytes(&explicit),
        "persisted bytes diverged"
    );
    // Frictionless platforms never queue, and their warm-idle meter stays
    // flat, so the with-idle cost equals the billed cost.
    let stats = explicit.speculation.platform_stats();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.rejected, 0);
    let billing = explicit.speculation.billing();
    assert_eq!(billing.total_cost_with_idle_usd(), billing.total_cost_usd());
}

#[test]
fn platform_friction_visibly_changes_behavior() {
    let baseline = run(
        ServoDeployment::builder()
            .seed(57)
            .view_distance(32)
            .build(),
        8,
    );
    // The generation function sees steady traffic as the fleet explores,
    // with idle gaps between bursts — exactly where a short keep-alive and
    // a provisioning delay bite.
    let frictive = run(
        ServoDeployment::builder()
            .seed(57)
            .view_distance(32)
            .generation_platform(
                PlatformConfig::frictionless()
                    .with_provisioning_delay(SimDuration::from_millis(400))
                    .with_keep_alive(SimDuration::from_millis(200)),
            )
            .build(),
        8,
    );

    let base_stats = baseline.terrain.platform_stats();
    let fric_stats = frictive.terrain.platform_stats();
    assert!(
        fric_stats.invocations > 10,
        "too few generation invocations to observe friction: {fric_stats:?}"
    );
    // A 200ms keep-alive expires containers between generation bursts,
    // forcing repeat cold starts the 120s default never sees...
    assert!(
        fric_stats.expired_containers > 0,
        "short keep-alive never expired a container: {fric_stats:?}"
    );
    assert!(
        fric_stats.cold_starts > base_stats.cold_starts,
        "friction did not add cold starts ({} vs {})",
        fric_stats.cold_starts,
        base_stats.cold_starts
    );
    // ...and the 400ms provisioning delay pushes those cold invocations
    // past the frictionless latencies.
    assert_ne!(
        base_stats, fric_stats,
        "friction left platform stats untouched"
    );
}

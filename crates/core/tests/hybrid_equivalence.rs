//! Equivalence and ownership properties of the hybrid zoned+offloading
//! deployment:
//!
//! * a 1-zone [`HybridDeployment`] is tick-for-tick — and
//!   persisted-byte-for-byte — identical to the single
//!   [`ServoDeployment`] built from the same configuration;
//! * in a multi-zone hybrid, every zone persists **all** of its owned
//!   dirty shards and **none** of any other zone's chunks.

use std::collections::BTreeMap;

use servo_core::{HybridDeployment, ServoDeployment};
use servo_simkit::SimRng;
use servo_storage::ObjectStore;
use servo_types::{BlockPos, ChunkPos, PlayerId, SimDuration, SimTime};
use servo_workload::{BehaviorKind, PlayerEvent, PlayerFleet};

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

fn key(pos: ChunkPos) -> String {
    format!("terrain/{}/{}", pos.x, pos.z)
}

/// Snapshot of everything a remote store persisted for the given world
/// positions: key -> bytes.
fn persisted_map(
    read: &mut dyn FnMut(&str) -> Option<Vec<u8>>,
    positions: &[ChunkPos],
) -> BTreeMap<String, Vec<u8>> {
    positions
        .iter()
        .filter_map(|&pos| read(&key(pos)).map(|bytes| (key(pos), bytes)))
        .collect()
}

#[test]
fn one_zone_hybrid_matches_servo_deployment_exactly() {
    let seconds = 8u64;
    let mut single = ServoDeployment::builder()
        .seed(31)
        .view_distance(32)
        .build();
    let mut hybrid: HybridDeployment = ServoDeployment::builder()
        .seed(31)
        .view_distance(32)
        .hybrid(1);
    single
        .server
        .add_constructs(6, |i| servo_redstone::generators::dense_circuit(32 + i * 7));
    for i in 0..6 {
        hybrid
            .cluster
            .add_construct(servo_redstone::generators::dense_circuit(32 + i * 7));
    }

    let mut fleet_single = random_fleet(8, 32);
    let mut fleet_hybrid = random_fleet(8, 32);
    single.run_with_fleet(&mut fleet_single, SimDuration::from_secs(seconds));
    hybrid.run_with_fleet(&mut fleet_hybrid, SimDuration::from_secs(seconds));

    // Tick-for-tick identical simulation.
    let zone = hybrid.cluster.server(0);
    assert_eq!(single.server.stats(), zone.stats());
    assert_eq!(single.server.tick_durations(), zone.tick_durations());
    assert_eq!(
        single.server.world().total_modifications(),
        zone.world().total_modifications()
    );
    assert_eq!(
        single.speculation.stats(),
        hybrid.speculation[0].stats(),
        "speculation units diverged"
    );
    assert_eq!(single.speculation.billing(), hybrid.sc_billing());

    // Persisted-byte-for-byte identical storage after the final flush.
    single.flush_persistence();
    hybrid.flush_persistence();
    assert_eq!(
        single.persistence_stats().chunks_flushed,
        hybrid.persistence_stats().chunks_flushed,
        "flushed chunk counts diverged"
    );
    let positions = single.server.world().loaded_positions();
    let late = SimTime::from_secs(10_000);
    let single_map = single
        .with_persisted(|remote| {
            let mut read = |k: &str| remote.read(k, late).ok().map(|r| r.data);
            persisted_map(&mut read, &positions)
        })
        .expect("single deployment persists");
    let hybrid_map = hybrid
        .cluster
        .with_persisted(0, |remote| {
            let mut read = |k: &str| remote.read(k, late).ok().map(|r| r.data);
            persisted_map(&mut read, &positions)
        })
        .expect("hybrid zone 0 persists");
    assert!(!single_map.is_empty(), "nothing reached blob storage");
    assert_eq!(single_map, hybrid_map, "persisted bytes diverged");
    let single_len = single.with_persisted(|remote| remote.len()).unwrap();
    let hybrid_len = hybrid
        .cluster
        .with_persisted(0, |remote| remote.len())
        .unwrap();
    assert_eq!(single_len, hybrid_len);
}

#[test]
fn zones_flush_every_owned_dirty_shard_and_nothing_foreign() {
    let mut hybrid = ServoDeployment::builder()
        .seed(41)
        .view_distance(32)
        .hybrid(4);
    let mut fleet = random_fleet(12, 42);
    hybrid.run_with_fleet(&mut fleet, SimDuration::from_secs(6));

    // A targeted edit into a known zone's loaded terrain, so at least one
    // owned dirty chunk exists deterministically.
    let map = hybrid.cluster.shard_map().clone();
    let mut target = None;
    'search: for (zone, server) in hybrid.cluster.servers().iter().enumerate() {
        for pos in server.world().loaded_positions() {
            if map.zone_of_chunk(pos) == zone {
                target = Some((zone, pos));
                break 'search;
            }
        }
    }
    let (zone, pos) = target.expect("terrain loaded in some zone");
    let block = pos.min_block() + BlockPos::new(5, 9, 5);
    let event = (PlayerId::new(0), PlayerEvent::BlockPlaced(block));
    let positions = fleet.positions();
    hybrid.cluster.run_tick(&positions, &[event]);

    let flushed = hybrid.flush_persistence();
    assert!(flushed > 0 || hybrid.persistence_stats().chunks_flushed > 0);
    // The edited chunk reached its owning zone's storage...
    assert_eq!(
        hybrid
            .cluster
            .with_persisted(zone, |remote| remote.contains(&key(pos))),
        Some(true),
        "zone {zone} never persisted its edited chunk {pos:?}"
    );
    // ...and after the flush no owned dirty state remains anywhere.
    for (zone, server) in hybrid.cluster.servers().iter().enumerate() {
        assert!(
            server.drain_owned_dirty().is_empty(),
            "zone {zone} left owned dirty shards unflushed"
        );
    }
    let again = hybrid.flush_persistence();
    assert_eq!(again, 0, "a second flush found dirt the first one missed");

    // Ownership: no zone's store holds a chunk another zone owns.
    for (zone, server) in hybrid.cluster.servers().iter().enumerate() {
        for pos in server.world().loaded_positions() {
            let persisted = hybrid
                .cluster
                .with_persisted(zone, |remote| remote.contains(&key(pos)))
                .unwrap();
            if persisted {
                assert_eq!(
                    map.zone_of_chunk(pos),
                    zone,
                    "zone {zone} persisted foreign chunk {pos:?}"
                );
            }
        }
    }
    // Every zone with edits actually persisted something.
    assert!(hybrid.persistence_stats().chunks_flushed > 0);
}

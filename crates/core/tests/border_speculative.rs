//! The speculation-aware border exchange over real speculative backends:
//! neighbours replay published sequences from the shared substrate, so
//! the seam carries per-construct handles only on invalidation — far
//! fewer messages than the eager batched exchange on the same workload —
//! while the simulation itself stays untouched.

use servo_core::{HybridDeployment, ServoDeployment};
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam};
use servo_server::BorderExchange;
use servo_simkit::SimRng;
use servo_types::SimDuration;
use servo_workload::{BehaviorKind, PlayerFleet};

fn bounded_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

fn run_hybrid(exchange: BorderExchange) -> HybridDeployment {
    let mut hybrid = ServoDeployment::builder()
        .seed(51)
        .view_distance(32)
        .border_exchange(exchange)
        .hybrid(4);
    let sites = border_construct_sites(hybrid.cluster.shard_map(), 40);
    for site in &sites {
        hybrid
            .cluster
            .add_construct(place_across_east_seam(&generators::wire_line(14), *site, 6));
    }
    let mut fleet = bounded_fleet(8, 52);
    hybrid.run_with_fleet(&mut fleet, SimDuration::from_secs(6));
    hybrid
}

#[test]
fn speculative_exchange_replays_sequences_and_cuts_messages() {
    let batched = run_hybrid(BorderExchange::Batched);
    let speculative = run_hybrid(BorderExchange::Speculative);

    let eager = batched.cluster.stats();
    let spec = speculative.cluster.stats();

    // The same logical exchange obligation existed in both runs...
    assert!(spec.construct_exchanges > 0);
    // ...but in steady state the constructs loop, their published
    // sequences stay valid, and the neighbours replay them from the
    // substrate instead of receiving state over the seam.
    assert!(
        spec.speculative_replays > spec.speculation_handles,
        "replays {} never dominated handle publications {}",
        spec.speculative_replays,
        spec.speculation_handles
    );
    assert!(
        spec.speculation_handles > 0,
        "no sequence was ever published as a handle"
    );
    assert!(
        spec.cross_server_messages < eager.cross_server_messages,
        "speculative exchange sent {} messages, eager batched {}",
        spec.cross_server_messages,
        eager.cross_server_messages
    );

    // The wire/logical split stays observable: the batched arm bundles
    // every exchange, the speculative arm bundles only its fallbacks.
    assert!(eager.batched_bundles > 0);
    assert!(spec.batched_bundles < eager.batched_bundles);

    // The simulation is untouched: constructs are still served from
    // offloaded results, and measured speculation efficiency is real
    // (looping sequences replay at full efficiency).
    let stats = speculative.cluster.server_stats_total();
    assert!(stats.sc_merged + stats.sc_replayed > stats.sc_local);
    let efficiency = speculative
        .speculation_stats_total()
        .median_efficiency()
        .unwrap_or(0.0);
    assert!(
        efficiency > 0.0,
        "median speculation efficiency stayed zero"
    );
}

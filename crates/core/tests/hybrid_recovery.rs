//! Crash recovery at deployment scope: killing one zone of a 4-zone
//! [`HybridDeployment`] mid-run must not cost any construct a simulation
//! step — the dead zone's constructs are adopted and stepped by survivors
//! with no gap and no repeat — and must never cause a surviving zone to
//! persist terrain it does not own.

use servo_core::{HybridDeployment, ServoDeployment};
use servo_simkit::SimRng;
use servo_types::{ChunkPos, SimDuration};
use servo_workload::{BehaviorKind, PlayerFleet};

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

fn build(constructs: usize) -> HybridDeployment {
    let mut hybrid: HybridDeployment = ServoDeployment::builder()
        .seed(61)
        .view_distance(32)
        .hybrid(4);
    for i in 0..constructs {
        hybrid
            .cluster
            .add_construct(servo_redstone::generators::dense_circuit(24 + i * 5));
    }
    hybrid
}

#[test]
fn crashing_a_hybrid_zone_keeps_every_construct_step_exact() {
    let constructs = 8usize;
    let seconds = 8u64;
    let dead = 2usize;
    let crash_tick = 70u64;

    // Control: the same deployment, fleet, and duration with no failure.
    let mut control = build(constructs);
    let mut fleet = random_fleet(12, 62);
    control.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));
    let expected: Vec<u64> = (0..constructs)
        .map(|index| {
            let (zone, id) = control.cluster.construct_location(index).unwrap();
            control
                .cluster
                .server(zone)
                .construct(id)
                .unwrap()
                .state()
                .step()
        })
        .collect();
    assert!(
        expected.iter().all(|&s| s > 0),
        "control run never stepped its constructs: {expected:?}"
    );

    // Crashed run: one zone dies mid-run; its shards — and its constructs —
    // are adopted by the survivors.
    let mut crashed = build(constructs);
    crashed.crash_zone(dead, crash_tick);
    let mut fleet = random_fleet(12, 62);
    crashed.run_with_fleet(&mut fleet, SimDuration::from_secs(seconds));

    let recovery = crashed.recovery_stats();
    assert_eq!(recovery.crashes, 1);
    assert!(recovery.shards_adopted > 0, "the dead zone owned no shards");
    assert!(crashed.cluster.zone_is_dead(dead));
    assert!(crashed.cluster.shard_map().zone_shards(dead).is_empty());
    assert_eq!(crashed.cluster.pending_adoption_count(), 0);

    // Every construct — including those that lived on the dead zone — kept
    // its exact step count: adoption neither dropped nor repeated a step.
    assert_eq!(crashed.cluster.stats().ticks, control.cluster.stats().ticks);
    for (index, steps) in expected.iter().enumerate() {
        let (zone, id) = crashed
            .cluster
            .construct_location(index)
            .expect("construct survived the crash");
        assert_ne!(
            zone, dead,
            "construct {index} still registered to the dead zone"
        );
        let construct = crashed
            .cluster
            .server(zone)
            .construct(id)
            .expect("construct must live on its registered zone");
        assert_eq!(
            construct.state().step(),
            *steps,
            "construct {index} lost or repeated steps across the crash"
        );
    }

    // No survivor persisted foreign terrain: after the final flush, every
    // key in a surviving zone's store parses to a chunk that zone owns
    // under the post-recovery map.
    crashed.flush_persistence();
    let map = crashed.cluster.shard_map().clone();
    for zone in 0..4 {
        if zone == dead {
            continue;
        }
        let keys = crashed
            .cluster
            .with_persisted(zone, |remote| remote.keys())
            .expect("hybrid zones persist");
        for key in keys {
            let mut parts = key.split('/');
            assert_eq!(parts.next(), Some("terrain"), "unexpected key {key}");
            let x: i32 = parts.next().unwrap().parse().unwrap();
            let z: i32 = parts.next().unwrap().parse().unwrap();
            assert_eq!(
                map.zone_of_chunk(ChunkPos::new(x, z)),
                zone,
                "surviving zone {zone} persisted foreign chunk {key}"
            );
        }
    }

    // Avatars never went unsimulated, crash tick and adoption included.
    for detail in crashed.cluster.ticks() {
        let assigned: usize = detail.zones.iter().map(|z| z.players).sum();
        assert_eq!(assigned, 12);
    }
}

//! Differential property test for the partitioned speculative resolution
//! path (the PR's acceptance gate): for a seeded workload — mixed
//! construct sizes, looping constructs, and player modifications arriving
//! mid-run — a `GameServer` running the `SpeculativeScBackend` with
//! parallel workers (`ResolutionPlan::Partitioned` fan-out + `reconcile`)
//! must produce construct states, `SpeculationStats` (including the exact
//! order-sensitive sample vectors), FaaS billing, and server counters
//! identical to the sequential `resolve` path.

use proptest::prelude::*;
use servo_core::{SpeculationConfig, SpeculationHandle, SpeculativeScBackend};
use servo_faas::{FaasPlatform, FunctionConfig};
use servo_pcg::FlatGenerator;
use servo_redstone::{generators, Blueprint};
use servo_server::{GameServer, LocalGenerationBackend, ServerConfig};
use servo_simkit::SimRng;
use servo_types::{BlockPos, ConstructId, MemoryMb, PlayerId};
use servo_workload::PlayerEvent;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The construct fleet of one generated workload: a deterministic mix of
/// aperiodic circuits, looping clocks, and wire lines.
fn fleet_blueprints(seed: u64) -> Vec<Blueprint> {
    let mut state = seed ^ 0xb1e0;
    (0..8)
        .map(|_| {
            let r = splitmix(&mut state);
            match r % 3 {
                0 => generators::dense_circuit(24 + (r >> 8) as usize % 40),
                1 => generators::clock(4 + (r >> 8) as usize % 4),
                _ => generators::wire_line(6 + (r >> 8) as usize % 10),
            }
        })
        .collect()
}

/// The modification schedule: (tick, construct, block index) triples.
fn modifications(seed: u64, ticks: u64, blueprints: &[Blueprint]) -> Vec<(u64, usize, usize)> {
    let mut state = seed ^ 0x0d1f;
    (0..5)
        .map(|_| {
            let r = splitmix(&mut state);
            let construct = (r % blueprints.len() as u64) as usize;
            let block = ((r >> 16) as usize) % blueprints[construct].positions().len();
            ((r >> 32) % ticks.max(1), construct, block)
        })
        .collect()
}

struct Run {
    hashes: Vec<u64>,
    stats: servo_core::SpeculationStats,
    billing: servo_faas::BillingMeter,
    server_stats: servo_server::ServerStats,
}

fn run(seed: u64, parallelism: usize, ticks: u64) -> Run {
    let platform = FaasPlatform::new(
        FunctionConfig::aws_like(MemoryMb::new(2048)),
        SimRng::seed(seed),
    );
    let backend = SpeculativeScBackend::new(SpeculationConfig::default(), platform);
    let handle: SpeculationHandle = backend.handle();
    let mut server = GameServer::new(
        ServerConfig::servo_base()
            .with_view_distance(32)
            .with_parallelism(parallelism),
        Box::new(backend),
        Box::new(LocalGenerationBackend::new(
            Box::new(FlatGenerator::default()),
            8,
        )),
        SimRng::seed(seed ^ 0x5e4e4),
    );
    let blueprints = fleet_blueprints(seed);
    for blueprint in &blueprints {
        server.add_construct(blueprint.clone());
    }
    let schedule = modifications(seed, ticks, &blueprints);
    let positions = vec![BlockPos::new(4, 4, 4)];
    for tick in 0..ticks {
        let events: Vec<(PlayerId, PlayerEvent)> = schedule
            .iter()
            .filter(|(t, _, _)| *t == tick)
            .map(|&(_, construct, block)| {
                let pos = blueprints[construct].positions()[block];
                (PlayerId::new(0), PlayerEvent::BlockBroken(pos))
            })
            .collect();
        server.run_tick(&positions, &events);
    }
    Run {
        hashes: (0..blueprints.len())
            .map(|i| {
                server
                    .construct(ConstructId::new(i as u64))
                    .unwrap()
                    .state()
                    .hash()
            })
            .collect(),
        stats: handle.stats(),
        billing: handle.billing(),
        server_stats: server.stats(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property: partitioned parallel resolution is
    /// indistinguishable from the sequential path, down to the stats
    /// vectors and the billing meter.
    #[test]
    fn partitioned_resolution_is_identical_to_sequential(seed in 0u64..100_000) {
        let sequential = run(seed, 1, 120);
        let parallel = run(seed, 4, 120);
        prop_assert_eq!(&sequential.hashes, &parallel.hashes, "construct states diverged");
        prop_assert_eq!(&sequential.stats, &parallel.stats, "speculation stats diverged");
        prop_assert_eq!(&sequential.billing, &parallel.billing, "billing diverged");
        prop_assert_eq!(&sequential.server_stats, &parallel.server_stats, "server counters diverged");
        // The workload genuinely exercised speculation.
        prop_assert!(sequential.stats.invocations > 0);
        prop_assert!(sequential.server_stats.sc_merged + sequential.server_stats.sc_replayed > 0);
    }
}

/// A longer single-seed soak with modifications on, doubling as a
/// regression anchor for the deferred-reconcile ordering.
#[test]
fn long_run_with_modifications_stays_identical() {
    let sequential = run(77, 1, 300);
    let parallel = run(77, 4, 300);
    assert_eq!(sequential.hashes, parallel.hashes);
    assert_eq!(sequential.stats, parallel.stats);
    assert_eq!(sequential.billing, parallel.billing);
    assert_eq!(sequential.server_stats, parallel.server_stats);
    assert!(sequential.stats.invocations > 0);
}

//! Game-wide constants taken directly from the paper's operational model
//! (Section II) and system requirements (Section III-A).

use crate::time::SimDuration;

/// The fixed simulation rate `R` of the game loop, in Hertz.
///
/// The paper uses Minecraft's rate of 20 Hz (Section II-A).
pub const TICK_RATE_HZ: u32 = 20;

/// The time budget of a single simulation step: `1/R` = 50 ms.
///
/// Requirement R2 of the paper: simulation latency should not exceed this
/// value, otherwise players observe degraded quality of service.
pub const TICK_BUDGET: SimDuration = SimDuration::from_millis(50);

/// Horizontal chunk size in blocks (both X and Z), following the Minecraft
/// world layout the paper's prototype (Opencraft) uses.
///
/// Must be a power of two: the hot block-addressing paths use shift/mask
/// arithmetic instead of euclidean division.
pub const CHUNK_SIZE: i32 = 16;

/// Vertical world height in blocks. One generated "chunk" in the paper is an
/// area of 16 x 16 x 256 blocks (Section IV-D).
///
/// Must be a power of two (see [`CHUNK_SIZE`]).
pub const CHUNK_HEIGHT: i32 = 256;

/// `log2(CHUNK_SIZE)`: world-to-chunk coordinate conversion is an arithmetic
/// shift right by this amount, and the chunk-local remainder a mask by
/// [`CHUNK_MASK`].
pub const CHUNK_BITS: u32 = CHUNK_SIZE.trailing_zeros();

/// `CHUNK_SIZE - 1`, the chunk-local coordinate mask.
pub const CHUNK_MASK: i32 = CHUNK_SIZE - 1;

const _: () = assert!(
    CHUNK_SIZE.count_ones() == 1,
    "CHUNK_SIZE must be a power of two"
);
const _: () = assert!(
    CHUNK_HEIGHT.count_ones() == 1,
    "CHUNK_HEIGHT must be a power of two"
);

/// Default view distance in blocks used in the terrain-generation QoS
/// experiment (Figure 10): players must always have terrain within 128 blocks.
pub const DEFAULT_VIEW_DISTANCE_BLOCKS: i32 = 128;

/// The fraction of tick-duration samples that may exceed [`TICK_BUDGET`]
/// while the game is still considered to support its player count.
///
/// The paper defines the maximum number of supported players as the largest
/// player count for which *less than 5%* of tick-duration samples exceed
/// 50 ms (Section IV-B).
pub const QOS_VIOLATION_FRACTION: f64 = 0.05;

/// Approximate maximum acceptable network latency for first-person games
/// (Figure 3, blue threshold), in milliseconds. Most MVEs are first-person.
pub const FPS_LATENCY_THRESHOLD_MS: u64 = 100;

/// Approximate maximum acceptable network latency for third-person (RPG)
/// games (Figure 3, green threshold), in milliseconds.
pub const RPG_LATENCY_THRESHOLD_MS: u64 = 500;

/// Approximate maximum acceptable network latency for omnipresent (RTS)
/// games (Figure 3, red threshold), in milliseconds.
pub const RTS_LATENCY_THRESHOLD_MS: u64 = 1000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_budget_is_inverse_of_rate() {
        assert_eq!(1_000 / TICK_RATE_HZ as u64, TICK_BUDGET.as_millis());
    }

    #[test]
    fn chunk_dimensions_match_paper() {
        assert_eq!(CHUNK_SIZE, 16);
        assert_eq!(CHUNK_HEIGHT, 256);
    }

    #[test]
    fn shift_mask_agree_with_euclidean_arithmetic() {
        assert_eq!(1i32 << CHUNK_BITS, CHUNK_SIZE);
        for v in [-1000i32, -17, -16, -1, 0, 1, 15, 16, 1000] {
            assert_eq!(v >> CHUNK_BITS, v.div_euclid(CHUNK_SIZE));
            assert_eq!(v & CHUNK_MASK, v.rem_euclid(CHUNK_SIZE));
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn latency_thresholds_are_ordered() {
        assert!(FPS_LATENCY_THRESHOLD_MS < RPG_LATENCY_THRESHOLD_MS);
        assert!(RPG_LATENCY_THRESHOLD_MS < RTS_LATENCY_THRESHOLD_MS);
    }
}

//! World-space and chunk-space positions.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::consts::{CHUNK_BITS, CHUNK_SIZE};

/// A block position in world space (one unit per block).
///
/// `y` is the vertical axis, matching the Minecraft-style world layout the
/// paper's prototype uses.
///
/// # Example
///
/// ```
/// use servo_types::{BlockPos, ChunkPos};
/// let p = BlockPos::new(-1, 64, 17);
/// assert_eq!(ChunkPos::from(p), ChunkPos::new(-1, 1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockPos {
    /// East-west coordinate.
    pub x: i32,
    /// Vertical coordinate.
    pub y: i32,
    /// North-south coordinate.
    pub z: i32,
}

impl BlockPos {
    /// Creates a block position from its three coordinates.
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        BlockPos { x, y, z }
    }

    /// The world origin.
    pub const ORIGIN: BlockPos = BlockPos::new(0, 0, 0);

    /// Euclidean distance to `other`, ignoring the vertical axis.
    ///
    /// View-distance and terrain-loading decisions in the paper are made in
    /// the horizontal plane.
    pub fn horizontal_distance(self, other: BlockPos) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dz = (self.z - other.z) as f64;
        (dx * dx + dz * dz).sqrt()
    }

    /// Manhattan distance to `other` over all three axes.
    pub fn manhattan_distance(self, other: BlockPos) -> u64 {
        (self.x - other.x).unsigned_abs() as u64
            + (self.y - other.y).unsigned_abs() as u64
            + (self.z - other.z).unsigned_abs() as u64
    }

    /// The neighbouring position one block in the given direction.
    pub fn offset(self, dir: Direction) -> BlockPos {
        let (dx, dy, dz) = dir.delta();
        BlockPos::new(self.x + dx, self.y + dy, self.z + dz)
    }
}

impl fmt::Display for BlockPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for BlockPos {
    type Output = BlockPos;
    fn add(self, rhs: BlockPos) -> BlockPos {
        BlockPos::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for BlockPos {
    type Output = BlockPos;
    fn sub(self, rhs: BlockPos) -> BlockPos {
        BlockPos::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

/// A chunk position in chunk space (one unit per 16x16-block column).
///
/// # Example
///
/// ```
/// use servo_types::ChunkPos;
/// let c = ChunkPos::new(0, 0);
/// assert_eq!(c.chebyshev_distance(ChunkPos::new(3, -2)), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChunkPos {
    /// East-west chunk coordinate.
    pub x: i32,
    /// North-south chunk coordinate.
    pub z: i32,
}

impl ChunkPos {
    /// Creates a chunk position from its two coordinates.
    pub const fn new(x: i32, z: i32) -> Self {
        ChunkPos { x, z }
    }

    /// The chunk containing the world origin.
    pub const ORIGIN: ChunkPos = ChunkPos::new(0, 0);

    /// The block position of this chunk's minimum corner (at `y = 0`).
    pub const fn min_block(self) -> BlockPos {
        BlockPos::new(self.x * CHUNK_SIZE, 0, self.z * CHUNK_SIZE)
    }

    /// Chebyshev (chessboard) distance in chunks, the metric used for square
    /// view-distance regions around an avatar.
    pub fn chebyshev_distance(self, other: ChunkPos) -> u32 {
        let dx = (self.x - other.x).unsigned_abs();
        let dz = (self.z - other.z).unsigned_abs();
        dx.max(dz)
    }

    /// Euclidean distance in chunks.
    pub fn euclidean_distance(self, other: ChunkPos) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dz = (self.z - other.z) as f64;
        (dx * dx + dz * dz).sqrt()
    }

    /// Iterator over all chunk positions within `radius` (Chebyshev) of this
    /// chunk, including the chunk itself — a `(2r+1)²`-chunk square.
    pub fn square_around(self, radius: u32) -> impl Iterator<Item = ChunkPos> {
        let r = radius as i32;
        let center = self;
        (-r..=r)
            .flat_map(move |dx| (-r..=r).map(move |dz| ChunkPos::new(center.x + dx, center.z + dz)))
    }
}

impl fmt::Display for ChunkPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.x, self.z)
    }
}

impl From<BlockPos> for ChunkPos {
    fn from(p: BlockPos) -> ChunkPos {
        // Arithmetic shift right is floor division for a power-of-two
        // divisor, including negative coordinates.
        ChunkPos::new(p.x >> CHUNK_BITS, p.z >> CHUNK_BITS)
    }
}

/// One of the six axis-aligned directions in the voxel grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards positive Y.
    Up,
    /// Towards negative Y.
    Down,
    /// Towards negative Z.
    North,
    /// Towards positive Z.
    South,
    /// Towards positive X.
    East,
    /// Towards negative X.
    West,
}

impl Direction {
    /// All six directions, in a fixed order.
    pub const ALL: [Direction; 6] = [
        Direction::Up,
        Direction::Down,
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The four horizontal directions.
    pub const HORIZONTAL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The unit offset of this direction as `(dx, dy, dz)`.
    pub const fn delta(self) -> (i32, i32, i32) {
        match self {
            Direction::Up => (0, 1, 0),
            Direction::Down => (0, -1, 0),
            Direction::North => (0, 0, -1),
            Direction::South => (0, 0, 1),
            Direction::East => (1, 0, 0),
            Direction::West => (-1, 0, 0),
        }
    }

    /// The direction pointing the opposite way.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_from_block_handles_negative_coordinates() {
        assert_eq!(ChunkPos::from(BlockPos::new(0, 0, 0)), ChunkPos::new(0, 0));
        assert_eq!(
            ChunkPos::from(BlockPos::new(15, 0, 15)),
            ChunkPos::new(0, 0)
        );
        assert_eq!(ChunkPos::from(BlockPos::new(16, 0, 0)), ChunkPos::new(1, 0));
        assert_eq!(
            ChunkPos::from(BlockPos::new(-1, 0, -16)),
            ChunkPos::new(-1, -1)
        );
        assert_eq!(
            ChunkPos::from(BlockPos::new(-17, 0, -1)),
            ChunkPos::new(-2, -1)
        );
    }

    #[test]
    fn square_around_has_expected_size() {
        let chunks: Vec<_> = ChunkPos::new(3, -2).square_around(2).collect();
        assert_eq!(chunks.len(), 25);
        assert!(chunks.contains(&ChunkPos::new(3, -2)));
        assert!(chunks.contains(&ChunkPos::new(5, 0)));
        assert!(!chunks.contains(&ChunkPos::new(6, 0)));
    }

    #[test]
    fn distances() {
        let a = BlockPos::new(0, 0, 0);
        let b = BlockPos::new(3, 5, 4);
        assert!((a.horizontal_distance(b) - 5.0).abs() < 1e-9);
        assert_eq!(a.manhattan_distance(b), 12);
        assert_eq!(
            ChunkPos::new(0, 0).chebyshev_distance(ChunkPos::new(-3, 2)),
            3
        );
    }

    #[test]
    fn direction_opposites_are_involutions() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy, dz) = d.delta();
            let (ox, oy, oz) = d.opposite().delta();
            assert_eq!((dx + ox, dy + oy, dz + oz), (0, 0, 0));
        }
    }

    #[test]
    fn block_pos_offset_and_arithmetic() {
        let p = BlockPos::new(1, 2, 3);
        assert_eq!(p.offset(Direction::Up), BlockPos::new(1, 3, 3));
        assert_eq!(p + BlockPos::new(1, 1, 1), BlockPos::new(2, 3, 4));
        assert_eq!(p - p, BlockPos::ORIGIN);
    }

    #[test]
    fn chunk_min_block() {
        assert_eq!(ChunkPos::new(2, -1).min_block(), BlockPos::new(32, 0, -16));
    }
}

//! Resource and rate units.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Memory allocated to a serverless function, in mebibytes.
///
/// On AWS Lambda the amount of compute (vCPUs) scales with the configured
/// memory; the paper sweeps 320 MB to 10240 MB in Figure 11.
///
/// # Example
///
/// ```
/// use servo_types::MemoryMb;
/// let m = MemoryMb::new(1024);
/// assert!((m.vcpus() - 0.5714).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemoryMb(pub u32);

impl MemoryMb {
    /// Creates a memory configuration of `mb` mebibytes.
    pub const fn new(mb: u32) -> Self {
        MemoryMb(mb)
    }

    /// The raw number of mebibytes.
    pub const fn as_mb(self) -> u32 {
        self.0
    }

    /// The memory expressed in gibibytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Approximate number of vCPUs allocated by AWS Lambda for this memory
    /// size: 1 full vCPU per 1792 MB, capped at 6 vCPUs at 10240 MB.
    pub fn vcpus(self) -> f64 {
        (self.0 as f64 / 1792.0).min(6.0)
    }

    /// The memory configurations evaluated in the paper (Figure 11).
    pub const PAPER_SWEEP: [MemoryMb; 6] = [
        MemoryMb(320),
        MemoryMb(512),
        MemoryMb(1024),
        MemoryMb(2048),
        MemoryMb(4096),
        MemoryMb(10240),
    ];
}

impl Default for MemoryMb {
    fn default() -> Self {
        MemoryMb(1024)
    }
}

impl fmt::Display for MemoryMb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MB", self.0)
    }
}

/// A horizontal movement speed, in blocks per second.
///
/// The paper's workloads move avatars at 1–8 blocks per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct BlocksPerSecond(pub f64);

impl BlocksPerSecond {
    /// Creates a speed of `v` blocks per second.
    pub const fn new(v: f64) -> Self {
        BlocksPerSecond(v)
    }

    /// The raw speed value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Distance covered over `secs` seconds, in blocks.
    pub fn distance_over(self, secs: f64) -> f64 {
        self.0 * secs
    }
}

impl fmt::Display for BlocksPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} blocks/s", self.0)
    }
}

/// A cost rate in United States dollars per hour.
///
/// Used by the billing model to compare offloading cost with the cost of a
/// `c5n.xlarge` instance ($0.216/h) as the paper does in Section IV-C.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct UsdPerHour(pub f64);

impl UsdPerHour {
    /// Hourly price of the `c5n.xlarge` instance the paper compares against.
    pub const C5N_XLARGE: UsdPerHour = UsdPerHour(0.216);

    /// Creates a rate of `v` dollars per hour.
    pub const fn new(v: f64) -> Self {
        UsdPerHour(v)
    }

    /// The raw dollars-per-hour value.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for UsdPerHour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.3}/h", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sweep_matches_paper() {
        let mbs: Vec<u32> = MemoryMb::PAPER_SWEEP.iter().map(|m| m.as_mb()).collect();
        assert_eq!(mbs, vec![320, 512, 1024, 2048, 4096, 10240]);
    }

    #[test]
    fn vcpus_scale_with_memory_and_cap() {
        assert!(MemoryMb::new(320).vcpus() < MemoryMb::new(10240).vcpus());
        assert!((MemoryMb::new(1792).vcpus() - 1.0).abs() < 1e-9);
        assert!(MemoryMb::new(20480).vcpus() <= 6.0);
    }

    #[test]
    fn speed_distance() {
        let v = BlocksPerSecond::new(3.0);
        assert!((v.distance_over(10.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn c5n_price_matches_paper() {
        assert!((UsdPerHour::C5N_XLARGE.value() - 0.216).abs() < 1e-9);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!MemoryMb::default().to_string().is_empty());
        assert!(!BlocksPerSecond::new(1.0).to_string().is_empty());
        assert!(!UsdPerHour::new(0.1).to_string().is_empty());
    }
}

//! Identifier newtypes used across the stack.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw numeric value of this identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a connected player (and their avatar).
    PlayerId,
    "player-"
);

id_type!(
    /// Identifies a simulated construct (a connected set of stateful blocks).
    ConstructId,
    "sc-"
);

id_type!(
    /// Identifies a single serverless function invocation.
    InvocationId,
    "inv-"
);

id_type!(
    /// Identifies a request issued by the game server to a backend service
    /// (storage read/write, terrain generation, SC offload).
    RequestId,
    "req-"
);

/// A monotonically increasing identifier allocator.
///
/// # Example
///
/// ```
/// use servo_types::id::IdAllocator;
/// use servo_types::PlayerId;
/// let mut alloc = IdAllocator::<PlayerId>::new();
/// assert_eq!(alloc.next(), PlayerId::new(0));
/// assert_eq!(alloc.next(), PlayerId::new(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdAllocator<T> {
    next: u64,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: From<u64>> IdAllocator<T> {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        IdAllocator {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocates the next identifier.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// Number of identifiers allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(PlayerId::new(3).to_string(), "player-3");
        assert_eq!(ConstructId::new(1).to_string(), "sc-1");
        assert_eq!(InvocationId::new(9).to_string(), "inv-9");
        assert_eq!(RequestId::new(0).to_string(), "req-0");
    }

    #[test]
    fn allocator_is_monotonic_and_unique() {
        let mut alloc = IdAllocator::<RequestId>::new();
        let ids: Vec<_> = (0..100).map(|_| alloc.next()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.raw(), i as u64);
        }
        assert_eq!(alloc.allocated(), 100);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(PlayerId::new(1) < PlayerId::new(2));
        assert_eq!(ConstructId::from(7).raw(), 7);
    }
}

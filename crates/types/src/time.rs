//! Virtual time primitives.
//!
//! All experiments in this repository run on a deterministic virtual clock
//! rather than wall-clock time; [`SimTime`] is an absolute instant on that
//! clock, [`SimDuration`] a span between instants, and [`Tick`] a discrete
//! game-loop iteration index.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the virtual clock, with microsecond resolution.
///
/// # Example
///
/// ```
/// use servo_types::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(50);
/// assert_eq!(t.as_micros(), 50_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after the clock origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the clock origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the clock origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the clock origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the clock origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the clock origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of virtual time, with microsecond resolution.
///
/// # Example
///
/// ```
/// use servo_types::SimDuration;
/// let d = SimDuration::from_millis(50) * 3;
/// assert_eq!(d.as_millis(), 150);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from a floating-point number of milliseconds,
    /// truncating sub-microsecond precision. Negative values clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        if millis <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((millis * 1_000.0) as u64)
        }
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Subtraction that saturates at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).max(0.0) as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

/// A discrete game-loop iteration index.
///
/// The game loop advances one tick every `1/R` seconds of virtual time
/// (50 ms at the paper's fixed R = 20 Hz).
///
/// # Example
///
/// ```
/// use servo_types::Tick;
/// let t = Tick(5);
/// assert_eq!(t.advance(3), Tick(8));
/// assert_eq!(Tick(8).saturating_ticks_since(t), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(pub u64);

impl Tick {
    /// Tick zero, the first iteration of the game loop.
    pub const ZERO: Tick = Tick(0);

    /// The tick `n` iterations after this one.
    pub const fn advance(self, n: u64) -> Tick {
        Tick(self.0 + n)
    }

    /// The next tick.
    pub const fn next(self) -> Tick {
        self.advance(1)
    }

    /// Number of ticks elapsed since `earlier`, saturating at zero.
    pub const fn saturating_ticks_since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The virtual-time instant at which this tick begins, for a given tick
    /// rate in Hz.
    pub fn start_time(self, tick_rate_hz: u32) -> SimTime {
        SimTime::from_micros(self.0 * 1_000_000 / tick_rate_hz as u64)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tick {}", self.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    fn add(self, rhs: u64) -> Tick {
        self.advance(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t0 + d) - t0, d);
        assert_eq!((t0 + d).as_millis(), 150);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_float_conversions() {
        let d = SimDuration::from_millis_f64(12.5);
        assert_eq!(d.as_micros(), 12_500);
        assert!((d.as_millis_f64() - 12.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 5, SimDuration::from_millis(50));
        assert_eq!(d * 0.5, SimDuration::from_micros(5_000));
        assert_eq!((d * 5) / 5, d);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (0..10).map(|_| SimDuration::from_millis(5)).sum();
        assert_eq!(total, SimDuration::from_millis(50));
    }

    #[test]
    fn tick_start_time_at_20hz() {
        assert_eq!(Tick(0).start_time(20), SimTime::ZERO);
        assert_eq!(Tick(1).start_time(20), SimTime::from_millis(50));
        assert_eq!(Tick(20).start_time(20), SimTime::from_secs(1));
    }

    #[test]
    fn tick_ordering_and_advance() {
        let t = Tick(7);
        assert!(t.next() > t);
        assert_eq!(t + 13, Tick(20));
        assert_eq!(Tick(3).saturating_ticks_since(Tick(9)), 0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", SimTime::from_millis(1)).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(1)).is_empty());
        assert!(!format!("{}", Tick(1)).is_empty());
    }
}

//! Shared foundational types for the Servo MVE stack.
//!
//! This crate defines the vocabulary used throughout the reproduction of the
//! Servo paper (ICDCS 2023): world-space and chunk-space positions, virtual
//! time ([`SimTime`], [`SimDuration`], [`Tick`]), identifiers for players,
//! simulated constructs and function invocations, resource units such as
//! [`MemoryMb`], and the crate-wide [`ServoError`] type.
//!
//! The constants in [`consts`] encode the quality-of-service envelope the
//! paper works with: a fixed simulation rate of 20 Hz and a per-tick budget of
//! 50 ms (paper requirement R2).
//!
//! # Example
//!
//! ```
//! use servo_types::{BlockPos, ChunkPos, Tick, consts};
//!
//! let p = BlockPos::new(100, 64, -30);
//! assert_eq!(ChunkPos::from(p), ChunkPos::new(6, -2));
//! assert_eq!(consts::TICK_BUDGET.as_millis(), 50);
//! let t = Tick(0).advance(20);
//! assert_eq!(t, Tick(20));
//! ```

#![warn(missing_docs)]

pub mod consts;
pub mod error;
pub mod id;
pub mod pos;
pub mod time;
pub mod units;

pub use error::{Result, ServoError};
pub use id::{ConstructId, InvocationId, PlayerId, RequestId};
pub use pos::{BlockPos, ChunkPos, Direction};
pub use time::{SimDuration, SimTime, Tick};
pub use units::{BlocksPerSecond, MemoryMb, UsdPerHour};

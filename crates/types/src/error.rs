//! The crate-wide error type.

use std::fmt;

/// Convenience alias for results using [`ServoError`].
pub type Result<T> = std::result::Result<T, ServoError>;

/// Errors produced by the Servo stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServoError {
    /// A block or chunk coordinate was outside the valid range.
    OutOfBounds {
        /// Human-readable description of the offending coordinate.
        what: String,
    },
    /// A requested chunk is not loaded in memory.
    ChunkNotLoaded {
        /// Chunk x coordinate.
        x: i32,
        /// Chunk z coordinate.
        z: i32,
    },
    /// A requested entity (player, construct, function) does not exist.
    NotFound {
        /// Human-readable description of the missing entity.
        what: String,
    },
    /// A serverless function invocation failed or timed out.
    FunctionFailed {
        /// Reason reported by the platform simulator.
        reason: String,
    },
    /// A storage operation failed.
    StorageFailed {
        /// Reason reported by the storage backend.
        reason: String,
    },
    /// Serialized data could not be decoded.
    CorruptData {
        /// Human-readable description of the decoding failure.
        reason: String,
    },
    /// The operation violates a configured limit (e.g. concurrency cap).
    LimitExceeded {
        /// Human-readable description of the limit.
        what: String,
    },
    /// The server rejected the request because it is shutting down or the
    /// component is not running.
    Unavailable {
        /// Human-readable description of the unavailable component.
        what: String,
    },
}

impl ServoError {
    /// Shorthand constructor for [`ServoError::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        ServoError::NotFound { what: what.into() }
    }

    /// Shorthand constructor for [`ServoError::FunctionFailed`].
    pub fn function_failed(reason: impl Into<String>) -> Self {
        ServoError::FunctionFailed {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`ServoError::StorageFailed`].
    pub fn storage_failed(reason: impl Into<String>) -> Self {
        ServoError::StorageFailed {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ServoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServoError::OutOfBounds { what } => write!(f, "coordinate out of bounds: {what}"),
            ServoError::ChunkNotLoaded { x, z } => write!(f, "chunk [{x}, {z}] is not loaded"),
            ServoError::NotFound { what } => write!(f, "not found: {what}"),
            ServoError::FunctionFailed { reason } => {
                write!(f, "serverless function failed: {reason}")
            }
            ServoError::StorageFailed { reason } => write!(f, "storage operation failed: {reason}"),
            ServoError::CorruptData { reason } => write!(f, "corrupt data: {reason}"),
            ServoError::LimitExceeded { what } => write!(f, "limit exceeded: {what}"),
            ServoError::Unavailable { what } => write!(f, "unavailable: {what}"),
        }
    }
}

impl std::error::Error for ServoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_and_nonempty() {
        let errors = [
            ServoError::OutOfBounds {
                what: "y=300".into(),
            },
            ServoError::ChunkNotLoaded { x: 1, z: -2 },
            ServoError::not_found("player-3"),
            ServoError::function_failed("timeout"),
            ServoError::storage_failed("throttled"),
            ServoError::CorruptData {
                reason: "bad header".into(),
            },
            ServoError::LimitExceeded {
                what: "concurrency".into(),
            },
            ServoError::Unavailable {
                what: "scheduler".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ServoError>();
    }
}

//! Interest-managed delta broadcast — the replication layer that gets
//! world state *to* clients.
//!
//! The paper scales *simulation* of modifiable virtual environments; this
//! crate models the downstream half of "millions of users": a
//! subscription index over the sharded world, a per-tick delta encoder,
//! and a fan-out stage whose cost is charged like any other tick work.
//!
//! * [`Interest`] / [`Subscription`] — what a subscriber observes. An
//!   avatar or simulated client subscribes to a chunk neighbourhood
//!   (`Interest { center, radius }`), which resolves to a shard superset
//!   via the partition's static chunk→shard hash; a neighbour zone
//!   subscribes to the cluster's border region with whole-shard interest,
//!   re-resolved whenever the partition migrates.
//! * [`ReplicationHub`] — the index plus the encoder. Drained per-shard
//!   dirty deltas and construct/avatar events are dispatched through a
//!   chunk-level interest index (ingest touches exactly the covering
//!   subscribers); each flush turns a subscriber's accumulated dirt into
//!   one epoch-keyed [`ReplicationFrame`]: a subscriber behind N shard
//!   epochs gets one coalesced diff, a fresh subscriber gets a keyframe
//!   of its loaded interest.
//! * [`FanoutStage`] — pushes encoded frames through an autoscaled worker
//!   pool ([`servo_faas::Autoscaler`]) and reports the tick-visible cost
//!   per owning zone, so replication load shows up in QoS like
//!   simulation work does.
//!
//! The zoned cluster (`servo-server`) builds its border mirroring on the
//! same API: each zone is registered via
//! [`ReplicationHub::subscribe_border`] and the mirror protocol asks
//! [`ReplicationHub::border_zones_covering`] who receives a drained
//! border chunk — message-for-message identical to the bespoke mirror
//! path it replaces.

#![warn(missing_docs)]

pub mod fanout;
pub mod hub;
pub mod interest;

pub use fanout::{FanoutConfig, FanoutStage, FanoutStats};
pub use hub::{
    FrameKind, HubConfig, ReplicationFrame, ReplicationHub, ReplicationStats, SubscriberId,
};
pub use interest::{Interest, Subscription};

/// Everything a deployment needs to switch replication on: the encoder's
/// byte model, the fan-out cost model, the flush cohort count, and
/// whether border mirroring routes through the subscription index.
#[derive(Debug, Clone, Default)]
pub struct ReplicationConfig {
    /// Encoder byte model and keyframe-only switch.
    pub hub: HubConfig,
    /// Fan-out worker pool and cost model.
    pub fanout: FanoutConfig,
    /// Round-robin flush cohorts (0 and 1 mean "flush every subscriber
    /// every tick"). With `c` cohorts each subscriber is flushed every
    /// `c`-th tick and its frames coalesce `c` epochs of dirt.
    pub cohorts: u64,
    /// Route the cluster's border mirroring through border subscriptions
    /// instead of the legacy bespoke mirror path. Equivalent
    /// message-for-message; off by default so existing runs stay
    /// byte-identical.
    pub border_via_subscription: bool,
}

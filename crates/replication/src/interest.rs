//! Areas of interest and the two subscription shapes built from them.

use servo_types::ChunkPos;
use servo_world::sharded::shard_index;
use servo_world::ShardMap;

/// A square chunk neighbourhood a client wants to observe: the chunks
/// within Chebyshev distance `radius` of `center`. Radius 0 is the single
/// chunk the avatar stands in; a typical client view is radius 1–3.
///
/// # Example
///
/// ```
/// use servo_replication::Interest;
/// use servo_types::ChunkPos;
///
/// let interest = Interest::new(ChunkPos::new(0, 0), 1);
/// assert!(interest.covers(ChunkPos::new(1, -1)));
/// assert!(!interest.covers(ChunkPos::new(2, 0)));
/// assert_eq!(interest.chunks().len(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// The chunk the subscriber is centred on.
    pub center: ChunkPos,
    /// Chebyshev radius, in chunks.
    pub radius: i32,
}

impl Interest {
    /// An interest centred on `center` covering `radius` chunks in every
    /// lateral direction (negative radii are clamped to zero).
    pub fn new(center: ChunkPos, radius: i32) -> Interest {
        Interest {
            center,
            radius: radius.max(0),
        }
    }

    /// Whether `pos` lies inside the interest region.
    pub fn covers(&self, pos: ChunkPos) -> bool {
        (pos.x - self.center.x).abs() <= self.radius && (pos.z - self.center.z).abs() <= self.radius
    }

    /// Every chunk in the region, in row-major `(x, z)` order.
    pub fn chunks(&self) -> Vec<ChunkPos> {
        let mut out = Vec::with_capacity(((2 * self.radius + 1) * (2 * self.radius + 1)) as usize);
        for x in self.center.x - self.radius..=self.center.x + self.radius {
            for z in self.center.z - self.radius..=self.center.z + self.radius {
                out.push(ChunkPos::new(x, z));
            }
        }
        out
    }

    /// The world shards the region maps to, ascending and deduplicated —
    /// a superset filter over the per-shard dirty deltas the world drains.
    /// Chunk→shard assignment is hash-static, so this set never changes
    /// while the subscriber stays put; only the shard→zone *ownership*
    /// layer above it moves on migration.
    pub fn shard_set(&self, shard_count: usize) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .chunks()
            .into_iter()
            .map(|pos| shard_index(pos, shard_count))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// What a subscriber observes: a client's area of interest, or — for a
/// neighbour zone mirroring the border region — every chunk another zone
/// owns whose lateral neighbourhood touches the subscribing zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscription {
    /// An avatar or simulated client watching a chunk neighbourhood.
    Area(Interest),
    /// A zone server subscribed to the cluster's border region: it covers
    /// exactly the foreign-owned chunks adjacent to terrain it owns. This
    /// is whole-shard interest — the shard set is every shard the zone
    /// does not own — re-resolved whenever the partition migrates.
    Border {
        /// The subscribing zone.
        zone: usize,
    },
}

impl Subscription {
    /// Whether the subscription covers `pos` under the current partition.
    pub fn covers(&self, pos: ChunkPos, map: &ShardMap) -> bool {
        match self {
            Subscription::Area(interest) => interest.covers(pos),
            Subscription::Border { zone } => map.neighbor_zones(pos).contains(zone),
        }
    }

    /// The shard superset the subscription resolves to under `map`.
    pub fn shard_set(&self, map: &ShardMap) -> Vec<usize> {
        match self {
            Subscription::Area(interest) => interest.shard_set(map.shard_count()),
            Subscription::Border { zone } => (0..map.shard_count())
                .filter(|&shard| map.zone_of_shard(shard) != *zone)
                .collect(),
        }
    }
}

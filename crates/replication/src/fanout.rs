//! The fan-out stage: modelled cost of pushing encoded frames to their
//! subscribers through an autoscaled worker pool.

use servo_faas::{Autoscaler, AutoscalerConfig, AutoscalerStats};
use servo_metrics::StatsReport;
use servo_types::{ChunkPos, SimTime};

use crate::hub::ReplicationFrame;

/// Cost model of the fan-out stage. Encoding is charged to the tick of
/// the zone owning the subscriber's terrain (the zone serialised the
/// payload); dispatch rides the worker pool, so its tick-visible share
/// shrinks as the autoscaler adds workers to absorb the frame backlog.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Worker-pool policy; defaults to an elastic pool so a subscriber
    /// storm scales workers instead of the tick.
    pub scaler: AutoscalerConfig,
    /// Tick-path encode cost per megabyte of frame payload.
    pub encode_ms_per_mb: f64,
    /// Dispatch cost per frame on one worker; the tick sees
    /// `frames / workers` of it.
    pub dispatch_ms_per_frame: f64,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            scaler: AutoscalerConfig::elastic(2, 64).with_backlog_per_worker(4096),
            encode_ms_per_mb: 2.0,
            dispatch_ms_per_frame: 0.002,
        }
    }
}

/// Counters of the fan-out stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FanoutStats {
    /// Ticks on which frames were charged.
    pub charges: u64,
    /// Frames pushed through the stage.
    pub frames: u64,
    /// Total frame bytes pushed.
    pub bytes: u64,
    /// Largest single-tick frame backlog observed.
    pub peak_backlog: u64,
    /// Largest ready worker count observed.
    pub peak_workers: u64,
    /// Total tick-visible cost charged, in milliseconds.
    pub charged_ms: f64,
}

impl StatsReport for FanoutStats {
    fn section(&self) -> &'static str {
        "fanout"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("charges", self.charges.to_string()),
            ("frames", self.frames.to_string()),
            ("bytes", self.bytes.to_string()),
            ("peak_backlog", self.peak_backlog.to_string()),
            ("peak_workers", self.peak_workers.to_string()),
            ("charged_ms", format!("{:.3}", self.charged_ms)),
        ]
    }
}

/// Pushes encoded frames to subscribers on an autoscaled worker pool and
/// reports the tick-visible cost per zone.
#[derive(Debug)]
pub struct FanoutStage {
    scaler: Autoscaler,
    config: FanoutConfig,
    stats: FanoutStats,
}

impl FanoutStage {
    /// A stage with the given cost model.
    pub fn new(config: FanoutConfig) -> FanoutStage {
        FanoutStage {
            scaler: Autoscaler::new(config.scaler),
            config,
            stats: FanoutStats::default(),
        }
    }

    /// Charges one tick's frames: `zone_of` attributes each frame to the
    /// zone owning its subscriber's home chunk, and the returned vector is
    /// the tick-visible fan-out cost per zone in milliseconds. With no
    /// frames the stage is inert — zero cost, no autoscaler observation —
    /// so a replication-free tick is byte-identical to a hub-less one.
    pub fn charge(
        &mut self,
        now: SimTime,
        zones: usize,
        frames: &[ReplicationFrame],
        mut zone_of: impl FnMut(ChunkPos) -> usize,
    ) -> Vec<f64> {
        let mut cost = vec![0.0; zones];
        if frames.is_empty() {
            return cost;
        }
        let workers = self.scaler.observe(now, frames.len()).max(1);

        let mut zone_frames = vec![0u64; zones];
        let mut zone_bytes = vec![0u64; zones];
        for frame in frames {
            let zone = zone_of(frame.home).min(zones.saturating_sub(1));
            zone_frames[zone] += 1;
            zone_bytes[zone] += frame.bytes;
        }
        for zone in 0..zones {
            let encode = zone_bytes[zone] as f64 / (1024.0 * 1024.0) * self.config.encode_ms_per_mb;
            let dispatch =
                zone_frames[zone] as f64 * self.config.dispatch_ms_per_frame / workers as f64;
            cost[zone] = encode + dispatch;
            self.stats.charged_ms += cost[zone];
        }

        self.stats.charges += 1;
        self.stats.frames += frames.len() as u64;
        self.stats.bytes += frames.iter().map(|f| f.bytes).sum::<u64>();
        self.stats.peak_backlog = self.stats.peak_backlog.max(frames.len() as u64);
        self.stats.peak_workers = self.stats.peak_workers.max(workers as u64);
        cost
    }

    /// Ready workers in the pool right now.
    pub fn workers(&self) -> usize {
        self.scaler.ready_workers()
    }

    /// Counters of the stage.
    pub fn stats(&self) -> FanoutStats {
        self.stats
    }

    /// Counters of the underlying autoscaler.
    pub fn scaler_stats(&self) -> AutoscalerStats {
        self.scaler.stats()
    }
}

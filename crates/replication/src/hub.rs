//! The subscription index and the epoch-keyed delta encoder.

use std::collections::HashMap;
use std::sync::Arc;

use servo_metrics::StatsReport;
use servo_types::ChunkPos;
use servo_world::sharded::shard_index;
use servo_world::{ShardDelta, ShardMap};

use crate::interest::{Interest, Subscription};

/// Stable handle to a subscriber registered with a [`ReplicationHub`].
pub type SubscriberId = u32;

/// Epoch value meaning "this subscriber has never acknowledged the shard".
const NEVER: u64 = u64::MAX;

/// Tunables of the encoder's byte model. Keyframe bytes are *measured*
/// (the owning zone's actual run-length-encoded chunk snapshot); delta
/// bytes are modelled per chunk — a delta carries only the run patch for
/// the chunk's changed columns, which the simulation does not materialise,
/// so a calibrated constant stands in for it.
#[derive(Debug, Clone, Copy)]
pub struct HubConfig {
    /// Modelled wire size of one chunk's delta patch, in bytes.
    pub delta_bytes_per_chunk: u64,
    /// Fixed framing overhead per [`ReplicationFrame`], in bytes.
    pub frame_header_bytes: u64,
    /// Modelled wire size of one construct/avatar event, in bytes.
    pub event_bytes: u64,
    /// When set, the encoder never sends deltas: every flush re-sends the
    /// subscriber's full interest region as a keyframe. This is the naive
    /// no-delta-compression control the replication ablation compares
    /// against; leave it off everywhere else.
    pub keyframe_only: bool,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            delta_bytes_per_chunk: 48,
            frame_header_bytes: 24,
            event_bytes: 16,
            keyframe_only: false,
        }
    }
}

/// What a flushed frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Full snapshots of every loaded chunk in the subscriber's interest —
    /// sent once on subscribe (and after a retarget into fresh terrain).
    Keyframe,
    /// The coalesced diff since the subscriber's last acknowledged epochs.
    Delta {
        /// How many shard epochs the subscriber was behind at encode time,
        /// maximised over its shard set. A subscriber flushed every tick
        /// sits at 1; a subscriber on a slower cohort coalesces N epochs
        /// into this one frame.
        epochs_behind: u64,
    },
}

/// One encoded update addressed to one subscriber.
#[derive(Debug, Clone)]
pub struct ReplicationFrame {
    /// The addressed subscriber.
    pub subscriber: SubscriberId,
    /// The subscriber's home chunk (its interest centre) — the owning zone
    /// of this chunk is charged for the frame's fan-out cost.
    pub home: ChunkPos,
    /// Keyframe or coalesced delta.
    pub kind: FrameKind,
    /// The chunks the frame carries, sorted by `(x, z)`.
    pub chunks: Vec<ChunkPos>,
    /// Construct/avatar events piggybacked on the frame.
    pub events: u32,
    /// Modelled wire size of the frame.
    pub bytes: u64,
}

/// Counters of the subscription index and encoder.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplicationStats {
    /// Currently registered subscribers (area + border).
    pub subscribers: u64,
    /// Frames encoded in total.
    pub frames: u64,
    /// Keyframes among them.
    pub keyframes: u64,
    /// Delta frames among them.
    pub delta_frames: u64,
    /// Chunk payloads delivered inside frames.
    pub chunks_delivered: u64,
    /// Chunk payloads delivered inside frames that coalesced more than one
    /// epoch (the saving a slower cohort banks).
    pub coalesced_chunks: u64,
    /// Events delivered inside frames.
    pub events_delivered: u64,
    /// Total modelled frame bytes.
    pub bytes_sent: u64,
    /// Bytes of keyframes.
    pub keyframe_bytes: u64,
    /// Bytes of delta frames.
    pub delta_bytes: u64,
    /// Dirty chunks ingested from drained shard deltas.
    pub chunks_ingested: u64,
    /// Border-region chunk copies delivered through the border
    /// subscription path (the mirror protocol's unit of work).
    pub border_chunk_deliveries: u64,
    /// Times the index re-resolved border shard sets after a partition
    /// migration.
    pub partition_resolves: u64,
    /// Subscriber movements applied (each re-resolves one interest).
    pub retargets: u64,
    /// Pending chunks discarded because their subscriber moved away before
    /// the next flush.
    pub dropped_on_move: u64,
}

impl StatsReport for ReplicationStats {
    fn section(&self) -> &'static str {
        "replication"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("subscribers", self.subscribers.to_string()),
            ("frames", self.frames.to_string()),
            ("keyframes", self.keyframes.to_string()),
            ("delta_frames", self.delta_frames.to_string()),
            ("chunks_delivered", self.chunks_delivered.to_string()),
            ("coalesced_chunks", self.coalesced_chunks.to_string()),
            ("events_delivered", self.events_delivered.to_string()),
            ("bytes_sent", self.bytes_sent.to_string()),
            ("keyframe_bytes", self.keyframe_bytes.to_string()),
            ("delta_bytes", self.delta_bytes.to_string()),
            ("chunks_ingested", self.chunks_ingested.to_string()),
            (
                "border_chunk_deliveries",
                self.border_chunk_deliveries.to_string(),
            ),
            ("partition_resolves", self.partition_resolves.to_string()),
            ("retargets", self.retargets.to_string()),
            ("dropped_on_move", self.dropped_on_move.to_string()),
        ]
    }
}

/// Per-subscriber encoder state.
struct SubscriberState {
    sub: Subscription,
    /// The shard superset the subscription resolves to, ascending.
    shards: Vec<usize>,
    /// Last delivered epoch per entry of `shards` ([`NEVER`] = unsynced).
    acked: Vec<u64>,
    /// Dirty chunks accumulated since the last flush, sorted, deduplicated.
    pending: Vec<ChunkPos>,
    /// Events accumulated since the last flush.
    pending_events: u32,
    /// A keyframe is owed (new subscriber, or retargeted into new terrain).
    fresh: bool,
    /// Whether the subscriber is already queued for the next flush.
    queued: bool,
}

impl SubscriberState {
    fn home(&self) -> ChunkPos {
        match self.sub {
            Subscription::Area(interest) => interest.center,
            // Border subscribers are flushed by the mirror path, not the
            // encoder; the home chunk is only used for cost attribution.
            Subscription::Border { .. } => ChunkPos::new(0, 0),
        }
    }
}

/// The area-of-interest subscription index over a sharded world, plus the
/// per-tick delta encoder that turns drained dirty chunks and events into
/// epoch-keyed [`ReplicationFrame`]s.
///
/// Two kinds of subscriber share the index: *area* subscribers (avatars /
/// simulated clients, dispatched through a chunk-level interest index so
/// ingest touches exactly the covering subscribers) and *border*
/// subscribers (neighbour zones with whole-shard interest, queried by the
/// cluster's mirror protocol via [`ReplicationHub::border_zones_covering`]
/// and delivered synchronously on the bus rather than through frames).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use servo_replication::{Interest, ReplicationHub};
/// use servo_types::ChunkPos;
/// use servo_world::{ShardDelta, ShardMap};
///
/// let map = Arc::new(ShardMap::contiguous(16, 1));
/// let mut hub = ReplicationHub::new(Arc::clone(&map));
/// let id = hub.subscribe(Interest::new(ChunkPos::new(0, 0), 1));
///
/// // The fresh subscriber owes a keyframe; no loaded chunks yet, so it is
/// // an empty one.
/// let frames = hub.flush(1, |_| Some(64));
/// assert_eq!(frames.len(), 1);
///
/// // A dirty chunk inside the interest produces a delta frame.
/// hub.ingest(&[ShardDelta { shard: 0, epoch: 1, chunks: vec![ChunkPos::new(1, 1)] }]);
/// let frames = hub.flush(1, |_| Some(64));
/// assert_eq!(frames.len(), 1);
/// assert_eq!(frames[0].chunks, vec![ChunkPos::new(1, 1)]);
/// let _ = id;
/// ```
pub struct ReplicationHub {
    map: Arc<ShardMap>,
    config: HubConfig,
    subs: Vec<Option<SubscriberState>>,
    free: Vec<SubscriberId>,
    /// Chunk-level interest index: chunk → area subscribers covering it.
    /// Membership *is* coverage, so ingest does no distance checks.
    cells: HashMap<ChunkPos, Vec<SubscriberId>>,
    /// Border subscribers, ascending by zone.
    border: Vec<(usize, SubscriberId)>,
    /// Current epoch per shard, updated from ingested deltas.
    shard_epochs: Vec<u64>,
    /// Subscribers with pending work, in first-touched order.
    dirty_queue: Vec<SubscriberId>,
    /// The partition version border shard sets were resolved against.
    map_version: u64,
    /// Flush counter, drives cohort selection.
    flushes: u64,
    stats: ReplicationStats,
}

impl std::fmt::Debug for ReplicationHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationHub")
            .field("subscribers", &self.stats.subscribers)
            .field("border", &self.border.len())
            .field("frames", &self.stats.frames)
            .finish()
    }
}

impl ReplicationHub {
    /// A hub over the given partition with the default byte model.
    pub fn new(map: Arc<ShardMap>) -> ReplicationHub {
        ReplicationHub::with_config(map, HubConfig::default())
    }

    /// A hub with an explicit byte model.
    pub fn with_config(map: Arc<ShardMap>, config: HubConfig) -> ReplicationHub {
        let shard_count = map.shard_count();
        let map_version = map.version();
        ReplicationHub {
            map,
            config,
            subs: Vec::new(),
            free: Vec::new(),
            cells: HashMap::new(),
            border: Vec::new(),
            shard_epochs: vec![0; shard_count],
            dirty_queue: Vec::new(),
            map_version,
            flushes: 0,
            stats: ReplicationStats::default(),
        }
    }

    /// Registers an area subscriber. It owes a keyframe, so it is already
    /// queued for the next flush.
    pub fn subscribe(&mut self, interest: Interest) -> SubscriberId {
        let shards = interest.shard_set(self.map.shard_count());
        let acked = vec![NEVER; shards.len()];
        let id = self.insert(SubscriberState {
            sub: Subscription::Area(interest),
            shards,
            acked,
            pending: Vec::new(),
            pending_events: 0,
            fresh: true,
            queued: true,
        });
        self.dirty_queue.push(id);
        for pos in interest.chunks() {
            self.cells.entry(pos).or_default().push(id);
        }
        id
    }

    /// Registers a neighbour zone as a border subscriber. Border
    /// subscribers start synced (their replica world was built alongside
    /// the cluster) and are serviced by the cluster's mirror protocol, so
    /// they never appear in encoder frames.
    pub fn subscribe_border(&mut self, zone: usize) -> SubscriberId {
        let sub = Subscription::Border { zone };
        let shards = sub.shard_set(&self.map);
        let acked = vec![0; shards.len()];
        let id = self.insert(SubscriberState {
            sub,
            shards,
            acked,
            pending: Vec::new(),
            pending_events: 0,
            fresh: false,
            queued: false,
        });
        self.border.push((zone, id));
        self.border.sort_unstable();
        id
    }

    /// Removes a subscriber. Unknown ids are ignored.
    pub fn unsubscribe(&mut self, id: SubscriberId) {
        let Some(state) = self.subs.get_mut(id as usize).and_then(Option::take) else {
            return;
        };
        match state.sub {
            Subscription::Area(interest) => {
                for pos in interest.chunks() {
                    if let Some(cell) = self.cells.get_mut(&pos) {
                        cell.retain(|&other| other != id);
                        if cell.is_empty() {
                            self.cells.remove(&pos);
                        }
                    }
                }
            }
            Subscription::Border { .. } => {
                self.border.retain(|&(_, other)| other != id);
            }
        }
        self.free.push(id);
        self.stats.subscribers -= 1;
    }

    /// Moves an area subscriber's interest to a new centre: the chunk
    /// index is re-resolved, pending chunks the subscriber moved away from
    /// are dropped, and the freshly entered terrain is owed a keyframe.
    /// No-op for border subscribers and unknown ids.
    pub fn retarget(&mut self, id: SubscriberId, center: ChunkPos) {
        let Some(state) = self.subs.get_mut(id as usize).and_then(Option::as_mut) else {
            return;
        };
        let Subscription::Area(old) = state.sub else {
            return;
        };
        if old.center == center {
            return;
        }
        let interest = Interest::new(center, old.radius);
        state.sub = Subscription::Area(interest);
        state.shards = interest.shard_set(self.map.shard_count());
        state.acked = vec![NEVER; state.shards.len()];
        let before = state.pending.len();
        state.pending.retain(|&pos| interest.covers(pos));
        self.stats.dropped_on_move += (before - state.pending.len()) as u64;
        state.fresh = true;
        if !state.queued {
            state.queued = true;
            self.dirty_queue.push(id);
        }
        self.stats.retargets += 1;

        for pos in old.chunks() {
            if interest.covers(pos) {
                continue;
            }
            if let Some(cell) = self.cells.get_mut(&pos) {
                cell.retain(|&other| other != id);
                if cell.is_empty() {
                    self.cells.remove(&pos);
                }
            }
        }
        for pos in interest.chunks() {
            if old.covers(pos) {
                continue;
            }
            self.cells.entry(pos).or_default().push(id);
        }
    }

    /// Feeds drained per-shard dirty deltas into the index: every covering
    /// area subscriber accumulates the chunk for its next frame. Border
    /// subscribers are not touched — the mirror protocol delivers to them
    /// synchronously via [`ReplicationHub::border_zones_covering`].
    pub fn ingest(&mut self, deltas: &[ShardDelta]) {
        for delta in deltas {
            if let Some(slot) = self.shard_epochs.get_mut(delta.shard) {
                *slot = (*slot).max(delta.epoch);
            }
            for &pos in &delta.chunks {
                self.stats.chunks_ingested += 1;
                let Some(cell) = self.cells.get(&pos) else {
                    continue;
                };
                for &id in cell {
                    let state = self.subs[id as usize]
                        .as_mut()
                        .expect("cells index a live subscriber");
                    if let Err(slot) = state.pending.binary_search(&pos) {
                        state.pending.insert(slot, pos);
                    }
                    if !state.queued {
                        state.queued = true;
                        self.dirty_queue.push(id);
                    }
                }
            }
        }
    }

    /// Feeds construct/avatar events (each at a chunk position, possibly
    /// batched) to the covering area subscribers; they are piggybacked on
    /// the subscriber's next frame.
    pub fn ingest_events(&mut self, events: &[(ChunkPos, u32)]) {
        for &(pos, count) in events {
            let Some(cell) = self.cells.get(&pos) else {
                continue;
            };
            for &id in cell {
                let state = self.subs[id as usize]
                    .as_mut()
                    .expect("cells index a live subscriber");
                state.pending_events += count;
                if !state.queued {
                    state.queued = true;
                    self.dirty_queue.push(id);
                }
            }
        }
    }

    /// Re-resolves border shard sets if the partition migrated since the
    /// last call. Area shard sets are hash-static and never move; only the
    /// ownership-derived border subscriptions depend on the partition.
    pub fn sync_partition(&mut self) {
        let version = self.map.version();
        if version == self.map_version {
            return;
        }
        self.map_version = version;
        self.stats.partition_resolves += 1;
        for &(zone, id) in &self.border {
            let state = self.subs[id as usize]
                .as_mut()
                .expect("border indexes a live subscriber");
            state.shards = Subscription::Border { zone }.shard_set(&self.map);
            state.acked = vec![0; state.shards.len()];
        }
    }

    /// The zones whose border subscription covers `pos` under the current
    /// partition, ascending. For a chunk drained by its owner this is
    /// exactly the set of live-subscribed zones owning laterally adjacent
    /// foreign terrain — the recipients of the mirror protocol.
    pub fn border_zones_covering(&self, pos: ChunkPos) -> Vec<usize> {
        self.border
            .iter()
            .filter(|&&(zone, _)| Subscription::Border { zone }.covers(pos, &self.map))
            .map(|&(zone, _)| zone)
            .collect()
    }

    /// Records one border-region chunk copy delivered through the mirror
    /// protocol (the transport is the cluster bus, not an encoder frame).
    pub fn note_border_delivery(&mut self) {
        self.stats.border_chunk_deliveries += 1;
    }

    /// Encodes and returns the frames due this tick.
    ///
    /// Subscribers are flushed in `cohorts` round-robin groups (cohort =
    /// `id % cohorts`); a subscriber in a slower cohort accumulates
    /// several epochs of dirt and receives them as one coalesced delta. A
    /// fresh subscriber receives a keyframe of every *loaded* chunk in its
    /// interest instead: `sizer` maps a chunk position to its current
    /// snapshot size in bytes, or `None` when the chunk is not loaded (or
    /// its owner is dead) — such chunks are skipped and re-offered once
    /// they exist.
    pub fn flush(
        &mut self,
        cohorts: u64,
        mut sizer: impl FnMut(ChunkPos) -> Option<u64>,
    ) -> Vec<ReplicationFrame> {
        let cohorts = cohorts.max(1);
        let cohort = self.flushes % cohorts;
        self.flushes += 1;

        let mut frames = Vec::new();
        let mut retained = Vec::new();
        let queue = std::mem::take(&mut self.dirty_queue);
        for id in queue {
            if u64::from(id) % cohorts != cohort {
                retained.push(id);
                continue;
            }
            let Some(state) = self.subs[id as usize].as_mut() else {
                continue;
            };
            state.queued = false;

            let keyframe = state.fresh || self.config.keyframe_only;
            let (kind, chunks, bytes) = if keyframe {
                let Subscription::Area(interest) = state.sub else {
                    continue;
                };
                let mut bytes = self.config.frame_header_bytes;
                let mut chunks = Vec::new();
                for pos in interest.chunks() {
                    if let Some(size) = sizer(pos) {
                        bytes += size;
                        chunks.push(pos);
                    }
                }
                state.pending.clear();
                state.fresh = false;
                (FrameKind::Keyframe, chunks, bytes)
            } else {
                let chunks = std::mem::take(&mut state.pending);
                let epochs_behind = state
                    .shards
                    .iter()
                    .zip(&state.acked)
                    .map(|(&shard, &acked)| self.shard_epochs[shard].saturating_sub(acked))
                    .max()
                    .unwrap_or(0)
                    .max(1);
                let bytes = self.config.frame_header_bytes
                    + chunks.len() as u64 * self.config.delta_bytes_per_chunk
                    + u64::from(state.pending_events) * self.config.event_bytes;
                (FrameKind::Delta { epochs_behind }, chunks, bytes)
            };

            // Acknowledge: the subscriber is now current on every shard it
            // resolves to.
            for (slot, &shard) in state.shards.iter().enumerate() {
                state.acked[slot] = self.shard_epochs[shard];
            }
            let events = std::mem::take(&mut state.pending_events);

            self.stats.frames += 1;
            self.stats.chunks_delivered += chunks.len() as u64;
            self.stats.events_delivered += u64::from(events);
            self.stats.bytes_sent += bytes;
            match kind {
                FrameKind::Keyframe => {
                    self.stats.keyframes += 1;
                    self.stats.keyframe_bytes += bytes;
                }
                FrameKind::Delta { epochs_behind } => {
                    self.stats.delta_frames += 1;
                    self.stats.delta_bytes += bytes;
                    if epochs_behind > 1 {
                        self.stats.coalesced_chunks += chunks.len() as u64;
                    }
                }
            }

            frames.push(ReplicationFrame {
                subscriber: id,
                home: state.home(),
                kind,
                chunks,
                events,
                bytes,
            });
        }
        self.dirty_queue = retained;
        frames
    }

    /// Current counters.
    pub fn stats(&self) -> ReplicationStats {
        self.stats
    }

    /// Registered subscribers (area + border).
    pub fn subscriber_count(&self) -> u64 {
        self.stats.subscribers
    }

    /// The shard superset subscriber `id` currently resolves to.
    pub fn shard_set_of(&self, id: SubscriberId) -> Option<&[usize]> {
        self.subs
            .get(id as usize)
            .and_then(Option::as_ref)
            .map(|state| state.shards.as_slice())
    }

    /// The home shard of subscriber `id` (the shard of its interest
    /// centre), used to attribute fan-out cost to the owning zone.
    pub fn home_shard_of(&self, id: SubscriberId) -> Option<usize> {
        self.subs
            .get(id as usize)
            .and_then(Option::as_ref)
            .map(|state| shard_index(state.home(), self.map.shard_count()))
    }

    fn insert(&mut self, state: SubscriberState) -> SubscriberId {
        self.stats.subscribers += 1;
        match self.free.pop() {
            Some(id) => {
                self.subs[id as usize] = Some(state);
                id
            }
            None => {
                let id = self.subs.len() as SubscriberId;
                self.subs.push(Some(state));
                id
            }
        }
    }
}

//! Exact-delivery properties of the subscription index.
//!
//! The central property: every dirty chunk fed through
//! [`ReplicationHub::ingest`] reaches **exactly** the subscribers whose
//! interest covers it — no drops, no duplicates, no spurious deliveries —
//! and stays exact while subscribers move ([`ReplicationHub::retarget`])
//! and while the shard partition migrates underneath the index. The hub is
//! driven op-by-op against a trivial per-subscriber set model; flushing
//! after every op makes the model's expectation sharp (a subscriber is due
//! a frame iff it is fresh or has accumulated dirt).

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use servo_replication::{FrameKind, HubConfig, Interest, ReplicationHub};
use servo_types::ChunkPos;
use servo_world::sharded::shard_index;
use servo_world::{ShardDelta, ShardMap};

const SHARDS: usize = 16;
const ZONES: usize = 4;

/// One scripted step against the hub.
#[derive(Debug, Clone)]
enum Op {
    /// Chunks modified this tick, drained as per-shard deltas.
    Dirty(Vec<(i32, i32)>),
    /// Subscriber `index % live` moves its interest centre.
    Retarget { index: usize, center: (i32, i32) },
    /// The partition migrates a shard to a new zone.
    Migrate { shard: usize, zone: usize },
}

fn chunk_strategy() -> impl Strategy<Value = (i32, i32)> {
    (-10i32..10, -10i32..10)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => prop::collection::vec(chunk_strategy(), 1..8).prop_map(Op::Dirty),
        2 => (0usize..8, chunk_strategy())
            .prop_map(|(index, center)| Op::Retarget { index, center }),
        1 => (0usize..SHARDS, 0usize..ZONES)
            .prop_map(|(shard, zone)| Op::Migrate { shard, zone }),
    ]
}

/// Groups one tick's dirty chunks into the per-shard drain shape the
/// cluster produces, stamping every touched shard with `epoch`.
fn drain(chunks: &[(i32, i32)], epoch: u64) -> Vec<ShardDelta> {
    let mut deltas: Vec<ShardDelta> = Vec::new();
    for &(x, z) in chunks {
        let pos = ChunkPos::new(x, z);
        let shard = shard_index(pos, SHARDS);
        let delta = match deltas.iter_mut().find(|d| d.shard == shard) {
            Some(delta) => delta,
            None => {
                deltas.push(ShardDelta {
                    shard,
                    epoch,
                    chunks: Vec::new(),
                });
                deltas.last_mut().unwrap()
            }
        };
        if !delta.chunks.contains(&pos) {
            delta.chunks.push(pos);
        }
    }
    for delta in &mut deltas {
        delta.chunks.sort();
    }
    deltas
}

proptest! {
    /// Drive the hub with dirty ticks, movement, and shard migration,
    /// flushing every step: each delta frame carries exactly the covered
    /// dirty set, each fresh subscriber gets a keyframe of its whole
    /// region, and a subscriber appears in a flush iff the model owes it
    /// a frame.
    #[test]
    fn every_dirty_chunk_reaches_exactly_the_covering_subscribers(
        subs in prop::collection::vec((chunk_strategy(), 0i32..3), 1..6),
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let map = Arc::new(ShardMap::contiguous(SHARDS, ZONES));
        let mut hub = ReplicationHub::new(Arc::clone(&map));

        // Model state, index-aligned with subscriber ids.
        let mut interests: Vec<Interest> = Vec::new();
        let mut pending: Vec<BTreeSet<ChunkPos>> = Vec::new();
        let mut fresh: Vec<bool> = Vec::new();
        for &((x, z), radius) in &subs {
            let interest = Interest::new(ChunkPos::new(x, z), radius);
            let id = hub.subscribe(interest);
            prop_assert_eq!(id as usize, interests.len());
            interests.push(interest);
            pending.push(BTreeSet::new());
            fresh.push(true);
        }

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Dirty(chunks) => {
                    hub.ingest(&drain(chunks, step as u64 + 1));
                    for &(x, z) in chunks {
                        let pos = ChunkPos::new(x, z);
                        for (i, interest) in interests.iter().enumerate() {
                            if interest.covers(pos) {
                                pending[i].insert(pos);
                            }
                        }
                    }
                }
                Op::Retarget { index, center } => {
                    let i = index % interests.len();
                    let center = ChunkPos::new(center.0, center.1);
                    hub.retarget(i as u32, center);
                    if interests[i].center != center {
                        interests[i] = Interest::new(center, interests[i].radius);
                        let moved = interests[i];
                        pending[i].retain(|&pos| moved.covers(pos));
                        fresh[i] = true;
                    }
                }
                Op::Migrate { shard, zone } => {
                    // Area interests are hash-static: ownership movement
                    // must not change what any client receives.
                    map.migrate(*shard, *zone);
                    hub.sync_partition();
                }
            }

            // Snapshot what the model owes before the flush consumes it.
            let owed: Vec<bool> = (0..interests.len())
                .map(|i| fresh[i] || !pending[i].is_empty())
                .collect();
            let frames = hub.flush(1, |_| Some(64));

            // A subscriber is flushed exactly once, and exactly when the
            // model owes it something.
            let mut seen: Vec<bool> = vec![false; interests.len()];
            for frame in &frames {
                let i = frame.subscriber as usize;
                prop_assert!(!seen[i], "subscriber {} flushed twice in one tick", i);
                seen[i] = true;

                match frame.kind {
                    FrameKind::Keyframe => {
                        prop_assert!(fresh[i], "unexpected keyframe for subscriber {}", i);
                        // Every chunk in the region is "loaded" under this
                        // sizer, so the keyframe is the full region.
                        prop_assert_eq!(&frame.chunks, &interests[i].chunks());
                        fresh[i] = false;
                    }
                    FrameKind::Delta { .. } => {
                        prop_assert!(!fresh[i], "fresh subscriber {} got a delta", i);
                        let expected: Vec<ChunkPos> = pending[i].iter().copied().collect();
                        prop_assert_eq!(
                            &frame.chunks, &expected,
                            "delta for subscriber {} at step {}", i, step
                        );
                    }
                }
                pending[i].clear();
            }
            for (i, flushed) in seen.iter().enumerate() {
                prop_assert_eq!(
                    *flushed, owed[i],
                    "subscriber {} owed={} flushed={} at step {}", i, owed[i], *flushed, step
                );
            }
        }
    }
}

#[test]
fn keyframe_then_delta_transition() {
    let map = Arc::new(ShardMap::contiguous(SHARDS, 1));
    let mut hub = ReplicationHub::new(Arc::clone(&map));
    let id = hub.subscribe(Interest::new(ChunkPos::new(0, 0), 1));

    let frames = hub.flush(1, |_| Some(40));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].kind, FrameKind::Keyframe);
    assert_eq!(frames[0].chunks.len(), 9);
    // 24-byte header + nine 40-byte snapshots.
    assert_eq!(frames[0].bytes, 24 + 9 * 40);

    hub.ingest(&[ShardDelta {
        shard: shard_index(ChunkPos::new(1, 0), SHARDS),
        epoch: 1,
        chunks: vec![ChunkPos::new(1, 0)],
    }]);
    let frames = hub.flush(1, |_| Some(40));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].subscriber, id);
    assert_eq!(frames[0].kind, FrameKind::Delta { epochs_behind: 1 });
    assert_eq!(frames[0].chunks, vec![ChunkPos::new(1, 0)]);

    // Nothing pending: the next flush is empty, not a zero-chunk frame.
    assert!(hub.flush(1, |_| Some(40)).is_empty());
}

#[test]
fn slow_cohort_receives_one_coalesced_delta() {
    let map = Arc::new(ShardMap::contiguous(SHARDS, 1));
    let mut hub = ReplicationHub::new(Arc::clone(&map));
    let id = hub.subscribe(Interest::new(ChunkPos::new(0, 0), 2));
    hub.flush(1, |_| Some(40)); // burn the keyframe

    // Two epochs of dirt land while the subscriber's cohort is not up.
    let a = ChunkPos::new(1, 1);
    let b = ChunkPos::new(-1, 0);
    for (epoch, pos) in [(1, a), (2, b)] {
        hub.ingest(&[ShardDelta {
            shard: shard_index(pos, SHARDS),
            epoch,
            chunks: vec![pos],
        }]);
    }

    // Cohort 0 of 4 is flushed first; subscriber 0 belongs to it, so force
    // the miss by flushing three off-cohorts first with cohorts=4 after
    // one idle flush (flush counter = 1 → cohort 1).
    assert!(hub.flush(4, |_| Some(40)).is_empty()); // cohort 1: not id 0
    assert!(hub.flush(4, |_| Some(40)).is_empty()); // cohort 2
    assert!(hub.flush(4, |_| Some(40)).is_empty()); // cohort 3
    let frames = hub.flush(4, |_| Some(40)); // cohort 0: due
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].subscriber, id);
    match frames[0].kind {
        FrameKind::Delta { epochs_behind } => assert!(
            epochs_behind > 1,
            "coalesced frame should report the epoch gap, got {}",
            epochs_behind
        ),
        other => panic!("expected a coalesced delta, got {:?}", other),
    }
    let mut chunks = frames[0].chunks.clone();
    chunks.sort();
    let mut expected = vec![a, b];
    expected.sort();
    assert_eq!(chunks, expected);
    assert_eq!(hub.stats().coalesced_chunks, 2);
}

#[test]
fn retarget_drops_departed_pending_and_owes_a_keyframe() {
    let map = Arc::new(ShardMap::contiguous(SHARDS, 1));
    let mut hub = ReplicationHub::new(Arc::clone(&map));
    let id = hub.subscribe(Interest::new(ChunkPos::new(0, 0), 1));
    hub.flush(1, |_| Some(40));

    let near = ChunkPos::new(1, 0);
    hub.ingest(&[ShardDelta {
        shard: shard_index(near, SHARDS),
        epoch: 1,
        chunks: vec![near],
    }]);

    // Teleport far away: the pending chunk is now outside the interest.
    hub.retarget(id, ChunkPos::new(50, 50));
    assert_eq!(hub.stats().dropped_on_move, 1);
    assert_eq!(hub.stats().retargets, 1);

    let frames = hub.flush(1, |_| Some(40));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].kind, FrameKind::Keyframe);
    assert_eq!(
        frames[0].chunks,
        Interest::new(ChunkPos::new(50, 50), 1).chunks()
    );

    // Dirt in the new region flows as deltas again.
    let moved = ChunkPos::new(50, 51);
    hub.ingest(&[ShardDelta {
        shard: shard_index(moved, SHARDS),
        epoch: 2,
        chunks: vec![moved],
    }]);
    let frames = hub.flush(1, |_| Some(40));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].chunks, vec![moved]);
}

#[test]
fn keyframe_only_mode_resends_the_full_region_every_flush() {
    let map = Arc::new(ShardMap::contiguous(SHARDS, 1));
    let config = HubConfig {
        keyframe_only: true,
        ..HubConfig::default()
    };
    let mut hub = ReplicationHub::with_config(Arc::clone(&map), config);
    hub.subscribe(Interest::new(ChunkPos::new(0, 0), 1));
    hub.flush(1, |_| Some(40));

    let pos = ChunkPos::new(1, 0);
    hub.ingest(&[ShardDelta {
        shard: shard_index(pos, SHARDS),
        epoch: 1,
        chunks: vec![pos],
    }]);
    let frames = hub.flush(1, |_| Some(40));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].kind, FrameKind::Keyframe);
    assert_eq!(frames[0].chunks.len(), 9);
    assert_eq!(hub.stats().delta_frames, 0);
}

/// With every zone border-subscribed, the hub's covering-zone resolution is
/// definitionally the mirror protocol's recipient set — including after the
/// partition migrates and the border shard sets are re-resolved.
#[test]
fn border_subscribers_cover_exactly_the_neighbor_zones() {
    let map = Arc::new(ShardMap::contiguous(SHARDS, ZONES));
    let mut hub = ReplicationHub::new(Arc::clone(&map));
    for zone in 0..ZONES {
        hub.subscribe_border(zone);
    }

    let sweep = |hub: &ReplicationHub| {
        for x in -12..12 {
            for z in -12..12 {
                let pos = ChunkPos::new(x, z);
                assert_eq!(
                    hub.border_zones_covering(pos),
                    map.neighbor_zones(pos),
                    "covering set diverged from neighbor_zones at {}",
                    pos
                );
            }
        }
    };
    sweep(&hub);

    // Migrate a shard and re-resolve: the equivalence must survive
    // ownership movement.
    assert!(map.migrate(0, 2));
    hub.sync_partition();
    assert_eq!(hub.stats().partition_resolves, 1);
    sweep(&hub);

    // Border subscribers never receive encoder frames.
    assert!(hub.flush(1, |_| Some(40)).is_empty());
}

#[test]
fn unsubscribe_stops_delivery_and_frees_the_cell_index() {
    let map = Arc::new(ShardMap::contiguous(SHARDS, 1));
    let mut hub = ReplicationHub::new(Arc::clone(&map));
    let a = hub.subscribe(Interest::new(ChunkPos::new(0, 0), 1));
    let b = hub.subscribe(Interest::new(ChunkPos::new(0, 0), 1));
    hub.flush(1, |_| Some(40));

    hub.unsubscribe(a);
    assert_eq!(hub.subscriber_count(), 1);

    let pos = ChunkPos::new(0, 1);
    hub.ingest(&[ShardDelta {
        shard: shard_index(pos, SHARDS),
        epoch: 1,
        chunks: vec![pos],
    }]);
    let frames = hub.flush(1, |_| Some(40));
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].subscriber, b);
}

//! Degeneracy guarantees of the replication layer:
//!
//! * border mirroring routed through whole-shard border subscriptions is
//!   tick-for-tick and message-count identical to the legacy bespoke
//!   mirror path — with and without shard migrations underneath;
//! * client fan-out is pure overlay: frames cost coordination time and
//!   bus messages, but every simulation counter, tick duration, and world
//!   byte is identical to a cluster without any subscribers.

use servo_redstone::generators;
use servo_replication::{Interest, ReplicationConfig};
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_server::ServerConfig;
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier};
use servo_types::{ChunkPos, SimDuration};
use servo_workload::{BehaviorKind, PlayerFleet};

fn flat_config() -> ServerConfig {
    ServerConfig::opencraft().with_view_distance(32)
}

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

/// The standard 4-zone baseline with persistence and seam-crossing
/// constructs, run for `secs` seconds — one arm of each equivalence check.
fn run_arm(
    seed: u64,
    secs: u64,
    configure: impl FnOnce(&mut ShardedGameCluster),
) -> ShardedGameCluster {
    let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
    for zone in 0..4 {
        cluster.attach_persistence(
            zone,
            BlobStore::new(BlobTier::Standard, SimRng::seed(500 + zone as u64)),
            SimRng::seed(600 + zone as u64),
            10,
        );
    }
    configure(&mut cluster);
    let sites = border_construct_sites(cluster.shard_map(), 6);
    for site in &sites {
        cluster.add_construct(place_across_east_seam(&generators::wire_line(14), *site, 6));
    }
    let mut fleet = random_fleet(16, seed ^ 0x0f1ce);
    cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(secs));
    cluster.flush_persistence();
    cluster
}

/// Full-depth cluster comparison: coordination counters, critical path,
/// member counters and timelines, and per-zone world bytes.
fn assert_clusters_identical(a: &ShardedGameCluster, b: &ShardedGameCluster) {
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.critical_path_durations(), b.critical_path_durations());
    for (zone, (sa, sb)) in a.servers().iter().zip(b.servers()).enumerate() {
        assert_eq!(sa.stats(), sb.stats(), "zone {zone} counters diverged");
        assert_eq!(
            sa.tick_durations(),
            sb.tick_durations(),
            "zone {zone} timeline diverged"
        );
        assert_eq!(sa.now(), sb.now());
        let mut pa = sa.world().loaded_positions();
        let mut pb = sb.world().loaded_positions();
        pa.sort_by_key(|p| (p.x, p.z));
        pb.sort_by_key(|p| (p.x, p.z));
        assert_eq!(pa, pb, "zone {zone} terrain diverged");
        for pos in pa {
            assert_eq!(
                sa.world().read_chunk(pos, |c| c.to_bytes()),
                sb.world().read_chunk(pos, |c| c.to_bytes()),
                "zone {zone} chunk {pos} diverged"
            );
        }
    }
}

#[test]
fn border_via_subscription_matches_legacy_mirror_exactly() {
    let seed = 203;
    let legacy = run_arm(seed, 5, |_| {});
    let subscribed = run_arm(seed, 5, |cluster| {
        cluster.enable_replication(ReplicationConfig {
            border_via_subscription: true,
            ..ReplicationConfig::default()
        });
    });

    // The run exercised the mirror protocol at all.
    assert!(legacy.stats().border_chunk_updates > 0);
    // With zero clients the hub emits no frames, so even the frame counter
    // agrees — the stats structs are equal wholesale.
    assert_eq!(subscribed.stats().replication_frames, 0);
    assert_clusters_identical(&legacy, &subscribed);

    // Every mirrored chunk copy went through the subscription index.
    let repl = subscribed.replication_stats().expect("hub attached");
    assert_eq!(
        repl.border_chunk_deliveries,
        subscribed.stats().border_chunk_updates
    );
    assert!(repl.chunks_ingested > 0, "the hub never saw the drain");
    assert_eq!(repl.frames, 0);
}

#[test]
fn border_via_subscription_survives_shard_migrations() {
    use servo_server::cluster::zone_hotspot_sites;
    use servo_types::BlockPos;
    use servo_workload::Hotspot;
    use servo_world::{RebalanceConfig, RebalancePolicy};

    let seed = 207;
    let run = |via_subscription: bool| {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
        for zone in 0..4 {
            cluster.attach_persistence(
                zone,
                BlobStore::new(BlobTier::Standard, SimRng::seed(500 + zone as u64)),
                SimRng::seed(600 + zone as u64),
                10,
            );
        }
        cluster.enable_rebalancing(RebalancePolicy::new(RebalanceConfig {
            warmup_ticks: 10,
            evaluate_every: 5,
            cooldown_ticks: 20,
            trigger_ratio: 1.2,
            min_gap_ms: 0.5,
            max_migrations_per_step: 8,
            ..RebalanceConfig::default()
        }));
        if via_subscription {
            cluster.enable_replication(ReplicationConfig {
                border_via_subscription: true,
                ..ReplicationConfig::default()
            });
        }
        let sites = zone_hotspot_sites(cluster.shard_map(), 0, 4);
        for site in &sites {
            let base = site.min_block() + BlockPos::new(2, 6, 2);
            cluster.add_construct(generators::wire_line(6).translated(base));
        }
        let mut fleet = PlayerFleet::new(
            BehaviorKind::Bounded { radius: 16.0 },
            SimRng::seed(seed ^ 1),
        );
        fleet.connect_all(48);
        fleet.set_hotspot(Hotspot {
            targets: Hotspot::chunk_centers(&sites),
            converge_at: servo_types::SimTime::from_secs(2),
            disperse_at: servo_types::SimTime::from_secs(3_600),
            travel_speed: 24.0,
            dwell_radius: 4.0,
        });
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(10));
        cluster
    };

    let legacy = run(false);
    let subscribed = run(true);

    // The partition actually moved under the border subscriptions...
    assert!(
        legacy.rebalance_stats().shard_migrations > 0,
        "the hotspot never triggered a migration"
    );
    assert_eq!(legacy.rebalance_stats(), subscribed.rebalance_stats());
    // ...and the hub re-resolved its ownership-derived shard sets.
    let repl = subscribed.replication_stats().expect("hub attached");
    assert!(repl.partition_resolves > 0, "no border re-resolution ran");
    assert_clusters_identical(&legacy, &subscribed);
}

#[test]
fn client_fanout_never_touches_simulation_results() {
    let seed = 211;
    let baseline = run_arm(seed, 5, |_| {});
    let replicated = run_arm(seed, 5, |cluster| {
        cluster.enable_replication(ReplicationConfig {
            cohorts: 2,
            ..ReplicationConfig::default()
        });
        // Clients watching the seam terrain the constructs keep dirty,
        // plus one that moves mid-run (exercising retarget in situ).
        let sites = border_construct_sites(cluster.shard_map(), 6);
        for site in &sites {
            cluster
                .subscribe_client(Interest::new(*site, 2))
                .expect("hub attached");
        }
        let mover = cluster
            .subscribe_client(Interest::new(ChunkPos::new(0, 0), 1))
            .expect("hub attached");
        cluster.retarget_client(mover, sites[0]);
    });

    // Frames flowed: keyframes for the fresh subscribers, deltas for the
    // construct dirt under their interests.
    let repl = replicated.replication_stats().expect("hub attached");
    assert!(repl.keyframes >= 7, "each client owes one keyframe");
    assert!(repl.delta_frames > 0, "no delta ever reached a client");
    assert!(repl.chunks_delivered > 0);
    let frames = replicated.stats().replication_frames;
    assert_eq!(frames, repl.frames);
    assert!(frames > 0);

    // The frames rode the bus (bulk lane) and were charged to the critical
    // path — and changed nothing else: removing their two counters from
    // the replicated arm's stats yields the baseline's stats exactly.
    let mut masked = replicated.stats();
    assert_eq!(
        masked.cross_server_messages,
        baseline.stats().cross_server_messages + frames
    );
    masked.cross_server_messages -= frames;
    masked.replication_frames = 0;
    assert_eq!(masked, baseline.stats());

    // Member servers are byte-identical: fan-out cost lands on the
    // cluster's coordination segment, never inside a zone tick.
    for (zone, (sa, sb)) in baseline
        .servers()
        .iter()
        .zip(replicated.servers())
        .enumerate()
    {
        assert_eq!(sa.stats(), sb.stats(), "zone {zone} counters diverged");
        assert_eq!(
            sa.tick_durations(),
            sb.tick_durations(),
            "zone {zone} timeline diverged"
        );
    }
    // The coordination charge is visible: the replicated arm's critical
    // path dominates the baseline's tick for tick.
    let base_path = baseline.critical_path_durations();
    let repl_path = replicated.critical_path_durations();
    assert_eq!(base_path.len(), repl_path.len());
    assert!(
        base_path.iter().zip(&repl_path).all(|(a, b)| b >= a),
        "fan-out cost went missing from the critical path"
    );
    assert!(
        base_path.iter().zip(&repl_path).any(|(a, b)| b > a),
        "fan-out was never charged"
    );
    let fanout = replicated.fanout_stats().expect("hub attached");
    assert!(fanout.charged_ms > 0.0);
    assert_eq!(fanout.frames, frames);
}

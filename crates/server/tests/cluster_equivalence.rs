//! Determinism guarantees of [`ShardedGameCluster`]:
//!
//! * a 1-zone cluster is exactly a single server — tick counters, tick
//!   durations, world state and construct states all match a plain
//!   [`GameServer`] built from the same seed;
//! * in a multi-zone cluster every avatar is simulated by exactly one zone
//!   per tick, including the tick on which it crosses a zone boundary, and
//!   the cluster's handoff accounting matches an independent replay of the
//!   routing rule.

use proptest::prelude::*;
use servo_pcg::FlatGenerator;
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_server::{GameServer, LocalGenerationBackend, LocalScBackend, ServerConfig};
use servo_simkit::SimRng;
use servo_types::{ConstructId, SimDuration};
use servo_workload::{BehaviorKind, PlayerFleet};

fn flat_config() -> ServerConfig {
    ServerConfig::opencraft().with_view_distance(32)
}

/// Builds the exact server a 1-zone [`ShardedGameCluster::baseline`]
/// creates for zone 0, without the cluster around it.
fn plain_zone_zero(config: ServerConfig, seed: u64) -> GameServer {
    GameServer::new(
        config,
        Box::new(LocalScBackend::every_other_tick()),
        Box::new(LocalGenerationBackend::new(
            Box::new(FlatGenerator::default()),
            8,
        )),
        SimRng::seed(seed).substream_indexed("zone", 0),
    )
}

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

#[test]
fn one_zone_cluster_matches_plain_server_exactly() {
    let seed = 42;
    let constructs = 12usize;
    let duration = SimDuration::from_secs(5);

    let mut plain = plain_zone_zero(flat_config(), seed);
    for i in 0..constructs {
        plain.add_construct(generators::dense_circuit(32 + i));
    }
    let mut plain_fleet = random_fleet(15, 7);
    plain.run_with_fleet(&mut plain_fleet, duration);

    let mut cluster = ShardedGameCluster::baseline(flat_config(), 1, seed);
    for i in 0..constructs {
        cluster.add_construct(generators::dense_circuit(32 + i));
    }
    let mut cluster_fleet = random_fleet(15, 7);
    cluster.run_with_fleet(&mut cluster_fleet, duration);
    let member = cluster.server(0);

    // Tick counters are identical.
    assert_eq!(plain.stats(), member.stats());
    assert_eq!(plain.current_tick(), member.current_tick());
    // Tick durations — and therefore the whole virtual timeline — match;
    // the cluster's critical path is exactly the single member's series.
    assert_eq!(plain.tick_durations(), member.tick_durations());
    assert_eq!(plain.tick_durations(), cluster.critical_path_durations());
    assert_eq!(plain.now(), member.now());
    assert_eq!(plain.now(), cluster.now());
    // World state is identical.
    assert_eq!(
        plain.world().loaded_chunks(),
        member.world().loaded_chunks()
    );
    assert_eq!(
        plain.world().total_modifications(),
        member.world().total_modifications()
    );
    let mut plain_positions = plain.world().loaded_positions();
    let mut member_positions = member.world().loaded_positions();
    plain_positions.sort_by_key(|p| (p.x, p.z));
    member_positions.sort_by_key(|p| (p.x, p.z));
    assert_eq!(plain_positions, member_positions);
    for pos in plain_positions {
        let a = plain.world().read_chunk(pos, |c| c.to_bytes()).unwrap();
        let b = member.world().read_chunk(pos, |c| c.to_bytes()).unwrap();
        assert_eq!(a, b, "chunk {pos} diverged");
    }
    // Construct states are identical.
    for i in 0..constructs {
        let id = ConstructId::new(i as u64);
        assert_eq!(
            plain.construct(id).unwrap().state().hash(),
            member.construct(id).unwrap().state().hash(),
            "construct {i} diverged"
        );
    }
    // And the single zone never paid for coordination.
    let stats = cluster.stats();
    assert_eq!(stats.cross_server_messages, 0);
    assert_eq!(stats.handoffs, 0);
}

#[test]
fn border_constructs_do_not_change_simulation_results() {
    // Coordination is charged to the critical path and the message
    // counters, but the constructs themselves advance exactly as on a
    // single server: compare a border construct's state in a 4-zone
    // cluster against the same blueprint on one server.
    let config = flat_config();
    let cluster_probe = ShardedGameCluster::baseline(config.clone(), 4, 3);
    let site = border_construct_sites(cluster_probe.shard_map(), 1)[0];
    let blueprint = place_across_east_seam(&generators::wire_line(14), site, 6);

    let mut cluster = ShardedGameCluster::baseline(config, 4, 3);
    let (owner, id) = cluster.add_construct(blueprint.clone());
    let mut fleet = random_fleet(4, 9);
    cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
    assert!(cluster.stats().construct_exchanges > 0);

    // The cluster's only construct was stepped `sc_local` times; stepping
    // a fresh copy of the blueprint the same number of times must land on
    // the same state — coordination costs time, never simulation results.
    let sim_ticks = cluster.server(owner).stats().sc_local;
    let mut reference = servo_redstone::Construct::new(blueprint);
    reference.step_many(sim_ticks as usize);
    assert_eq!(
        cluster.server(owner).construct(id).unwrap().state().hash(),
        reference.state().hash(),
        "border construct diverged from unzoned simulation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every avatar is simulated by exactly one zone on every tick — the
    /// routing is a partition — and a boundary crossing moves the avatar to
    /// its new zone on the crossing tick itself, with the cluster's handoff
    /// count matching an independent replay of the routing rule.
    #[test]
    fn avatars_are_simulated_by_exactly_one_zone_per_tick(seed in 0u64..1000) {
        let players = 10usize;
        let ticks = 60usize;
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
        let map = cluster.shard_map().clone();
        // Star walkers move outward fast enough to cross chunk (and with
        // hash zoning, zone) boundaries within the run.
        let mut fleet = PlayerFleet::new(
            BehaviorKind::Star { speed: 12.0 },
            SimRng::seed(seed ^ 0x5eed),
        );
        fleet.connect_all(players);

        let budget = SimDuration::from_millis(50);
        let mut expected_zone: Vec<Option<usize>> = vec![None; players];
        let mut expected_handoffs = 0u64;
        for _ in 0..ticks {
            let now = cluster.now();
            let events = fleet.tick(now, budget);
            let positions = fleet.positions();
            cluster.run_tick(&positions, &events);

            // Independent replay of the routing rule.
            let mut expected_per_zone = [0usize; 4];
            for (index, &pos) in positions.iter().enumerate() {
                let zone = map.zone_of_block(pos);
                expected_per_zone[zone] += 1;
                if let Some(previous) = expected_zone[index] {
                    if previous != zone {
                        expected_handoffs += 1;
                    }
                }
                expected_zone[index] = Some(zone);
            }

            let detail = cluster.ticks().last().unwrap();
            let assigned: usize = detail.zones.iter().map(|z| z.players).sum();
            // A partition: every avatar in exactly one zone...
            prop_assert_eq!(assigned, players);
            // ...and in the zone owning the terrain under it.
            for breakdown in &detail.zones {
                prop_assert_eq!(breakdown.players, expected_per_zone[breakdown.zone]);
            }
        }
        prop_assert_eq!(cluster.stats().handoffs, expected_handoffs);
        prop_assert!(expected_handoffs > 0, "no avatar ever crossed a zone boundary");
        // Every member ticked in lockstep: one tick per cluster tick.
        for server in cluster.servers() {
            prop_assert_eq!(server.stats().ticks, ticks as u64);
        }
    }
}

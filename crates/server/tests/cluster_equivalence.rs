//! Determinism guarantees of [`ShardedGameCluster`]:
//!
//! * a 1-zone cluster is exactly a single server — tick counters, tick
//!   durations, world state and construct states all match a plain
//!   [`GameServer`] built from the same seed;
//! * in a multi-zone cluster every avatar is simulated by exactly one zone
//!   per tick, including the tick on which it crosses a zone boundary, and
//!   the cluster's handoff accounting matches an independent replay of the
//!   routing rule.

use proptest::prelude::*;
use servo_pcg::FlatGenerator;
use servo_redstone::generators;
use servo_server::cluster::{border_construct_sites, place_across_east_seam, ShardedGameCluster};
use servo_server::{GameServer, LocalGenerationBackend, LocalScBackend, ServerConfig};
use servo_simkit::SimRng;
use servo_types::{ConstructId, SimDuration};
use servo_workload::{BehaviorKind, PlayerFleet};

fn flat_config() -> ServerConfig {
    ServerConfig::opencraft().with_view_distance(32)
}

/// Builds the exact server a 1-zone [`ShardedGameCluster::baseline`]
/// creates for zone 0, without the cluster around it.
fn plain_zone_zero(config: ServerConfig, seed: u64) -> GameServer {
    GameServer::new(
        config,
        Box::new(LocalScBackend::every_other_tick()),
        Box::new(LocalGenerationBackend::new(
            Box::new(FlatGenerator::default()),
            8,
        )),
        SimRng::seed(seed).substream_indexed("zone", 0),
    )
}

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

#[test]
fn one_zone_cluster_matches_plain_server_exactly() {
    let seed = 42;
    let constructs = 12usize;
    let duration = SimDuration::from_secs(5);

    let mut plain = plain_zone_zero(flat_config(), seed);
    for i in 0..constructs {
        plain.add_construct(generators::dense_circuit(32 + i));
    }
    let mut plain_fleet = random_fleet(15, 7);
    plain.run_with_fleet(&mut plain_fleet, duration);

    let mut cluster = ShardedGameCluster::baseline(flat_config(), 1, seed);
    for i in 0..constructs {
        cluster.add_construct(generators::dense_circuit(32 + i));
    }
    let mut cluster_fleet = random_fleet(15, 7);
    cluster.run_with_fleet(&mut cluster_fleet, duration);
    let member = cluster.server(0);

    // Tick counters are identical.
    assert_eq!(plain.stats(), member.stats());
    assert_eq!(plain.current_tick(), member.current_tick());
    // Tick durations — and therefore the whole virtual timeline — match;
    // the cluster's critical path is exactly the single member's series.
    assert_eq!(plain.tick_durations(), member.tick_durations());
    assert_eq!(plain.tick_durations(), cluster.critical_path_durations());
    assert_eq!(plain.now(), member.now());
    assert_eq!(plain.now(), cluster.now());
    // World state is identical.
    assert_eq!(
        plain.world().loaded_chunks(),
        member.world().loaded_chunks()
    );
    assert_eq!(
        plain.world().total_modifications(),
        member.world().total_modifications()
    );
    let mut plain_positions = plain.world().loaded_positions();
    let mut member_positions = member.world().loaded_positions();
    plain_positions.sort_by_key(|p| (p.x, p.z));
    member_positions.sort_by_key(|p| (p.x, p.z));
    assert_eq!(plain_positions, member_positions);
    for pos in plain_positions {
        let a = plain.world().read_chunk(pos, |c| c.to_bytes()).unwrap();
        let b = member.world().read_chunk(pos, |c| c.to_bytes()).unwrap();
        assert_eq!(a, b, "chunk {pos} diverged");
    }
    // Construct states are identical.
    for i in 0..constructs {
        let id = ConstructId::new(i as u64);
        assert_eq!(
            plain.construct(id).unwrap().state().hash(),
            member.construct(id).unwrap().state().hash(),
            "construct {i} diverged"
        );
    }
    // And the single zone never paid for coordination.
    let stats = cluster.stats();
    assert_eq!(stats.cross_server_messages, 0);
    assert_eq!(stats.handoffs, 0);
}

#[test]
fn border_constructs_do_not_change_simulation_results() {
    // Coordination is charged to the critical path and the message
    // counters, but the constructs themselves advance exactly as on a
    // single server: compare a border construct's state in a 4-zone
    // cluster against the same blueprint on one server.
    let config = flat_config();
    let cluster_probe = ShardedGameCluster::baseline(config.clone(), 4, 3);
    let site = border_construct_sites(cluster_probe.shard_map(), 1)[0];
    let blueprint = place_across_east_seam(&generators::wire_line(14), site, 6);

    let mut cluster = ShardedGameCluster::baseline(config, 4, 3);
    let (owner, id) = cluster.add_construct(blueprint.clone());
    let mut fleet = random_fleet(4, 9);
    cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
    assert!(cluster.stats().construct_exchanges > 0);

    // The cluster's only construct was stepped `sc_local` times; stepping
    // a fresh copy of the blueprint the same number of times must land on
    // the same state — coordination costs time, never simulation results.
    let sim_ticks = cluster.server(owner).stats().sc_local;
    let mut reference = servo_redstone::Construct::new(blueprint);
    reference.step_many(sim_ticks as usize);
    assert_eq!(
        cluster.server(owner).construct(id).unwrap().state().hash(),
        reference.state().hash(),
        "border construct diverged from unzoned simulation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every avatar is simulated by exactly one zone on every tick — the
    /// routing is a partition — and a boundary crossing moves the avatar to
    /// its new zone on the crossing tick itself, with the cluster's handoff
    /// count matching an independent replay of the routing rule.
    #[test]
    fn avatars_are_simulated_by_exactly_one_zone_per_tick(seed in 0u64..1000) {
        let players = 10usize;
        let ticks = 60usize;
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
        let map = cluster.shard_map().clone();
        // Star walkers move outward fast enough to cross chunk (and with
        // hash zoning, zone) boundaries within the run.
        let mut fleet = PlayerFleet::new(
            BehaviorKind::Star { speed: 12.0 },
            SimRng::seed(seed ^ 0x5eed),
        );
        fleet.connect_all(players);

        let budget = SimDuration::from_millis(50);
        let mut expected_zone: Vec<Option<usize>> = vec![None; players];
        let mut expected_handoffs = 0u64;
        for _ in 0..ticks {
            let now = cluster.now();
            let events = fleet.tick(now, budget);
            let positions = fleet.positions();
            cluster.run_tick(&positions, &events);

            // Independent replay of the routing rule.
            let mut expected_per_zone = [0usize; 4];
            for (index, &pos) in positions.iter().enumerate() {
                let zone = map.zone_of_block(pos);
                expected_per_zone[zone] += 1;
                if let Some(previous) = expected_zone[index] {
                    if previous != zone {
                        expected_handoffs += 1;
                    }
                }
                expected_zone[index] = Some(zone);
            }

            let detail = cluster.ticks().last().unwrap();
            let assigned: usize = detail.zones.iter().map(|z| z.players).sum();
            // A partition: every avatar in exactly one zone...
            prop_assert_eq!(assigned, players);
            // ...and in the zone owning the terrain under it.
            for breakdown in &detail.zones {
                prop_assert_eq!(breakdown.players, expected_per_zone[breakdown.zone]);
            }
        }
        prop_assert_eq!(cluster.stats().handoffs, expected_handoffs);
        prop_assert!(expected_handoffs > 0, "no avatar ever crossed a zone boundary");
        // Every member ticked in lockstep: one tick per cluster tick.
        for server in cluster.servers() {
            prop_assert_eq!(server.stats().ticks, ticks as u64);
        }
    }
}

/// Builds the standard 4-zone baseline with per-zone persistence attached,
/// optionally rebalance-enabled — the two arms of the zero-migration
/// equivalence check.
fn persistent_cluster(
    seed: u64,
    policy: Option<servo_world::RebalancePolicy>,
) -> ShardedGameCluster {
    use servo_storage::{BlobStore, BlobTier};

    let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
    for zone in 0..4 {
        cluster.attach_persistence(
            zone,
            BlobStore::new(BlobTier::Standard, SimRng::seed(500 + zone as u64)),
            SimRng::seed(600 + zone as u64),
            10,
        );
    }
    if let Some(policy) = policy {
        cluster.enable_rebalancing(policy);
    }
    cluster
}

#[test]
fn rebalance_enabled_cluster_with_inert_policy_matches_static_cluster() {
    use servo_storage::ObjectStore;
    use servo_types::SimTime;

    let seed = 77;
    let duration = SimDuration::from_secs(5);
    let run = |policy: Option<servo_world::RebalancePolicy>| {
        let mut cluster = persistent_cluster(seed, policy);
        let sites = border_construct_sites(cluster.shard_map(), 6);
        for site in &sites {
            cluster.add_construct(place_across_east_seam(&generators::wire_line(14), *site, 6));
        }
        let mut fleet = random_fleet(16, 78);
        cluster.run_with_fleet(&mut fleet, duration);
        cluster.flush_persistence();
        cluster
    };
    let static_cluster = run(None);
    let dynamic_cluster = run(Some(servo_world::RebalancePolicy::never()));

    // Tick-for-tick identical: cluster stats, critical paths, and every
    // member's counters and durations.
    assert_eq!(static_cluster.stats(), dynamic_cluster.stats());
    assert_eq!(
        static_cluster.critical_path_durations(),
        dynamic_cluster.critical_path_durations()
    );
    assert_eq!(
        dynamic_cluster.rebalance_stats(),
        servo_server::cluster::RebalanceStats::default(),
        "the inert policy migrated something"
    );
    for detail in dynamic_cluster.ticks() {
        assert_eq!(detail.shard_migrations, 0);
    }
    for (a, b) in static_cluster
        .servers()
        .iter()
        .zip(dynamic_cluster.servers())
    {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.tick_durations(), b.tick_durations());
        assert_eq!(a.now(), b.now());
    }
    // World bytes identical per zone.
    for (zone, (a, b)) in static_cluster
        .servers()
        .iter()
        .zip(dynamic_cluster.servers())
        .enumerate()
    {
        let mut a_positions = a.world().loaded_positions();
        let mut b_positions = b.world().loaded_positions();
        a_positions.sort_by_key(|p| (p.x, p.z));
        b_positions.sort_by_key(|p| (p.x, p.z));
        assert_eq!(a_positions, b_positions, "zone {zone} terrain diverged");
        for pos in a_positions {
            assert_eq!(
                a.world().read_chunk(pos, |c| c.to_bytes()),
                b.world().read_chunk(pos, |c| c.to_bytes()),
                "zone {zone} chunk {pos} diverged"
            );
        }
    }
    // Persisted bytes identical per zone.
    let late = SimTime::from_secs(10_000);
    for zone in 0..4 {
        assert_eq!(
            static_cluster.persistence_stats(zone),
            dynamic_cluster.persistence_stats(zone),
            "zone {zone} persistence counters diverged"
        );
        let positions = static_cluster.server(zone).world().loaded_positions();
        let snapshot = |cluster: &ShardedGameCluster| {
            cluster
                .with_persisted(zone, |remote| {
                    let mut persisted: Vec<(String, Vec<u8>)> = Vec::new();
                    for pos in &positions {
                        let key = format!("terrain/{}/{}", pos.x, pos.z);
                        if let Ok(result) = remote.read(&key, late) {
                            persisted.push((key, result.data));
                        }
                    }
                    persisted.sort();
                    persisted
                })
                .expect("persistence attached")
        };
        assert_eq!(
            snapshot(&static_cluster),
            snapshot(&dynamic_cluster),
            "zone {zone} persisted bytes diverged"
        );
    }
}

#[test]
fn migrations_preserve_partition_and_construct_progress() {
    use servo_server::cluster::zone_hotspot_sites;
    use servo_types::BlockPos;
    use servo_workload::Hotspot;
    use servo_world::{RebalanceConfig, RebalancePolicy};

    let mut cluster = persistent_cluster(91, None);
    cluster.enable_rebalancing(RebalancePolicy::new(RebalanceConfig {
        warmup_ticks: 10,
        evaluate_every: 5,
        cooldown_ticks: 20,
        trigger_ratio: 1.2,
        min_gap_ms: 0.5,
        max_migrations_per_step: 8,
        ..RebalanceConfig::default()
    }));

    // Constructs pinned inside the future-hot chunks so their shard
    // migration moves real simulation state between servers.
    let sites = zone_hotspot_sites(cluster.shard_map(), 0, 4);
    let mut construct_indices = Vec::new();
    for site in &sites {
        let base = site.min_block() + BlockPos::new(2, 6, 2);
        cluster.add_construct(generators::wire_line(6).translated(base));
        construct_indices.push(cluster.construct_count() - 1);
    }

    // Everyone converges on zone 0's hotspot chunks from second 2 on.
    let players = 48usize;
    let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 16.0 }, SimRng::seed(92));
    fleet.connect_all(players);
    fleet.set_hotspot(Hotspot {
        targets: Hotspot::chunk_centers(&sites),
        converge_at: servo_types::SimTime::from_secs(2),
        disperse_at: servo_types::SimTime::from_secs(3_600),
        travel_speed: 24.0,
        dwell_radius: 4.0,
    });
    cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(12));

    let rebalance = cluster.rebalance_stats();
    assert!(
        rebalance.shard_migrations > 0,
        "the hotspot never triggered a migration: {rebalance:?}"
    );
    assert!(rebalance.chunks_transferred > 0);
    assert!(rebalance.constructs_transferred > 0);
    assert!(rebalance.migration_messages > 0);
    let detail_migrations: u64 = cluster.ticks().iter().map(|d| d.shard_migrations).sum();
    assert_eq!(detail_migrations, rebalance.shard_migrations);

    // Every tick still simulated every avatar exactly once.
    for detail in cluster.ticks() {
        let assigned: usize = detail.zones.iter().map(|z| z.players).sum();
        assert_eq!(assigned, players);
    }

    // The map is still a partition and every server's restriction filter
    // agrees with it.
    let map = cluster.shard_map();
    let mut owned = vec![0usize; map.shard_count()];
    for zone in 0..map.zones() {
        for shard in map.zone_shards(zone) {
            owned[shard] += 1;
            assert!(cluster.server(zone).owns_shard(shard));
        }
    }
    assert!(owned.iter().all(|&n| n == 1), "shard owned twice or never");
    assert!(map.version() >= rebalance.shard_migrations);

    // Migrated constructs kept their full simulation state: the baselines
    // step constructs on every other tick, so each construct advanced
    // exactly once per even tick regardless of which server stepped it.
    let ticks = cluster.stats().ticks;
    let expected_steps = ticks.div_ceil(2);
    for &index in &construct_indices {
        let (zone, id) = cluster
            .construct_location(index)
            .expect("registered construct");
        let construct = cluster
            .server(zone)
            .construct(id)
            .expect("construct must live on its current zone server");
        assert_eq!(
            construct.state().step(),
            expected_steps,
            "construct {index} lost or repeated steps across its migration"
        );
    }

    // The hot zone actually shed load: after the last migration, zone 0 no
    // longer owns all four hotspot shards.
    let still_owned = sites
        .iter()
        .filter(|&&site| map.zone_of_chunk(site) == 0)
        .count();
    assert!(still_owned < sites.len(), "no hotspot shard ever moved");
}

#[test]
fn migrating_to_a_pipelineless_zone_flushes_the_source_staging() {
    use servo_server::cluster::zone_hotspot_sites;
    use servo_storage::{BlobStore, BlobTier};
    use servo_types::BlockPos;
    use servo_world::{RebalanceConfig, RebalancePolicy};

    // Persistence on zone 0 ONLY: a migration out of zone 0 has no
    // destination pipeline to inherit the write-back obligation, so the
    // source must flush the shard's dirty set before the chunks leave its
    // world — nothing staged may ever be silently dropped.
    let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 131);
    cluster.attach_persistence(
        0,
        BlobStore::new(BlobTier::Standard, SimRng::seed(700)),
        SimRng::seed(701),
        1_000_000, // never reaches a cadence pass: dirt stays staged
    );
    cluster.enable_rebalancing(RebalancePolicy::new(RebalanceConfig {
        warmup_ticks: 5,
        evaluate_every: 1,
        cooldown_ticks: 100,
        trigger_ratio: 1.1,
        min_gap_ms: 0.1,
        max_migrations_per_step: 8,
        ..RebalanceConfig::default()
    }));
    let sites = zone_hotspot_sites(cluster.shard_map(), 0, 2);
    let mut dirtied = Vec::new();
    for site in &sites {
        cluster.server(0).world().ensure_chunk_at(*site);
        let block = site.min_block() + BlockPos::new(3, 9, 3);
        cluster
            .server(0)
            .world()
            .set_block(block, servo_world::Block::Lamp)
            .unwrap();
        dirtied.push(*site);
    }
    // All avatars stand in the hot chunks; the first tick drains the dirt
    // into zone 0's staging, later ticks build up the load skew until the
    // policy fires.
    let positions: Vec<BlockPos> = (0..20)
        .map(|i| sites[i % sites.len()].min_block() + BlockPos::new(4 + (i as i32 % 8), 10, 8))
        .collect();
    for _ in 0..30 {
        cluster.run_tick(&positions, &[]);
        if cluster.rebalance_stats().shard_migrations > 0 {
            break;
        }
    }
    let rebalance = cluster.rebalance_stats();
    assert!(
        rebalance.shard_migrations > 0,
        "the skew never triggered a migration: {rebalance:?}"
    );
    // No destination pipeline exists, so nothing was handed off...
    assert_eq!(rebalance.staged_dirty_handed_off, 0);
    // ...and every dirtied chunk whose shard left zone 0 reached zone 0's
    // store through the synchronous quiesce flush.
    let map = cluster.shard_map();
    let mut migrated_and_flushed = 0;
    for site in &dirtied {
        if map.zone_of_chunk(*site) == 0 {
            continue;
        }
        migrated_and_flushed += 1;
        assert_eq!(
            cluster.with_persisted(0, |remote| {
                use servo_storage::ObjectStore;
                remote.contains(&format!("terrain/{}/{}", site.x, site.z))
            }),
            Some(true),
            "dirty chunk {site:?} migrated away without being flushed"
        );
    }
    assert!(
        migrated_and_flushed > 0,
        "no dirtied hot shard ever migrated: {rebalance:?}"
    );
}

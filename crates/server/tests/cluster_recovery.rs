//! Crash recovery of a [`ShardedGameCluster`]: a zone killed mid-run is
//! fenced, its shards are adopted by the survivors through the migration
//! path (remote-store restore plus write-ahead-log replay), and the
//! cluster returns to its tick budget within a bounded window — while a
//! run whose scheduled crash never fires stays byte-identical to a run
//! with no failure plan at all.

use servo_server::cluster::ShardedGameCluster;
use servo_server::{RecoveryStats, ServerConfig};
use servo_simkit::SimRng;
use servo_storage::{BlobStore, BlobTier, ObjectStore};
use servo_types::{BlockPos, ChunkPos, SimDuration};
use servo_workload::{BehaviorKind, PlayerFleet};

fn flat_config() -> ServerConfig {
    ServerConfig::opencraft().with_view_distance(32)
}

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

/// The standard 4-zone baseline with per-zone persistence attached (the
/// same shape the `cluster_equivalence` suite uses).
fn persistent_cluster(seed: u64) -> ShardedGameCluster {
    let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
    for zone in 0..4 {
        cluster.attach_persistence(
            zone,
            BlobStore::new(BlobTier::Standard, SimRng::seed(500 + zone as u64)),
            SimRng::seed(600 + zone as u64),
            10,
        );
    }
    cluster
}

/// Every observable byte of a run: coordination stats, critical paths,
/// member counters and timelines, world bytes, and persisted bytes.
fn run_fingerprint(cluster: &ShardedGameCluster) -> String {
    use servo_types::SimTime;
    let mut out = String::new();
    out.push_str(&format!("{:?}\n", cluster.stats()));
    out.push_str(&format!("{:?}\n", cluster.critical_path_durations()));
    for (zone, server) in cluster.servers().iter().enumerate() {
        out.push_str(&format!(
            "zone {zone}: {:?} now={:?}\n",
            server.stats(),
            server.now()
        ));
        let mut positions = server.world().loaded_positions();
        positions.sort_by_key(|p| (p.x, p.z));
        for pos in positions {
            let bytes = server.world().read_chunk(pos, |c| c.to_bytes()).unwrap();
            out.push_str(&format!("  chunk {pos} {bytes:?}\n"));
        }
        let persisted = cluster
            .with_persisted(zone, |remote| {
                let mut dump = Vec::new();
                for key in remote.keys() {
                    if let Ok(result) = remote.read(&key, SimTime::from_secs(10_000)) {
                        dump.push((key, result.data));
                    }
                }
                dump
            })
            .expect("persistence attached");
        out.push_str(&format!("  persisted {persisted:?}\n"));
    }
    out
}

#[test]
fn scheduled_but_unfired_crash_is_byte_identical_to_no_plan() {
    let run = |schedule: bool| {
        let mut cluster = persistent_cluster(77);
        if schedule {
            // Far beyond the run: the failure-injection path is armed on
            // every tick but never fires.
            cluster.crash_zone(2, 1_000_000);
        }
        let mut fleet = random_fleet(16, 78);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(5));
        cluster.flush_persistence();
        cluster
    };
    let control = run(false);
    let armed = run(true);
    assert_eq!(armed.recovery_stats(), RecoveryStats::default());
    assert_eq!(run_fingerprint(&control), run_fingerprint(&armed));
}

#[test]
fn crash_mid_run_adopts_all_shards_and_freezes_the_dead_store() {
    let players = 16usize;
    let crash_tick = 60u64;
    let total_ticks = 160u64;
    let dead = 3usize;

    let mut cluster = persistent_cluster(91);
    cluster.crash_zone(dead, crash_tick);
    let orphaned = cluster.shard_map().zone_shards(dead);
    assert!(!orphaned.is_empty());

    let mut fleet = random_fleet(players, 92);
    let budget = SimDuration::from_millis(50);
    let mut dead_keys_at_crash: Option<Vec<String>> = None;
    for tick in 0..total_ticks {
        let now = cluster.now();
        let events = fleet.tick(now, budget);
        let positions = fleet.positions();
        cluster.run_tick(&positions, &events);
        if tick == crash_tick {
            assert!(cluster.zone_is_dead(dead));
            dead_keys_at_crash = Some(
                cluster
                    .with_persisted(dead, |remote| remote.keys())
                    .unwrap(),
            );
        }
    }
    cluster.flush_persistence();

    // Every orphaned shard was adopted by a survivor; nothing is pending
    // and the map is still a partition over the three live zones.
    assert!(cluster.shard_map().zone_shards(dead).is_empty());
    assert_eq!(cluster.pending_adoption_count(), 0);
    let recovery = cluster.recovery_stats();
    assert_eq!(recovery.crashes, 1);
    assert_eq!(recovery.shards_adopted, orphaned.len() as u64);
    // The WAL is on by default, so the crash lost nothing.
    assert_eq!(recovery.chunks_lost, 0);
    assert!(recovery.recovery_messages > 0);
    assert!(recovery.recovery_ticks >= 1);
    assert!(recovery.ticks_over_qos <= recovery.recovery_ticks);

    // The dead member froze at the crash: no further ticks, and its store
    // holds exactly the bytes it held when it died.
    assert_eq!(cluster.server(dead).stats().ticks, crash_tick);
    let dead_keys_now = cluster
        .with_persisted(dead, |remote| remote.keys())
        .unwrap();
    assert_eq!(dead_keys_at_crash.unwrap(), dead_keys_now);

    // Every avatar was simulated by exactly one zone on every tick —
    // including the crash tick and the adoption window.
    for detail in cluster.ticks() {
        let assigned: usize = detail.zones.iter().map(|z| z.players).sum();
        assert_eq!(assigned, players);
    }

    // The recovery window is bounded: the cluster was back inside its
    // budget well before the run ended, and the last tick is within QoS.
    assert!(recovery.recovery_ticks < total_ticks - crash_tick);
    let last = cluster.ticks().last().unwrap();
    assert!(last.tick.critical_path <= cluster.server(0).config().tick_budget());

    // Ownership audit: every chunk a *surviving* zone persisted is owned
    // by that zone under the final map — recovery never makes a zone
    // flush foreign terrain.
    let map = cluster.shard_map();
    for zone in 0..4 {
        if zone == dead {
            continue;
        }
        let keys = cluster
            .with_persisted(zone, |remote| remote.keys())
            .unwrap();
        assert!(!keys.is_empty(), "zone {zone} persisted nothing");
        for key in keys {
            let mut parts = key.split('/');
            assert_eq!(parts.next(), Some("terrain"), "unexpected key {key}");
            let x: i32 = parts.next().unwrap().parse().unwrap();
            let z: i32 = parts.next().unwrap().parse().unwrap();
            assert_eq!(
                map.zone_of_chunk(ChunkPos::new(x, z)),
                zone,
                "zone {zone} persisted foreign chunk {key}"
            );
        }
    }
}

#[test]
fn recovery_respects_the_shared_migration_budget() {
    use servo_world::{RebalanceConfig, RebalancePolicy};

    // Budget 2 with 4 orphaned shards: adoption must spread over (at
    // least) two ticks, and no tick may ever apply more migrations than
    // the configured bound — recovery and the policy share one budget, so
    // a crash cannot compound into a migration storm.
    let step_budget = 2usize;
    let crash_tick = 40u64;
    let dead = 1usize;
    let mut cluster = persistent_cluster(131);
    cluster.enable_rebalancing(RebalancePolicy::new(RebalanceConfig {
        warmup_ticks: 5,
        evaluate_every: 1,
        cooldown_ticks: 10,
        trigger_ratio: 1.1,
        min_gap_ms: 0.1,
        max_migrations_per_step: step_budget,
        ..RebalanceConfig::default()
    }));
    cluster.crash_zone(dead, crash_tick);
    let orphaned = cluster.shard_map().zone_shards(dead).len();
    assert!(
        orphaned > step_budget,
        "test needs more orphans than budget"
    );

    let mut fleet = random_fleet(20, 132);
    let budget = SimDuration::from_millis(50);
    let mut pending_after_crash_tick = None;
    for tick in 0..120u64 {
        let now = cluster.now();
        let events = fleet.tick(now, budget);
        let positions = fleet.positions();
        cluster.run_tick(&positions, &events);
        if tick == crash_tick {
            pending_after_crash_tick = Some(cluster.pending_adoption_count());
        }
    }

    // The first recovery tick adopted exactly the budget, leaving the
    // rest pending for later boundaries.
    assert_eq!(
        pending_after_crash_tick,
        Some(orphaned - step_budget),
        "recovery exceeded (or under-used) the per-tick migration budget"
    );
    assert_eq!(cluster.pending_adoption_count(), 0);
    assert_eq!(cluster.recovery_stats().shards_adopted, orphaned as u64);
    // No tick — crash, recovery, or policy — ever exceeded the bound.
    for detail in cluster.ticks() {
        assert!(
            detail.shard_migrations <= step_budget as u64,
            "migration storm: {} migrations in one tick",
            detail.shard_migrations
        );
    }
    // The map is still a partition and the dead zone owns nothing.
    let map = cluster.shard_map();
    assert!(map.zone_shards(dead).is_empty());
    let mut owned = vec![0usize; map.shard_count()];
    for zone in 0..map.zones() {
        for shard in map.zone_shards(zone) {
            owned[shard] += 1;
        }
    }
    assert!(owned.iter().all(|&n| n == 1), "shard owned twice or never");
}

#[test]
fn wal_replay_recovers_staged_edits_and_disabling_it_loses_them() {
    use servo_server::cluster::zone_hotspot_sites;
    use servo_world::Block;

    // Dirty two owned chunks of zone 0, let one tick drain them into the
    // (never-flushing) staging, then kill zone 0. With the WAL on, the
    // adopters replay the edited bytes; with it off, the edits die with
    // the zone's memory and are counted as lost.
    let run = |wal_enabled: bool| {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 171);
        cluster.attach_persistence(
            0,
            BlobStore::new(BlobTier::Standard, SimRng::seed(700)),
            SimRng::seed(701),
            1_000_000, // no cadence pass ever: the dirt stays staged
        );
        cluster.set_wal_enabled(0, wal_enabled);
        let sites = zone_hotspot_sites(cluster.shard_map(), 0, 2);
        let mut edited = Vec::new();
        for site in &sites {
            cluster.server(0).world().ensure_chunk_at(*site);
            let block = site.min_block() + BlockPos::new(3, 9, 3);
            cluster
                .server(0)
                .world()
                .set_block(block, Block::Lamp)
                .unwrap();
            edited.push(block);
        }
        // Tick 0 drains the dirt into zone 0's staging (and WAL, when
        // enabled); the crash fires at tick 1.
        cluster.crash_zone(0, 1);
        for _ in 0..4 {
            cluster.run_tick(&[], &[]);
        }
        (cluster, edited)
    };

    let (with_wal, edited) = run(true);
    let recovery = with_wal.recovery_stats();
    assert_eq!(recovery.chunks_lost, 0);
    assert!(recovery.chunks_replayed >= edited.len() as u64);
    // The edited bytes survived the crash: the adopting zone's world
    // holds the lamp each staged-but-unflushed chunk carried.
    let map = with_wal.shard_map();
    for block in &edited {
        let owner = map.zone_of_block(*block);
        assert_ne!(owner, 0, "shard never left the dead zone");
        assert_eq!(
            with_wal.server(owner).world().block(*block),
            Some(Block::Lamp),
            "replayed edit at {block:?} did not survive adoption"
        );
    }

    let (without_wal, edited) = run(false);
    let recovery = without_wal.recovery_stats();
    assert_eq!(recovery.chunks_replayed, 0);
    assert_eq!(
        recovery.chunks_lost,
        edited.len() as u64,
        "staged-but-unflushed chunks must be counted lost without a WAL"
    );
}

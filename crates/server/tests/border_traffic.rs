//! Integrity guarantees of the border-traffic machinery:
//!
//! * [`BorderExchange::Speculative`] over backends that publish no
//!   sequences (the local baselines — the permanently-invalidated case)
//!   degenerates to the eager batched exchange tick-for-tick;
//! * traffic-driven construct migrations move simulation state between
//!   servers without losing or repeating a single construct step, without
//!   touching the shard partition, and without flapping once ownership
//!   matches the footprint majority.

use proptest::prelude::*;
use servo_redstone::generators;
use servo_server::cluster::{
    border_construct_sites, place_across_east_seam, place_across_east_seam_at, ShardedGameCluster,
};
use servo_server::{BorderExchange, ServerConfig};
use servo_simkit::SimRng;
use servo_types::{BlockPos, SimDuration};
use servo_workload::{seam_offset, BehaviorKind, PlayerFleet};
use servo_world::{RebalanceConfig, RebalancePolicy};

fn flat_config() -> ServerConfig {
    ServerConfig::opencraft().with_view_distance(32)
}

fn random_fleet(players: usize, seed: u64) -> PlayerFleet {
    let mut fleet = PlayerFleet::new(BehaviorKind::Random, SimRng::seed(seed));
    fleet.connect_all(players);
    fleet
}

/// A policy whose shard-level term can never fire (absurd trigger ratio)
/// but whose border-traffic term evaluates every tick after a two-tick
/// warmup.
fn traffic_only_policy(max_migrations_per_step: usize) -> RebalancePolicy {
    RebalancePolicy::new(RebalanceConfig {
        warmup_ticks: 2,
        evaluate_every: 1,
        cooldown_ticks: 1_000_000,
        trigger_ratio: 1e9,
        max_migrations_per_step,
        border_traffic: true,
        ..RebalanceConfig::default()
    })
}

#[test]
fn speculative_exchange_without_published_sequences_matches_batched_exactly() {
    // The local baseline backends never publish a sequence, so under the
    // speculative exchange every border construct permanently falls back
    // to the eager batched path — byte-identical message accounting,
    // identical clocks, identical simulation.
    let run = |exchange: BorderExchange| {
        let mut cluster =
            ShardedGameCluster::baseline(flat_config(), 4, 17).with_border_exchange(exchange);
        let sites = border_construct_sites(cluster.shard_map(), 8);
        for site in &sites {
            cluster.add_construct(place_across_east_seam(&generators::wire_line(14), *site, 6));
        }
        let mut fleet = random_fleet(12, 18);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(4));
        cluster
    };
    let batched = run(BorderExchange::Batched);
    let speculative = run(BorderExchange::Speculative);

    assert_eq!(batched.stats(), speculative.stats());
    assert_eq!(
        batched.critical_path_durations(),
        speculative.critical_path_durations()
    );
    for (a, b) in batched.servers().iter().zip(speculative.servers()) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.tick_durations(), b.tick_durations());
        assert_eq!(a.now(), b.now());
    }
    // The degenerate mode took the fallback path on every exchange: it
    // bundled like the batched arm and never shipped a handle or skipped
    // a replayable exchange.
    let stats = speculative.stats();
    assert!(stats.construct_exchanges > 0);
    assert!(stats.batched_bundles > 0);
    assert_eq!(stats.speculation_handles, 0);
    assert_eq!(stats.speculative_replays, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Traffic-driven construct migrations are invisible to the
    /// simulation: every construct accumulates exactly the step count of
    /// an identical run without migrations, the shard partition never
    /// changes, and each construct settles on the zone owning its
    /// footprint majority without flapping.
    #[test]
    fn traffic_migrations_preserve_construct_progress(
        seed in 0u64..1000,
        constructs in 4usize..10,
    ) {
        let ticks = 60usize;
        // Fixed avatars spread around the origin; scripted identically
        // into both runs, so any divergence can only come from the
        // migrations themselves.
        let positions: Vec<BlockPos> = (0..12)
            .map(|i| BlockPos::new((i * 7) % 50 - 25, 10, (i * 13) % 50 - 25))
            .collect();

        let build = |policy: Option<RebalancePolicy>| {
            let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, seed);
            if let Some(policy) = policy {
                cluster.enable_rebalancing(policy);
            }
            // Each construct straddles a seam with the strict majority of
            // its blocks on the *east* (foreign) side: the border-traffic
            // term must move each one exactly once, east across the seam.
            let sites = border_construct_sites(cluster.shard_map(), constructs);
            let offset = seam_offset(14, false);
            for site in &sites {
                cluster.add_construct(place_across_east_seam_at(
                    &generators::wire_line(14),
                    *site,
                    6,
                    offset,
                ));
            }
            for _ in 0..ticks {
                cluster.run_tick(&positions, &[]);
            }
            cluster
        };

        let control = build(None);
        // A budget of 2 per step forces the migrations to spread over
        // several evaluation boundaries.
        let traffic = build(Some(traffic_only_policy(2)));

        // Every majority-east construct migrated exactly once; the shard
        // partition never moved.
        let rebalance = traffic.rebalance_stats();
        prop_assert_eq!(rebalance.construct_migrations, constructs as u64);
        prop_assert_eq!(rebalance.shard_migrations, 0);
        prop_assert_eq!(rebalance.chunks_transferred, 0);
        prop_assert!(rebalance.migration_messages > 0);
        prop_assert_eq!(traffic.shard_map().version(), control.shard_map().version());

        // The partition invariant holds: every shard owned exactly once,
        // and each server's restriction filter agrees with the map.
        let map = traffic.shard_map();
        let mut owned = vec![0usize; map.shard_count()];
        for zone in 0..map.zones() {
            for shard in map.zone_shards(zone) {
                owned[shard] += 1;
                prop_assert!(traffic.server(zone).owns_shard(shard));
            }
        }
        prop_assert!(owned.iter().all(|&n| n == 1), "shard owned twice or never");

        // Step-count integrity: every construct advanced exactly as in
        // the control run, and lives on exactly the server its registry
        // entry names — adopted (pinned) on the east zone.
        for index in 0..constructs {
            let (control_zone, control_id) =
                control.construct_location(index).expect("registered");
            let (zone, id) = traffic.construct_location(index).expect("registered");
            prop_assert_ne!(
                zone, control_zone,
                "construct {} never moved off its home zone", index
            );
            let reference = control
                .server(control_zone)
                .construct(control_id)
                .expect("control construct");
            let migrated = traffic
                .server(zone)
                .construct(id)
                .expect("construct must live on its current zone server");
            prop_assert!(traffic.server(zone).is_pinned(id));
            prop_assert_eq!(
                migrated.state().step(),
                reference.state().step(),
                "construct {} lost or repeated steps across its migration", index
            );
            prop_assert_eq!(
                migrated.state().hash(),
                reference.state().hash(),
                "construct {} state diverged from the control run", index
            );
        }
        // Hysteresis: once ownership matches the majority, nothing
        // proposes moving it back — the count stayed at one per
        // construct (asserted above) over many later evaluations.
    }
}

//! The calibrated per-tick cost model.
//!
//! The paper measures tick durations on DAS-5 compute nodes running real
//! Opencraft and Minecraft servers. Those servers are not available here, so
//! tick duration is modelled as a function of the *work actually performed*
//! in the tick (players handled, constructs simulated or merged, chunks
//! loaded, events processed), with coefficients calibrated against the
//! anchor points the paper reports:
//!
//! * Opencraft supports ~200 players with 0 simulated constructs, ~10 with
//!   100, and none with 200 (Figure 7a);
//! * Minecraft supports ~110 players with 0 constructs, ~90 with 100, and
//!   none with 200;
//! * Servo supports ~190 / ~150 / ~120 players for 0 / 100 / 200 constructs;
//! * both baselines simulate constructs only every other tick, producing the
//!   bimodal tick-duration distributions of Figure 7b.

use rand::Rng;
use servo_simkit::SimRng;
use servo_types::SimDuration;

/// The work performed during one tick, counted from the real data
/// structures by the game loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickWork {
    /// Connected players whose input and state updates were handled.
    pub players: usize,
    /// Player events (block changes, chat, inventory) processed.
    pub events: usize,
    /// Chunks integrated into the world this tick (from generation or
    /// storage).
    pub chunks_loaded: usize,
    /// Chunks sent to clients this tick.
    pub chunks_sent: usize,
    /// Simulated constructs stepped locally on the server this tick.
    pub sc_local: usize,
    /// Simulated constructs whose state came from an applied speculative
    /// (offloaded) result this tick.
    pub sc_merged: usize,
    /// Simulated constructs whose state came from replaying a detected loop.
    pub sc_replayed: usize,
    /// Background terrain-generation workers busy during this tick
    /// (interference with the game loop).
    pub busy_generation_workers: usize,
    /// Chunks requested but not yet delivered by the terrain backend
    /// (generation backlog; queue management burdens the game loop).
    pub generation_backlog: usize,
}

/// Coefficients converting [`TickWork`] into a tick duration.
///
/// All `*_ms` fields are milliseconds; the `*_pair_ms` fields multiply the
/// *square* of a count divided by 1000, modelling the super-linear costs of
/// broadcasting state updates between players and of interference between
/// locally simulated constructs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-tick bookkeeping cost.
    pub base_ms: f64,
    /// Linear per-player cost (input handling, entity updates).
    pub per_player_ms: f64,
    /// Super-linear player cost: `per_player_pair_ms * players^2 / 1000`.
    pub per_player_pair_ms: f64,
    /// Cost per processed player event.
    pub per_event_ms: f64,
    /// Cost of integrating one newly generated or loaded chunk.
    pub per_chunk_load_ms: f64,
    /// Cost of sending one chunk to one client.
    pub per_chunk_send_ms: f64,
    /// Cost of locally simulating one construct for one tick.
    pub per_sc_local_ms: f64,
    /// Super-linear local-construct cost: `per_sc_local_pair_ms * local^2 / 1000`.
    pub per_sc_local_pair_ms: f64,
    /// Cost of merging one speculative (offloaded) construct state.
    pub per_sc_merge_ms: f64,
    /// Super-linear merge cost: `per_sc_merge_pair_ms * merged^2 / 1000`.
    pub per_sc_merge_pair_ms: f64,
    /// Cost of replaying one loop-detected construct state.
    pub per_sc_replay_ms: f64,
    /// Interference of one busy background generation worker with the loop.
    pub generation_interference_ms: f64,
    /// Per-chunk cost of the generation backlog (queue management, memory
    /// pressure), applied to at most [`CostModel::BACKLOG_CAP`] chunks.
    pub per_backlog_chunk_ms: f64,
    /// Multiplicative log-normal measurement noise (sigma of the underlying
    /// normal).
    pub noise_sigma: f64,
    /// Probability of a garbage-collection-style latency spike.
    pub spike_probability: f64,
    /// Multiplier applied to the tick duration during a spike.
    pub spike_multiplier: f64,
}

impl CostModel {
    /// The maximum number of backlog chunks charged per tick; beyond this
    /// the queue-management cost saturates.
    pub const BACKLOG_CAP: usize = 300;

    /// The Opencraft research server: very low per-player cost, but an
    /// unoptimised construct simulator that collapses beyond ~100 constructs.
    pub fn opencraft() -> Self {
        CostModel {
            base_ms: 2.0,
            per_player_ms: 0.06,
            per_player_pair_ms: 0.85,
            per_event_ms: 0.02,
            per_chunk_load_ms: 1.5,
            per_chunk_send_ms: 0.15,
            per_sc_local_ms: 0.16,
            per_sc_local_pair_ms: 2.64,
            per_sc_merge_ms: 0.16,
            per_sc_merge_pair_ms: 2.64,
            per_sc_replay_ms: 0.01,
            generation_interference_ms: 3.5,
            per_backlog_chunk_ms: 0.10,
            noise_sigma: 0.06,
            spike_probability: 0.004,
            spike_multiplier: 4.0,
        }
    }

    /// The official Minecraft server: heavier per-player machinery but a
    /// much better optimised construct (redstone) engine.
    pub fn minecraft() -> Self {
        CostModel {
            base_ms: 2.5,
            per_player_ms: 0.12,
            per_player_pair_ms: 2.3,
            per_event_ms: 0.03,
            per_chunk_load_ms: 1.8,
            per_chunk_send_ms: 0.18,
            per_sc_local_ms: 0.02,
            per_sc_local_pair_ms: 1.3,
            per_sc_merge_ms: 0.02,
            per_sc_merge_pair_ms: 1.3,
            per_sc_replay_ms: 0.01,
            generation_interference_ms: 3.8,
            per_backlog_chunk_ms: 0.12,
            noise_sigma: 0.08,
            spike_probability: 0.006,
            spike_multiplier: 5.0,
        }
    }

    /// Servo: Opencraft plus the offloading machinery. Locally simulated
    /// constructs (speculation fallbacks) cost the same as on Opencraft, but
    /// merging an offloaded state is cheap and replaying a detected loop is
    /// nearly free.
    pub fn servo() -> Self {
        CostModel {
            base_ms: 3.0,
            per_player_ms: 0.06,
            per_player_pair_ms: 0.85,
            per_event_ms: 0.02,
            per_chunk_load_ms: 1.5,
            per_chunk_send_ms: 0.15,
            per_sc_local_ms: 0.16,
            per_sc_local_pair_ms: 2.64,
            per_sc_merge_ms: 0.10,
            per_sc_merge_pair_ms: 0.06,
            per_sc_replay_ms: 0.01,
            generation_interference_ms: 0.0,
            per_backlog_chunk_ms: 0.01,
            noise_sigma: 0.05,
            spike_probability: 0.004,
            spike_multiplier: 4.0,
        }
    }

    /// The deterministic (noise-free) duration of a tick with the given
    /// work, in milliseconds.
    pub fn mean_duration_ms(&self, work: &TickWork) -> f64 {
        let players = work.players as f64;
        let events = work.events as f64;
        let local = work.sc_local as f64;
        let merged = work.sc_merged as f64;
        let replayed = work.sc_replayed as f64;
        self.base_ms
            + self.per_player_ms * players
            + self.per_player_pair_ms * players * players / 1000.0
            + self.per_event_ms * events
            + self.per_chunk_load_ms * work.chunks_loaded as f64
            + self.per_chunk_send_ms * work.chunks_sent as f64
            + self.per_sc_local_ms * local
            + self.per_sc_local_pair_ms * local * local / 1000.0
            + self.per_sc_merge_ms * merged
            + self.per_sc_merge_pair_ms * merged * merged / 1000.0
            + self.per_sc_replay_ms * replayed
            + self.generation_interference_ms * work.busy_generation_workers as f64
            + self.per_backlog_chunk_ms * work.generation_backlog.min(Self::BACKLOG_CAP) as f64
    }

    /// Samples the tick duration for the given work, applying measurement
    /// noise and occasional latency spikes.
    pub fn tick_duration(&self, work: &TickWork, rng: &mut SimRng) -> SimDuration {
        let mean = self.mean_duration_ms(work);
        let z = {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut duration = mean * (self.noise_sigma * z).exp();
        if rng.gen::<f64>() < self.spike_probability {
            duration *= 1.0 + rng.gen::<f64>() * (self.spike_multiplier - 1.0);
        }
        SimDuration::from_millis_f64(duration.max(0.05))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(players: usize, sc_local: usize) -> TickWork {
        TickWork {
            players,
            sc_local,
            ..TickWork::default()
        }
    }

    #[test]
    fn mean_duration_grows_with_players_and_constructs() {
        let m = CostModel::opencraft();
        assert!(m.mean_duration_ms(&work(100, 0)) > m.mean_duration_ms(&work(10, 0)));
        assert!(m.mean_duration_ms(&work(10, 100)) > m.mean_duration_ms(&work(10, 10)));
    }

    #[test]
    fn opencraft_anchor_points() {
        let m = CostModel::opencraft();
        // ~190 players with no constructs stay within budget.
        assert!(m.mean_duration_ms(&work(180, 0)) < 48.0);
        // 100 local constructs nearly exhaust the budget on their own.
        let d100 = m.mean_duration_ms(&work(10, 100));
        assert!(d100 > 40.0 && d100 < 50.0, "100 SCs took {d100}");
        // 200 local constructs blow the budget outright.
        assert!(m.mean_duration_ms(&work(1, 200)) > 50.0);
    }

    #[test]
    fn minecraft_anchor_points() {
        let m = CostModel::minecraft();
        assert!(m.mean_duration_ms(&work(100, 0)) < 48.0);
        assert!(m.mean_duration_ms(&work(130, 0)) > 50.0);
        // Minecraft's construct engine is far better than Opencraft's at 100
        // constructs but still fails at 200.
        assert!(m.mean_duration_ms(&work(70, 100)) < 48.0);
        assert!(m.mean_duration_ms(&work(1, 200)) > 50.0);
    }

    #[test]
    fn servo_merging_is_much_cheaper_than_local_simulation() {
        let m = CostModel::servo();
        let merged = TickWork {
            players: 120,
            sc_merged: 200,
            ..TickWork::default()
        };
        let local = TickWork {
            players: 120,
            sc_local: 200,
            ..TickWork::default()
        };
        assert!(
            m.mean_duration_ms(&merged) < 48.0,
            "merged: {}",
            m.mean_duration_ms(&merged)
        );
        assert!(m.mean_duration_ms(&local) > 50.0);
        // Replaying a detected loop is almost free.
        let replayed = TickWork {
            players: 120,
            sc_replayed: 200,
            ..TickWork::default()
        };
        assert!(m.mean_duration_ms(&replayed) < m.mean_duration_ms(&merged));
    }

    #[test]
    fn baselines_are_ordered_as_in_figure_7a() {
        // With constructs present: Servo (merged) beats Minecraft, which
        // beats Opencraft. Without constructs Opencraft is the fastest.
        let players = 80;
        let o = CostModel::opencraft().mean_duration_ms(&work(players, 100));
        let m = CostModel::minecraft().mean_duration_ms(&work(players, 100));
        let s = CostModel::servo().mean_duration_ms(&TickWork {
            players,
            sc_merged: 100,
            ..TickWork::default()
        });
        assert!(s < m && m < o, "servo {s}, minecraft {m}, opencraft {o}");
        let o0 = CostModel::opencraft().mean_duration_ms(&work(players, 0));
        let m0 = CostModel::minecraft().mean_duration_ms(&work(players, 0));
        assert!(o0 < m0);
    }

    #[test]
    fn sampled_durations_are_positive_and_near_mean() {
        let m = CostModel::opencraft();
        let mut rng = SimRng::seed(1);
        let w = work(50, 20);
        let mean = m.mean_duration_ms(&w);
        let samples: Vec<f64> = (0..5000)
            .map(|_| m.tick_duration(&w, &mut rng).as_millis_f64())
            .collect();
        let sample_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(samples.iter().all(|&s| s > 0.0));
        assert!(
            (sample_mean - mean).abs() / mean < 0.1,
            "mean {mean} vs {sample_mean}"
        );
        // Spikes occasionally produce large outliers.
        assert!(samples.iter().cloned().fold(0.0, f64::max) > mean * 1.5);
    }

    #[test]
    fn chunk_loading_and_interference_add_cost() {
        let m = CostModel::minecraft();
        let quiet = TickWork {
            players: 5,
            ..TickWork::default()
        };
        let loading = TickWork {
            players: 5,
            chunks_loaded: 20,
            chunks_sent: 40,
            busy_generation_workers: 6,
            ..TickWork::default()
        };
        assert!(m.mean_duration_ms(&loading) > m.mean_duration_ms(&quiet) + 20.0);
    }
}

//! The game loop.

use std::collections::HashSet;
use std::sync::Arc;

use servo_metrics::TimePoint;
use servo_redstone::{Blueprint, Construct};
use servo_simkit::{SimClock, SimRng};
use servo_types::consts;
use servo_types::id::IdAllocator;
use servo_types::{BlockPos, ChunkPos, ConstructId, PlayerId, SimDuration, SimTime, Tick};
use servo_workload::{PlayerEvent, PlayerFleet};
use servo_world::{
    nearest_missing_distance_blocks, required_chunks, ChunkIndex, ChunkStore, RwLockStore,
    ShardDelta, ShardMap, ShardedWorld, WorldKind,
};

/// The terrain a zone-restricted server answers for: its own loaded chunks,
/// with foreign chunks counting as present because the zone owning them
/// serves them to clients directly.
struct OwnedTerrainView<'a, B: ChunkStore> {
    world: &'a ShardedWorld<B>,
    map: &'a ShardMap,
    zone: usize,
}

impl<B: ChunkStore> ChunkIndex for OwnedTerrainView<'_, B> {
    fn contains_chunk(&self, pos: ChunkPos) -> bool {
        self.map.zone_of_chunk(pos) != self.zone || self.world.is_loaded(pos)
    }
}

use servo_storage::{ChunkOutcome, ChunkRequest, ChunkService};

use crate::backends::{ResolutionPlan, ScBackend, ScResolution};
use crate::costs::{CostModel, TickWork};

/// Per-kind resolution tallies collected by the partitioned fan-out
/// (indexed local / merged / replayed / skipped).
type ResolutionCounts = [u64; 4];

fn count_resolution(counts: &mut ResolutionCounts, resolution: ScResolution) {
    let index = match resolution {
        ScResolution::LocalSimulated => 0,
        ScResolution::SpeculativeApplied => 1,
        ScResolution::LoopReplayed => 2,
        ScResolution::Skipped => 3,
    };
    counts[index] += 1;
}

/// Static configuration of a game-server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Human-readable system name ("Opencraft", "Minecraft", "Servo").
    pub name: &'static str,
    /// The calibrated cost model of this implementation.
    pub costs: CostModel,
    /// Simulation rate in Hz (20 for all systems in the paper).
    pub tick_rate_hz: u32,
    /// View distance in blocks that must be covered with terrain.
    pub view_distance_blocks: i32,
    /// Extra distance beyond the view distance at which terrain generation
    /// is already requested, hiding generation latency.
    pub generation_margin_blocks: i32,
    /// Maximum number of freshly generated or loaded chunks integrated into
    /// the world per tick; the remainder is queued for following ticks, as
    /// production servers do to bound per-tick work.
    pub max_chunk_loads_per_tick: usize,
    /// The kind of world the instance hosts.
    pub world_kind: WorldKind,
    /// Number of worker threads the game loop may fan real computation out
    /// to: avatar stepping and (when the construct backend allows it)
    /// construct simulation, partitioned by the world shard owning each
    /// construct. `1` keeps everything on the game-loop thread.
    ///
    /// Construct simulation results are identical for every value.
    /// Fleet-driven runs ([`GameServer::run_with_fleet`]) are identical for
    /// every value above `1` (avatars use per-avatar random streams via
    /// `PlayerFleet::tick_parallel`), but differ from `parallelism = 1`,
    /// which drives the fleet through its sequential shared-stream
    /// `PlayerFleet::tick` — the seed behaviour existing experiments
    /// depend on. Compare like with like when sweeping this knob.
    pub parallelism: usize,
}

impl ServerConfig {
    /// The Opencraft baseline configuration.
    pub fn opencraft() -> Self {
        ServerConfig {
            name: "Opencraft",
            costs: CostModel::opencraft(),
            tick_rate_hz: consts::TICK_RATE_HZ,
            view_distance_blocks: consts::DEFAULT_VIEW_DISTANCE_BLOCKS,
            generation_margin_blocks: 16,
            max_chunk_loads_per_tick: 16,
            world_kind: WorldKind::Flat,
            parallelism: 1,
        }
    }

    /// The Minecraft baseline configuration.
    pub fn minecraft() -> Self {
        ServerConfig {
            costs: CostModel::minecraft(),
            name: "Minecraft",
            ..ServerConfig::opencraft()
        }
    }

    /// The base configuration Servo builds on (Servo is implemented on top
    /// of Opencraft; `servo-core` combines this with its backends).
    pub fn servo_base() -> Self {
        ServerConfig {
            costs: CostModel::servo(),
            name: "Servo",
            generation_margin_blocks: 48,
            ..ServerConfig::opencraft()
        }
    }

    /// Sets the view distance, returning the modified configuration.
    pub fn with_view_distance(mut self, blocks: i32) -> Self {
        self.view_distance_blocks = blocks.max(0);
        self
    }

    /// Sets the world kind, returning the modified configuration.
    pub fn with_world_kind(mut self, kind: WorldKind) -> Self {
        self.world_kind = kind;
        self
    }

    /// Sets the worker-thread count for the parallel tick path, returning
    /// the modified configuration.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// The tick budget implied by the tick rate.
    pub fn tick_budget(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / self.tick_rate_hz as u64)
    }
}

/// Counters describing what a server instance did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Player events processed.
    pub events_processed: u64,
    /// Chunks integrated into the world.
    pub chunks_loaded: u64,
    /// Construct resolutions by kind.
    pub sc_local: u64,
    /// Constructs advanced by applying speculative results.
    pub sc_merged: u64,
    /// Constructs advanced by replaying a detected loop.
    pub sc_replayed: u64,
    /// Constructs skipped (baselines simulate every other tick).
    pub sc_skipped: u64,
}

/// The outcome of one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickReport {
    /// The tick index.
    pub tick: Tick,
    /// The virtual time at which the tick started.
    pub started_at: SimTime,
    /// How long the tick took.
    pub duration: SimDuration,
    /// The work performed.
    pub work: TickWork,
    /// Distance from the closest player to the closest missing terrain, in
    /// blocks (the QoS metric of Figure 10); equals the view distance when
    /// all required terrain is loaded.
    pub view_range_blocks: f64,
}

/// A modifiable-virtual-environment game server, generic over the world's
/// [`ChunkStore`] backend (default: the seed's [`RwLockStore`]).
///
/// See the crate-level documentation for the role this type plays; the
/// baselines and Servo are all instances of it with different backends and
/// cost models.
pub struct GameServer<B: ChunkStore = RwLockStore> {
    config: ServerConfig,
    world: Arc<ShardedWorld<B>>,
    /// When set, this instance is one zone of a sharded cluster: it ticks
    /// constructs, requests terrain, and drains dirty state only for the
    /// world shards its zone owns. `None` means the server owns the whole
    /// world (the single-server deployments).
    ownership: Option<(Arc<ShardMap>, usize)>,
    /// Constructs with the world shard that owns them (by the chunk of
    /// their first block) — the partition key of the parallel tick path.
    constructs: Vec<(ConstructId, usize, Construct)>,
    /// Adopted constructs this zone simulates even though their home shard
    /// belongs to another zone — the product of ownership-aware construct
    /// migration, where a cluster moves a border construct to the zone
    /// owning the majority of its blocks without moving any shard. Empty
    /// (and therefore free) on unrestricted servers and on zones that only
    /// ever adopt shard-aligned constructs.
    pinned: std::collections::HashSet<ConstructId>,
    construct_ids: IdAllocator<ConstructId>,
    sc_backend: Box<dyn ScBackend>,
    /// The terrain pipeline: every chunk the world is missing is submitted
    /// as a [`ChunkRequest::Read`] ticket and arrives back as a
    /// [`ChunkOutcome::Loaded`] completion — the loop never blocks on
    /// generation or storage.
    chunks: Box<dyn ChunkService>,
    clock: SimClock,
    tick: Tick,
    rng: SimRng,
    reports: Vec<TickReport>,
    stats: ServerStats,
    /// Generated chunks waiting to be integrated (per-tick integration is
    /// bounded by `max_chunk_loads_per_tick`).
    pending_integration: std::collections::VecDeque<servo_world::Chunk>,
}

impl<B: ChunkStore> std::fmt::Debug for GameServer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GameServer")
            .field("name", &self.config.name)
            .field("tick", &self.tick)
            .field("constructs", &self.constructs.len())
            .field("loaded_chunks", &self.world.loaded_chunks())
            .finish()
    }
}

impl GameServer {
    /// Creates a server instance with the given construct backend and
    /// terrain chunk service, over the default world backend.
    pub fn new(
        config: ServerConfig,
        sc_backend: Box<dyn ScBackend>,
        chunks: Box<dyn ChunkService>,
        rng: SimRng,
    ) -> Self {
        Self::new_in(config, sc_backend, chunks, rng)
    }
}

impl<B: ChunkStore> GameServer<B> {
    /// Creates a server instance with the given construct backend and
    /// terrain chunk service, over world backend `B` (e.g.
    /// `GameServer::<LockFreeStore>::new_in(..)`).
    pub fn new_in(
        config: ServerConfig,
        sc_backend: Box<dyn ScBackend>,
        chunks: Box<dyn ChunkService>,
        rng: SimRng,
    ) -> Self {
        let world = match config.world_kind {
            WorldKind::Flat => ShardedWorld::<B>::flat_in(4),
            WorldKind::Default => ShardedWorld::<B>::new_in(),
        };
        GameServer {
            config,
            world: Arc::new(world),
            ownership: None,
            constructs: Vec::new(),
            pinned: std::collections::HashSet::new(),
            construct_ids: IdAllocator::new(),
            sc_backend,
            chunks,
            clock: SimClock::new(),
            tick: Tick::ZERO,
            rng,
            reports: Vec::new(),
            stats: ServerStats::default(),
            pending_integration: std::collections::VecDeque::new(),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server's world.
    pub fn world(&self) -> &ShardedWorld<B> {
        &self.world
    }

    /// A shared handle to the server's world, for binding external
    /// consumers such as a persistence [`ChunkService`]
    /// (`PipelinedChunkService::with_world`) or a cluster's border
    /// protocol. All [`ShardedWorld`] mutation goes through `&self`, so the
    /// handle is safe to hold alongside the running server.
    pub fn world_handle(&self) -> Arc<ShardedWorld<B>> {
        Arc::clone(&self.world)
    }

    /// Restricts this instance to the world shards that `map` assigns to
    /// `zone`: terrain is requested, constructs are stepped, and dirty
    /// state is drained ([`GameServer::drain_owned_dirty`]) only for owned
    /// shards. Used by `crate::cluster::ShardedGameCluster` to make each
    /// member simulate exactly its slice of the environment.
    ///
    /// # Panics
    ///
    /// Panics if the map's shard count differs from the world's, or `zone`
    /// is out of range.
    pub fn restrict_to_zone(&mut self, map: Arc<ShardMap>, zone: usize) {
        assert_eq!(
            map.shard_count(),
            self.world.shard_count(),
            "shard map must cover the world's shards"
        );
        assert!(zone < map.zones(), "zone {zone} out of range");
        self.ownership = Some((map, zone));
    }

    /// The zone this instance simulates, when restricted via
    /// [`GameServer::restrict_to_zone`].
    pub fn zone(&self) -> Option<usize> {
        self.ownership.as_ref().map(|(_, zone)| *zone)
    }

    /// Whether this instance owns (simulates and persists) the world shard
    /// `shard`. Unrestricted servers own everything.
    #[inline]
    pub fn owns_shard(&self, shard: usize) -> bool {
        match &self.ownership {
            Some((map, zone)) => map.zone_of_shard(shard) == *zone,
            None => true,
        }
    }

    /// Whether this instance owns the chunk at `pos`.
    #[inline]
    pub fn owns_chunk(&self, pos: ChunkPos) -> bool {
        match &self.ownership {
            Some((map, zone)) => map.zone_of_chunk(pos) == *zone,
            None => true,
        }
    }

    /// Drains the dirty state of the shards this instance owns — the whole
    /// world for unrestricted servers, the zone's shards otherwise. The
    /// cluster's border protocol and per-zone write-back consume this
    /// instead of [`ShardedWorld::drain_dirty`] so one zone never flushes
    /// another zone's chunks.
    pub fn drain_owned_dirty(&self) -> Vec<ShardDelta> {
        match &self.ownership {
            Some((map, zone)) => self.world.drain_dirty_shards(&map.zone_shards(*zone)),
            None => self.world.drain_dirty(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The current tick index.
    pub fn current_tick(&self) -> Tick {
        self.tick
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Number of simulated constructs in the instance.
    pub fn construct_count(&self) -> usize {
        self.constructs.len()
    }

    /// Adds a simulated construct built from `blueprint` and returns its id.
    pub fn add_construct(&mut self, blueprint: Blueprint) -> ConstructId {
        let id = self.construct_ids.next();
        let shard = blueprint
            .positions()
            .first()
            .map(|&p| self.world.shard_of(ChunkPos::from(p)))
            .unwrap_or(0);
        self.constructs.push((id, shard, Construct::new(blueprint)));
        id
    }

    /// Adds `count` identical constructs built by `builder`.
    pub fn add_constructs<F: Fn(usize) -> Blueprint>(&mut self, count: usize, builder: F) {
        for i in 0..count {
            self.add_construct(builder(i));
        }
    }

    /// Removes construct `id` from this server and returns it with its
    /// full simulation state — the source half of a cluster shard
    /// migration. The construct backend is told to release any
    /// per-construct state it holds (in-flight speculation, cached
    /// sequences), so a later reuse of the id cannot observe stale state.
    pub fn take_construct(&mut self, id: ConstructId) -> Option<Construct> {
        let index = self.constructs.iter().position(|(cid, _, _)| *cid == id)?;
        let (_, _, construct) = self.constructs.remove(index);
        self.pinned.remove(&id);
        self.sc_backend.release(id);
        Some(construct)
    }

    /// Adopts a construct taken from another server (the destination half
    /// of a cluster shard migration), preserving its simulation state and
    /// returning the id it carries *on this server*. The owning shard is
    /// re-derived from the construct's first block, exactly like
    /// [`GameServer::add_construct`] does.
    ///
    /// The adopted construct is *pinned*: a zone-restricted instance steps
    /// it even when its home shard belongs to another zone. For shard
    /// migrations (where the shard arrives with the construct) the pin is
    /// inert; for ownership-aware construct migrations it is what makes
    /// the construct run on its new owner at all.
    pub fn adopt_construct(&mut self, construct: Construct) -> ConstructId {
        let id = self.construct_ids.next();
        let shard = construct
            .blueprint()
            .positions()
            .first()
            .map(|&p| self.world.shard_of(ChunkPos::from(p)))
            .unwrap_or(0);
        self.constructs.push((id, shard, construct));
        self.pinned.insert(id);
        id
    }

    /// Whether construct `id` is pinned to this instance — simulated here
    /// regardless of which zone owns its home shard (see
    /// [`GameServer::adopt_construct`]).
    pub fn is_pinned(&self, id: ConstructId) -> bool {
        self.pinned.contains(&id)
    }

    /// The precomputed speculative sequence currently serving construct
    /// `id` from shared remote storage, if the construct backend has one —
    /// the cluster-facing view of [`ScBackend::published_sequence`].
    pub fn published_sequence(&self, id: ConstructId) -> Option<crate::PublishedSequence> {
        self.sc_backend.published_sequence(id)
    }

    /// Tells the construct backend to release every construct's
    /// per-construct state — in-flight speculation, cached sequences. The
    /// cluster calls this when the zone *crashes*: whatever the substrate
    /// was computing on the dead server's behalf is abandoned, so a
    /// survivor adopting the constructs starts from their last committed
    /// state instead of racing stale speculative results.
    pub fn release_all_speculation(&mut self) {
        for (id, _, _) in &self.constructs {
            self.sc_backend.release(*id);
        }
    }

    /// Read access to a construct by id.
    pub fn construct(&self, id: ConstructId) -> Option<&Construct> {
        self.constructs
            .iter()
            .find(|(cid, _, _)| *cid == id)
            .map(|(_, _, c)| c)
    }

    /// All tick reports recorded so far.
    pub fn reports(&self) -> &[TickReport] {
        &self.reports
    }

    /// All recorded tick durations.
    pub fn tick_durations(&self) -> Vec<SimDuration> {
        self.reports.iter().map(|r| r.duration).collect()
    }

    /// Tick durations as a time series (milliseconds), for rolling-band
    /// plots.
    pub fn tick_duration_series(&self) -> Vec<TimePoint> {
        self.reports
            .iter()
            .map(|r| TimePoint {
                at: r.started_at,
                value: r.duration.as_millis_f64(),
            })
            .collect()
    }

    /// View-range samples over time (blocks), for the Figure 10 QoS plot.
    pub fn view_range_series(&self) -> Vec<TimePoint> {
        self.reports
            .iter()
            .map(|r| TimePoint {
                at: r.started_at,
                value: r.view_range_blocks,
            })
            .collect()
    }

    /// Clears recorded reports (e.g. to discard a warm-up phase) without
    /// resetting the world or the clock.
    pub fn discard_reports(&mut self) {
        self.reports.clear();
    }

    /// Runs a single tick given the current avatar positions and the player
    /// events that arrived since the previous tick.
    pub fn run_tick(
        &mut self,
        positions: &[BlockPos],
        events: &[(PlayerId, PlayerEvent)],
    ) -> TickReport {
        let now = self.clock.now();
        let mut work = TickWork {
            players: positions.len(),
            events: events.len(),
            ..TickWork::default()
        };

        // 1. Terrain management: harvest completed chunk tickets, then
        //    submit reads for everything missing out to the view distance
        //    plus the generation margin. The chunk service deduplicates
        //    re-submitted positions, so asking every tick is free.
        for completion in self.chunks.poll(now) {
            if let ChunkOutcome::Loaded { chunk, .. } = completion.outcome {
                self.pending_integration.push_back(*chunk);
            }
        }
        let generation_horizon =
            self.config.view_distance_blocks + self.config.generation_margin_blocks;
        let needed = required_chunks(positions, generation_horizon);
        for pos in &needed {
            // A zone-restricted instance provisions only the terrain it
            // owns; foreign chunks are the owning zone's responsibility
            // (and the view-range metric below treats them as such).
            if self.owns_chunk(*pos) && !self.world.is_loaded(*pos) {
                self.chunks.submit(ChunkRequest::read(*pos));
            }
        }
        let to_integrate = self
            .pending_integration
            .len()
            .min(self.config.max_chunk_loads_per_tick);
        work.chunks_loaded = to_integrate;
        work.chunks_sent = to_integrate * positions.len().clamp(1, 4);
        // Integrate as one batch: the sharded world groups the chunks by
        // shard and takes each shard's write lock once.
        self.world
            .insert_chunks(self.pending_integration.drain(..to_integrate));
        work.busy_generation_workers = self.chunks.busy_local_workers(now);
        work.generation_backlog = self.chunks.pending() + self.pending_integration.len();

        // 2. Apply player events to the world and to any construct they
        //    touch (invalidating in-flight speculation via the modification
        //    stamp).
        for (_, event) in events {
            match event {
                PlayerEvent::BlockPlaced(pos) | PlayerEvent::BlockBroken(pos) => {
                    let block = match event {
                        PlayerEvent::BlockPlaced(_) => servo_world::Block::Stone,
                        _ => servo_world::Block::Air,
                    };
                    // Ignore writes into unloaded terrain; clients cannot
                    // modify terrain they have not received.
                    let _ = self.world.set_block(*pos, block);
                    for (_, _, construct) in &mut self.constructs {
                        if construct.blueprint().index_of(*pos).is_some() {
                            construct.apply_modification(*pos, None);
                        }
                    }
                }
                PlayerEvent::ChatMessage | PlayerEvent::InventoryChanged => {}
            }
        }

        // 3. Advance simulated constructs through the configured backend's
        //    resolution plan. A uniform plan steps constructs on scoped
        //    worker threads with no backend involvement; a partitioned plan
        //    fans per-construct resolution out through the backend's
        //    thread-safe table (partitioned by owning world shard) and then
        //    reconciles the backend's deferred state once; anything else
        //    goes through the sequential resolve path. All paths produce
        //    identical states and counters (asserted by the differential
        //    suites in `servo-server` and `servo-core`).
        let threads = self
            .config
            .parallelism
            .max(1)
            .min(self.constructs.len().max(1));
        // Zone-restricted instances step only the constructs living in
        // shards they own, plus any constructs pinned here by an
        // ownership-aware migration; other foreign constructs are another
        // server's work.
        let ownership = self.ownership.clone();
        let pinned = self.pinned.clone();
        let owns = |id: ConstructId, shard: usize| match &ownership {
            Some((map, zone)) => map.zone_of_shard(shard) == *zone || pinned.contains(&id),
            None => true,
        };
        let plan = self.sc_backend.plan(self.tick);
        match plan {
            ResolutionPlan::Uniform(
                resolution @ (ScResolution::LocalSimulated | ScResolution::Skipped),
            ) if threads > 1 => {
                let count = self
                    .constructs
                    .iter()
                    .filter(|(id, shard, _)| owns(*id, *shard))
                    .count();
                if resolution == ScResolution::LocalSimulated {
                    let mut buckets: Vec<Vec<&mut Construct>> =
                        (0..threads).map(|_| Vec::new()).collect();
                    for (id, shard, construct) in &mut self.constructs {
                        if owns(*id, *shard) {
                            buckets[*shard % threads].push(construct);
                        }
                    }
                    std::thread::scope(|scope| {
                        for bucket in buckets {
                            scope.spawn(move || {
                                for construct in bucket {
                                    construct.step();
                                }
                            });
                        }
                    });
                    work.sc_local += count;
                    self.stats.sc_local += count as u64;
                } else {
                    self.stats.sc_skipped += count as u64;
                }
            }
            ResolutionPlan::Partitioned if threads > 1 => {
                let tick = self.tick;
                let counts = {
                    let resolver = self
                        .sc_backend
                        .partitioned()
                        .expect("a Partitioned plan must provide a partitioned resolver");
                    let mut buckets: Vec<Vec<(ConstructId, usize, &mut Construct)>> =
                        (0..threads).map(|_| Vec::new()).collect();
                    for (id, shard, construct) in &mut self.constructs {
                        if owns(*id, *shard) {
                            buckets[*shard % threads].push((*id, *shard, construct));
                        }
                    }
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = buckets
                            .into_iter()
                            .map(|bucket| {
                                scope.spawn(move || {
                                    let mut counts = ResolutionCounts::default();
                                    for (id, shard, construct) in bucket {
                                        let resolution = resolver
                                            .resolve_partitioned(id, shard, construct, tick, now);
                                        count_resolution(&mut counts, resolution);
                                    }
                                    counts
                                })
                            })
                            .collect();
                        handles.into_iter().fold(
                            ResolutionCounts::default(),
                            |mut total, handle| {
                                let counts =
                                    handle.join().expect("construct worker must not panic");
                                for (slot, value) in total.iter_mut().zip(counts) {
                                    *slot += value;
                                }
                                total
                            },
                        )
                    })
                };
                // Flush deferred statistics and platform invocations in the
                // backend's deterministic order.
                self.sc_backend.reconcile(tick, now);
                let [local, merged, replayed, skipped] = counts;
                work.sc_local += local as usize;
                work.sc_merged += merged as usize;
                work.sc_replayed += replayed as usize;
                self.stats.sc_local += local;
                self.stats.sc_merged += merged;
                self.stats.sc_replayed += replayed;
                self.stats.sc_skipped += skipped;
            }
            _ => {
                for (id, shard, construct) in &mut self.constructs {
                    if !owns(*id, *shard) {
                        continue;
                    }
                    match self.sc_backend.resolve(*id, construct, self.tick, now) {
                        ScResolution::LocalSimulated => {
                            work.sc_local += 1;
                            self.stats.sc_local += 1;
                        }
                        ScResolution::SpeculativeApplied => {
                            work.sc_merged += 1;
                            self.stats.sc_merged += 1;
                        }
                        ScResolution::LoopReplayed => {
                            work.sc_replayed += 1;
                            self.stats.sc_replayed += 1;
                        }
                        ScResolution::Skipped => {
                            self.stats.sc_skipped += 1;
                        }
                    }
                }
            }
        }

        // 4. QoS metric: distance to the nearest missing terrain.
        let view_range_blocks = if positions.is_empty() {
            self.config.view_distance_blocks as f64
        } else if let Some((map, zone)) = &self.ownership {
            // A zone-restricted instance is accountable only for owned
            // terrain: foreign chunks are served to clients by the zone
            // that owns them, so they count as present here — otherwise
            // the interleaved shard layout would pin the metric to zero.
            nearest_missing_distance_blocks(
                &OwnedTerrainView {
                    world: &self.world,
                    map,
                    zone: *zone,
                },
                positions,
                self.config.view_distance_blocks,
            )
        } else {
            nearest_missing_distance_blocks(
                self.world.as_ref(),
                positions,
                self.config.view_distance_blocks,
            )
        };

        // 5. Derive the tick duration from the work performed.
        let duration = self.config.costs.tick_duration(&work, &mut self.rng);

        let report = TickReport {
            tick: self.tick,
            started_at: now,
            duration,
            work,
            view_range_blocks,
        };
        self.reports.push(report);
        self.stats.ticks += 1;
        self.stats.events_processed += events.len() as u64;
        self.stats.chunks_loaded += work.chunks_loaded as u64;

        // 6. Advance the clock: the next tick starts after the fixed tick
        //    interval, or later if this tick overran its budget.
        let tick_budget = self.config.tick_budget();
        self.clock.advance_by(duration.max(tick_budget));
        self.tick = self.tick.next();
        report
    }

    /// Drives the server with a player fleet for `duration` of virtual time,
    /// returning the reports of the executed ticks.
    pub fn run_with_fleet(
        &mut self,
        fleet: &mut PlayerFleet,
        duration: SimDuration,
    ) -> Vec<TickReport> {
        let end = self.clock.now() + duration;
        let tick_budget = self.config.tick_budget();
        let parallelism = self.config.parallelism.max(1);
        let mut reports = Vec::new();
        while self.clock.now() < end {
            let now = self.clock.now();
            // With parallelism enabled, avatars step on scoped worker
            // threads using per-avatar random streams; sequentially they
            // share the fleet stream (the seed behaviour).
            let events = if parallelism > 1 {
                fleet.tick_parallel(now, tick_budget, parallelism)
            } else {
                fleet.tick(now, tick_budget)
            };
            let positions = fleet.positions();
            reports.push(self.run_tick(&positions, &events));
        }
        reports
    }

    /// Convenience: the set of chunks currently required by the given
    /// positions at the configured view distance.
    pub fn required_chunk_set(&self, positions: &[BlockPos]) -> HashSet<ChunkPos> {
        required_chunks(positions, self.config.view_distance_blocks)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{LocalGenerationBackend, LocalScBackend};
    use servo_pcg::FlatGenerator;
    use servo_redstone::generators;
    use servo_workload::BehaviorKind;

    fn flat_server(config: ServerConfig) -> GameServer {
        GameServer::new(
            config.with_view_distance(32),
            Box::new(LocalScBackend::every_other_tick()),
            Box::new(LocalGenerationBackend::new(
                Box::new(FlatGenerator::default()),
                8,
            )),
            SimRng::seed(7),
        )
    }

    fn bounded_fleet(players: usize, seed: u64) -> PlayerFleet {
        let mut fleet =
            PlayerFleet::new(BehaviorKind::Bounded { radius: 24.0 }, SimRng::seed(seed));
        fleet.connect_all(players);
        fleet
    }

    #[test]
    fn runs_at_twenty_ticks_per_second() {
        let mut server = flat_server(ServerConfig::opencraft());
        let mut fleet = bounded_fleet(5, 1);
        let reports = server.run_with_fleet(&mut fleet, SimDuration::from_secs(5));
        // A handful of early ticks overrun while the spawn terrain loads;
        // after that the loop runs at 20 ticks per second.
        assert!(
            (90..=100).contains(&reports.len()),
            "ticks {}",
            reports.len()
        );
        assert_eq!(server.stats().ticks, reports.len() as u64);
        // Virtual time advanced by at least the requested duration.
        assert!(server.now() >= SimTime::from_secs(5));
        // Steady state meets the tick budget.
        let tail = &reports[reports.len() / 2..];
        assert!(tail
            .iter()
            .all(|r| r.duration <= SimDuration::from_millis(50)));
    }

    #[test]
    fn terrain_appears_around_players() {
        let mut server = flat_server(ServerConfig::opencraft());
        let mut fleet = bounded_fleet(3, 2);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(5));
        assert!(server.world().loaded_chunks() > 0);
        // Eventually all required terrain is loaded: view range recovers to
        // the full view distance.
        let last = server.reports().last().unwrap();
        assert_eq!(last.view_range_blocks, 32.0);
        assert!(server.stats().chunks_loaded > 0);
    }

    #[test]
    fn constructs_advance_every_other_tick_for_baselines() {
        let mut server = flat_server(ServerConfig::opencraft());
        server.add_constructs(4, |_| generators::wire_line(10));
        assert_eq!(server.construct_count(), 4);
        let mut fleet = bounded_fleet(1, 3);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(2));
        // Constructs are stepped on even ticks only: exactly half of all
        // construct resolutions are skips, and every construct advanced one
        // step per non-skipped tick.
        let stats = server.stats();
        assert_eq!(stats.sc_local + stats.sc_skipped, 4 * stats.ticks);
        assert!(stats.sc_local >= stats.sc_skipped);
        assert!(stats.sc_local <= stats.sc_skipped + 4);
        let id = ConstructId::new(0);
        assert_eq!(
            server.construct(id).unwrap().state().step(),
            stats.sc_local / 4
        );
    }

    #[test]
    fn tick_duration_grows_with_construct_count() {
        let run = |constructs: usize| -> f64 {
            let mut server = flat_server(ServerConfig::opencraft());
            server.add_constructs(constructs, |_| generators::dense_circuit(64));
            let mut fleet = bounded_fleet(10, 4);
            // Let the spawn terrain load, then measure the steady state.
            server.run_with_fleet(&mut fleet, SimDuration::from_secs(2));
            server.discard_reports();
            server.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
            let durations = server.tick_durations();
            durations.iter().map(|d| d.as_millis_f64()).sum::<f64>() / durations.len() as f64
        };
        let few = run(5);
        let many = run(60);
        assert!(many > few * 1.5, "few {few} many {many}");
    }

    #[test]
    fn baseline_distribution_is_bimodal_with_constructs() {
        let mut server = flat_server(ServerConfig::minecraft());
        server.add_constructs(100, |_| generators::dense_circuit(64));
        let mut fleet = bounded_fleet(10, 5);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(5));
        let reports = server.reports();
        let even: Vec<f64> = reports
            .iter()
            .filter(|r| r.tick.0 % 2 == 0)
            .map(|r| r.duration.as_millis_f64())
            .collect();
        let odd: Vec<f64> = reports
            .iter()
            .filter(|r| r.tick.0 % 2 == 1)
            .map(|r| r.duration.as_millis_f64())
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // SC ticks are clearly more expensive than non-SC ticks.
        assert!(mean(&even) > mean(&odd) + 5.0);
    }

    #[test]
    fn block_events_modify_world_and_invalidate_constructs() {
        let mut server = flat_server(ServerConfig::opencraft());
        let id = server.add_construct(generators::wire_line(5));
        // Pre-load the spawn chunk so block modifications apply.
        let mut fleet = bounded_fleet(1, 6);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(2));
        let stamp_before = server.construct(id).unwrap().modification_stamp();
        // A player breaks the block at the construct's origin.
        let events = vec![(
            PlayerId::new(0),
            PlayerEvent::BlockBroken(BlockPos::new(0, 0, 0)),
        )];
        let positions = fleet.positions();
        server.run_tick(&positions, &events);
        assert_eq!(server.stats().events_processed, 1);
        assert!(server.construct(id).unwrap().modification_stamp() > stamp_before);
    }

    #[test]
    fn overrunning_ticks_delay_the_clock() {
        let mut server = flat_server(ServerConfig::opencraft());
        // 300 constructs guarantee every SC tick overruns 50 ms.
        server.add_constructs(300, |_| generators::wire_line(3));
        let mut fleet = bounded_fleet(1, 7);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(1));
        // Fewer than 20 ticks fit in one virtual second because SC ticks
        // take longer than 50 ms.
        assert!(server.stats().ticks < 20, "ticks {}", server.stats().ticks);
    }

    #[test]
    fn discard_reports_keeps_world_state() {
        let mut server = flat_server(ServerConfig::opencraft());
        let mut fleet = bounded_fleet(2, 8);
        server.run_with_fleet(&mut fleet, SimDuration::from_secs(1));
        let chunks = server.world().loaded_chunks();
        server.discard_reports();
        assert!(server.reports().is_empty());
        assert_eq!(server.world().loaded_chunks(), chunks);
    }

    #[test]
    fn parallel_construct_tick_matches_sequential() {
        let build = |threads: usize| {
            let mut server = flat_server(ServerConfig::opencraft().with_parallelism(threads));
            server.add_constructs(24, |i| generators::dense_circuit(16 + i % 5));
            server
        };
        let mut sequential = build(1);
        let mut parallel = build(4);
        let positions = vec![BlockPos::new(8, 4, 8)];
        for _ in 0..40 {
            sequential.run_tick(&positions, &[]);
            parallel.run_tick(&positions, &[]);
        }
        assert_eq!(sequential.stats().sc_local, parallel.stats().sc_local);
        assert_eq!(sequential.stats().sc_skipped, parallel.stats().sc_skipped);
        for i in 0..24 {
            let id = ConstructId::new(i);
            assert_eq!(
                sequential.construct(id).unwrap().state().hash(),
                parallel.construct(id).unwrap().state().hash(),
                "construct {i} diverged"
            );
        }
    }

    #[test]
    fn partitioned_plan_matches_sequential_and_reconciles_once_per_tick() {
        use crate::backends::{PartitionedResolver, ResolutionPlan};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// A stateful backend exercising the partitioned fan-out: every
        /// construct steps locally, resolutions are counted through the
        /// shared table, and each tick must reconcile exactly once.
        struct CountingPartitioned {
            resolved: Arc<AtomicU64>,
            reconciled: Arc<AtomicU64>,
        }

        impl PartitionedResolver for CountingPartitioned {
            fn resolve_partitioned(
                &self,
                _id: ConstructId,
                _shard: usize,
                construct: &mut Construct,
                _tick: Tick,
                _now: SimTime,
            ) -> ScResolution {
                construct.step();
                self.resolved.fetch_add(1, Ordering::Relaxed);
                ScResolution::LocalSimulated
            }
        }

        impl crate::backends::ScBackend for CountingPartitioned {
            fn resolve(
                &mut self,
                id: ConstructId,
                construct: &mut Construct,
                tick: Tick,
                now: SimTime,
            ) -> ScResolution {
                self.resolve_partitioned(id, 0, construct, tick, now)
            }

            fn plan(&mut self, _tick: Tick) -> ResolutionPlan {
                ResolutionPlan::Partitioned
            }

            fn partitioned(&self) -> Option<&dyn PartitionedResolver> {
                Some(self)
            }

            fn reconcile(&mut self, _tick: Tick, _now: SimTime) {
                self.reconciled.fetch_add(1, Ordering::Relaxed);
            }

            fn name(&self) -> &'static str {
                "counting-partitioned"
            }
        }

        let build = |threads: usize| {
            let resolved = Arc::new(AtomicU64::new(0));
            let reconciled = Arc::new(AtomicU64::new(0));
            let mut server = GameServer::new(
                ServerConfig::opencraft()
                    .with_view_distance(32)
                    .with_parallelism(threads),
                Box::new(CountingPartitioned {
                    resolved: Arc::clone(&resolved),
                    reconciled: Arc::clone(&reconciled),
                }),
                Box::new(LocalGenerationBackend::new(
                    Box::new(FlatGenerator::default()),
                    8,
                )),
                SimRng::seed(7),
            );
            server.add_constructs(24, |i| generators::dense_circuit(16 + i % 5));
            (server, resolved, reconciled)
        };
        let (mut sequential, seq_resolved, _) = build(1);
        let (mut parallel, par_resolved, par_reconciled) = build(4);
        let positions = vec![BlockPos::new(8, 4, 8)];
        for _ in 0..30 {
            sequential.run_tick(&positions, &[]);
            parallel.run_tick(&positions, &[]);
        }
        assert_eq!(seq_resolved.load(Ordering::Relaxed), 24 * 30);
        assert_eq!(par_resolved.load(Ordering::Relaxed), 24 * 30);
        // The fan-out reconciles exactly once per tick.
        assert_eq!(par_reconciled.load(Ordering::Relaxed), 30);
        assert_eq!(sequential.stats().sc_local, parallel.stats().sc_local);
        for i in 0..24 {
            let id = ConstructId::new(i);
            assert_eq!(
                sequential.construct(id).unwrap().state().hash(),
                parallel.construct(id).unwrap().state().hash(),
                "construct {i} diverged"
            );
        }
    }

    #[test]
    fn parallel_fleet_runs_are_reproducible() {
        let run = || {
            let mut server = flat_server(ServerConfig::opencraft().with_parallelism(4));
            server.add_constructs(8, |_| generators::wire_line(6));
            let mut fleet = bounded_fleet(12, 21);
            server.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
            (
                server.stats(),
                server.tick_durations(),
                server.world().total_modifications(),
            )
        };
        let (stats_a, durations_a, mods_a) = run();
        let (stats_b, durations_b, mods_b) = run();
        assert_eq!(stats_a, stats_b);
        assert_eq!(durations_a, durations_b);
        assert_eq!(mods_a, mods_b);
    }

    #[test]
    fn lockfree_world_backend_runs_identically() {
        use servo_world::LockFreeStore;
        fn run<B: ChunkStore>() -> (ServerStats, Vec<SimDuration>, u64, usize) {
            let mut server = GameServer::<B>::new_in(
                ServerConfig::opencraft().with_view_distance(32),
                Box::new(LocalScBackend::every_other_tick()),
                Box::new(LocalGenerationBackend::new(
                    Box::new(FlatGenerator::default()),
                    8,
                )),
                SimRng::seed(7),
            );
            server.add_constructs(6, |_| generators::wire_line(8));
            let mut fleet = bounded_fleet(8, 11);
            let events = vec![(
                PlayerId::new(0),
                PlayerEvent::BlockPlaced(BlockPos::new(2, 5, 2)),
            )];
            server.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
            let positions = fleet.positions();
            server.run_tick(&positions, &events);
            (
                server.stats(),
                server.tick_durations(),
                server.world().total_modifications(),
                server.world().loaded_chunks(),
            )
        }
        // The backend is invisible to the game loop: the same seed produces
        // identical stats, tick durations, and world counters.
        assert_eq!(run::<RwLockStore>(), run::<LockFreeStore>());
    }

    #[test]
    fn config_builders() {
        let cfg = ServerConfig::minecraft().with_view_distance(64);
        assert_eq!(cfg.view_distance_blocks, 64);
        assert_eq!(cfg.name, "Minecraft");
        assert_eq!(
            ServerConfig::opencraft().tick_budget(),
            SimDuration::from_millis(50)
        );
        assert_eq!(ServerConfig::servo_base().name, "Servo");
    }
}

//! Multi-server architectures for non-modifiable virtual worlds: zoning and
//! replication (paper Section II-B).
//!
//! The paper argues that the two classic techniques for scaling online games
//! do not address MVE workloads:
//!
//! * **zoning** partitions the *world* over servers, so player interaction
//!   and constructs near zone borders cause frequent server-to-server
//!   coordination, and the environment simulation itself is still bounded by
//!   the busiest zone;
//! * **replication** partitions the *players* over servers but every replica
//!   must simulate the entire modifiable environment, duplicating exactly
//!   the workload (simulated constructs) that makes MVEs expensive.
//!
//! This module is the *analytic baseline*: both architectures are modelled
//! on top of the same closed-form cost model as the single-server
//! baselines, so the ablation experiment (`ablation_multiserver`) can
//! sanity-check the argument cheaply. The *measured* counterpart is
//! [`crate::cluster::ShardedGameCluster`], which replays the zoning
//! architecture on real [`GameServer`](crate::GameServer) instances
//! partitioned over world shards; the ablation runs both and compares
//! them. The headline result holds in both: with simulated constructs
//! present, adding servers through zoning or replication helps far less
//! than Servo's offloading — replication not at all.

use servo_simkit::SimRng;
use servo_types::SimDuration;

use crate::costs::{CostModel, TickWork};

/// The per-tick outcome of a multi-server cluster: the longest tick duration
/// over all member servers (the cluster is only as fast as its slowest
/// member) plus some bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterTick {
    /// The slowest member's tick duration, which determines the cluster's
    /// effective simulation latency.
    pub critical_path: SimDuration,
    /// Cross-server messages exchanged this tick.
    pub cross_server_messages: u64,
}

/// A zoned deployment: the world is split into `zones` zones, each simulated
/// by its own server running the given cost model.
#[derive(Debug, Clone)]
pub struct ZonedCluster {
    costs: CostModel,
    zones: usize,
    rng: SimRng,
    /// Fraction of players that sit near a zone border at any tick and
    /// therefore require cross-server coordination. With the star and
    /// bounded behaviours of the paper's workloads players cluster around
    /// the spawn point, which lies on a zone corner, so this is substantial.
    border_player_fraction: f64,
    /// Fraction of constructs that span a zone border (constructs are part
    /// of the terrain; splitting the terrain splits constructs).
    border_construct_fraction: f64,
    /// Cost of one cross-server coordination message, in milliseconds.
    message_cost_ms: f64,
}

impl ZonedCluster {
    /// Creates a zoned cluster of `zones` servers.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is zero.
    pub fn new(costs: CostModel, zones: usize, rng: SimRng) -> Self {
        assert!(zones > 0, "a cluster needs at least one zone");
        ZonedCluster {
            costs,
            zones,
            rng,
            border_player_fraction: 0.25,
            border_construct_fraction: 0.20,
            message_cost_ms: 0.05,
        }
    }

    /// Number of zones (servers).
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Overrides the fraction of players and constructs near zone borders.
    pub fn with_border_fractions(mut self, players: f64, constructs: f64) -> Self {
        self.border_player_fraction = players.clamp(0.0, 1.0);
        self.border_construct_fraction = constructs.clamp(0.0, 1.0);
        self
    }

    /// Simulates one tick of the whole cluster for a workload of `players`
    /// players and `constructs` locally simulated constructs, distributed
    /// over the zones.
    ///
    /// Players and constructs are spread evenly; border entities require
    /// coordination messages that are charged to both involved servers.
    pub fn run_tick(&mut self, players: usize, constructs: usize) -> ClusterTick {
        let per_zone_players = players / self.zones;
        let per_zone_constructs = constructs / self.zones;
        let border_players = (players as f64 * self.border_player_fraction) as u64;
        let border_constructs = (constructs as f64 * self.border_construct_fraction) as u64;
        // Each border entity is coordinated every tick with one neighbour
        // zone (state exchange + conflict resolution).
        let messages = border_players * 2 + border_constructs * 4;
        let coordination_ms = messages as f64 * self.message_cost_ms / self.zones as f64;

        let mut critical = SimDuration::ZERO;
        for zone in 0..self.zones {
            // The spawn zone holds the remainder plus a disproportionate
            // share of border traffic.
            let extra = if zone == 0 {
                players % self.zones + constructs % self.zones
            } else {
                0
            };
            let work = TickWork {
                players: per_zone_players + extra,
                sc_local: per_zone_constructs
                    + if zone == 0 {
                        constructs % self.zones
                    } else {
                        0
                    },
                ..TickWork::default()
            };
            let mut duration = self.costs.tick_duration(&work, &mut self.rng);
            duration += SimDuration::from_millis_f64(coordination_ms);
            critical = critical.max(duration);
        }
        ClusterTick {
            critical_path: critical,
            cross_server_messages: messages,
        }
    }
}

/// A replicated deployment: players are partitioned over `replicas` servers,
/// but every replica simulates the complete modifiable environment.
#[derive(Debug, Clone)]
pub struct ReplicatedCluster {
    costs: CostModel,
    replicas: usize,
    rng: SimRng,
    /// Probability per player per tick of an interaction that must be
    /// forwarded to the replica that owns the interaction partner.
    interaction_rate: f64,
    /// Cost of one cross-replica state-update message, in milliseconds.
    message_cost_ms: f64,
    /// Fractional cross-replica interactions carried over from previous
    /// ticks: the expected count per tick is rarely integral, and rounding
    /// it each tick would systematically over- or under-count messages.
    /// The fractional part accumulates here until it adds up to a whole
    /// interaction.
    cross_carry: f64,
}

impl ReplicatedCluster {
    /// Creates a replicated cluster of `replicas` servers.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(costs: CostModel, replicas: usize, rng: SimRng) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        ReplicatedCluster {
            costs,
            replicas,
            rng,
            interaction_rate: 0.3,
            message_cost_ms: 0.05,
            cross_carry: 0.0,
        }
    }

    /// Number of replicas (servers).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Simulates one tick of the cluster.
    ///
    /// Each replica handles `players / replicas` players but simulates *all*
    /// `constructs` constructs — the duplication of environment workload the
    /// paper points out. Player interactions whose partner lives on another
    /// replica cost cross-server messages.
    pub fn run_tick(&mut self, players: usize, constructs: usize) -> ClusterTick {
        let per_replica_players = players / self.replicas;
        // An interaction crosses replicas with probability (replicas-1)/replicas.
        let cross_fraction = (self.replicas as f64 - 1.0) / self.replicas as f64;
        let expected_cross = players as f64 * self.interaction_rate * cross_fraction;
        // Fractional interactions carry across ticks: each tick emits the
        // whole interactions accumulated so far (two messages each) and
        // keeps the remainder, so the long-run message total matches the
        // expected rate instead of drifting by up to half an interaction
        // per tick.
        self.cross_carry += expected_cross;
        let whole_cross = self.cross_carry.floor();
        self.cross_carry -= whole_cross;
        let messages = whole_cross as u64 * 2;
        let coordination_ms = expected_cross * self.message_cost_ms;

        let mut critical = SimDuration::ZERO;
        for replica in 0..self.replicas {
            let extra = if replica == 0 {
                players % self.replicas
            } else {
                0
            };
            let work = TickWork {
                players: per_replica_players + extra,
                // Every replica simulates the whole environment.
                sc_local: constructs,
                ..TickWork::default()
            };
            let mut duration = self.costs.tick_duration(&work, &mut self.rng);
            duration += SimDuration::from_millis_f64(coordination_ms);
            critical = critical.max(duration);
        }
        ClusterTick {
            critical_path: critical,
            cross_server_messages: messages,
        }
    }
}

/// Convenience: runs `ticks` cluster ticks and returns the critical-path
/// durations, for feeding into the capacity metric.
pub fn run_cluster_ticks<F: FnMut() -> ClusterTick>(ticks: usize, mut step: F) -> Vec<SimDuration> {
    (0..ticks).map(|_| step().critical_path).collect()
}

/// Samples a tick-duration series for a zoned cluster under a fixed
/// workload.
pub fn zoned_tick_durations(
    costs: CostModel,
    zones: usize,
    players: usize,
    constructs: usize,
    ticks: usize,
    seed: u64,
) -> Vec<SimDuration> {
    let mut cluster = ZonedCluster::new(costs, zones, SimRng::seed(seed));
    run_cluster_ticks(ticks, || cluster.run_tick(players, constructs))
}

/// Samples a tick-duration series for a replicated cluster under a fixed
/// workload.
pub fn replicated_tick_durations(
    costs: CostModel,
    replicas: usize,
    players: usize,
    constructs: usize,
    ticks: usize,
    seed: u64,
) -> Vec<SimDuration> {
    let mut cluster = ReplicatedCluster::new(costs, replicas, SimRng::seed(seed));
    run_cluster_ticks(ticks, || cluster.run_tick(players, constructs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_metrics::qos_satisfied_default;

    fn mean_ms(durations: &[SimDuration]) -> f64 {
        durations.iter().map(|d| d.as_millis_f64()).sum::<f64>() / durations.len() as f64
    }

    #[test]
    fn zoning_distributes_player_load() {
        // Without constructs, four zones handle many more players than one.
        let single = zoned_tick_durations(CostModel::opencraft(), 1, 300, 0, 200, 1);
        let four = zoned_tick_durations(CostModel::opencraft(), 4, 300, 0, 200, 1);
        assert!(mean_ms(&four) < mean_ms(&single));
        assert!(qos_satisfied_default(&four));
        assert!(!qos_satisfied_default(&single));
    }

    #[test]
    fn zoning_still_collapses_under_constructs() {
        // With 200 constructs, even 8 zones stay over the budget on
        // construct-simulation ticks once coordination is charged: the
        // environment workload does not shrink the way player load does.
        let durations = zoned_tick_durations(CostModel::opencraft(), 8, 50, 200, 200, 2);
        // Zone-local SC load is 25 constructs, which is fine, but the
        // coordination overhead of border constructs and players pushes the
        // cluster close to (or over) budget far earlier than Servo, which
        // handles 200 constructs with margin.
        assert!(mean_ms(&durations) > 8.0);
        let single = zoned_tick_durations(CostModel::opencraft(), 1, 50, 200, 200, 2);
        assert!(mean_ms(&durations) < mean_ms(&single));
    }

    #[test]
    fn replication_duplicates_environment_workload() {
        // Adding replicas does not reduce construct cost at all: with 150
        // constructs a single Opencraft server and an 8-replica cluster are
        // both over budget.
        let single = replicated_tick_durations(CostModel::opencraft(), 1, 40, 150, 200, 3);
        let eight = replicated_tick_durations(CostModel::opencraft(), 8, 40, 150, 200, 3);
        assert!(!qos_satisfied_default(&single));
        assert!(!qos_satisfied_default(&eight));
        // The environment cost dominates: means are within ~25% of each
        // other despite 8x the hardware.
        assert!((mean_ms(&eight) - mean_ms(&single)).abs() / mean_ms(&single) < 0.25);
    }

    #[test]
    fn replication_helps_player_only_workloads() {
        let single = replicated_tick_durations(CostModel::minecraft(), 1, 240, 0, 200, 4);
        let four = replicated_tick_durations(CostModel::minecraft(), 4, 240, 0, 200, 4);
        assert!(!qos_satisfied_default(&single));
        assert!(qos_satisfied_default(&four));
    }

    #[test]
    fn cross_server_messages_are_reported() {
        let mut zoned = ZonedCluster::new(CostModel::opencraft(), 4, SimRng::seed(5));
        let tick = zoned.run_tick(100, 100);
        assert!(tick.cross_server_messages > 0);
        let mut replicated = ReplicatedCluster::new(CostModel::opencraft(), 4, SimRng::seed(5));
        let tick = replicated.run_tick(100, 100);
        assert!(tick.cross_server_messages > 0);
        assert!(tick.critical_path > SimDuration::ZERO);
    }

    #[test]
    fn border_fractions_are_configurable() {
        let mut isolated = ZonedCluster::new(CostModel::opencraft(), 4, SimRng::seed(6))
            .with_border_fractions(0.0, 0.0);
        let tick = isolated.run_tick(100, 100);
        assert_eq!(tick.cross_server_messages, 0);
    }

    #[test]
    fn fractional_cross_interactions_accumulate_across_ticks() {
        // 5 players at rate 0.3 on 4 replicas: 1.125 expected cross-replica
        // interactions per tick. Rounding per tick would emit 2 messages
        // every tick (1 interaction); carrying the remainder emits the
        // extra interaction every eighth tick.
        let mut cluster = ReplicatedCluster::new(CostModel::opencraft(), 4, SimRng::seed(7));
        let ticks = 80u64;
        let total: u64 = (0..ticks)
            .map(|_| cluster.run_tick(5, 0).cross_server_messages)
            .sum();
        let expected_per_tick = 5.0 * 0.3 * 0.75;
        let expected_total = (ticks as f64 * expected_per_tick).floor() as u64 * 2;
        assert_eq!(total, expected_total);
        // The per-tick count varies (1 or 2 interactions), it is not a
        // constant rounded value.
        let mut cluster = ReplicatedCluster::new(CostModel::opencraft(), 4, SimRng::seed(7));
        let counts: std::collections::HashSet<u64> = (0..8)
            .map(|_| cluster.run_tick(5, 0).cross_server_messages)
            .collect();
        assert!(counts.len() > 1, "carry never emitted a catch-up tick");
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn zero_zones_is_rejected() {
        ZonedCluster::new(CostModel::opencraft(), 0, SimRng::seed(0));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_is_rejected() {
        ReplicatedCluster::new(CostModel::opencraft(), 0, SimRng::seed(0));
    }
}

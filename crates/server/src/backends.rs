//! Pluggable backends for construct simulation and terrain generation.

use std::collections::{HashSet, VecDeque};

use servo_pcg::TerrainGenerator;
use servo_redstone::Construct;
use servo_types::{ChunkPos, ConstructId, SimTime, Tick};
use servo_world::Chunk;

/// How a construct's state was advanced during a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScResolution {
    /// The construct was stepped locally on the game server.
    LocalSimulated,
    /// A speculative state computed by an offloaded function was applied.
    SpeculativeApplied,
    /// A state from a detected loop was replayed without any simulation.
    LoopReplayed,
    /// The construct was not simulated this tick (the baselines simulate
    /// constructs only every other tick).
    Skipped,
}

/// A strategy for advancing simulated constructs each tick.
///
/// The baselines use [`LocalScBackend`]; Servo plugs in its speculative
/// execution unit (implemented in the `servo-core` crate).
pub trait ScBackend {
    /// Advances `construct` for game tick `tick` at virtual time `now` and
    /// reports how its state was obtained.
    fn resolve(
        &mut self,
        id: ConstructId,
        construct: &mut Construct,
        tick: Tick,
        now: SimTime,
    ) -> ScResolution;

    /// If every construct would be resolved identically this tick without
    /// mutating backend state, the resolution that will apply — this lets
    /// the game loop step constructs on parallel worker threads, partitioned
    /// by the world shard that owns them. Returning `None` (the default)
    /// forces the sequential per-construct [`ScBackend::resolve`] path,
    /// which stateful backends such as the speculative offloader need.
    fn parallel_resolution(&self, _tick: Tick) -> Option<ScResolution> {
        None
    }

    /// A short name for experiment output.
    fn name(&self) -> &'static str;
}

/// Local construct simulation, as Opencraft and Minecraft do it.
///
/// Both baselines simulate constructs every *other* tick — the
/// implementation detail the paper identifies as the cause of their bimodal
/// tick-duration distributions (Section IV-B).
#[derive(Debug, Clone, Copy)]
pub struct LocalScBackend {
    every_other_tick: bool,
}

impl LocalScBackend {
    /// Simulates constructs on every tick.
    pub fn every_tick() -> Self {
        LocalScBackend {
            every_other_tick: false,
        }
    }

    /// Simulates constructs only on even ticks (the baseline behaviour).
    pub fn every_other_tick() -> Self {
        LocalScBackend {
            every_other_tick: true,
        }
    }
}

impl ScBackend for LocalScBackend {
    fn resolve(
        &mut self,
        _id: ConstructId,
        construct: &mut Construct,
        tick: Tick,
        _now: SimTime,
    ) -> ScResolution {
        if self.every_other_tick && tick.0 % 2 == 1 {
            return ScResolution::Skipped;
        }
        construct.step();
        ScResolution::LocalSimulated
    }

    fn parallel_resolution(&self, tick: Tick) -> Option<ScResolution> {
        // Local simulation treats every construct the same way on a given
        // tick and keeps no backend state, so it is safe to fan out.
        if self.every_other_tick && tick.0 % 2 == 1 {
            Some(ScResolution::Skipped)
        } else {
            Some(ScResolution::LocalSimulated)
        }
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// A provider of generated terrain.
///
/// The baselines generate terrain in background threads on the game server
/// ([`LocalGenerationBackend`]); Servo offloads generation to serverless
/// functions (`servo-core`'s `FaasTerrainBackend`).
pub trait TerrainBackend {
    /// Requests generation of the chunk at `pos`. Duplicate requests are
    /// ignored.
    fn request(&mut self, pos: ChunkPos, now: SimTime);

    /// Returns every chunk whose generation has completed by `now`.
    fn poll_ready(&mut self, now: SimTime) -> Vec<Chunk>;

    /// Number of generation tasks currently executing *on the game server*
    /// (used to model interference with the game loop; serverless backends
    /// return zero).
    fn busy_local_workers(&self, now: SimTime) -> usize;

    /// Number of requested chunks not yet delivered.
    fn pending(&self) -> usize;

    /// A short name for experiment output.
    fn name(&self) -> &'static str;
}

/// Terrain generation in a bounded pool of background threads on the game
/// server, the way the monolithic baselines do it.
pub struct LocalGenerationBackend {
    generator: Box<dyn TerrainGenerator>,
    workers: usize,
    queue: VecDeque<ChunkPos>,
    running: Vec<(ChunkPos, SimTime)>,
    requested: HashSet<ChunkPos>,
    generated: u64,
}

impl LocalGenerationBackend {
    /// Creates a backend with `workers` background generation threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(generator: Box<dyn TerrainGenerator>, workers: usize) -> Self {
        assert!(workers > 0, "at least one generation worker is required");
        LocalGenerationBackend {
            generator,
            workers,
            queue: VecDeque::new(),
            running: Vec::new(),
            requested: HashSet::new(),
            generated: 0,
        }
    }

    /// Total chunks generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn start_queued(&mut self, now: SimTime) {
        while self.running.len() < self.workers {
            let Some(pos) = self.queue.pop_front() else {
                break;
            };
            let done_at = now + self.generator.cost().duration_at_speed(1.0);
            self.running.push((pos, done_at));
        }
    }
}

impl std::fmt::Debug for LocalGenerationBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalGenerationBackend")
            .field("workers", &self.workers)
            .field("queued", &self.queue.len())
            .field("running", &self.running.len())
            .field("generated", &self.generated)
            .finish()
    }
}

impl TerrainBackend for LocalGenerationBackend {
    fn request(&mut self, pos: ChunkPos, now: SimTime) {
        if self.requested.insert(pos) {
            self.queue.push_back(pos);
            self.start_queued(now);
        }
    }

    fn poll_ready(&mut self, now: SimTime) -> Vec<Chunk> {
        let mut ready = Vec::new();
        let mut still_running = Vec::new();
        for (pos, done_at) in self.running.drain(..) {
            if done_at <= now {
                ready.push(self.generator.generate(pos));
            } else {
                still_running.push((pos, done_at));
            }
        }
        self.running = still_running;
        self.generated += ready.len() as u64;
        self.start_queued(now);
        ready
    }

    fn busy_local_workers(&self, now: SimTime) -> usize {
        self.running.iter().filter(|(_, done)| *done > now).count()
    }

    fn pending(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    fn name(&self) -> &'static str {
        "local-generation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_pcg::{DefaultGenerator, FlatGenerator};
    use servo_redstone::generators;
    use servo_types::SimDuration;

    #[test]
    fn local_sc_backend_every_other_tick_skips_odd_ticks() {
        let mut backend = LocalScBackend::every_other_tick();
        let mut construct = Construct::new(generators::wire_line(5));
        let r0 = backend.resolve(ConstructId::new(0), &mut construct, Tick(0), SimTime::ZERO);
        let r1 = backend.resolve(ConstructId::new(0), &mut construct, Tick(1), SimTime::ZERO);
        assert_eq!(r0, ScResolution::LocalSimulated);
        assert_eq!(r1, ScResolution::Skipped);
        assert_eq!(construct.state().step(), 1);
    }

    #[test]
    fn local_sc_backend_every_tick_always_steps() {
        let mut backend = LocalScBackend::every_tick();
        let mut construct = Construct::new(generators::wire_line(5));
        for t in 0..10 {
            assert_eq!(
                backend.resolve(ConstructId::new(0), &mut construct, Tick(t), SimTime::ZERO),
                ScResolution::LocalSimulated
            );
        }
        assert_eq!(construct.state().step(), 10);
        assert_eq!(backend.name(), "local");
    }

    #[test]
    fn local_generation_completes_after_cost_duration() {
        let mut backend = LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 2);
        backend.request(ChunkPos::new(0, 0), SimTime::ZERO);
        backend.request(ChunkPos::new(1, 0), SimTime::ZERO);
        assert_eq!(backend.pending(), 2);
        assert_eq!(backend.busy_local_workers(SimTime::ZERO), 2);
        // Nothing is ready immediately.
        assert!(backend.poll_ready(SimTime::ZERO).is_empty());
        // After the flat-generation cost (30 work units = 30 ms) both are done.
        let ready = backend.poll_ready(SimTime::from_millis(31));
        assert_eq!(ready.len(), 2);
        assert_eq!(backend.pending(), 0);
        assert_eq!(backend.generated(), 2);
    }

    #[test]
    fn local_generation_throughput_is_bounded_by_workers() {
        let mut backend = LocalGenerationBackend::new(Box::new(DefaultGenerator::new(1)), 2);
        for i in 0..10 {
            backend.request(ChunkPos::new(i, 0), SimTime::ZERO);
        }
        // A default chunk costs 550 ms at one vCPU; with 2 workers only 2
        // chunks can be ready after 600 ms.
        let ready = backend.poll_ready(SimTime::from_millis(600));
        assert_eq!(ready.len(), 2);
        assert_eq!(backend.pending(), 8);
        // After 10 x 550 ms everything is done even with 2 workers.
        let mut total = ready.len();
        let mut now = SimTime::from_millis(600);
        for _ in 0..20 {
            now += SimDuration::from_millis(550);
            total += backend.poll_ready(now).len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn duplicate_requests_are_ignored() {
        let mut backend = LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 1);
        for _ in 0..5 {
            backend.request(ChunkPos::new(3, 3), SimTime::ZERO);
        }
        assert_eq!(backend.pending(), 1);
        let ready = backend.poll_ready(SimTime::from_secs(1));
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].pos(), ChunkPos::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "at least one generation worker")]
    fn zero_workers_is_rejected() {
        LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 0);
    }
}

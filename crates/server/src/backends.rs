//! Pluggable backends for construct simulation and terrain provisioning.
//!
//! Construct simulation plugs in through [`ScBackend`]. Terrain flows
//! through the unified [`ChunkService`] request/completion API of
//! `servo-storage`: the game loop submits [`ChunkRequest::Read`]s for
//! chunks it is missing and integrates whatever [`ChunkOutcome::Loaded`]
//! completions come back, never blocking on generation or storage. The
//! baselines use [`LocalGenerationBackend`] (bounded background threads on
//! the game server); Servo plugs in its FaaS generation service from
//! `servo-core`.
//!
//! The pre-redesign `TerrainBackend` trait and its `TerrainBackendShim`
//! adapter rode out their one-release deprecation window and are gone;
//! terrain providers implement [`ChunkService`] directly.

use std::collections::{HashMap, HashSet};

use servo_faas::{Autoscaler, AutoscalerConfig, AutoscalerStats, RequestQueue};
use servo_pcg::TerrainGenerator;
use servo_redstone::Construct;
use servo_storage::{
    ChunkCompletion, ChunkLocation, ChunkOutcome, ChunkRequest, ChunkService, ShardDelta, Ticket,
};
use servo_types::{ChunkPos, ConstructId, SimTime, Tick};
use servo_world::Chunk;

/// How a construct's state was advanced during a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScResolution {
    /// The construct was stepped locally on the game server.
    LocalSimulated,
    /// A speculative state computed by an offloaded function was applied.
    SpeculativeApplied,
    /// A state from a detected loop was replayed without any simulation.
    LoopReplayed,
    /// The construct was not simulated this tick (the baselines simulate
    /// constructs only every other tick).
    Skipped,
}

/// How a backend wants the game loop to advance constructs on one tick,
/// returned by [`ScBackend::plan`].
///
/// A plan either gives a *uniform* resolution every construct shares (the
/// stateless fast path), declares a *partitioned* table the game loop can
/// fan out across worker threads (each construct resolved through
/// [`PartitionedResolver::resolve_partitioned`], partitioned by the world
/// shard owning it, followed by one [`ScBackend::reconcile`] call), or
/// falls back to the *sequential* per-construct [`ScBackend::resolve`]
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionPlan {
    /// Every construct resolves identically this tick without mutating
    /// backend state: the game loop may step constructs on parallel worker
    /// threads with no backend involvement at all.
    Uniform(ScResolution),
    /// Per-construct resolution goes through the backend's
    /// [`PartitionedResolver`] (see [`ScBackend::partitioned`]), which is
    /// safe to call concurrently for different constructs. The game loop
    /// must call [`ScBackend::reconcile`] once after all constructs of the
    /// tick resolved.
    Partitioned,
    /// No parallel path this tick: resolve each construct sequentially.
    Sequential,
}

/// The thread-safe per-construct resolution table of a
/// [`ResolutionPlan::Partitioned`] backend.
///
/// `resolve_partitioned` may be called concurrently from several worker
/// threads as long as no construct is resolved twice in one tick; the game
/// loop partitions constructs by their owning world shard (passed as
/// `shard`) and calls [`ScBackend::reconcile`] exactly once afterwards to
/// flush whatever the backend deferred (statistics, platform invocations).
pub trait PartitionedResolver: Sync {
    /// Advances one construct for game tick `tick` at virtual time `now`.
    fn resolve_partitioned(
        &self,
        id: ConstructId,
        shard: usize,
        construct: &mut Construct,
        tick: Tick,
        now: SimTime,
    ) -> ScResolution;
}

/// A strategy for advancing simulated constructs each tick.
///
/// The baselines use [`LocalScBackend`]; Servo plugs in its speculative
/// execution unit (implemented in the `servo-core` crate). Each tick the
/// game loop asks the backend for a [`ResolutionPlan`] and executes it;
/// [`ScBackend::resolve`] remains the sequential reference path every
/// backend must provide (and the path single-threaded servers use).
pub trait ScBackend {
    /// Advances `construct` for game tick `tick` at virtual time `now` and
    /// reports how its state was obtained — the sequential reference path.
    fn resolve(
        &mut self,
        id: ConstructId,
        construct: &mut Construct,
        tick: Tick,
        now: SimTime,
    ) -> ScResolution;

    /// The backend's plan for advancing constructs on `tick`. The default
    /// is [`ResolutionPlan::Sequential`], which routes every construct
    /// through [`ScBackend::resolve`].
    fn plan(&mut self, _tick: Tick) -> ResolutionPlan {
        ResolutionPlan::Sequential
    }

    /// The concurrent per-construct resolution table backing
    /// [`ResolutionPlan::Partitioned`]. Backends whose `plan` can return
    /// `Partitioned` must override this to return `Some`.
    fn partitioned(&self) -> Option<&dyn PartitionedResolver> {
        None
    }

    /// Flushes state the backend deferred during a partitioned fan-out
    /// (statistics, platform invocations), in a deterministic order. Called
    /// exactly once per tick executed under [`ResolutionPlan::Partitioned`];
    /// a no-op for other plans.
    fn reconcile(&mut self, _tick: Tick, _now: SimTime) {}

    /// Notifies the backend that construct `id` is leaving this server —
    /// e.g. a zoned cluster migrating the construct's shard to another
    /// zone. Backends holding per-construct state (in-flight speculation,
    /// cached sequences) must drop it here so a later id reuse or a stale
    /// completion cannot corrupt a construct the server no longer owns.
    /// The default is a no-op, which is correct for stateless backends.
    fn release(&mut self, _id: ConstructId) {}

    /// The precomputed speculative sequence currently serving construct
    /// `id` from shared remote storage, if the backend has one. A zoned
    /// cluster running `BorderExchange::Speculative` uses this to let
    /// neighbour zones *join* the sequence — one handle message when the
    /// identity changes, zero messages while it stays valid — instead of
    /// shipping per-tick state bundles. Backends that simulate locally
    /// (the baselines) have no shareable sequence and keep the default
    /// `None`, which makes the speculative exchange degrade to the eager
    /// batched path.
    fn published_sequence(&self, _id: ConstructId) -> Option<PublishedSequence> {
        None
    }

    /// A short name for experiment output.
    fn name(&self) -> &'static str;
}

/// The identity of a precomputed construct sequence available in shared
/// remote storage — what a `BorderExchange::Speculative` cluster ships to
/// neighbour zones instead of per-tick state bundles (one message per
/// *sequence*, not per simulated tick).
///
/// Two handles are the same sequence exactly when they compare equal: the
/// platform `stamp` names the invocation that produced it and `start_step`
/// anchors where in the construct's life it applies, so any modification
/// (which re-invokes under a fresh stamp) or migration (which releases the
/// slot) changes the identity and forces a new handle message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishedSequence {
    /// The platform invocation stamp that produced the sequence.
    pub stamp: u64,
    /// The construct step the sequence's first state applies to.
    pub start_step: u64,
    /// The construct step up to which the sequence can serve states —
    /// `u64::MAX` when the sequence detected a loop (replay serves any
    /// future step).
    pub horizon: u64,
}

/// Local construct simulation, as Opencraft and Minecraft do it.
///
/// Both baselines simulate constructs every *other* tick — the
/// implementation detail the paper identifies as the cause of their bimodal
/// tick-duration distributions (Section IV-B).
#[derive(Debug, Clone, Copy)]
pub struct LocalScBackend {
    every_other_tick: bool,
}

impl LocalScBackend {
    /// Simulates constructs on every tick.
    pub fn every_tick() -> Self {
        LocalScBackend {
            every_other_tick: false,
        }
    }

    /// Simulates constructs only on even ticks (the baseline behaviour).
    pub fn every_other_tick() -> Self {
        LocalScBackend {
            every_other_tick: true,
        }
    }
}

impl ScBackend for LocalScBackend {
    fn resolve(
        &mut self,
        _id: ConstructId,
        construct: &mut Construct,
        tick: Tick,
        _now: SimTime,
    ) -> ScResolution {
        if self.every_other_tick && tick.0 % 2 == 1 {
            return ScResolution::Skipped;
        }
        construct.step();
        ScResolution::LocalSimulated
    }

    fn plan(&mut self, tick: Tick) -> ResolutionPlan {
        // Local simulation treats every construct the same way on a given
        // tick and keeps no backend state, so it is safe to fan out.
        if self.every_other_tick && tick.0 % 2 == 1 {
            ResolutionPlan::Uniform(ScResolution::Skipped)
        } else {
            ResolutionPlan::Uniform(ScResolution::LocalSimulated)
        }
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// The submit/complete bookkeeping every generation-style [`ChunkService`]
/// shares: the virtual clock observed from `poll`, ticket allocation, and
/// the ticket/issue-time record per requested chunk. Used by
/// [`LocalGenerationBackend`] and the FaaS generation backend of
/// `servo-core`.
#[derive(Debug, Default)]
pub struct GenerationClock {
    now: SimTime,
    ticket_seq: u64,
    issued: HashMap<ChunkPos, (Ticket, SimTime)>,
}

impl GenerationClock {
    /// The virtual time observed from the most recent `poll` — the issue
    /// time subsequent submissions should use.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the observed virtual time (call at the top of `poll`).
    pub fn advance(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Drops the issue record of `pos` (e.g. when an invocation failed and
    /// the position may be retried under a fresh ticket).
    pub fn forget(&mut self, pos: ChunkPos) {
        self.issued.remove(&pos);
    }

    fn next_ticket(&mut self) -> Ticket {
        self.ticket_seq += 1;
        Ticket(self.ticket_seq)
    }

    /// Allocates a ticket for `request` and returns the chunk positions it
    /// asks for (empty for maintenance requests, which generation services
    /// treat as no-ops). Positions already requested keep their original
    /// ticket; their eventual completion carries that first ticket.
    pub fn admit(&mut self, request: &ChunkRequest) -> (Ticket, Vec<ChunkPos>) {
        let ticket = self.next_ticket();
        let positions: Vec<ChunkPos> = match request {
            ChunkRequest::Read { pos, .. } => vec![*pos],
            ChunkRequest::Prefetch { positions, .. } => positions.clone(),
            ChunkRequest::WriteBack { .. } | ChunkRequest::Evict { .. } => Vec::new(),
        };
        for &pos in &positions {
            self.issued.entry(pos).or_insert((ticket, self.now));
        }
        (ticket, positions)
    }

    /// Wraps generated chunks into completions carrying the ticket and
    /// issue time of the request that first asked for them.
    pub fn complete(&mut self, ready: Vec<Chunk>, now: SimTime) -> Vec<ChunkCompletion> {
        ready
            .into_iter()
            .map(|chunk| {
                let pos = chunk.pos();
                let (ticket, issued) = self.issued.remove(&pos).unwrap_or((Ticket(0), now));
                ChunkCompletion {
                    ticket,
                    outcome: ChunkOutcome::Loaded {
                        pos,
                        chunk: Box::new(chunk),
                        location: ChunkLocation::Generated,
                        latency: now.saturating_since(issued),
                    },
                }
            })
            .collect()
    }
}

/// Terrain generation in a bounded pool of background threads on the game
/// server, the way the monolithic baselines do it. Plugs into the game
/// loop as a [`ChunkService`]: `Read`/`Prefetch` requests queue generation
/// jobs, completed chunks surface as [`ChunkOutcome::Loaded`] completions
/// with [`ChunkLocation::Generated`].
pub struct LocalGenerationBackend {
    generator: Box<dyn TerrainGenerator>,
    /// Sizes the worker pool each time the queue is drained. The default
    /// (`AutoscalerConfig::fixed`) reproduces the statically-sized pool
    /// exactly; [`LocalGenerationBackend::elastic`] lets the pool follow
    /// the generation backlog instead.
    scaler: Autoscaler,
    /// Queued positions, drained FIFO (generation has one priority class).
    queue: RequestQueue<(), ChunkPos>,
    running: Vec<(ChunkPos, SimTime)>,
    requested: HashSet<ChunkPos>,
    generated: u64,
    clock: GenerationClock,
}

impl LocalGenerationBackend {
    /// Creates a backend with a fixed pool of `workers` background
    /// generation threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(generator: Box<dyn TerrainGenerator>, workers: usize) -> Self {
        assert!(workers > 0, "at least one generation worker is required");
        Self::with_autoscaler(generator, AutoscalerConfig::fixed(workers))
    }

    /// Creates a backend whose worker pool elastically follows the queue
    /// depth between `min` and `max` workers. Provisioning delay and
    /// scale-down cooldown come from `config`; a fixed config reproduces
    /// [`LocalGenerationBackend::new`] exactly.
    pub fn elastic(generator: Box<dyn TerrainGenerator>, config: AutoscalerConfig) -> Self {
        Self::with_autoscaler(generator, config)
    }

    fn with_autoscaler(generator: Box<dyn TerrainGenerator>, config: AutoscalerConfig) -> Self {
        LocalGenerationBackend {
            generator,
            scaler: Autoscaler::new(config),
            queue: RequestQueue::bounded(usize::MAX),
            running: Vec::new(),
            requested: HashSet::new(),
            generated: 0,
            clock: GenerationClock::default(),
        }
    }

    /// Total chunks generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Lifetime counters of the worker-pool autoscaler (all zero for a
    /// fixed pool).
    pub fn autoscaler_stats(&self) -> AutoscalerStats {
        self.scaler.stats()
    }

    /// Queues generation of `pos` at virtual time `now` (duplicates are
    /// ignored) and starts it as soon as a worker is free.
    fn request_at(&mut self, pos: ChunkPos, now: SimTime) {
        if self.requested.insert(pos) {
            self.queue
                .push((), pos)
                .expect("the generation queue is unbounded");
            self.start_queued(now);
        }
    }

    /// Collects every chunk finished by `now` and refills the workers.
    fn take_ready(&mut self, now: SimTime) -> Vec<Chunk> {
        let mut ready = Vec::new();
        let mut still_running = Vec::new();
        for (pos, done_at) in self.running.drain(..) {
            if done_at <= now {
                ready.push(self.generator.generate(pos));
            } else {
                still_running.push((pos, done_at));
            }
        }
        self.running = still_running;
        self.generated += ready.len() as u64;
        self.start_queued(now);
        ready
    }

    fn start_queued(&mut self, now: SimTime) {
        let workers = self.scaler.observe(now, self.queue.len());
        while self.running.len() < workers {
            let Some(((), pos)) = self.queue.pop() else {
                break;
            };
            let done_at = now + self.generator.cost().duration_at_speed(1.0);
            self.running.push((pos, done_at));
        }
    }
}

impl std::fmt::Debug for LocalGenerationBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalGenerationBackend")
            .field("workers", &self.scaler.ready_workers())
            .field("queued", &self.queue.len())
            .field("running", &self.running.len())
            .field("generated", &self.generated)
            .finish()
    }
}

impl ChunkService for LocalGenerationBackend {
    fn submit(&mut self, request: ChunkRequest) -> Ticket {
        let (ticket, positions) = self.clock.admit(&request);
        let now = self.clock.now;
        for pos in positions {
            self.request_at(pos, now);
        }
        ticket
    }

    fn poll(&mut self, now: SimTime) -> Vec<ChunkCompletion> {
        self.clock.now = now;
        let ready = self.take_ready(now);
        self.clock.complete(ready, now)
    }

    fn drain_dirty(&mut self) -> Vec<ShardDelta> {
        // Generation has no persistence side: nothing ever becomes dirty.
        Vec::new()
    }

    fn pending(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    fn busy_local_workers(&self, now: SimTime) -> usize {
        self.running.iter().filter(|(_, done)| *done > now).count()
    }

    fn name(&self) -> &'static str {
        "local-generation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_pcg::{DefaultGenerator, FlatGenerator};
    use servo_redstone::generators;
    use servo_types::SimDuration;

    /// Submits a read and advances the service clock to `now` first.
    fn read_at(service: &mut dyn ChunkService, pos: ChunkPos, now: SimTime) -> Ticket {
        service.poll(now);
        service.submit(ChunkRequest::read(pos))
    }

    fn loaded_chunks(completions: Vec<ChunkCompletion>) -> Vec<Chunk> {
        completions
            .into_iter()
            .filter_map(|c| match c.outcome {
                ChunkOutcome::Loaded { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn local_sc_backend_every_other_tick_skips_odd_ticks() {
        let mut backend = LocalScBackend::every_other_tick();
        let mut construct = Construct::new(generators::wire_line(5));
        let r0 = backend.resolve(ConstructId::new(0), &mut construct, Tick(0), SimTime::ZERO);
        let r1 = backend.resolve(ConstructId::new(0), &mut construct, Tick(1), SimTime::ZERO);
        assert_eq!(r0, ScResolution::LocalSimulated);
        assert_eq!(r1, ScResolution::Skipped);
        assert_eq!(construct.state().step(), 1);
    }

    #[test]
    fn local_sc_backend_every_tick_always_steps() {
        let mut backend = LocalScBackend::every_tick();
        let mut construct = Construct::new(generators::wire_line(5));
        for t in 0..10 {
            assert_eq!(
                backend.resolve(ConstructId::new(0), &mut construct, Tick(t), SimTime::ZERO),
                ScResolution::LocalSimulated
            );
        }
        assert_eq!(construct.state().step(), 10);
        assert_eq!(backend.name(), "local");
    }

    #[test]
    fn local_backend_plans_are_uniform() {
        let mut every = LocalScBackend::every_tick();
        assert_eq!(
            every.plan(Tick(5)),
            ResolutionPlan::Uniform(ScResolution::LocalSimulated)
        );
        let mut other = LocalScBackend::every_other_tick();
        assert_eq!(
            other.plan(Tick(0)),
            ResolutionPlan::Uniform(ScResolution::LocalSimulated)
        );
        assert_eq!(
            other.plan(Tick(1)),
            ResolutionPlan::Uniform(ScResolution::Skipped)
        );
        // Uniform backends never expose a partitioned table.
        assert!(other.partitioned().is_none());
    }

    #[test]
    fn local_generation_completes_after_cost_duration() {
        let mut backend = LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 2);
        let t0 = read_at(&mut backend, ChunkPos::new(0, 0), SimTime::ZERO);
        let t1 = read_at(&mut backend, ChunkPos::new(1, 0), SimTime::ZERO);
        assert_ne!(t0, t1);
        assert_eq!(backend.pending(), 2);
        assert_eq!(backend.busy_local_workers(SimTime::ZERO), 2);
        // Nothing is ready immediately.
        assert!(backend.poll(SimTime::ZERO).is_empty());
        // After the flat-generation cost (30 work units = 30 ms) both are
        // done, with the completion carrying the observed latency.
        let completions = backend.poll(SimTime::from_millis(31));
        assert_eq!(completions.len(), 2);
        for completion in &completions {
            match &completion.outcome {
                ChunkOutcome::Loaded {
                    location, latency, ..
                } => {
                    assert_eq!(*location, ChunkLocation::Generated);
                    assert_eq!(*latency, SimDuration::from_millis(31));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(backend.pending(), 0);
        assert_eq!(backend.generated(), 2);
        assert!(backend.drain_dirty().is_empty());
    }

    #[test]
    fn local_generation_throughput_is_bounded_by_workers() {
        let mut backend = LocalGenerationBackend::new(Box::new(DefaultGenerator::new(1)), 2);
        for i in 0..10 {
            read_at(&mut backend, ChunkPos::new(i, 0), SimTime::ZERO);
        }
        // A default chunk costs 550 ms at one vCPU; with 2 workers only 2
        // chunks can be ready after 600 ms.
        let ready = loaded_chunks(backend.poll(SimTime::from_millis(600)));
        assert_eq!(ready.len(), 2);
        assert_eq!(backend.pending(), 8);
        // After 10 x 550 ms everything is done even with 2 workers.
        let mut total = ready.len();
        let mut now = SimTime::from_millis(600);
        for _ in 0..20 {
            now += SimDuration::from_millis(550);
            total += loaded_chunks(backend.poll(now)).len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn duplicate_requests_are_ignored() {
        let mut backend = LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 1);
        let first = read_at(&mut backend, ChunkPos::new(3, 3), SimTime::ZERO);
        for _ in 0..4 {
            read_at(&mut backend, ChunkPos::new(3, 3), SimTime::ZERO);
        }
        assert_eq!(backend.pending(), 1);
        let completions = backend.poll(SimTime::from_secs(1));
        assert_eq!(completions.len(), 1);
        // The completion carries the first request's ticket.
        assert_eq!(completions[0].ticket, first);
        match &completions[0].outcome {
            ChunkOutcome::Loaded { pos, .. } => assert_eq!(*pos, ChunkPos::new(3, 3)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn prefetch_requests_queue_generation() {
        let mut backend = LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 4);
        backend.submit(ChunkRequest::prefetch([
            ChunkPos::new(0, 0),
            ChunkPos::new(1, 1),
        ]));
        // Maintenance requests are accepted but are no-ops here.
        backend.submit(ChunkRequest::write_back());
        backend.submit(ChunkRequest::evict([ChunkPos::new(0, 0)]));
        assert_eq!(backend.pending(), 2);
        assert_eq!(loaded_chunks(backend.poll(SimTime::from_secs(1))).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one generation worker")]
    fn zero_workers_is_rejected() {
        LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 0);
    }

    #[test]
    fn elastic_generation_pool_follows_backlog() {
        // One worker per two queued chunks, capped at 8: a 10-chunk burst
        // scales the pool out and finishes well before a 2-worker fixed
        // pool could; an idle stretch scales it back down to min.
        let config = AutoscalerConfig::elastic(2, 8).with_backlog_per_worker(2);
        let mut backend =
            LocalGenerationBackend::elastic(Box::new(DefaultGenerator::new(1)), config);
        for i in 0..10 {
            read_at(&mut backend, ChunkPos::new(i, 0), SimTime::ZERO);
        }
        // A default chunk costs 550 ms; the scaled-out pool clears twice
        // what a fixed 2-worker pool can finish in the first wave.
        let ready = loaded_chunks(backend.poll(SimTime::from_millis(600)));
        assert!(
            ready.len() >= 4,
            "elastic pool only finished {} chunks",
            ready.len()
        );
        let stats = backend.autoscaler_stats();
        assert!(stats.scale_up_events > 0);
        assert!(stats.peak_workers > 2);
        // The backlog is gone: the next drain releases workers to min.
        backend.poll(SimTime::from_secs(30));
        assert!(backend.autoscaler_stats().workers_retired > 0);
    }

    #[test]
    fn fixed_autoscaler_matches_static_pool_exactly() {
        // A fixed autoscaler config is the frictionless configuration: the
        // elastic constructor reproduces the static pool tick for tick.
        let mut fixed = LocalGenerationBackend::new(Box::new(DefaultGenerator::new(1)), 2);
        let mut elastic = LocalGenerationBackend::elastic(
            Box::new(DefaultGenerator::new(1)),
            AutoscalerConfig::fixed(2),
        );
        for i in 0..10 {
            read_at(&mut fixed, ChunkPos::new(i, 0), SimTime::ZERO);
            read_at(&mut elastic, ChunkPos::new(i, 0), SimTime::ZERO);
        }
        let mut now = SimTime::ZERO;
        for _ in 0..12 {
            now += SimDuration::from_millis(550);
            let a = loaded_chunks(fixed.poll(now));
            let b = loaded_chunks(elastic.poll(now));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.pos(), y.pos());
            }
        }
        assert_eq!(fixed.generated(), elastic.generated());
        assert_eq!(elastic.autoscaler_stats().workers_provisioned, 0);
    }
}

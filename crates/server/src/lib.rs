//! The MVE game-server substrate.
//!
//! This crate implements the server side of the paper's operational model
//! (Section II-A): a fixed-rate game loop that ingests player actions,
//! manages terrain around avatars, simulates the embedded simulated
//! constructs, and must complete each iteration within the 50 ms tick
//! budget.
//!
//! The same [`GameServer`] drives all three systems the paper compares; they
//! differ only in
//!
//! * the [`CostModel`] of their implementation (Opencraft, Minecraft, or the
//!   Servo-modified Opencraft),
//! * which [`ScBackend`] simulates constructs (locally every other tick for
//!   the baselines; Servo plugs in its speculative offloading unit from the
//!   `servo-core` crate), and
//! * which `servo_storage::ChunkService` provides terrain (a bounded local
//!   background generator for the baselines; Servo plugs in its FaaS
//!   generation backend). The game loop submits chunk-read tickets and
//!   integrates completions — it never blocks on generation or storage.
//!
//! Experiments run on virtual time: per-tick work is counted from the real
//! data structures (real constructs stepped, real chunks generated and
//! inserted), and the tick *duration* is derived from the counted work
//! through the calibrated cost model, plus measurement noise.
//!
//! # Example
//!
//! ```
//! use servo_server::{GameServer, ServerConfig, LocalScBackend, LocalGenerationBackend};
//! use servo_pcg::FlatGenerator;
//! use servo_simkit::SimRng;
//! use servo_types::SimDuration;
//! use servo_workload::{BehaviorKind, PlayerFleet};
//!
//! let config = ServerConfig::opencraft().with_view_distance(32);
//! let mut server = GameServer::new(
//!     config,
//!     Box::new(LocalScBackend::every_other_tick()),
//!     Box::new(LocalGenerationBackend::new(Box::new(FlatGenerator::default()), 8)),
//!     SimRng::seed(1),
//! );
//! let mut fleet = PlayerFleet::new(BehaviorKind::Bounded { radius: 30.0 }, SimRng::seed(2));
//! fleet.connect_all(10);
//! let reports = server.run_with_fleet(&mut fleet, SimDuration::from_secs(10));
//! // 10 s at 20 Hz, minus a few ticks that overrun while the spawn terrain loads.
//! assert!(reports.len() >= 190 && reports.len() <= 200);
//! ```

#![warn(missing_docs)]

pub mod backends;
pub mod cluster;
pub mod costs;
pub mod multi;
pub mod server;

pub use backends::{
    GenerationClock, LocalGenerationBackend, LocalScBackend, PartitionedResolver,
    PublishedSequence, ResolutionPlan, ScBackend, ScResolution,
};
pub use cluster::{
    BorderExchange, ClusterCosts, ClusterStats, ClusterTickDetail, FailurePlan, PersistenceBinding,
    RecoveryStats, ShardedGameCluster, ZonePersistenceStats, ZoneTickBreakdown,
};
pub use costs::{CostModel, TickWork};
pub use multi::{ClusterTick, ReplicatedCluster, ZonedCluster};
pub use server::{GameServer, ServerConfig, ServerStats, TickReport};

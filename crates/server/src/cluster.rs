//! Zoned multi-server clusters over real [`GameServer`] instances.
//!
//! The analytic [`ZonedCluster`](crate::multi::ZonedCluster) of
//! [`crate::multi`] *models* zoning with a closed-form cost formula. This
//! module *runs* it: a [`ShardedGameCluster`] is `N` real game servers,
//! each restricted ([`GameServer::restrict_to_zone`]) to a disjoint set of
//! [`ShardedWorld`](servo_world::ShardedWorld) shards assigned by a
//! [`ShardMap`], connected by a deterministic cross-zone message bus. Every
//! tick the cluster
//!
//! 1. routes avatars and player events to the zone owning the terrain
//!    under them (a [`ZoneRouter`]); an avatar that moved onto another
//!    zone's terrain is *handed off* — session state crosses the wire;
//! 2. runs one real tick on every member server (real constructs stepped,
//!    real chunks generated and inserted, per-zone cost model durations);
//! 3. executes the border protocol: dirty *border chunks* (chunks with a
//!    laterally adjacent chunk owned by another zone) are mirrored to the
//!    neighbouring servers, and every *border construct* (a construct whose
//!    blocks span zones) exchanges state between its owner and the other
//!    involved zones on each simulated tick;
//! 4. charges each message to both endpoint servers and reports the
//!    slowest member as the cluster's critical path, in the same
//!    [`ClusterTick`] shape the analytic models emit.
//!
//! The cluster is deterministic: routing, the border protocol and message
//! accounting consume no randomness, zones tick in index order, and each
//! member server keeps its own seeded random stream — a 1-zone cluster is
//! tick-for-tick identical to a plain [`GameServer`] (asserted by the
//! `cluster_equivalence` test suite).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use servo_faas::AutoscalerConfig;
use servo_metrics::StatsReport;
use servo_pcg::{DefaultGenerator, FlatGenerator, TerrainGenerator};
use servo_redstone::Blueprint;
use servo_replication::{
    FanoutStage, FanoutStats, Interest, ReplicationConfig, ReplicationHub, ReplicationStats,
    SubscriberId,
};
use servo_simkit::{SimClock, SimRng};
use servo_storage::{
    BlobStore, ChunkOutcome, ChunkRequest, ChunkService, PipelinedChunkService, RetryPolicy,
    SharedWal,
};
use servo_types::{BlockPos, ChunkPos, ConstructId, PlayerId, SimDuration, SimTime};
use servo_workload::{PlayerEvent, PlayerFleet, ZoneRouter};
use servo_world::{
    required_chunks, shard_index, Chunk, ConstructFootprint, ConstructMigration, RebalanceConfig,
    RebalancePolicy, ShardDelta, ShardMap, ShardMigration, WorldKind, ZoneLoadSample,
};

use crate::backends::{LocalGenerationBackend, LocalScBackend};
use crate::multi::ClusterTick;
use crate::server::{GameServer, ServerConfig, ServerStats, TickReport};

/// The cross-zone coordination cost model of a [`ShardedGameCluster`].
///
/// Every cross-server message (border-chunk update, construct state
/// exchange, player handoff leg) is charged to *both* endpoint servers:
/// the sender serializes and transmits, the receiver deserializes,
/// validates and applies under its tick lock. The default is calibrated so
/// coordination is negligible for player-only workloads but dominates once
/// hundreds of border constructs must be synchronized every simulated
/// tick, matching the argument of paper Section II-B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCosts {
    /// Cost charged to each endpoint server per cross-zone message, in
    /// milliseconds.
    pub message_cost_ms: f64,
}

impl Default for ClusterCosts {
    fn default() -> Self {
        ClusterCosts {
            message_cost_ms: 0.5,
        }
    }
}

/// How border-construct state crosses zone seams each simulated tick.
///
/// Classic zoned deployments synchronize every cross-border entity
/// individually ([`BorderExchange::PerConstruct`]) — the per-entity
/// messaging the paper's Section II-B identifies as zoning's failure mode.
/// The hybrid zoned+offloading deployment instead bundles all border
/// construct states between one (owner, neighbour) server pair into a
/// single message per simulated tick ([`BorderExchange::Batched`]):
/// offloaded speculative sequences make construct states available as
/// compact precomputed bundles, so the coordinated deployment ships one
/// state bundle plus acknowledgement per server pair instead of one
/// round-trip per construct.
///
/// [`BorderExchange::Speculative`] goes one step further: when a
/// construct's owner is serving it from a precomputed speculative sequence
/// in *shared* remote storage ([`crate::ScBackend::published_sequence`]),
/// neighbours join the sequence instead of receiving state at all. The
/// owner publishes one handle message when the sequence identity changes
/// (new invocation, post-modification re-speculation, migration) and
/// nothing while it stays valid — neighbours replay the stored states
/// themselves. Constructs without a published sequence (invalidated,
/// in-flight, or locally simulated) fall back to the eager batched
/// exchange for exactly that tick, so the arm never under-delivers state:
/// with a backend that never publishes (the local baselines) it is
/// message-for-message identical to [`BorderExchange::Batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BorderExchange {
    /// One state + acknowledgement (2 messages) per border construct and
    /// involved neighbour zone, every simulated tick — the classic zoned
    /// baseline the ablation measures.
    #[default]
    PerConstruct,
    /// One state bundle + acknowledgement (2 messages) per (owner,
    /// neighbour) zone pair with at least one simulated border construct —
    /// the hybrid deployment's coordinated exchange.
    Batched,
    /// Neighbours replay the owner's published speculative sequence from
    /// shared storage: one handle message per neighbour when the sequence
    /// identity changes, zero messages while it remains valid, eager
    /// batched fallback for constructs with nothing published.
    Speculative,
}

/// Counters of one zone's persistence pipeline (mirrors the shape of the
/// single-deployment `PersistenceStats` in `servo-core`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZonePersistenceStats {
    /// Write-back passes completed by the zone's pipeline.
    pub write_back_passes: u64,
    /// Dirty chunks flushed to the zone's remote storage.
    pub chunks_flushed: u64,
    /// Chunks staged into the zone's cache by prefetch arrivals.
    pub prefetch_arrivals: u64,
}

/// Builder-style description of one zone's persistence attachment,
/// consumed by [`ShardedGameCluster::bind_persistence`]. Replaces the
/// free-standing `attach_persistence_with_scaler` constructor.
///
/// ```
/// use servo_server::PersistenceBinding;
/// use servo_simkit::SimRng;
/// use servo_storage::{BlobStore, BlobTier};
///
/// let rng = SimRng::seed(7);
/// let binding = PersistenceBinding::new(
///     BlobStore::new(BlobTier::Standard, rng.substream("blob")),
///     rng.substream("disk"),
/// )
/// .write_back_interval(20);
/// assert_eq!(binding.write_back_interval, 20);
/// ```
#[derive(Debug)]
pub struct PersistenceBinding {
    /// The zone's remote blob store.
    pub remote: BlobStore,
    /// Randomness for the pipeline's disk latency model.
    pub rng: SimRng,
    /// Cluster ticks between write-back passes (clamped to ≥ 1).
    pub write_back_interval: u64,
    /// Optional autoscaler for the pipeline's disk-worker pool.
    pub elastic: Option<AutoscalerConfig>,
}

impl PersistenceBinding {
    /// A binding with the default write-back cadence (every 20 cluster
    /// ticks — one second at 20 Hz) and a static worker pool.
    pub fn new(remote: BlobStore, rng: SimRng) -> PersistenceBinding {
        PersistenceBinding {
            remote,
            rng,
            write_back_interval: 20,
            elastic: None,
        }
    }

    /// Sets the cluster ticks between write-back passes.
    pub fn write_back_interval(mut self, interval: u64) -> PersistenceBinding {
        self.write_back_interval = interval;
        self
    }

    /// Scales the pipeline's disk workers with the submission backlog.
    pub fn elastic(mut self, scaler: AutoscalerConfig) -> PersistenceBinding {
        self.elastic = Some(scaler);
        self
    }
}

impl StatsReport for ZonePersistenceStats {
    fn section(&self) -> &'static str {
        "persistence"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("write_back_passes", self.write_back_passes.to_string()),
            ("chunks_flushed", self.chunks_flushed.to_string()),
            ("prefetch_arrivals", self.prefetch_arrivals.to_string()),
        ]
    }
}

impl ZonePersistenceStats {
    fn absorb(&mut self, other: ZonePersistenceStats) {
        self.write_back_passes += other.write_back_passes;
        self.chunks_flushed += other.chunks_flushed;
        self.prefetch_arrivals += other.prefetch_arrivals;
    }
}

/// One zone's persistence pipeline: a [`PipelinedChunkService`] bound to
/// the zone's world restricted to its owned shards, fed by the dirty
/// deltas `run_tick` drains (`GameServer::drain_owned_dirty`).
struct ZonePersistence {
    service: PipelinedChunkService<BlobStore>,
    interval: u64,
    ticks_since_pass: u64,
    stats: ZonePersistenceStats,
    /// The zone's write-ahead delta log. The cluster holds this clone in
    /// addition to the service's own: the log models a durable device
    /// (replicated log service, attached journal volume) that *survives*
    /// the zone server, so recovery replays it after the pipeline is
    /// fenced. `None` when durability was explicitly disabled
    /// ([`ShardedGameCluster::set_wal_enabled`]) — the configuration whose
    /// data-loss window the failure ablation measures.
    wal: Option<SharedWal>,
    /// Set when the zone crashes: a fenced pipeline accepts no more
    /// staging, cadence passes, or flushes — its remote store keeps
    /// exactly the bytes it held at the crash.
    fenced: bool,
}

impl ZonePersistence {
    /// Submits one write-back pass and polls until its completion
    /// surfaces, folding everything observed into the stats. Returns the
    /// number of chunks the pass wrote. The pass runs on the pipeline's
    /// worker pool; completions are published before the pending count
    /// drops, so the wait terminates.
    fn run_write_back_pass(&mut self, now: SimTime) -> u64 {
        let ticket = self.service.submit(ChunkRequest::write_back());
        let mut flushed = 0u64;
        loop {
            let mut done = false;
            for completion in self.service.poll(now) {
                match completion.outcome {
                    ChunkOutcome::WroteBack { chunks } => {
                        self.stats.write_back_passes += 1;
                        self.stats.chunks_flushed += chunks as u64;
                        if completion.ticket == ticket {
                            flushed += chunks as u64;
                            done = true;
                        }
                    }
                    ChunkOutcome::Loaded { .. } => {
                        self.stats.prefetch_arrivals += 1;
                    }
                    _ => {}
                }
            }
            if done {
                return flushed;
            }
            std::thread::yield_now();
        }
    }
}

/// Lifetime counters of a cluster's cross-zone coordination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Cluster ticks executed.
    pub ticks: u64,
    /// Total cross-server messages exchanged.
    pub cross_server_messages: u64,
    /// Avatars handed off between zone servers.
    pub handoffs: u64,
    /// Border-chunk updates mirrored to neighbouring zones.
    pub border_chunk_updates: u64,
    /// Border-construct state exchanges performed (one per construct and
    /// involved neighbour zone, on simulated ticks). This is the *logical*
    /// count — how many construct states crossed a seam — independent of
    /// how the wire carries them; [`ClusterStats::batched_bundles`],
    /// [`ClusterStats::speculation_handles`] and
    /// [`ClusterStats::speculative_replays`] break down the wire side.
    pub construct_exchanges: u64,
    /// Bundled (owner, neighbour) pair exchanges sent on the wire — one
    /// per pair per simulated tick under [`BorderExchange::Batched`], and
    /// for the eager-fallback pairs of [`BorderExchange::Speculative`].
    /// Zero in per-construct mode, where every exchange is its own
    /// round-trip.
    pub batched_bundles: u64,
    /// Speculation-handle messages published to neighbours under
    /// [`BorderExchange::Speculative`] — one per neighbour each time a
    /// border construct's published sequence identity changes.
    pub speculation_handles: u64,
    /// Border exchanges served with *zero* messages because the neighbour
    /// replayed the owner's still-valid published sequence from shared
    /// storage.
    pub speculative_replays: u64,
    /// Block events in border chunks forwarded to neighbouring zones (so
    /// replica terrain and cross-zone construct state observe the edit).
    pub forwarded_border_events: u64,
    /// Client replication frames pushed onto the bus's bulk lane by the
    /// fan-out stage. Zero while no replication hub is attached.
    pub replication_frames: u64,
}

impl StatsReport for ClusterStats {
    fn section(&self) -> &'static str {
        "cluster"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("ticks", self.ticks.to_string()),
            (
                "cross_server_messages",
                self.cross_server_messages.to_string(),
            ),
            ("handoffs", self.handoffs.to_string()),
            (
                "border_chunk_updates",
                self.border_chunk_updates.to_string(),
            ),
            ("construct_exchanges", self.construct_exchanges.to_string()),
            ("batched_bundles", self.batched_bundles.to_string()),
            ("speculation_handles", self.speculation_handles.to_string()),
            ("speculative_replays", self.speculative_replays.to_string()),
            (
                "forwarded_border_events",
                self.forwarded_border_events.to_string(),
            ),
            ("replication_frames", self.replication_frames.to_string()),
        ]
    }
}

/// Lifetime counters of the dynamic rebalancing machinery — the cost side
/// of the migration storms a [`RebalancePolicy`] triggers. All zero while
/// no rebalancing is enabled or the policy never fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Migration batches applied (each batch is one policy decision).
    pub rebalance_events: u64,
    /// Individual shard ownership changes applied.
    pub shard_migrations: u64,
    /// Loaded chunks shipped from a shard's old owner to its new owner.
    pub chunks_transferred: u64,
    /// Constructs whose simulation state moved servers with their shard.
    pub constructs_transferred: u64,
    /// Border constructs migrated to the zone owning the majority of their
    /// blocks by the policy's border-traffic term — ownership-aware moves
    /// that carry no shard with them.
    pub construct_migrations: u64,
    /// Staged-but-unflushed dirty chunks handed from the source zone's
    /// persistence pipeline to the destination's during the quiesce.
    pub staged_dirty_handed_off: u64,
    /// Cross-server messages charged for migrations (control, chunk and
    /// construct transfers) — a subset of
    /// [`ClusterStats::cross_server_messages`].
    pub migration_messages: u64,
}

impl StatsReport for RebalanceStats {
    fn section(&self) -> &'static str {
        "rebalance"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("rebalance_events", self.rebalance_events.to_string()),
            ("shard_migrations", self.shard_migrations.to_string()),
            ("chunks_transferred", self.chunks_transferred.to_string()),
            (
                "constructs_transferred",
                self.constructs_transferred.to_string(),
            ),
            (
                "construct_migrations",
                self.construct_migrations.to_string(),
            ),
            (
                "staged_dirty_handed_off",
                self.staged_dirty_handed_off.to_string(),
            ),
            ("migration_messages", self.migration_messages.to_string()),
        ]
    }
}

/// Lifetime counters of the crash-recovery machinery. All zero until a
/// zone crashes ([`ShardedGameCluster::crash_zone`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Zone crashes executed.
    pub crashes: u64,
    /// Orphaned shards adopted by surviving zones.
    pub shards_adopted: u64,
    /// Constructs re-homed onto surviving zones with their state.
    pub constructs_adopted: u64,
    /// Chunks rebuilt from the dead zone's remote store during adoption.
    pub chunks_restored: u64,
    /// Chunks rebuilt from the dead zone's write-ahead log — the
    /// staged-but-unflushed window the periodic write-back cadence leaves
    /// open, which only the WAL can close.
    pub chunks_replayed: u64,
    /// Staged-but-unflushed chunks whose bytes died with the zone's memory
    /// (not covered by any WAL record). Zero whenever the WAL is enabled;
    /// grows with the flush cadence when it is not.
    pub chunks_lost: u64,
    /// Cross-server messages charged for failure detection and adoption —
    /// a subset of [`ClusterStats::cross_server_messages`].
    pub recovery_messages: u64,
    /// Cluster ticks from the crash until the cluster was back inside its
    /// tick budget with no adoption pending.
    pub recovery_ticks: u64,
    /// Recovery ticks whose critical path overran the tick budget — the
    /// QoS dip the adoption storm causes.
    pub ticks_over_qos: u64,
}

impl StatsReport for RecoveryStats {
    fn section(&self) -> &'static str {
        "recovery"
    }

    fn report(&self) -> Vec<(&'static str, String)> {
        vec![
            ("crashes", self.crashes.to_string()),
            ("shards_adopted", self.shards_adopted.to_string()),
            ("constructs_adopted", self.constructs_adopted.to_string()),
            ("chunks_restored", self.chunks_restored.to_string()),
            ("chunks_replayed", self.chunks_replayed.to_string()),
            ("chunks_lost", self.chunks_lost.to_string()),
            ("recovery_messages", self.recovery_messages.to_string()),
            ("recovery_ticks", self.recovery_ticks.to_string()),
            ("ticks_over_qos", self.ticks_over_qos.to_string()),
        ]
    }
}

/// A scripted schedule of zone crashes, for benches and tests that inject
/// failures at deterministic points of a run.
///
/// ```
/// use servo_server::FailurePlan;
/// let plan = FailurePlan::new().crash(2, 150);
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(tick, zone)` pairs, executed at the start of the given cluster
    /// tick (as counted by [`ClusterStats::ticks`]).
    crashes: Vec<(u64, usize)>,
}

impl FailurePlan {
    /// An empty plan (no failures — the control arm).
    pub fn new() -> Self {
        FailurePlan::default()
    }

    /// Adds a crash of `zone` at the start of cluster tick `tick`,
    /// returning the plan.
    pub fn crash(mut self, zone: usize, tick: u64) -> Self {
        self.crashes.push((tick, zone));
        self
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Whether no crash is scheduled.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

/// One registered construct as the cluster tracks it: where it currently
/// lives and which chunks its blocks cover, so a shard migration can move
/// it and recompute its border relationships under the new ownership.
#[derive(Debug, Clone)]
struct RegisteredConstruct {
    /// The zone currently simulating the construct.
    zone: usize,
    /// Its id *within that zone's server* (ids change when a construct is
    /// adopted by a new server).
    id: ConstructId,
    /// The chunk of the blueprint's first block — its shard decides which
    /// zone owns the construct. `None` for empty blueprints, which are
    /// pinned to zone 0 and never migrate.
    home: Option<ChunkPos>,
    /// The distinct chunks the blueprint's blocks cover, ascending.
    chunks: Vec<ChunkPos>,
    /// Every block position of the blueprint — the footprint the
    /// border-traffic rebalancing term counts per zone.
    blocks: Vec<BlockPos>,
    /// The published-sequence identity the neighbours last received a
    /// handle for, under [`BorderExchange::Speculative`]. `None` until a
    /// handle was published, and reset whenever the construct changes
    /// servers (the new backend has nothing published yet).
    published: Option<crate::PublishedSequence>,
}

/// The opt-in rebalancing state of a cluster.
struct Rebalancer {
    policy: RebalancePolicy,
    /// Dirty chunk counts per shard accumulated since the last policy
    /// observation (fed by the tick's owned-dirty drains).
    shard_dirty: Vec<u64>,
}

/// One zone's share of a cluster tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneTickBreakdown {
    /// The zone index.
    pub zone: usize,
    /// Avatars this zone simulated this tick.
    pub players: usize,
    /// The member server's own tick duration (simulation work).
    pub duration: SimDuration,
    /// Cross-zone coordination charged to this server this tick.
    pub coordination: SimDuration,
}

/// A [`ClusterTick`] plus the per-zone detail behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTickDetail {
    /// The critical path and message count, in the shape the analytic
    /// models and the `servo_metrics` consumers expect.
    pub tick: ClusterTick,
    /// Per-zone simulation and coordination breakdown.
    pub zones: Vec<ZoneTickBreakdown>,
    /// Avatars handed off between zones at the start of this tick.
    pub handoffs: u64,
    /// Shard migrations applied at this tick's boundary (zero unless a
    /// rebalancing policy fired; their messages are charged to this tick).
    pub shard_migrations: u64,
}

/// A border construct: simulated by `owner`, with block state spanning
/// into `neighbors`, which must therefore receive its state every
/// simulated tick.
#[derive(Debug, Clone)]
struct BorderConstruct {
    /// The construct's index in the cluster registry (for the per-construct
    /// published-sequence bookkeeping of the speculative exchange).
    index: usize,
    owner: usize,
    neighbors: Vec<usize>,
}

/// A zoned cluster of real [`GameServer`]s partitioned over world shards.
///
/// See the module documentation for the tick protocol. Use
/// [`ShardedGameCluster::baseline`] for the configuration the zoning
/// ablation measures (local simulation and generation per zone, the way
/// classic zoned deployments work), or [`ShardedGameCluster::new`] to wire
/// custom per-zone servers.
pub struct ShardedGameCluster {
    map: Arc<ShardMap>,
    servers: Vec<GameServer>,
    router: ZoneRouter,
    costs: ClusterCosts,
    border_exchange: BorderExchange,
    clock: SimClock,
    /// Derived from `registry` under the current map; rebuilt after every
    /// migration batch.
    border_constructs: Vec<BorderConstruct>,
    /// Every registered construct, in registration order.
    registry: Vec<RegisteredConstruct>,
    details: Vec<ClusterTickDetail>,
    stats: ClusterStats,
    /// Per-zone persistence pipelines (attached via
    /// [`ShardedGameCluster::attach_persistence`]).
    persistence: Vec<Option<ZonePersistence>>,
    /// Opt-in dynamic rebalancing (see
    /// [`ShardedGameCluster::enable_rebalancing`]).
    rebalancer: Option<Rebalancer>,
    rebalance_stats: RebalanceStats,
    /// The previous tick's per-zone load samples, fed to the policy at the
    /// next tick boundary. Empty until the first tick ran.
    last_zone_loads: Vec<ZoneLoadSample>,
    /// Per-zone liveness. A dead zone no longer ticks, persists, mirrors,
    /// or exchanges border state; its shards are adopted by survivors.
    dead: Vec<bool>,
    /// Scheduled crashes not yet executed, as `(tick, zone)`.
    failure_plan: Vec<(u64, usize)>,
    /// Orphaned shards awaiting adoption, each with its designated
    /// surviving adopter, in deterministic round-robin order. Drained by
    /// up to the migration budget per tick.
    pending_adoptions: VecDeque<(usize, usize)>,
    /// Shard → designated adopter for shards still awaiting adoption —
    /// the interim routing rule, so avatars and events on orphaned
    /// terrain reach the zone about to own it instead of the dead one.
    pending_owner: BTreeMap<usize, usize>,
    recovery_stats: RecoveryStats,
    /// Set from a crash until the cluster is back inside its tick budget
    /// with no adoption pending (the bounded recovery window
    /// [`RecoveryStats::recovery_ticks`] measures).
    recovering: bool,
    /// Opt-in client replication (see
    /// [`ShardedGameCluster::enable_replication`]). `None` leaves every
    /// observable byte of the tick unchanged.
    replication: Option<ClusterReplication>,
}

/// The cluster's replication attachment: the subscription index plus the
/// fan-out stage, and the switches controlling how they ride the tick.
struct ClusterReplication {
    hub: ReplicationHub,
    fanout: FanoutStage,
    /// Round-robin flush cohorts (≥ 1).
    cohorts: u64,
    /// Border mirroring routes through border subscriptions.
    border_via_subscription: bool,
}

impl std::fmt::Debug for ShardedGameCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGameCluster")
            .field("zones", &self.servers.len())
            .field("constructs", &self.registry.len())
            .field("border_constructs", &self.border_constructs.len())
            .field("ticks", &self.stats.ticks)
            .finish()
    }
}

impl ShardedGameCluster {
    /// Builds a cluster of `zones` servers produced by `build(zone)`, each
    /// restricted to the shards a contiguous [`ShardMap`] assigns to its
    /// zone. All member servers must share one world shard count (the
    /// map's) and tick rate.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is zero, a member's world has a different shard
    /// count than zone 0's, or a member's tick rate differs from zone 0's.
    pub fn new(zones: usize, mut build: impl FnMut(usize) -> GameServer) -> Self {
        assert!(zones > 0, "a cluster needs at least one zone");
        let mut servers: Vec<GameServer> = (0..zones).map(&mut build).collect();
        let shard_count = servers[0].world().shard_count();
        let tick_rate = servers[0].config().tick_rate_hz;
        let map = Arc::new(ShardMap::contiguous(shard_count, zones));
        for (zone, server) in servers.iter_mut().enumerate() {
            assert_eq!(
                server.world().shard_count(),
                shard_count,
                "zone {zone} world has a different shard count"
            );
            assert_eq!(
                server.config().tick_rate_hz,
                tick_rate,
                "zone {zone} runs at a different tick rate"
            );
            server.restrict_to_zone(Arc::clone(&map), zone);
        }
        ShardedGameCluster {
            map,
            router: ZoneRouter::new(zones),
            servers,
            costs: ClusterCosts::default(),
            border_exchange: BorderExchange::default(),
            clock: SimClock::new(),
            border_constructs: Vec::new(),
            registry: Vec::new(),
            details: Vec::new(),
            stats: ClusterStats::default(),
            persistence: (0..zones).map(|_| None).collect(),
            rebalancer: None,
            rebalance_stats: RebalanceStats::default(),
            last_zone_loads: Vec::new(),
            dead: vec![false; zones],
            failure_plan: Vec::new(),
            pending_adoptions: VecDeque::new(),
            pending_owner: BTreeMap::new(),
            recovery_stats: RecoveryStats::default(),
            recovering: false,
            replication: None,
        }
    }

    /// Builds the classic zoned deployment the ablation measures: every
    /// zone is a baseline server (local construct simulation every other
    /// tick, bounded local terrain generation) with configuration `config`
    /// and its own `zone`-indexed random substream of `seed`.
    pub fn baseline(config: ServerConfig, zones: usize, seed: u64) -> Self {
        let root = SimRng::seed(seed);
        ShardedGameCluster::new(zones, |zone| {
            let generator: Box<dyn TerrainGenerator> = match config.world_kind {
                WorldKind::Flat => Box::new(FlatGenerator::default()),
                WorldKind::Default => Box::new(DefaultGenerator::new(seed)),
            };
            GameServer::new(
                config.clone(),
                Box::new(LocalScBackend::every_other_tick()),
                Box::new(LocalGenerationBackend::new(generator, 8)),
                root.substream_indexed("zone", zone as u64),
            )
        })
    }

    /// Overrides the coordination cost model, returning the cluster.
    pub fn with_costs(mut self, costs: ClusterCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Selects how border-construct state crosses zone seams, returning
    /// the cluster. Defaults to [`BorderExchange::PerConstruct`] (the
    /// classic zoned baseline); hybrid deployments use
    /// [`BorderExchange::Batched`].
    pub fn with_border_exchange(mut self, exchange: BorderExchange) -> Self {
        self.border_exchange = exchange;
        self
    }

    /// The configured border-exchange mode.
    pub fn border_exchange(&self) -> BorderExchange {
        self.border_exchange
    }

    /// Enables dynamic rebalancing: every tick the cluster feeds `policy`
    /// the previous tick's per-zone loads and the avatar/dirty heat of
    /// every shard, and applies whatever migrations it proposes at the
    /// tick boundary (before routing, so avatars re-route to the new
    /// owners in the same tick). A policy that never proposes leaves the
    /// cluster tick-for-tick identical to a static one: the observation
    /// path consumes no randomness, sends no messages, and touches no
    /// clocks (asserted by the `cluster_equivalence` suite).
    pub fn enable_rebalancing(&mut self, policy: RebalancePolicy) {
        self.rebalancer = Some(Rebalancer {
            policy,
            shard_dirty: vec![0; self.map.shard_count()],
        });
    }

    /// Builder-style [`ShardedGameCluster::enable_rebalancing`].
    pub fn with_rebalancing(mut self, policy: RebalancePolicy) -> Self {
        self.enable_rebalancing(policy);
        self
    }

    /// Lifetime counters of the rebalancing machinery (all zero while no
    /// policy is enabled or it never fired).
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.rebalance_stats
    }

    /// Where the `index`-th registered construct (in
    /// [`ShardedGameCluster::add_construct`] order) currently lives:
    /// `(zone, id within that zone's server)`. Migrations move constructs
    /// between servers — and ids change on adoption — so this lookup is
    /// the stable handle.
    pub fn construct_location(&self, index: usize) -> Option<(usize, ConstructId)> {
        self.registry.get(index).map(|entry| (entry.zone, entry.id))
    }

    /// Attaches a persistence pipeline to `zone`: a
    /// [`PipelinedChunkService`] in front of `remote`, staging exactly the
    /// owned dirty deltas the cluster tick drains (one zone never flushes
    /// another zone's chunks). Every `write_back_interval` cluster ticks
    /// the zone prefetches the owned terrain its players need and flushes
    /// its dirty shards — the per-zone equivalent of `ServoDeployment`'s
    /// persistence path, fed by the same `drain_owned_dirty` deltas the
    /// border protocol consumes.
    ///
    /// # Panics
    ///
    /// Panics if `zone` is out of range.
    pub fn attach_persistence(
        &mut self,
        zone: usize,
        remote: BlobStore,
        rng: SimRng,
        write_back_interval: u64,
    ) {
        self.bind_persistence(
            zone,
            PersistenceBinding::new(remote, rng).write_back_interval(write_back_interval),
        );
    }

    /// [`Self::bind_persistence`] with positional arguments.
    #[deprecated(
        since = "0.1.0",
        note = "construct a `PersistenceBinding` and call `bind_persistence` (or configure \
                persistence through `ServoDeployment::builder()`); the free-standing \
                constructor will be removed next release"
    )]
    pub fn attach_persistence_with_scaler(
        &mut self,
        zone: usize,
        remote: BlobStore,
        rng: SimRng,
        write_back_interval: u64,
        elastic: Option<AutoscalerConfig>,
    ) {
        let mut binding =
            PersistenceBinding::new(remote, rng).write_back_interval(write_back_interval);
        if let Some(scaler) = elastic {
            binding = binding.elastic(scaler);
        }
        self.bind_persistence(zone, binding);
    }

    /// Attaches `zone`'s persistence pipeline from a [`PersistenceBinding`]
    /// — the builder-style path [`Self::attach_persistence`] and the
    /// deployment builder both route through. When the binding carries an
    /// autoscaler, the pipeline's disk workers scale with the submission
    /// backlog instead of staying at the zone's static parallelism;
    /// elasticity only changes wall-clock throughput — the simulated
    /// outcomes are identical — so the static default keeps committed
    /// baselines byte-stable.
    ///
    /// # Panics
    ///
    /// Panics if `zone` is out of range.
    pub fn bind_persistence(&mut self, zone: usize, binding: PersistenceBinding) {
        let PersistenceBinding {
            remote,
            rng,
            write_back_interval,
            elastic,
        } = binding;
        let workers = self.servers[zone].config().parallelism.max(1);
        // Bind the world with an EMPTY pull set: the tick thread's
        // `drain_owned_dirty` (step 3a) is the single consumer of the
        // world's dirty flags, and it feeds the service via `stage_dirty`.
        // If the service pulled dirty shards itself, its write-back worker
        // would race the border protocol for the same destructive drain
        // and mirroring would silently miss chunks. The world binding
        // remains so write-back re-snapshots staged chunks from it.
        // Durability is on by default: a write-ahead delta log shared
        // between the pipeline's segments and the cluster, so the log (a
        // durable device in the model) survives a crash of the zone. WAL
        // maintenance consumes no randomness, messages, or clock, so a
        // no-failure run is byte-identical with or without it.
        let wal = SharedWal::new(self.servers[zone].world().shard_count());
        let service = PipelinedChunkService::new(remote, rng, workers);
        let service = match elastic {
            Some(config) => service.with_elastic_workers(config),
            None => service,
        };
        let service = service
            .with_world_shards(self.servers[zone].world_handle(), &[])
            .with_wal(wal.clone());
        self.persistence[zone] = Some(ZonePersistence {
            service,
            interval: write_back_interval.max(1),
            ticks_since_pass: 0,
            stats: ZonePersistenceStats::default(),
            wal: Some(wal),
            fenced: false,
        });
    }

    /// Enables or disables the write-ahead delta log of `zone`'s
    /// persistence pipeline. Attached pipelines have the WAL on by
    /// default; the failure ablation's no-WAL arms disable it to measure
    /// the data-loss window the write-back cadence leaves open. No-op when
    /// the zone has no pipeline attached.
    pub fn set_wal_enabled(&mut self, zone: usize, enabled: bool) {
        let shard_count = self.map.shard_count();
        let Some(persistence) = self.persistence.get_mut(zone).and_then(|p| p.as_mut()) else {
            return;
        };
        if enabled && persistence.wal.is_none() {
            let wal = SharedWal::new(shard_count);
            persistence.service.set_wal(Some(wal.clone()));
            persistence.wal = Some(wal);
        } else if !enabled {
            persistence.service.set_wal(None);
            persistence.wal = None;
        }
    }

    /// Sets the bounded retry-and-backoff policy `zone`'s persistence
    /// workers apply to transient remote-storage failures. No-op when the
    /// zone has no pipeline attached.
    pub fn set_persistence_retry(&mut self, zone: usize, retry: RetryPolicy) {
        if let Some(persistence) = self.persistence.get_mut(zone).and_then(|p| p.as_mut()) {
            persistence.service.set_retry(retry);
        }
    }

    /// The write-ahead log handle of `zone`'s persistence pipeline, when
    /// one is attached with durability enabled.
    pub fn persistence_wal(&self, zone: usize) -> Option<SharedWal> {
        self.persistence
            .get(zone)
            .and_then(|p| p.as_ref())
            .and_then(|p| p.wal.clone())
    }

    /// The persistence counters of one zone, or `None` when the zone has
    /// no pipeline attached.
    pub fn persistence_stats(&self, zone: usize) -> Option<ZonePersistenceStats> {
        self.persistence
            .get(zone)
            .and_then(|p| p.as_ref())
            .map(|p| p.stats)
    }

    /// The persistence counters summed over all zones.
    pub fn persistence_stats_total(&self) -> ZonePersistenceStats {
        let mut total = ZonePersistenceStats::default();
        for persistence in self.persistence.iter().flatten() {
            total.absorb(persistence.stats);
        }
        total
    }

    /// The cache-effectiveness counters of one zone's persistence
    /// pipeline, or `None` when the zone has no pipeline attached.
    pub fn persistence_cache_stats(&self, zone: usize) -> Option<servo_storage::CacheStats> {
        self.persistence
            .get(zone)
            .and_then(|p| p.as_ref())
            .map(|p| p.service.stats())
    }

    /// Runs `f` against one zone's persisted blob store (e.g. to inspect
    /// what reached storage). Returns `None` when the zone has no pipeline
    /// attached.
    pub fn with_persisted<T>(&self, zone: usize, f: impl FnOnce(&mut BlobStore) -> T) -> Option<T> {
        self.persistence
            .get(zone)
            .and_then(|p| p.as_ref())
            .map(|p| p.service.with_remote(f))
    }

    /// Mirrors the dirty border chunks of `deltas` (owned by `zone`) into
    /// the neighbouring zones' replica worlds, charging one message per
    /// chunk and neighbour to `endpoints` and returning the message count.
    /// Both consumers of a destructive `drain_owned_dirty` — the tick's
    /// border protocol and a mid-run persistence flush — go through this,
    /// so no drain can ever skip mirroring.
    fn mirror_border_deltas(
        &mut self,
        zone: usize,
        deltas: &[ShardDelta],
        endpoints: &mut [u64],
    ) -> u64 {
        let mut messages = 0u64;
        for delta in deltas {
            for &pos in &delta.chunks {
                let neighbors = self.map.neighbor_zones(pos);
                if neighbors.is_empty() {
                    continue;
                }
                let chunk = self.servers[zone].world().read_chunk(pos, |c| c.clone());
                let Some(chunk) = chunk else { continue };
                for &neighbor in &neighbors {
                    // A dead neighbour receives nothing: its replica
                    // terrain dies with it, and recovery rebuilds owned
                    // state only.
                    if self.dead[neighbor] {
                        continue;
                    }
                    self.servers[neighbor].world().insert_chunk(chunk.clone());
                    messages += 1;
                    endpoints[zone] += 1;
                    endpoints[neighbor] += 1;
                    self.stats.border_chunk_updates += 1;
                }
            }
        }
        messages
    }

    /// Routes one zone's drained deltas to the border protocol — through
    /// the legacy bespoke mirror path, or through the replication hub's
    /// border subscriptions when
    /// [`ReplicationConfig::border_via_subscription`] is set — and feeds
    /// the same deltas to the client subscription index. Exactly one of
    /// the mirror paths runs; both count messages identically.
    fn mirror_drained_deltas(
        &mut self,
        zone: usize,
        deltas: &[ShardDelta],
        endpoints: &mut [u64],
    ) -> u64 {
        let mut via_hub = false;
        if let Some(repl) = self.replication.as_mut() {
            repl.hub.sync_partition();
            repl.hub.ingest(deltas);
            via_hub = repl.border_via_subscription;
        }
        if via_hub {
            self.mirror_via_subscription(zone, deltas, endpoints)
        } else {
            self.mirror_border_deltas(zone, deltas, endpoints)
        }
    }

    /// The border protocol re-founded on the subscription index: the hub's
    /// border subscriptions decide who receives each drained chunk (the
    /// zones whose whole-shard interest covers it — exactly the laterally
    /// adjacent foreign owners the legacy path derived per chunk), and the
    /// transport, message accounting, and replica application are
    /// identical to [`ShardedGameCluster::mirror_border_deltas`].
    fn mirror_via_subscription(
        &mut self,
        zone: usize,
        deltas: &[ShardDelta],
        endpoints: &mut [u64],
    ) -> u64 {
        let mut messages = 0u64;
        for delta in deltas {
            for &pos in &delta.chunks {
                let neighbors = self
                    .replication
                    .as_ref()
                    .expect("subscription mirroring requires an attached hub")
                    .hub
                    .border_zones_covering(pos);
                if neighbors.is_empty() {
                    continue;
                }
                let chunk = self.servers[zone].world().read_chunk(pos, |c| c.clone());
                let Some(chunk) = chunk else { continue };
                for &neighbor in &neighbors {
                    // Same rule as the legacy path: a dead neighbour's
                    // replica terrain dies with it.
                    if self.dead[neighbor] {
                        continue;
                    }
                    self.servers[neighbor].world().insert_chunk(chunk.clone());
                    messages += 1;
                    endpoints[zone] += 1;
                    endpoints[neighbor] += 1;
                    self.stats.border_chunk_updates += 1;
                    self.replication
                        .as_mut()
                        .expect("checked above")
                        .hub
                        .note_border_delivery();
                }
            }
        }
        messages
    }

    /// Flushes all remaining dirty terrain of every zone through its
    /// persistence pipeline and waits for the passes to complete. Returns
    /// the total number of chunks written (zero when no zone has a
    /// pipeline attached).
    pub fn flush_persistence(&mut self) -> u64 {
        let mut flushed = 0u64;
        let zones = self.servers.len();
        for zone in 0..zones {
            // Check for a pipeline BEFORE draining: on zones without one,
            // a drain here would destroy dirty flags the next tick's
            // border protocol still needs. A crashed zone's pipeline is
            // fenced — it flushes nothing, so its store keeps exactly the
            // bytes it held at the crash.
            match &self.persistence[zone] {
                Some(persistence) if !persistence.fenced => {}
                _ => continue,
            }
            // Stage whatever dirt the last tick left undrained — and since
            // this drain is destructive, run the border mirroring for it
            // too, or neighbour replicas would silently miss the chunks a
            // mid-run checkpoint happened to flush. The messages are
            // charged to the lifetime counters but to no tick (the flush
            // runs between ticks).
            let deltas = self.servers[zone].drain_owned_dirty();
            let mut endpoints = vec![0u64; zones];
            let messages = self.mirror_drained_deltas(zone, &deltas, &mut endpoints);
            self.stats.cross_server_messages += messages;
            let persistence = self.persistence[zone].as_mut().expect("checked above");
            persistence.service.stage_dirty(deltas);
            let now = self.servers[zone].now();
            flushed += persistence.run_write_back_pass(now);
        }
        flushed
    }

    /// Number of zones (member servers).
    pub fn zones(&self) -> usize {
        self.servers.len()
    }

    /// The shard→zone assignment the cluster partitions the world by.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The member servers, in zone order.
    pub fn servers(&self) -> &[GameServer] {
        &self.servers
    }

    /// One member server.
    ///
    /// # Panics
    ///
    /// Panics if `zone` is out of range.
    pub fn server(&self, zone: usize) -> &GameServer {
        &self.servers[zone]
    }

    /// The cluster's current virtual time (the lockstep tick clock the
    /// fleet is driven by; member servers keep their own clocks).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Lifetime coordination counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Attaches the replication layer: an area-of-interest subscription
    /// index over the cluster's partition plus an autoscaled fan-out
    /// stage. When [`ReplicationConfig::border_via_subscription`] is set,
    /// every zone is additionally registered as a border subscriber and
    /// the tick's border mirroring routes through the index —
    /// message-for-message identical to the legacy mirror path. Without a
    /// hub attached the tick is byte-identical to the previous cluster.
    pub fn enable_replication(&mut self, config: ReplicationConfig) {
        let mut hub = ReplicationHub::with_config(Arc::clone(&self.map), config.hub);
        if config.border_via_subscription {
            for zone in 0..self.servers.len() {
                hub.subscribe_border(zone);
            }
        }
        self.replication = Some(ClusterReplication {
            hub,
            fanout: FanoutStage::new(config.fanout),
            cohorts: config.cohorts.max(1),
            border_via_subscription: config.border_via_subscription,
        });
    }

    /// Registers a simulated client with the given area of interest.
    /// Returns `None` when no replication hub is attached.
    pub fn subscribe_client(&mut self, interest: Interest) -> Option<SubscriberId> {
        self.replication
            .as_mut()
            .map(|repl| repl.hub.subscribe(interest))
    }

    /// Moves a client subscriber's interest centre (re-resolving its
    /// subscription). No-op without a hub.
    pub fn retarget_client(&mut self, id: SubscriberId, center: ChunkPos) {
        if let Some(repl) = self.replication.as_mut() {
            repl.hub.retarget(id, center);
        }
    }

    /// Removes a client subscriber. No-op without a hub.
    pub fn unsubscribe_client(&mut self, id: SubscriberId) {
        if let Some(repl) = self.replication.as_mut() {
            repl.hub.unsubscribe(id);
        }
    }

    /// Counters of the subscription index and encoder, when replication is
    /// attached.
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        self.replication.as_ref().map(|repl| repl.hub.stats())
    }

    /// Counters of the fan-out stage, when replication is attached.
    pub fn fanout_stats(&self) -> Option<FanoutStats> {
        self.replication.as_ref().map(|repl| repl.fanout.stats())
    }

    /// The member servers' counters summed over all zones.
    pub fn server_stats_total(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for server in &self.servers {
            let s = server.stats();
            total.ticks += s.ticks;
            total.events_processed += s.events_processed;
            total.chunks_loaded += s.chunks_loaded;
            total.sc_local += s.sc_local;
            total.sc_merged += s.sc_merged;
            total.sc_replayed += s.sc_replayed;
            total.sc_skipped += s.sc_skipped;
        }
        total
    }

    /// Total constructs registered across all zones.
    pub fn construct_count(&self) -> usize {
        self.registry.len()
    }

    /// Number of registered constructs whose blocks span more than one
    /// zone and therefore require cross-zone state exchange.
    pub fn border_construct_count(&self) -> usize {
        self.border_constructs.len()
    }

    /// Registers a construct: the zone owning its first block simulates
    /// it, and if its blocks span further zones it becomes a border
    /// construct whose state is exchanged with those zones on every
    /// simulated tick. Returns the owning zone and the id within it (the
    /// *initial* location: a later rebalance may move the construct; track
    /// it via [`ShardedGameCluster::construct_location`]).
    pub fn add_construct(&mut self, blueprint: Blueprint) -> (usize, ConstructId) {
        let home = blueprint.positions().first().map(|&p| ChunkPos::from(p));
        let blocks = blueprint.positions().to_vec();
        let mut chunks: Vec<ChunkPos> = blueprint
            .positions()
            .iter()
            .map(|&p| ChunkPos::from(p))
            .collect();
        chunks.sort_by_key(|p| (p.x, p.z));
        chunks.dedup();
        let owner = home.map(|c| self.map.zone_of_chunk(c)).unwrap_or(0);
        let id = self.servers[owner].add_construct(blueprint);
        self.registry.push(RegisteredConstruct {
            zone: owner,
            id,
            home,
            chunks,
            blocks,
            published: None,
        });
        let index = self.registry.len() - 1;
        if let Some(border) = Self::border_entry(&self.map, index, &self.registry[index]) {
            self.border_constructs.push(border);
        }
        (owner, id)
    }

    /// The border relationship of the registered construct at `index`
    /// under `map`, or `None` when all its chunks live in its own zone.
    fn border_entry(
        map: &ShardMap,
        index: usize,
        entry: &RegisteredConstruct,
    ) -> Option<BorderConstruct> {
        let mut neighbors: Vec<usize> = entry
            .chunks
            .iter()
            .map(|&c| map.zone_of_chunk(c))
            .filter(|&z| z != entry.zone)
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        if neighbors.is_empty() {
            None
        } else {
            Some(BorderConstruct {
                index,
                owner: entry.zone,
                neighbors,
            })
        }
    }

    /// Recomputes the border-construct list from the registry under the
    /// current map — run after every migration batch, because both a
    /// construct's owner and its neighbour set can change when any shard
    /// its blocks touch moves.
    fn rebuild_border_constructs(&mut self) {
        self.border_constructs = self
            .registry
            .iter()
            .enumerate()
            .filter_map(|(index, entry)| Self::border_entry(&self.map, index, entry))
            .collect();
    }

    /// Applies one batch of proposed shard migrations at a tick boundary,
    /// charging every transfer to `endpoints` and returning the message
    /// count. Per migration, in order:
    ///
    /// 1. *quiesce* — the source's dirty state for the shard is drained
    ///    and border-mirrored (a destructive drain must mirror), and the
    ///    staged-but-unflushed write-back set for the shard is pulled out
    ///    of the source zone's persistence pipeline;
    /// 2. *chunk transfer* — every loaded chunk of the shard is copied to
    ///    the destination server's world and removed from the source's
    ///    (one message per chunk, charged to both endpoint servers);
    /// 3. *ownership flip* — [`ShardMap::migrate`] re-assigns the shard;
    ///    every consumer of the shared map (restriction filters,
    ///    persistence pull views, the router) sees the new owner from here
    ///    on;
    /// 4. *persistence handoff* — the quiesced dirty set is staged into
    ///    the destination zone's pipeline, which owns the flush obligation
    ///    from now on;
    /// 5. *construct transfer* — constructs whose home chunk lives in the
    ///    shard move servers with their full simulation state (two
    ///    messages each: state + acknowledgement); the source backend
    ///    releases any in-flight speculation for them.
    ///
    /// After the batch, border-construct relationships are rebuilt under
    /// the new ownership. Avatars are *not* moved here: the router
    /// re-routes them on this very tick, surfacing the moves as ordinary
    /// (charged) handoffs.
    fn apply_migrations(
        &mut self,
        migrations: &[ShardMigration],
        endpoints: &mut [u64],
    ) -> (u64, u64) {
        let mut messages = 0u64;
        let mut applied = 0u64;
        for migration in migrations {
            let shard = migration.shard;
            let from = self.map.zone_of_shard(shard);
            let to = migration.to;
            // Revalidate against the live map: a stale or self-targeted
            // proposal is dropped, never misapplied. Dead zones are
            // neither sources (recovery, not rebalancing, empties them)
            // nor destinations (a policy reading a dead zone's zero load
            // as headroom must not resurrect it).
            if from != migration.from
                || to == from
                || to >= self.servers.len()
                || self.dead[from]
                || self.dead[to]
            {
                continue;
            }
            // Migration control: announcement + acknowledgement.
            messages += 2;
            endpoints[from] += 2;
            endpoints[to] += 2;

            // 1. Quiesce the shard's in-flight persistence. The drain is
            //    destructive, so its border mirroring runs here (under the
            //    pre-migration ownership) like every other drain consumer.
            //    The staged write-back set is handed to the destination's
            //    pipeline only when one exists; migrating towards a
            //    pipeline-less zone instead flushes the source's staging
            //    synchronously while its world still holds the chunks —
            //    an obligation the source already accepted must never be
            //    silently dropped.
            let deltas = self.servers[from].world().drain_dirty_shards(&[shard]);
            messages += self.mirror_border_deltas(from, &deltas, endpoints);
            let destination_persists = self.persistence[to].is_some();
            let now = self.servers[from].now();
            let world = self.servers[from].world_handle();
            let staged = match self.persistence[from].as_mut() {
                Some(persistence) if destination_persists => {
                    persistence.service.take_staged_shard(shard)
                }
                Some(persistence) => {
                    // Destination has no pipeline to inherit the
                    // obligation: flush exactly this shard's dirty set
                    // synchronously to the source's store while the source
                    // world still holds the chunks — the same terrain keys
                    // and snapshot bytes its pipeline would write. Other
                    // shards' staging keeps its normal cadence.
                    use servo_storage::ObjectStore;
                    let mut dirty: BTreeSet<ChunkPos> = persistence
                        .service
                        .take_staged_shard(shard)
                        .into_iter()
                        .collect();
                    for delta in &deltas {
                        dirty.extend(delta.chunks.iter().copied());
                    }
                    let written = persistence.service.with_remote(|remote| {
                        let mut written = 0u64;
                        for &pos in &dirty {
                            let Some(snapshot) = world.read_chunk(pos, |c| c.snapshot()) else {
                                continue;
                            };
                            let key = servo_storage::chunk_key(pos);
                            if remote.write(&key, snapshot.bytes, now).is_ok() {
                                written += 1;
                            }
                        }
                        written
                    });
                    persistence.stats.chunks_flushed += written;
                    Vec::new()
                }
                None => Vec::new(),
            };
            self.rebalance_stats.staged_dirty_handed_off += staged.len() as u64;

            // 2. Transfer the shard's loaded chunks to the new owner.
            let epoch = self.servers[from].world().shard_epoch(shard);
            let positions = self.servers[from].world().shard_positions(shard);
            let chunks: Vec<_> = positions
                .iter()
                .filter_map(|&pos| self.servers[from].world().read_chunk(pos, |c| c.clone()))
                .collect();
            let transferred = chunks.len() as u64;
            self.servers[to].world().insert_chunks(chunks);
            for &pos in &positions {
                self.servers[from].world().remove_chunk(pos);
            }
            messages += transferred;
            endpoints[from] += transferred;
            endpoints[to] += transferred;
            self.rebalance_stats.chunks_transferred += transferred;

            // 3. Flip ownership. From here on the destination requests,
            //    simulates and persists the shard's terrain.
            self.map.migrate(shard, to);

            // 4. Hand the write-back obligation to the new owner.
            let mut dirty: BTreeSet<ChunkPos> = staged.into_iter().collect();
            for delta in &deltas {
                dirty.extend(delta.chunks.iter().copied());
            }
            if !dirty.is_empty() {
                if let Some(persistence) = self.persistence[to].as_mut() {
                    persistence.service.stage_dirty(vec![ShardDelta {
                        shard,
                        epoch,
                        chunks: dirty.into_iter().collect(),
                    }]);
                }
            }

            // 5. Move the shard's constructs with their simulation state.
            let shard_count = self.map.shard_count();
            for index in 0..self.registry.len() {
                let entry = &self.registry[index];
                let Some(home) = entry.home else { continue };
                if shard_index(home, shard_count) != shard || entry.zone != from {
                    continue;
                }
                let construct = self.servers[from]
                    .take_construct(entry.id)
                    .expect("registered construct must exist on its zone server");
                let new_id = self.servers[to].adopt_construct(construct);
                let entry = &mut self.registry[index];
                entry.zone = to;
                entry.id = new_id;
                entry.published = None;
                messages += 2;
                endpoints[from] += 2;
                endpoints[to] += 2;
                self.rebalance_stats.constructs_transferred += 1;
            }

            applied += 1;
            self.rebalance_stats.shard_migrations += 1;
        }
        if applied > 0 {
            self.rebalance_stats.rebalance_events += 1;
            self.rebuild_border_constructs();
        }
        self.rebalance_stats.migration_messages += messages;
        (messages, applied)
    }

    /// Per-zone block counts for every live border construct, as
    /// [`ConstructFootprint`]s for the policy's border-traffic term
    /// ([`RebalancePolicy::observe_border_traffic`]). Interior constructs
    /// are omitted — their footprint is trivially unanimous, so the term
    /// could never propose moving them.
    fn border_footprints(&self) -> Vec<ConstructFootprint> {
        self.border_constructs
            .iter()
            .filter(|border| !self.dead[border.owner])
            .map(|border| {
                let entry = &self.registry[border.index];
                let mut zone_blocks: Vec<(usize, u32)> = Vec::new();
                for &block in &entry.blocks {
                    let zone = self.map.zone_of_block(block);
                    match zone_blocks.binary_search_by_key(&zone, |&(z, _)| z) {
                        Ok(slot) => zone_blocks[slot].1 += 1,
                        Err(slot) => zone_blocks.insert(slot, (zone, 1)),
                    }
                }
                ConstructFootprint {
                    index: border.index,
                    zone: entry.zone,
                    zone_blocks,
                }
            })
            .collect()
    }

    /// Applies one batch of traffic-driven construct migrations: each
    /// construct moves to the zone owning the majority of its block
    /// footprint through the same take/adopt path shard migrations use
    /// (two messages: state plus acknowledgement, charged to both
    /// endpoints). The construct's home shard stays where it is — the
    /// destination server *pins* the adopted construct, so it keeps
    /// simulating it across the ownership filter. Returns `(messages,
    /// applied)`.
    fn apply_construct_migrations(
        &mut self,
        migrations: &[ConstructMigration],
        endpoints: &mut [u64],
    ) -> (u64, u64) {
        let mut messages = 0u64;
        let mut applied = 0u64;
        for migration in migrations {
            let Some(entry) = self.registry.get(migration.index) else {
                continue;
            };
            let (from, to) = (migration.from, migration.to);
            // Revalidate against the live registry: a stale,
            // self-targeted, or dead-endpoint proposal is dropped, never
            // misapplied.
            if entry.zone != from
                || to == from
                || to >= self.servers.len()
                || self.dead[from]
                || self.dead[to]
            {
                continue;
            }
            let construct = self.servers[from]
                .take_construct(entry.id)
                .expect("registered construct must exist on its zone server");
            let new_id = self.servers[to].adopt_construct(construct);
            let entry = &mut self.registry[migration.index];
            entry.zone = to;
            entry.id = new_id;
            entry.published = None;
            messages += 2;
            endpoints[from] += 2;
            endpoints[to] += 2;
            self.rebalance_stats.construct_migrations += 1;
            applied += 1;
        }
        if applied > 0 {
            self.rebuild_border_constructs();
        }
        self.rebalance_stats.migration_messages += messages;
        (messages, applied)
    }

    /// Schedules `zone` to crash at the start of cluster tick `tick` (as
    /// counted by [`ClusterStats::ticks`]; an index at or before the
    /// current count fires at the next boundary). The crash is executed
    /// inside [`ShardedGameCluster::run_tick`]: the zone is marked dead,
    /// its in-flight construct speculation is released, its persistence
    /// pipeline is fenced, and its shards are queued for adoption by the
    /// surviving zones — spread over ticks by the same per-step migration
    /// budget dynamic rebalancing is bounded by.
    ///
    /// # Panics
    ///
    /// Panics if `zone` is out of range (and, at execution time, if the
    /// crash would leave no live zone).
    pub fn crash_zone(&mut self, zone: usize, tick: u64) {
        assert!(zone < self.servers.len(), "zone {zone} out of range");
        self.failure_plan.push((tick, zone));
    }

    /// Schedules every crash of `plan` (see
    /// [`ShardedGameCluster::crash_zone`]), returning the cluster.
    pub fn with_failure_plan(mut self, plan: FailurePlan) -> Self {
        for (tick, zone) in plan.crashes {
            self.crash_zone(zone, tick);
        }
        self
    }

    /// Lifetime counters of the crash-recovery machinery (all zero while
    /// no crash was scheduled and executed).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Whether `zone` has crashed.
    pub fn zone_is_dead(&self, zone: usize) -> bool {
        self.dead.get(zone).copied().unwrap_or(false)
    }

    /// Orphaned shards still awaiting adoption by a survivor.
    pub fn pending_adoption_count(&self) -> usize {
        self.pending_adoptions.len()
    }

    /// Executes a scheduled crash of `zone`: marks it dead, releases its
    /// in-flight speculation (the substrate abandons whatever it was
    /// computing for the dead server), fences its persistence pipeline,
    /// sizes the data-loss window, and queues its shards for adoption.
    /// Charges one failure-detection message per survivor and returns the
    /// message count.
    fn execute_crash(&mut self, zone: usize, endpoints: &mut [u64]) -> u64 {
        if self.dead[zone] {
            return 0;
        }
        let survivors: Vec<usize> = (0..self.servers.len())
            .filter(|&z| z != zone && !self.dead[z])
            .collect();
        assert!(
            !survivors.is_empty(),
            "crashing zone {zone} would leave no live zone"
        );
        self.dead[zone] = true;
        self.recovering = true;
        self.recovery_stats.crashes += 1;
        self.servers[zone].release_all_speculation();

        // Fence persistence and size the loss window: every
        // staged-but-unflushed position not covered by a WAL record
        // existed only in the zone's memory — with the zone gone, the
        // remote store will forever hold the stale pre-staging bytes.
        let orphans = self.map.zone_shards(zone);
        let mut lost = 0u64;
        if let Some(persistence) = self.persistence[zone].as_mut() {
            persistence.fenced = true;
            for &shard in &orphans {
                for pos in persistence.service.staged_positions(shard) {
                    let covered = persistence
                        .wal
                        .as_ref()
                        .and_then(|wal| wal.latest_seq(pos))
                        .is_some();
                    if !covered {
                        lost += 1;
                    }
                }
            }
        }
        self.recovery_stats.chunks_lost += lost;

        // Round-robin the orphaned shards over the survivors and record
        // each designated adopter, so interim routing already targets the
        // zone about to own the terrain.
        for (index, &shard) in orphans.iter().enumerate() {
            let adopter = survivors[index % survivors.len()];
            self.pending_adoptions.push_back((shard, adopter));
            self.pending_owner.insert(shard, adopter);
        }

        let mut messages = 0u64;

        // Constructs the dead zone simulated *away from their home
        // shard's zone* (traffic-driven migrations pin a construct to a
        // foreign server) are invisible to shard adoption — their home
        // shard belongs to a live zone and is never orphaned. Re-home
        // each to its home shard's effective owner now: construct state
        // is recoverable from the offloading substrate, so the move is
        // charged like any other construct adoption (state plus
        // acknowledgement, to the adopter).
        let shard_count = self.map.shard_count();
        let mut rehomed = false;
        for index in 0..self.registry.len() {
            let entry = &self.registry[index];
            if entry.zone != zone {
                continue;
            }
            let Some(home) = entry.home else { continue };
            let shard = shard_index(home, shard_count);
            if self.map.zone_of_shard(shard) == zone {
                // Orphaned together with its home shard: the normal
                // adoption path re-homes it with the terrain.
                continue;
            }
            let adopter = self
                .pending_owner
                .get(&shard)
                .copied()
                .unwrap_or_else(|| self.map.zone_of_shard(shard));
            if self.dead[adopter] {
                continue;
            }
            let construct = self.servers[zone]
                .take_construct(entry.id)
                .expect("registered construct must exist on its zone server");
            let new_id = self.servers[adopter].adopt_construct(construct);
            let entry = &mut self.registry[index];
            entry.zone = adopter;
            entry.id = new_id;
            entry.published = None;
            messages += 2;
            endpoints[adopter] += 2;
            self.recovery_stats.constructs_adopted += 1;
            rehomed = true;
        }
        if rehomed {
            self.rebuild_border_constructs();
        }

        // Failure detection: one message announcing the death to each
        // survivor (the dead endpoint answers nothing, so only the
        // survivor side is charged).
        for &survivor in &survivors {
            messages += 1;
            endpoints[survivor] += 1;
        }
        self.recovery_stats.recovery_messages += messages;
        messages
    }

    /// Applies one batch of recovery adoptions: each orphaned `(shard,
    /// adopter)` pair rebuilds the shard on the adopter from the dead
    /// zone's remote store plus its write-ahead log, flips ownership, and
    /// re-homes the shard's constructs. Charges every transfer to
    /// `endpoints` (adopter side only — the dead server sends nothing;
    /// recovery reads come from the storage substrate and the durable
    /// log) and returns `(messages, shards_adopted)`.
    fn apply_recovery_migrations(
        &mut self,
        batch: &[(usize, usize)],
        endpoints: &mut [u64],
    ) -> (u64, u64) {
        let mut messages = 0u64;
        let mut applied = 0u64;
        let now = self.clock.now();
        for &(shard, to) in batch {
            let from = self.map.zone_of_shard(shard);
            // Revalidate: the source must actually be dead and still own
            // the shard, and the adopter must be alive.
            if !self.dead[from] || to >= self.servers.len() || self.dead[to] {
                self.pending_owner.remove(&shard);
                continue;
            }
            // Adoption control: coordination announcement plus
            // acknowledgement, charged to the adopter.
            messages += 2;
            endpoints[to] += 2;

            // The dead zone's world is unreachable, but the shard's chunk
            // *directory* is knowable (the map and the store's key scheme
            // identify owned terrain); the in-memory copy here stands in
            // for it.
            let positions = self.servers[from].world().shard_positions(shard);

            // 1. Restore from the dead zone's remote store. Positions the
            //    adopter already holds are skipped: a border replica was
            //    mirrored fresh every tick, so it is never older than the
            //    last flush.
            for &pos in &positions {
                if self.servers[to].world().read_chunk(pos, |_| ()).is_some() {
                    continue;
                }
                let key = servo_storage::chunk_key(pos);
                let restored = self.persistence[from].as_ref().and_then(|p| {
                    p.service.with_remote(|remote| {
                        use servo_storage::ObjectStore;
                        remote
                            .read(&key, now)
                            .ok()
                            .and_then(|r| Chunk::from_bytes(&r.data).ok())
                    })
                });
                if let Some(chunk) = restored {
                    self.servers[to].world().insert_chunk(chunk);
                    messages += 1;
                    endpoints[to] += 1;
                    self.recovery_stats.chunks_restored += 1;
                }
            }

            // 2. Replay the write-ahead log over the restored terrain:
            //    WAL records carry the staged-but-unflushed bytes the
            //    remote store never received, so they win over whatever
            //    step 1 restored. Replayed records are truncated — the
            //    durability obligation moves to the adopter.
            let mut replayed: Vec<ChunkPos> = Vec::new();
            let wal = self.persistence[from].as_ref().and_then(|p| p.wal.clone());
            if let Some(wal) = &wal {
                for record in wal.replay_shard(shard) {
                    let Ok(chunk) = Chunk::from_bytes(&record.bytes) else {
                        continue;
                    };
                    self.servers[to].world().insert_chunk(chunk);
                    messages += 1;
                    endpoints[to] += 1;
                    self.recovery_stats.chunks_replayed += 1;
                    wal.truncate(record.pos, record.seq);
                    replayed.push(record.pos);
                }
            }

            // 3. Flip ownership: the adopter simulates, routes, and
            //    persists the shard from here on.
            self.map.migrate(shard, to);
            self.pending_owner.remove(&shard);

            // 4. Replayed bytes are ahead of remote storage — stage them
            //    into the adopter's pipeline so the *new* owner flushes
            //    them on its next pass (and, with its own WAL, makes them
            //    durable again immediately).
            if !replayed.is_empty() {
                if let Some(persistence) = self.persistence[to].as_mut() {
                    let epoch = self.servers[to].world().shard_epoch(shard);
                    persistence.service.stage_dirty(vec![ShardDelta {
                        shard,
                        epoch,
                        chunks: replayed,
                    }]);
                }
            }

            // 5. Re-home the shard's constructs. Construct state is
            //    recoverable from the offloading substrate (speculative
            //    sequences live outside the zone server), so adoption
            //    moves it like a migration would: state plus
            //    acknowledgement per construct, charged to the adopter.
            let shard_count = self.map.shard_count();
            for index in 0..self.registry.len() {
                let entry = &self.registry[index];
                let Some(home) = entry.home else { continue };
                if shard_index(home, shard_count) != shard || entry.zone != from {
                    continue;
                }
                let construct = self.servers[from]
                    .take_construct(entry.id)
                    .expect("registered construct must exist on its zone server");
                let new_id = self.servers[to].adopt_construct(construct);
                let entry = &mut self.registry[index];
                entry.zone = to;
                entry.id = new_id;
                entry.published = None;
                messages += 2;
                endpoints[to] += 2;
                self.recovery_stats.constructs_adopted += 1;
            }

            // 6. The dead server's memory is gone: drop the shard's
            //    chunks from its world so nothing can read them back.
            for &pos in &positions {
                self.servers[from].world().remove_chunk(pos);
            }

            applied += 1;
            self.recovery_stats.shards_adopted += 1;
        }
        if applied > 0 {
            self.rebuild_border_constructs();
        }
        self.recovery_stats.recovery_messages += messages;
        (messages, applied)
    }

    /// The zone that will simulate the chunk at `pos` *this* tick: the
    /// map's owner, unless the shard is orphaned and awaiting adoption —
    /// then its designated adopter. Identical to the map while no
    /// adoption is pending.
    fn effective_zone_of_chunk(&self, pos: ChunkPos) -> usize {
        let shard = shard_index(pos, self.map.shard_count());
        self.pending_owner
            .get(&shard)
            .copied()
            .unwrap_or_else(|| self.map.zone_of_shard(shard))
    }

    /// The per-tick details recorded so far.
    pub fn ticks(&self) -> &[ClusterTickDetail] {
        &self.details
    }

    /// The recorded critical-path durations, for feeding into the
    /// capacity/QoS metrics exactly like single-server tick durations.
    pub fn critical_path_durations(&self) -> Vec<SimDuration> {
        self.details.iter().map(|d| d.tick.critical_path).collect()
    }

    /// Clears recorded cluster ticks and every member's tick reports (e.g.
    /// to discard a warm-up phase) without resetting world state, clocks,
    /// or lifetime counters.
    pub fn discard_ticks(&mut self) {
        self.details.clear();
        for server in &mut self.servers {
            server.discard_reports();
        }
    }

    /// Runs one lockstep cluster tick for the given fleet state.
    ///
    /// `positions` are the avatar positions in fleet order; `events` this
    /// tick's player events. Each avatar is routed to — and simulated by —
    /// exactly one zone; the border protocol and message accounting run
    /// after all zones ticked. Returns the cluster-level tick outcome.
    pub fn run_tick(
        &mut self,
        positions: &[BlockPos],
        events: &[(PlayerId, PlayerEvent)],
    ) -> ClusterTick {
        let zones = self.servers.len();
        let mut messages = 0u64;
        // Message endpoints charged to each zone this tick (each message
        // burdens both its sender and its receiver).
        let mut endpoints = vec![0u64; zones];

        // 0a. Failure injection: execute any crash scheduled for this
        //     boundary. With an empty plan this block touches nothing.
        if !self.failure_plan.is_empty() {
            let tick_index = self.stats.ticks;
            let due: Vec<usize> = self
                .failure_plan
                .iter()
                .filter(|&&(tick, _)| tick <= tick_index)
                .map(|&(_, zone)| zone)
                .collect();
            self.failure_plan.retain(|&(tick, _)| tick > tick_index);
            for zone in due {
                messages += self.execute_crash(zone, &mut endpoints);
            }
        }

        // 0b. Recovery adoption: survivors adopt orphaned shards through
        //     the migration path, consuming the same per-step budget
        //     dynamic rebalancing is bounded by. Recovery takes
        //     precedence — the policy below only gets what is left — so a
        //     crash and a hot policy can never compound into a migration
        //     storm that exceeds the configured bound.
        let mut shard_migrations = 0u64;
        let mut migration_budget = self
            .rebalancer
            .as_ref()
            .map(|r| r.policy.config().max_migrations_per_step)
            .unwrap_or_else(|| RebalanceConfig::default().max_migrations_per_step);
        if !self.pending_adoptions.is_empty() {
            let take = migration_budget.min(self.pending_adoptions.len());
            let batch: Vec<(usize, usize)> = self.pending_adoptions.drain(..take).collect();
            migration_budget -= take;
            let (recovery_messages, adopted) =
                self.apply_recovery_migrations(&batch, &mut endpoints);
            messages += recovery_messages;
            shard_migrations += adopted;
        }

        // 0c. Dynamic rebalancing (opt-in): feed the policy the previous
        //    tick's per-zone loads plus the current shard-level heat, and
        //    apply any proposed migrations at this boundary — before
        //    routing, so the router hands affected avatars to their new
        //    owners in this very tick (charged as ordinary handoffs) and
        //    the migration storm lands in this tick's critical path. With
        //    no policy, or a policy that proposes nothing, this block
        //    leaves every observable byte of the tick unchanged.
        if self.rebalancer.is_some() && !self.last_zone_loads.is_empty() {
            let shard_count = self.map.shard_count();
            let mut shard_avatars = vec![0u32; shard_count];
            for &pos in positions {
                shard_avatars[shard_index(ChunkPos::from(pos), shard_count)] += 1;
            }
            let rebalancer = self.rebalancer.as_mut().expect("checked above");
            let proposed = rebalancer.policy.observe(
                &self.map,
                &self.last_zone_loads,
                &shard_avatars,
                &rebalancer.shard_dirty,
            );
            for slot in rebalancer.shard_dirty.iter_mut() {
                *slot = 0;
            }
            // Recovery already spent part of this tick's budget; the
            // policy's proposals are truncated to the remainder (a no-op
            // while no recovery is in flight, since the policy bounds
            // itself to the same maximum). Undropped proposals stay with
            // the policy's internal cooldown — they are simply re-derived
            // at a later boundary if the imbalance persists.
            let mut proposed = proposed;
            proposed.truncate(migration_budget);
            migration_budget -= proposed.len();
            if !proposed.is_empty() {
                let (migration_messages, applied) =
                    self.apply_migrations(&proposed, &mut endpoints);
                messages += migration_messages;
                shard_migrations += applied;
            }

            // Border-traffic term (opt-in): count each border construct's
            // block footprint per zone and migrate constructs towards the
            // zone owning the majority of their blocks. Shares the step's
            // migration budget — shard moves (and recovery above) come
            // first, the traffic term only gets what is left.
            let traffic_on = self
                .rebalancer
                .as_ref()
                .map(|r| r.policy.config().border_traffic)
                .unwrap_or(false);
            if traffic_on && migration_budget > 0 {
                let footprints = self.border_footprints();
                let rebalancer = self.rebalancer.as_mut().expect("checked above");
                let proposed = rebalancer
                    .policy
                    .observe_border_traffic(&footprints, migration_budget);
                if !proposed.is_empty() {
                    let (migration_messages, _applied) =
                        self.apply_construct_migrations(&proposed, &mut endpoints);
                    messages += migration_messages;
                }
            }
        }

        // Route to the *effective* owner: while an orphaned shard awaits
        // adoption, its avatars and events go to the designated adopter
        // (which tolerates simulating over foreign terrain) rather than
        // the dead zone. With nothing pending this is exactly the map.
        let map = Arc::clone(&self.map);
        let pending = self.pending_owner.clone();
        let mut assignment = self.router.route(positions, events, |p| {
            if pending.is_empty() {
                return map.zone_of_block(p);
            }
            let shard = shard_index(ChunkPos::from(p), map.shard_count());
            pending
                .get(&shard)
                .copied()
                .unwrap_or_else(|| map.zone_of_shard(shard))
        });

        // 1a. Player handoffs: two messages per crossing avatar (session
        //     state transfer plus acknowledgement). With a replication hub
        //     attached, the crossing is also an avatar event for the
        //     clients watching the destination chunk (piggybacked on their
        //     next frame, step 3d).
        let mut client_events: Vec<(ChunkPos, u32)> = Vec::new();
        let collect_events = self.replication.is_some();
        for handoff in &assignment.handoffs {
            messages += 2;
            endpoints[handoff.from] += 2;
            endpoints[handoff.to] += 2;
            if collect_events {
                if let Some(&pos) = positions.get(handoff.player.raw() as usize) {
                    client_events.push((ChunkPos::from(pos), 1));
                }
            }
        }
        self.stats.handoffs += assignment.handoffs.len() as u64;

        // 1b. Block events in border chunks are part of the coordinated
        //     border region: besides the owning zone, every laterally
        //     adjacent zone receives a copy, so its replica terrain — and
        //     any construct state it owns across the seam — observes the
        //     edit exactly as a single server would. One message per copy.
        for &(player, event) in events {
            let block = match event {
                PlayerEvent::BlockPlaced(pos) | PlayerEvent::BlockBroken(pos) => pos,
                PlayerEvent::ChatMessage | PlayerEvent::InventoryChanged => continue,
            };
            let chunk = ChunkPos::from(block);
            let origin = self.effective_zone_of_chunk(chunk);
            for neighbor in map.neighbor_zones(chunk) {
                // Dead neighbours receive nothing; a neighbour that IS
                // the effective origin (the adopter of a still-pending
                // shard) already gets the event through routing.
                if neighbor == origin || self.dead[neighbor] {
                    continue;
                }
                assignment.events[neighbor].push((player, event));
                messages += 1;
                endpoints[origin] += 1;
                endpoints[neighbor] += 1;
                self.stats.forwarded_border_events += 1;
            }
        }

        // 2. One real tick per zone, in zone order. A dead zone performs
        //    no work at all — its slot gets a zero report so the border
        //    and critical-path accounting below stay positional.
        let reports: Vec<TickReport> = (0..zones)
            .map(|zone| {
                if self.dead[zone] {
                    return TickReport {
                        tick: self.servers[zone].current_tick(),
                        started_at: self.clock.now(),
                        duration: SimDuration::ZERO,
                        work: Default::default(),
                        view_range_blocks: self.servers[zone].config().view_distance_blocks as f64,
                    };
                }
                self.servers[zone].run_tick(&assignment.positions[zone], &assignment.events[zone])
            })
            .collect();

        // 3a. Border protocol: mirror dirty border chunks to the zones
        //     owning adjacent terrain (one message per chunk and neighbour;
        //     the neighbour applies the fresh copy into its replica world),
        //     then route the same drained deltas into the zone's
        //     persistence pipeline — draining happens exactly once per
        //     tick, and both consumers see every owned dirty shard.
        for zone in 0..zones {
            if self.dead[zone] {
                continue;
            }
            let deltas = self.servers[zone].drain_owned_dirty();
            if let Some(rebalancer) = self.rebalancer.as_mut() {
                for delta in &deltas {
                    if let Some(slot) = rebalancer.shard_dirty.get_mut(delta.shard) {
                        *slot += delta.chunks.len() as u64;
                    }
                }
            }
            messages += self.mirror_drained_deltas(zone, &deltas, &mut endpoints);
            if let Some(persistence) = self.persistence[zone].as_mut() {
                persistence.service.stage_dirty(deltas);
            }
        }

        // 3b. Border constructs: on every tick their owner actually
        //     simulated constructs, state crosses to each involved
        //     neighbour zone and is acknowledged. Per construct in the
        //     classic baseline; bundled per (owner, neighbour) server pair
        //     in the hybrid's batched exchange. The speculative exchange
        //     ships a *handle* to the owner's published sequence instead
        //     of state — one unacknowledged message per construct whose
        //     sequence identity changed, zero while neighbours keep
        //     replaying a still-valid sequence from the shared store —
        //     and degrades to the batched eager path for any construct
        //     whose backend publishes nothing.
        let mut exchange_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        for b in 0..self.border_constructs.len() {
            // A dead owner simulates nothing (its constructs await
            // adoption); dead neighbours receive nothing.
            let owner = self.border_constructs[b].owner;
            if self.dead[owner] {
                continue;
            }
            let work = reports[owner].work;
            if work.sc_local + work.sc_merged + work.sc_replayed == 0 {
                continue;
            }
            let index = self.border_constructs[b].index;
            let current = match self.border_exchange {
                BorderExchange::Speculative => {
                    self.servers[owner].published_sequence(self.registry[index].id)
                }
                _ => None,
            };
            for n in 0..self.border_constructs[b].neighbors.len() {
                let neighbor = self.border_constructs[b].neighbors[n];
                if self.dead[neighbor] {
                    continue;
                }
                self.stats.construct_exchanges += 1;
                if collect_events {
                    if let Some(&block) = self.registry[index].blocks.first() {
                        client_events.push((ChunkPos::from(block), 1));
                    }
                }
                match self.border_exchange {
                    BorderExchange::PerConstruct => {
                        messages += 2;
                        endpoints[owner] += 2;
                        endpoints[neighbor] += 2;
                    }
                    BorderExchange::Batched => {
                        exchange_pairs.insert((owner, neighbor));
                    }
                    BorderExchange::Speculative => match current {
                        // The neighbour already holds a handle for this
                        // exact sequence: it replays the next step from
                        // the shared store, no message at all.
                        Some(seq) if self.registry[index].published == Some(seq) => {
                            self.stats.speculative_replays += 1;
                        }
                        // New or invalidated sequence: publish one handle
                        // (sequence id, storage location, validity
                        // horizon) — fire-and-forget, half the eager
                        // exchange's cost.
                        Some(_) => {
                            messages += 1;
                            endpoints[owner] += 1;
                            endpoints[neighbor] += 1;
                            self.stats.speculation_handles += 1;
                        }
                        // Nothing published (local backend, or the
                        // substrate has not resolved yet): fall back to
                        // the eager batched exchange for this pair.
                        None => {
                            exchange_pairs.insert((owner, neighbor));
                        }
                    },
                }
            }
            if matches!(self.border_exchange, BorderExchange::Speculative) {
                self.registry[index].published = current;
            }
        }
        for (owner, neighbor) in exchange_pairs {
            messages += 2;
            endpoints[owner] += 2;
            endpoints[neighbor] += 2;
            self.stats.batched_bundles += 1;
        }

        // 3c. Per-zone persistence: on the configured cadence each zone
        //     prefetches the owned terrain its players need and flushes its
        //     staged dirty shards through its PipelinedChunkService — zoned
        //     clusters persist the way `ServoDeployment` does. Runs on the
        //     pipeline's worker pool; nothing here is charged to the tick.
        for zone in 0..zones {
            let Some(persistence) = self.persistence[zone].as_mut() else {
                continue;
            };
            // A fenced (crashed) pipeline runs no cadence and flushes
            // nothing more; its store is frozen at the crash.
            if persistence.fenced {
                continue;
            }
            let now = self.servers[zone].now();
            persistence.ticks_since_pass += 1;
            if persistence.ticks_since_pass >= persistence.interval {
                persistence.ticks_since_pass = 0;
                let view = self.servers[zone].config().view_distance_blocks;
                let needed: Vec<ChunkPos> = required_chunks(&assignment.positions[zone], view)
                    .into_iter()
                    .filter(|&pos| map.zone_of_chunk(pos) == zone)
                    .collect();
                persistence.service.submit(ChunkRequest::prefetch(needed));
                persistence.service.submit(ChunkRequest::write_back());
            }
            for completion in persistence.service.poll(now) {
                match completion.outcome {
                    ChunkOutcome::WroteBack { chunks } => {
                        persistence.stats.write_back_passes += 1;
                        persistence.stats.chunks_flushed += chunks as u64;
                    }
                    ChunkOutcome::Loaded { .. } => {
                        persistence.stats.prefetch_arrivals += 1;
                    }
                    _ => {}
                }
            }
        }

        // 3d. Client replication (opt-in): flush the due cohort of area
        //     subscribers into epoch-keyed frames (keyframes priced from
        //     the owning zone's real chunk snapshots) and charge the
        //     fan-out through the autoscaled worker pool to each owning
        //     zone's tick, so replication load shows up in QoS like
        //     simulation work. Frames ride the bus's bulk lane: they count
        //     as cross-server messages, but their tick cost is the pool's
        //     amortised share, not the coordination round-trip rate. With
        //     no hub attached every byte below is zero.
        let mut replication_ms = vec![0.0f64; zones];
        if let Some(repl) = self.replication.as_mut() {
            if !client_events.is_empty() {
                repl.hub.ingest_events(&client_events);
            }
            let map = &self.map;
            let servers = &self.servers;
            let dead = &self.dead;
            let pending = &self.pending_owner;
            let zone_of = |pos: ChunkPos| {
                let shard = shard_index(pos, map.shard_count());
                pending
                    .get(&shard)
                    .copied()
                    .unwrap_or_else(|| map.zone_of_shard(shard))
            };
            let frames = repl.hub.flush(repl.cohorts, |pos| {
                let zone = zone_of(pos);
                if dead[zone] {
                    return None;
                }
                servers[zone]
                    .world()
                    .read_chunk(pos, |c| c.serialized_size() as u64)
            });
            if !frames.is_empty() {
                replication_ms = repl
                    .fanout
                    .charge(self.clock.now(), zones, &frames, zone_of);
                messages += frames.len() as u64;
                self.stats.replication_frames += frames.len() as u64;
            }
        }

        // 4. Critical path: the cluster is as slow as its slowest member,
        //    simulation plus the coordination charged to it.
        let mut critical = SimDuration::ZERO;
        let mut breakdown = Vec::with_capacity(zones);
        for zone in 0..zones {
            let coordination = SimDuration::from_millis_f64(
                endpoints[zone] as f64 * self.costs.message_cost_ms + replication_ms[zone],
            );
            critical = critical.max(reports[zone].duration + coordination);
            breakdown.push(ZoneTickBreakdown {
                zone,
                players: assignment.positions[zone].len(),
                duration: reports[zone].duration,
                coordination,
            });
        }

        let tick = ClusterTick {
            critical_path: critical,
            cross_server_messages: messages,
        };
        // Feed the next tick boundary's policy observation: each zone's
        // cost this tick (simulation + coordination) and its avatar
        // count. Dead zones are excluded — a policy reading their zero
        // load as headroom would try to migrate shards into a grave.
        self.last_zone_loads = breakdown
            .iter()
            .filter(|zone| !self.dead[zone.zone])
            .map(|zone| ZoneLoadSample {
                zone: zone.zone,
                load_ms: (zone.duration + zone.coordination).as_millis_f64(),
                avatars: zone.players,
            })
            .collect();
        self.details.push(ClusterTickDetail {
            tick,
            zones: breakdown,
            handoffs: assignment.handoffs.len() as u64,
            shard_migrations,
        });
        self.stats.ticks += 1;
        self.stats.cross_server_messages += messages;

        // 5. Lockstep clock: the next cluster tick starts after the tick
        //    interval, or later if the slowest member overran it — the same
        //    rule each member applies to its own clock.
        let budget = self.servers[0].config().tick_budget();

        // Recovery window: from the crash until the cluster is back
        // inside its tick budget with no adoption pending, count every
        // tick (and every tick the adoption storm pushed over QoS).
        if self.recovering {
            self.recovery_stats.recovery_ticks += 1;
            if critical > budget {
                self.recovery_stats.ticks_over_qos += 1;
            } else if self.pending_adoptions.is_empty() {
                self.recovering = false;
            }
        }
        self.clock.advance_by(critical.max(budget));
        tick
    }

    /// Drives the cluster with a player fleet for `duration` of virtual
    /// time, mirroring [`GameServer::run_with_fleet`]: avatars act on the
    /// cluster's lockstep clock, then each tick is routed and executed via
    /// [`ShardedGameCluster::run_tick`].
    pub fn run_with_fleet(
        &mut self,
        fleet: &mut PlayerFleet,
        duration: SimDuration,
    ) -> Vec<ClusterTick> {
        let end = self.clock.now() + duration;
        let budget = self.servers[0].config().tick_budget();
        let parallelism = self.servers[0].config().parallelism.max(1);
        let mut ticks = Vec::new();
        while self.clock.now() < end {
            let now = self.clock.now();
            let events = if parallelism > 1 {
                fleet.tick_parallel(now, budget, parallelism)
            } else {
                fleet.tick(now, budget)
            };
            let positions = fleet.positions();
            ticks.push(self.run_tick(&positions, &events));
        }
        ticks
    }
}

/// Finds `count` deterministic chunk positions whose eastern neighbour is
/// owned by a different zone of `map` — sites where a construct spanning
/// the chunk seam becomes a *border construct*. Scans columns outward from
/// the origin; panics only if the map has a single zone (no borders
/// exist).
///
/// # Panics
///
/// Panics if `map` has fewer than two zones.
pub fn border_construct_sites(map: &ShardMap, count: usize) -> Vec<ChunkPos> {
    assert!(map.zones() > 1, "a single-zone map has no border sites");
    let mut sites = Vec::with_capacity(count);
    let mut ring = 0i32;
    while sites.len() < count && ring < 10_000 {
        for cz in [-ring, ring] {
            for cx in -ring..=ring {
                let pos = ChunkPos::new(cx, cz);
                let east = ChunkPos::new(cx + 1, cz);
                if map.zone_of_chunk(pos) != map.zone_of_chunk(east) {
                    sites.push(pos);
                    if sites.len() == count {
                        return sites;
                    }
                }
            }
            if ring == 0 {
                break;
            }
        }
        for cx in [-ring, ring] {
            for cz in (-ring + 1)..ring {
                let pos = ChunkPos::new(cx, cz);
                let east = ChunkPos::new(cx + 1, cz);
                if map.zone_of_chunk(pos) != map.zone_of_chunk(east) {
                    sites.push(pos);
                    if sites.len() == count {
                        return sites;
                    }
                }
            }
        }
        ring += 1;
    }
    sites
}

/// Finds `count` chunks owned by `zone` of `map`, each in a *distinct*
/// shard, scanning outward from the origin. These are the natural targets
/// of a hotspot workload: players converging on them pile all their load
/// onto one zone, yet across several shards — exactly the skew a
/// [`RebalancePolicy`] can dissolve by migrating the hot shards apart
/// (whereas a hotspot inside a single shard can only ever be relocated).
///
/// # Panics
///
/// Panics if fewer than `count` qualifying chunks exist within a 64-chunk
/// radius (cannot happen for `count <=` the zone's shard count, since hash
/// sharding scatters every shard's chunks across the plane).
pub fn zone_hotspot_sites(map: &ShardMap, zone: usize, count: usize) -> Vec<ChunkPos> {
    let mut sites = Vec::with_capacity(count);
    let mut used_shards = Vec::new();
    for ring in 0..64i32 {
        for cx in -ring..=ring {
            for cz in -ring..=ring {
                if cx.abs().max(cz.abs()) != ring {
                    continue;
                }
                let pos = ChunkPos::new(cx, cz);
                if map.zone_of_chunk(pos) != zone {
                    continue;
                }
                let shard = servo_world::shard_index(pos, map.shard_count());
                if used_shards.contains(&shard) {
                    continue;
                }
                used_shards.push(shard);
                sites.push(pos);
                if sites.len() == count {
                    return sites;
                }
            }
        }
    }
    panic!(
        "only {} of {count} hotspot sites found for zone {zone}",
        sites.len()
    );
}

/// Translates `blueprint` so it starts eight blocks west of the eastern
/// seam of `site` at height `y` — laid out east-west, any construct longer
/// than eight blocks crosses into the neighbouring chunk. Combined with
/// [`border_construct_sites`] this builds construct fleets that are
/// border-spanning by construction.
pub fn place_across_east_seam(blueprint: &Blueprint, site: ChunkPos, y: i32) -> Blueprint {
    place_across_east_seam_at(blueprint, site, y, 8)
}

/// Like [`place_across_east_seam`], but starting `offset` blocks into
/// `site`'s chunk: an east-west construct of length `L > 16 - offset`
/// still crosses the seam, with `16 - offset` of its blocks west of it
/// and the rest east. Varying the offset skews which side of the seam
/// holds the majority of a border construct's footprint — the signal the
/// border-traffic rebalancing term keys on.
pub fn place_across_east_seam_at(
    blueprint: &Blueprint,
    site: ChunkPos,
    y: i32,
    offset: i32,
) -> Blueprint {
    let base = site.min_block();
    blueprint.translated(BlockPos::new(base.x + offset, y, base.z + 8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use servo_redstone::generators;

    fn flat_config() -> ServerConfig {
        ServerConfig::opencraft().with_view_distance(32)
    }

    fn bounded_fleet(players: usize, seed: u64) -> PlayerFleet {
        let mut fleet = PlayerFleet::new(
            servo_workload::BehaviorKind::Bounded { radius: 24.0 },
            SimRng::seed(seed),
        );
        fleet.connect_all(players);
        fleet
    }

    #[test]
    fn cluster_runs_and_partitions_players() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 1);
        let mut fleet = bounded_fleet(24, 2);
        let ticks = cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(3));
        assert!(!ticks.is_empty());
        assert_eq!(cluster.stats().ticks, ticks.len() as u64);
        // Every tick simulates every avatar exactly once, across zones.
        for detail in cluster.ticks() {
            let total: usize = detail.zones.iter().map(|z| z.players).sum();
            assert_eq!(total, 24);
        }
        // With 4 hash-interleaved zones the spawn area spans several zones.
        let occupied = cluster
            .ticks()
            .last()
            .unwrap()
            .zones
            .iter()
            .filter(|z| z.players > 0)
            .count();
        assert!(occupied >= 2, "players all landed in {occupied} zone(s)");
        // Each member served terrain for its own shards only.
        for (zone, server) in cluster.servers().iter().enumerate() {
            assert_eq!(server.zone(), Some(zone));
        }
    }

    #[test]
    fn border_constructs_are_detected_and_exchanged() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 3);
        let sites = border_construct_sites(cluster.shard_map(), 10);
        assert_eq!(sites.len(), 10);
        let map = cluster.shard_map().clone();
        for site in &sites {
            assert_ne!(
                map.zone_of_chunk(*site),
                map.zone_of_chunk(ChunkPos::new(site.x + 1, site.z)),
                "site {site:?} does not straddle zones"
            );
            let blueprint = place_across_east_seam(&generators::wire_line(14), *site, 6);
            cluster.add_construct(blueprint);
        }
        assert_eq!(cluster.construct_count(), 10);
        assert_eq!(cluster.border_construct_count(), 10);
        let mut fleet = bounded_fleet(4, 4);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(2));
        let stats = cluster.stats();
        assert!(stats.construct_exchanges > 0);
        assert!(stats.cross_server_messages >= stats.construct_exchanges * 2);
    }

    #[test]
    fn interior_constructs_cost_no_coordination() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 5);
        // A construct inside one chunk involves exactly one zone.
        cluster.add_construct(generators::wire_line(5).translated(BlockPos::new(2, 6, 2)));
        assert_eq!(cluster.border_construct_count(), 0);
    }

    #[test]
    fn border_chunk_edits_are_mirrored_to_neighbors() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 6);
        let mut fleet = bounded_fleet(2, 7);
        // Let spawn terrain load so edits apply.
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(2));

        // Find a loaded border chunk in some zone and edit it.
        let map = cluster.shard_map().clone();
        let mut edited = None;
        'search: for (zone, server) in cluster.servers().iter().enumerate() {
            for pos in server.world().loaded_positions() {
                if map.zone_of_chunk(pos) == zone && map.is_border_chunk(pos) {
                    edited = Some((zone, pos));
                    break 'search;
                }
            }
        }
        let (zone, pos) = edited.expect("spawn area must contain a border chunk");
        let block = pos.min_block() + BlockPos::new(3, 9, 3);
        let event = (PlayerId::new(0), PlayerEvent::BlockPlaced(block));
        let positions = fleet.positions();
        let before = cluster.stats().border_chunk_updates;
        cluster.run_tick(&positions, &[event]);
        assert!(cluster.stats().border_chunk_updates > before);
        // Every neighbouring zone received the mirrored chunk copy.
        for neighbor in map.neighbor_zones(pos) {
            assert_eq!(
                cluster.server(neighbor).world().block(block),
                Some(servo_world::Block::Stone),
                "zone {neighbor} missing mirror of {pos:?} (edited by zone {zone})"
            );
        }
    }

    #[test]
    fn cross_zone_edits_invalidate_border_construct_owners() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 12);
        let site = border_construct_sites(cluster.shard_map(), 1)[0];
        let blueprint = place_across_east_seam(&generators::wire_line(14), site, 6);
        let (owner, id) = cluster.add_construct(blueprint.clone());
        // Pick a construct block on the far side of the seam: its block
        // events route to the neighbouring zone, not the owner.
        let map = cluster.shard_map().clone();
        let foreign_block = blueprint
            .positions()
            .iter()
            .copied()
            .find(|&p| map.zone_of_block(p) != owner)
            .expect("a border construct spans zones");
        let stamp_before = cluster
            .server(owner)
            .construct(id)
            .unwrap()
            .modification_stamp();
        let event = (PlayerId::new(0), PlayerEvent::BlockBroken(foreign_block));
        cluster.run_tick(&[], &[event]);
        // The edit was forwarded across the border, so the owning zone's
        // construct saw the modification exactly as a single server would.
        assert!(cluster.stats().forwarded_border_events > 0);
        assert!(
            cluster
                .server(owner)
                .construct(id)
                .unwrap()
                .modification_stamp()
                > stamp_before,
            "owner's construct never observed the cross-zone edit"
        );
    }

    #[test]
    fn zoned_members_report_view_range_for_owned_terrain_only() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 13);
        let mut fleet = bounded_fleet(6, 14);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(5));
        // Once each zone's owned terrain is provisioned, the QoS metric
        // recovers to the full view distance on every member — foreign
        // chunks are the neighbouring zones' responsibility, not holes.
        for server in cluster.servers() {
            let last = server.reports().last().unwrap();
            assert_eq!(
                last.view_range_blocks,
                32.0,
                "zone {:?} reports degraded view range",
                server.zone()
            );
        }
    }

    #[test]
    fn mid_run_flush_still_mirrors_border_chunks() {
        use servo_storage::{BlobTier, ObjectStore};

        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 21);
        for zone in 0..4 {
            cluster.attach_persistence(
                zone,
                BlobStore::new(BlobTier::Standard, SimRng::seed(100 + zone as u64)),
                SimRng::seed(200 + zone as u64),
                20,
            );
        }
        let mut fleet = bounded_fleet(2, 22);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(2));

        // Dirty a loaded border chunk directly (between ticks), then flush
        // BEFORE any further tick: the flush's destructive drain must still
        // mirror the chunk to the neighbouring replicas.
        let map = cluster.shard_map().clone();
        let mut edited = None;
        'search: for (zone, server) in cluster.servers().iter().enumerate() {
            for pos in server.world().loaded_positions() {
                if map.zone_of_chunk(pos) == zone && map.is_border_chunk(pos) {
                    edited = Some((zone, pos));
                    break 'search;
                }
            }
        }
        let (zone, pos) = edited.expect("spawn area must contain a border chunk");
        let block = pos.min_block() + BlockPos::new(4, 9, 4);
        cluster
            .server(zone)
            .world()
            .set_block(block, servo_world::Block::Lamp)
            .unwrap();
        let mirrored_before = cluster.stats().border_chunk_updates;
        let flushed = cluster.flush_persistence();
        assert!(flushed > 0, "the dirty chunk never reached storage");
        assert!(
            cluster.stats().border_chunk_updates > mirrored_before,
            "flush drained the chunk without mirroring it"
        );
        for neighbor in map.neighbor_zones(pos) {
            assert_eq!(
                cluster.server(neighbor).world().block(block),
                Some(servo_world::Block::Lamp),
                "zone {neighbor} missing the flush-time mirror of {pos:?}"
            );
        }
        // The owning zone persisted it; nobody else did.
        assert_eq!(
            cluster.with_persisted(zone, |remote| remote
                .contains(&format!("terrain/{}/{}", pos.x, pos.z))),
            Some(true)
        );
    }

    #[test]
    fn player_handoffs_cost_messages() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 4, 8);
        let map = cluster.shard_map().clone();
        // Move one synthetic avatar across a zone seam by hand.
        let sites = border_construct_sites(&map, 1);
        let west = sites[0].min_block() + BlockPos::new(8, 4, 8);
        let east = ChunkPos::new(sites[0].x + 1, sites[0].z).min_block() + BlockPos::new(8, 4, 8);
        cluster.run_tick(&[west], &[]);
        assert_eq!(cluster.stats().handoffs, 0);
        let tick = cluster.run_tick(&[east], &[]);
        assert_eq!(cluster.stats().handoffs, 1);
        assert!(tick.cross_server_messages >= 2);
    }

    #[test]
    fn single_zone_cluster_has_no_coordination() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 1, 9);
        cluster.add_construct(generators::dense_circuit(64));
        let mut fleet = bounded_fleet(8, 10);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(2));
        let stats = cluster.stats();
        assert_eq!(stats.cross_server_messages, 0);
        assert_eq!(stats.handoffs, 0);
        assert_eq!(stats.border_chunk_updates, 0);
        assert_eq!(stats.construct_exchanges, 0);
        assert_eq!(cluster.border_construct_count(), 0);
    }

    #[test]
    fn discard_ticks_keeps_state() {
        let mut cluster = ShardedGameCluster::baseline(flat_config(), 2, 11);
        let mut fleet = bounded_fleet(4, 12);
        cluster.run_with_fleet(&mut fleet, SimDuration::from_secs(1));
        let loaded: usize = cluster
            .servers()
            .iter()
            .map(|s| s.world().loaded_chunks())
            .sum();
        assert!(!cluster.ticks().is_empty());
        cluster.discard_ticks();
        assert!(cluster.ticks().is_empty());
        assert!(cluster.critical_path_durations().is_empty());
        let still_loaded: usize = cluster
            .servers()
            .iter()
            .map(|s| s.world().loaded_chunks())
            .sum();
        assert_eq!(loaded, still_loaded);
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn zero_zones_is_rejected() {
        ShardedGameCluster::baseline(flat_config(), 0, 0);
    }
}

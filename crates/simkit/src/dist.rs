//! Latency distributions.
//!
//! Cloud-service latencies are well described by log-normal bodies with
//! heavy (Pareto-like) tails; cold starts add a second mode. The types here
//! implement exactly the sampling primitives the FaaS and storage simulators
//! need, without pulling in an external statistics crate.

use rand::Rng;
use servo_types::SimDuration;

/// A sampleable distribution over non-negative durations (milliseconds).
pub trait Distribution {
    /// Draws one sample, in milliseconds.
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Draws one sample as a [`SimDuration`].
    fn sample(&self, rng: &mut dyn rand::RngCore) -> SimDuration {
        SimDuration::from_millis_f64(self.sample_ms(rng).max(0.0))
    }
}

/// A degenerate distribution that always returns the same value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample_ms(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.0
    }
}

/// A uniform distribution over `[lo, hi)` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound in milliseconds.
    pub lo: f64,
    /// Exclusive upper bound in milliseconds.
    pub hi: f64,
}

impl Distribution for Uniform {
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.lo + u * (self.hi - self.lo)
    }
}

/// A normal (Gaussian) distribution, sampled with the Box–Muller transform
/// and truncated at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean in milliseconds.
    pub mean: f64,
    /// Standard deviation in milliseconds.
    pub std_dev: f64,
}

impl Normal {
    /// Draws a standard-normal variate.
    pub fn standard_sample(rng: &mut dyn rand::RngCore) -> f64 {
        // Box–Muller; u1 is kept away from zero to avoid ln(0).
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for Normal {
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (self.mean + self.std_dev * Normal::standard_sample(rng)).max(0.0)
    }
}

/// A log-normal distribution parameterised by the *median* and the shape
/// `sigma` of the underlying normal.
///
/// Parameterising by the median (rather than mu) keeps configuration
/// readable: `median_ms` is the typical latency, `sigma` controls the spread
/// of the body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Median latency in milliseconds.
    pub median_ms: f64,
    /// Shape parameter of the underlying normal distribution.
    pub sigma: f64,
}

impl Distribution for LogNormal {
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let z = Normal::standard_sample(rng);
        self.median_ms * (self.sigma * z).exp()
    }
}

/// An exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Mean in milliseconds.
    pub mean: f64,
}

impl Distribution for Exponential {
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        -self.mean * u.ln()
    }
}

/// A Pareto distribution with scale `x_min` and shape `alpha`, used for
/// heavy latency tails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum value (scale) in milliseconds.
    pub x_min: f64,
    /// Tail index; smaller values give heavier tails.
    pub alpha: f64,
}

impl Distribution for Pareto {
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// A cloud-service latency model: a log-normal body plus an occasional
/// heavy-tailed outlier, clamped to a configurable ceiling.
///
/// This is the workhorse used to model managed-storage GETs (Figure 3,
/// Figure 13) and FaaS invocation overhead (Figure 9).
///
/// # Example
///
/// ```
/// use servo_simkit::{LatencyModel, SimRng, Distribution};
///
/// let model = LatencyModel::new(12.0, 0.35).with_outliers(0.001, 300.0, 2.5);
/// let mut rng = SimRng::seed(1);
/// let sample = model.sample_ms(&mut rng);
/// assert!(sample > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    body: LogNormal,
    /// Probability that a request falls into the outlier regime.
    outlier_probability: f64,
    /// Outlier tail distribution.
    tail: Pareto,
    /// Hard upper bound on any sample, in milliseconds.
    ceiling_ms: f64,
}

impl LatencyModel {
    /// Creates a latency model with the given median and body shape and no
    /// outlier regime.
    pub fn new(median_ms: f64, sigma: f64) -> Self {
        LatencyModel {
            body: LogNormal { median_ms, sigma },
            outlier_probability: 0.0,
            tail: Pareto {
                x_min: median_ms,
                alpha: 3.0,
            },
            ceiling_ms: f64::INFINITY,
        }
    }

    /// Adds an outlier regime: with probability `p` a sample is drawn from a
    /// Pareto tail starting at `tail_min_ms` with shape `alpha`.
    pub fn with_outliers(mut self, p: f64, tail_min_ms: f64, alpha: f64) -> Self {
        self.outlier_probability = p.clamp(0.0, 1.0);
        self.tail = Pareto {
            x_min: tail_min_ms,
            alpha,
        };
        self
    }

    /// Caps every sample at `ceiling_ms`.
    pub fn with_ceiling(mut self, ceiling_ms: f64) -> Self {
        self.ceiling_ms = ceiling_ms;
        self
    }

    /// The median of the latency body, in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.body.median_ms
    }

    /// Returns a copy of this model with the median scaled by `factor`
    /// (used to scale compute latency with allocated function resources).
    pub fn scaled(&self, factor: f64) -> Self {
        let mut scaled = *self;
        scaled.body.median_ms *= factor;
        scaled.tail.x_min *= factor;
        scaled
    }
}

impl Distribution for LatencyModel {
    fn sample_ms(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        let sample = if u < self.outlier_probability {
            self.tail.sample_ms(rng)
        } else {
            self.body.sample_ms(rng)
        };
        sample.min(self.ceiling_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn mean_of(dist: &dyn Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        (0..n).map(|_| dist.sample_ms(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed(0);
        let d = Constant(42.0);
        for _ in 0..10 {
            assert_eq!(d.sample_ms(&mut rng), 42.0);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = Uniform { lo: 5.0, hi: 10.0 };
        let mut rng = SimRng::seed(1);
        for _ in 0..1000 {
            let s = d.sample_ms(&mut rng);
            assert!((5.0..10.0).contains(&s));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let d = Normal {
            mean: 100.0,
            std_dev: 10.0,
        };
        let m = mean_of(&d, 20_000, 2);
        assert!((m - 100.0).abs() < 1.0, "mean was {m}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let d = LogNormal {
            median_ms: 50.0,
            sigma: 0.5,
        };
        let mut rng = SimRng::seed(3);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample_ms(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 50.0).abs() < 2.5, "median was {median}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let d = Exponential { mean: 30.0 };
        let m = mean_of(&d, 50_000, 4);
        assert!((m - 30.0).abs() < 1.0, "mean was {m}");
    }

    #[test]
    fn pareto_never_below_min() {
        let d = Pareto {
            x_min: 200.0,
            alpha: 2.0,
        };
        let mut rng = SimRng::seed(5);
        for _ in 0..1000 {
            assert!(d.sample_ms(&mut rng) >= 200.0);
        }
    }

    #[test]
    fn latency_model_outliers_increase_extremes() {
        let base = LatencyModel::new(10.0, 0.3);
        let heavy = LatencyModel::new(10.0, 0.3).with_outliers(0.05, 400.0, 2.0);
        let mut rng1 = SimRng::seed(6);
        let mut rng2 = SimRng::seed(6);
        let base_max = (0..10_000)
            .map(|_| base.sample_ms(&mut rng1))
            .fold(0.0, f64::max);
        let heavy_max = (0..10_000)
            .map(|_| heavy.sample_ms(&mut rng2))
            .fold(0.0, f64::max);
        assert!(heavy_max > base_max);
        assert!(heavy_max >= 400.0);
    }

    #[test]
    fn latency_model_ceiling_is_respected() {
        let d = LatencyModel::new(10.0, 1.0)
            .with_outliers(0.2, 500.0, 1.5)
            .with_ceiling(750.0);
        let mut rng = SimRng::seed(7);
        for _ in 0..10_000 {
            assert!(d.sample_ms(&mut rng) <= 750.0);
        }
    }

    #[test]
    fn scaled_model_scales_median() {
        let d = LatencyModel::new(100.0, 0.2);
        assert!((d.scaled(0.5).median_ms() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn samples_convert_to_nonnegative_durations() {
        let d = Normal {
            mean: 0.5,
            std_dev: 5.0,
        };
        let mut rng = SimRng::seed(8);
        for _ in 0..1000 {
            // Must never underflow even when the normal sample is negative.
            let _ = d.sample(&mut rng);
        }
    }
}

//! The virtual clock.

use servo_types::{SimDuration, SimTime, Tick};

/// A monotonically advancing virtual clock.
///
/// The clock never goes backwards: [`SimClock::advance_to`] with a time in
/// the past is a no-op. This mirrors how a discrete-event simulation consumes
/// an event queue.
///
/// # Example
///
/// ```
/// use servo_simkit::SimClock;
/// use servo_types::SimDuration;
///
/// let mut clock = SimClock::new();
/// clock.advance_by(SimDuration::from_millis(75));
/// assert_eq!(clock.now().as_millis(), 75);
/// assert_eq!(clock.current_tick(20).0, 1); // 75 ms is within tick 1 at 20 Hz
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// Creates a clock starting at the given instant.
    pub fn starting_at(start: SimTime) -> Self {
        SimClock { now: start }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `target`. Times in the past are ignored so the
    /// clock stays monotonic.
    pub fn advance_to(&mut self, target: SimTime) {
        if target > self.now {
            self.now = target;
        }
    }

    /// Advances the clock by `delta`.
    pub fn advance_by(&mut self, delta: SimDuration) {
        self.now += delta;
    }

    /// The game-loop tick that contains the current instant, for a tick rate
    /// in Hz.
    pub fn current_tick(&self, tick_rate_hz: u32) -> Tick {
        let tick_len_us = 1_000_000 / tick_rate_hz as u64;
        Tick(self.now.as_micros() / tick_len_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(SimTime::from_millis(100));
        c.advance_to(SimTime::from_millis(40));
        assert_eq!(c.now(), SimTime::from_millis(100));
    }

    #[test]
    fn advance_by_accumulates() {
        let mut c = SimClock::starting_at(SimTime::from_secs(1));
        c.advance_by(SimDuration::from_millis(500));
        c.advance_by(SimDuration::from_millis(500));
        assert_eq!(c.now(), SimTime::from_secs(2));
    }

    #[test]
    fn current_tick_at_20hz() {
        let mut c = SimClock::new();
        assert_eq!(c.current_tick(20), Tick(0));
        c.advance_to(SimTime::from_millis(49));
        assert_eq!(c.current_tick(20), Tick(0));
        c.advance_to(SimTime::from_millis(50));
        assert_eq!(c.current_tick(20), Tick(1));
        c.advance_to(SimTime::from_secs(10));
        assert_eq!(c.current_tick(20), Tick(200));
    }
}
